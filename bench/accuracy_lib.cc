#include "bench/accuracy_lib.h"

#include <cmath>
#include <cstdio>
#include <functional>
#include <map>

#include "baselines/uniform_model.h"
#include "bench/common.h"
#include "core/difficulty.h"
#include "core/trainer.h"
#include "eval/bootstrap.h"
#include "eval/metrics.h"
#include "eval/significance.h"

namespace upskill {
namespace bench {

namespace {

struct SkillRun {
  std::string name;
  SkillModel model;
  SkillAssignments assignments;
  std::vector<double> flat_levels;
};

// Trains one model variant and flattens its per-action levels.
Result<SkillRun> RunVariant(const std::string& name, const Dataset& dataset,
                            const SkillModelConfig& config, bool uniform) {
  SkillRun run;
  run.name = name;
  if (uniform) {
    Result<UniformBaselineResult> result =
        TrainUniformBaseline(dataset, config);
    if (!result.ok()) return result.status();
    run.model = std::move(result.value().model);
    run.assignments = std::move(result.value().assignments);
  } else {
    Trainer trainer(config);
    Result<TrainResult> result = trainer.Train(dataset);
    if (!result.ok()) return result.status();
    run.model = std::move(result.value().model);
    run.assignments = std::move(result.value().assignments);
  }
  run.flat_levels = FlattenLevels(run.assignments);
  return run;
}

// Squared per-action errors against the flattened truth.
std::vector<double> SquaredErrors(const std::vector<double>& estimated,
                                  const std::vector<double>& truth) {
  std::vector<double> errors(estimated.size());
  for (size_t i = 0; i < estimated.size(); ++i) {
    const double d = estimated[i] - truth[i];
    errors[i] = d * d;
  }
  return errors;
}

// The feature-subset variants of Table VI, in paper order.
struct Variant {
  std::string name;
  std::vector<std::string> keep;  // non-ID features retained
  bool uniform = false;
  bool all_features = false;
};

std::vector<Variant> SkillVariants() {
  return {
      {"Uniform", {}, /*uniform=*/true, /*all_features=*/true},
      {"ID [6]", {}, false, false},
      {"ID+categorical", {"category"}, false, false},
      {"ID+gamma", {"intensity"}, false, false},
      {"ID+Poisson", {"complexity"}, false, false},
      {"Multi-faceted", {}, false, true},
  };
}

Result<std::vector<SkillRun>> TrainAllVariants(
    const Dataset& dataset, const SkillModelConfig& config,
    const std::vector<Variant>& variants) {
  std::vector<SkillRun> runs;
  for (const Variant& variant : variants) {
    const Dataset* view = &dataset;
    Dataset projected;
    if (!variant.all_features) {
      Result<Dataset> result = ProjectToFeatures(dataset, variant.keep);
      if (!result.ok()) return result.status();
      projected = std::move(result).value();
      view = &projected;
    }
    Result<SkillRun> run =
        RunVariant(variant.name, *view, config, variant.uniform);
    if (!run.ok()) return run.status();
    runs.push_back(std::move(run).value());
  }
  return runs;
}

void PrintWilcoxon(const std::string& better, const std::string& baseline,
                   const std::vector<double>& better_se,
                   const std::vector<double>& baseline_se,
                   int num_comparisons) {
  const auto test = eval::WilcoxonSignedRank(better_se, baseline_se);
  if (!test.ok()) {
    std::printf("  Wilcoxon %s vs %s: %s\n", better.c_str(), baseline.c_str(),
                test.status().ToString().c_str());
    return;
  }
  const double corrected =
      eval::BonferroniCorrect(test.value().p_value, num_comparisons);
  std::printf(
      "  Wilcoxon(SE) %s vs %s: z=%.2f, Bonferroni p=%s (paper: p<0.01)\n",
      better.c_str(), baseline.c_str(), test.value().z,
      corrected < 0.01 ? "<0.01" : "n.s.");
}

void PrintPearsonCi(const std::string& name, const std::vector<double>& x,
                    const std::vector<double>& y) {
  Rng rng(555);
  const auto ci = eval::BootstrapConfidenceInterval(
      x, y,
      [](std::span<const double> a, std::span<const double> b) {
        return eval::PearsonCorrelation(a, b);
      },
      /*num_resamples=*/200, /*alpha=*/0.05, rng);
  if (ci.ok()) {
    std::printf("  95%% CI of Pearson's r for %s: [%.3f, %.3f]\n",
                name.c_str(), ci.value().lower, ci.value().upper);
  }
}

}  // namespace

int RunSkillAccuracy(const datagen::SyntheticConfig& config,
                     const std::string& dataset_name,
                     const std::string& paper_ref) {
  PrintHeader("Skill-assignment accuracy on " + dataset_name, paper_ref);

  auto data = datagen::GenerateSynthetic(config);
  if (!data.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }
  const std::vector<double> truth = FlattenLevels(data.value().truth.skill);
  std::printf("dataset: %d users, %d items, %zu actions\n",
              data.value().dataset.num_users(),
              data.value().dataset.items().num_items(),
              data.value().dataset.num_actions());

  SkillModelConfig train_config = DefaultTrainConfig(config.num_levels);
  auto runs =
      TrainAllVariants(data.value().dataset, train_config, SkillVariants());
  if (!runs.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 runs.status().ToString().c_str());
    return 1;
  }

  std::printf("\n%-28s %8s %8s %8s %8s\n", "Model", "r", "rho", "tau", "RMSE");
  std::map<std::string, std::vector<double>> flat_by_name;
  for (const SkillRun& run : runs.value()) {
    const auto report =
        eval::ComputeCorrelationReport(run.flat_levels, truth);
    if (report.ok()) PrintCorrelationRow(run.name, report.value());
    flat_by_name[run.name] = run.flat_levels;
  }

  std::printf("\nPaper (Table VI, sparse) / (Table VIII, dense) reference:\n");
  std::printf("  sparse: Uniform r=0.345, ID r=0.499, Multi-faceted r=0.819\n");
  std::printf("  dense:  Uniform r=0.340, ID r=0.925, Multi-faceted r=0.929\n");

  PrintPearsonCi("Multi-faceted", flat_by_name["Multi-faceted"], truth);
  PrintPearsonCi("ID [6]", flat_by_name["ID [6]"], truth);
  PrintPearsonCi("Uniform", flat_by_name["Uniform"], truth);

  const std::vector<double> multi_se =
      SquaredErrors(flat_by_name["Multi-faceted"], truth);
  PrintWilcoxon("Multi-faceted", "Uniform", multi_se,
                SquaredErrors(flat_by_name["Uniform"], truth), 2);
  PrintWilcoxon("Multi-faceted", "ID [6]", multi_se,
                SquaredErrors(flat_by_name["ID [6]"], truth), 2);
  return 0;
}

int RunDifficultyAccuracy(const datagen::SyntheticConfig& config,
                          const std::string& dataset_name,
                          const std::string& paper_ref) {
  PrintHeader("Item-difficulty accuracy on " + dataset_name, paper_ref);

  auto data = datagen::GenerateSynthetic(config);
  if (!data.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }
  const Dataset& dataset = data.value().dataset;
  const std::vector<double>& truth = data.value().truth.difficulty;

  // Occurrence counts for the rare-item analysis.
  std::vector<int> occurrences(static_cast<size_t>(dataset.items().num_items()), 0);
  dataset.ForEachAction([&occurrences](UserId, const Action& a) {
    ++occurrences[static_cast<size_t>(a.item)];
  });

  SkillModelConfig train_config = DefaultTrainConfig(config.num_levels);
  const std::vector<Variant> variants = {
      {"Uniform", {}, true, true},
      {"ID [6]", {}, false, false},
      {"Multi-faceted", {}, false, true},
  };
  auto runs = TrainAllVariants(dataset, train_config, variants);
  if (!runs.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 runs.status().ToString().c_str());
    return 1;
  }

  std::printf("\n%-28s %8s %8s %8s %8s\n", "Skill / Difficulty", "r", "rho",
              "tau", "RMSE");

  // Evaluates one difficulty vector over items the estimator covers
  // (NaN-skipped for the assignment estimator), plus the rare-item RMSE.
  const auto evaluate = [&](const std::string& name,
                            const std::vector<double>& difficulty) {
    std::vector<double> est;
    std::vector<double> ref;
    std::vector<double> rare_est;
    std::vector<double> rare_ref;
    const double midpoint = 0.5 * (1.0 + config.num_levels);
    for (size_t i = 0; i < difficulty.size(); ++i) {
      const double d = std::isnan(difficulty[i]) ? midpoint : difficulty[i];
      est.push_back(d);
      ref.push_back(truth[i]);
      if (occurrences[i] > 0 && occurrences[i] < 3) {
        rare_est.push_back(d);
        rare_ref.push_back(truth[i]);
      }
    }
    const auto report = eval::ComputeCorrelationReport(est, ref);
    if (report.ok()) PrintCorrelationRow(name, report.value());
    return std::make_pair(eval::Rmse(rare_est, rare_ref), rare_est.size());
  };

  double rare_assignment_rmse = 0.0;
  double rare_empirical_rmse = 0.0;
  size_t rare_count = 0;
  for (const SkillRun& run : runs.value()) {
    // Assignment-based estimator works for every skill model.
    const std::vector<double> assignment =
        EstimateDifficultyByAssignment(dataset, run.assignments);
    auto rare = evaluate(run.name + " / Assignment", assignment);
    if (run.name == "Multi-faceted") {
      rare_assignment_rmse = rare.first;
      rare_count = rare.second;
    }
    if (run.name == "Uniform") continue;  // no generative components fitted
                                          // to rank (paper Table VII note)
    const auto uniform_prior = EstimateDifficultyByGeneration(
        dataset.items(), run.model, DifficultyPrior::kUniform,
        run.assignments);
    if (uniform_prior.ok()) {
      evaluate(run.name + " / Uniform", uniform_prior.value());
    }
    const auto empirical_prior = EstimateDifficultyByGeneration(
        dataset.items(), run.model, DifficultyPrior::kEmpirical,
        run.assignments);
    if (empirical_prior.ok()) {
      auto rare_gen = evaluate(run.name + " / Empirical",
                               empirical_prior.value());
      if (run.name == "Multi-faceted") rare_empirical_rmse = rare_gen.first;
    }
    // Shrinkage combination (library extension; not a paper row): trusts
    // the observed audience for popular items, the generative estimate
    // for rare ones.
    const auto shrunken = EstimateDifficultyShrunken(
        dataset, run.model, run.assignments, DifficultyPrior::kEmpirical);
    if (shrunken.ok()) {
      evaluate(run.name + " / Shrunken*", shrunken.value());
    }
  }

  std::printf(
      "\nRare items (selected < 3 times): n=%zu, Assignment RMSE=%.3f, "
      "Empirical RMSE=%.3f\n",
      rare_count, rare_assignment_rmse, rare_empirical_rmse);
  std::printf(
      "Paper (Table VII): Multi-faceted Assignment r=0.858 RMSE=0.777;\n"
      "Empirical r=0.921 RMSE=0.614;\n"
      "  rare items: Assignment RMSE=1.131, Empirical RMSE=0.833\n");
  std::printf(
      "Paper (Table IX, dense): Multi-faceted Assignment r=0.950 RMSE=0.632; "
      "Empirical r=0.932 RMSE=0.528\n");
  return 0;
}

}  // namespace bench
}  // namespace upskill
