#ifndef UPSKILL_BENCH_ACCURACY_LIB_H_
#define UPSKILL_BENCH_ACCURACY_LIB_H_

#include <string>

#include "datagen/synthetic.h"

namespace upskill {
namespace bench {

/// Runs the Table VI / VIII protocol on `config`: trains the Uniform, ID,
/// ID+feature ablations and Multi-faceted skill models on a synthetic
/// dataset and prints r / rho / tau / RMSE of the recovered action levels
/// against ground truth, plus the bootstrap CI and Wilcoxon tests the
/// paper reports. `dataset_name` labels the output.
int RunSkillAccuracy(const datagen::SyntheticConfig& config,
                     const std::string& dataset_name,
                     const std::string& paper_ref);

/// Runs the Table VII / IX protocol on `config`: the skill-model x
/// difficulty-estimator grid, plus the rare-item (< 3 occurrences) RMSE
/// analysis.
int RunDifficultyAccuracy(const datagen::SyntheticConfig& config,
                          const std::string& dataset_name,
                          const std::string& paper_ref);

}  // namespace bench
}  // namespace upskill

#endif  // UPSKILL_BENCH_ACCURACY_LIB_H_
