// Ablation of the two fixed hyper-parameters the paper inherits from
// prior work: the categorical smoothing pseudo-count lambda = 0.01 (Shin
// et al.) and the initialization threshold N = 50 actions (Section IV-B).

#include <cstdio>

#include "bench/common.h"
#include "core/difficulty.h"
#include "core/trainer.h"
#include "eval/metrics.h"

namespace upskill {
namespace bench {
namespace {

int Run() {
  PrintHeader("Config ablation: smoothing lambda and init threshold N",
              "Section IV-B (lambda = 0.01, N = 50)");

  datagen::SyntheticConfig gen = SyntheticSparseConfig();
  gen.num_users = std::max(200, gen.num_users / 2);
  auto data = datagen::GenerateSynthetic(gen);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const Dataset& dataset = data.value().dataset;
  const std::vector<double> skill_truth =
      FlattenLevels(data.value().truth.skill);

  std::printf("(a) categorical smoothing lambda:\n");
  std::printf("    %-10s %10s %14s %8s\n", "lambda", "skill r",
              "difficulty r", "iters");
  for (double lambda : {0.0, 0.001, 0.01, 0.1, 1.0}) {
    SkillModelConfig config = DefaultTrainConfig(gen.num_levels);
    config.smoothing = lambda;
    const auto result = Trainer(config).Train(dataset);
    if (!result.ok()) continue;
    const double skill_r = eval::PearsonCorrelation(
        FlattenLevels(result.value().assignments), skill_truth);
    const auto difficulty = EstimateDifficultyByGeneration(
        dataset.items(), result.value().model, DifficultyPrior::kEmpirical,
        result.value().assignments);
    const double difficulty_r =
        difficulty.ok()
            ? eval::PearsonCorrelation(difficulty.value(),
                                       data.value().truth.difficulty)
            : 0.0;
    std::printf("    %-10g %10.3f %14.3f %8d%s\n", lambda, skill_r,
                difficulty_r, result.value().iterations,
                lambda == 0.01 ? "   <- paper" : "");
  }

  std::printf("\n(b) initialization threshold N (min actions to join the "
              "initial fit):\n");
  std::printf("    %-12s %10s %8s\n", "N", "skill r", "iters");
  for (int n : {5, 20, 50, 100, 1 << 30}) {
    SkillModelConfig config = DefaultTrainConfig(gen.num_levels);
    config.min_init_actions = n;
    const auto result = Trainer(config).Train(dataset);
    if (!result.ok()) continue;
    const double skill_r = eval::PearsonCorrelation(
        FlattenLevels(result.value().assignments), skill_truth);
    if (n == (1 << 30)) {
      std::printf("    %-12s %10.3f %8d   (falls back to all users)\n",
                  "unreachable", skill_r, result.value().iterations);
    } else {
      std::printf("    %-12d %10.3f %8d%s\n", n, skill_r,
                  result.value().iterations, n == 50 ? "   <- paper" : "");
    }
  }

  std::printf(
      "\nExpected shape: lambda = 0 cripples training (held-out items hit\n"
      "zero-probability spikes); beyond that, more smoothing shrinks the\n"
      "sparse item-ID feature toward uniform and can *help* recovery on\n"
      "sparse data — the paper's 0.01 is a conservative guard, not a\n"
      "tuned optimum. The init threshold is forgiving, with the paper's\n"
      "N = 50 a solid choice.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace upskill

int main() { return upskill::bench::Run(); }
