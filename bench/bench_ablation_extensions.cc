// Ablation of the two optional model extensions:
//  (a) the global progression component (TransitionModel::kGlobal — the
//      piece Section VI-D excluded "for simplicity and fair comparison");
//  (b) the forgetting down-edge (Section VII future work), evaluated on
//      data with planted skill decay.

#include <cstdio>
#include <cmath>

#include "bench/common.h"
#include "core/trainer.h"
#include "eval/metrics.h"

namespace upskill {
namespace bench {
namespace {

double SkillRecovery(const Dataset& dataset,
                     const datagen::GroundTruth& truth,
                     const SkillModelConfig& config) {
  const auto result = Trainer(config).Train(dataset);
  if (!result.ok()) return -2.0;
  return eval::PearsonCorrelation(FlattenLevels(result.value().assignments),
                                  FlattenLevels(truth.skill));
}

int Run() {
  PrintHeader("Extension ablation: progression component & forgetting",
              "Sections VI-D (excluded component) and VII (future work)");

  // (a) Progression component on the standard synthetic dataset.
  {
    datagen::SyntheticConfig gen = SyntheticSparseConfig();
    gen.num_users = std::max(200, gen.num_users / 2);
    auto data = datagen::GenerateSynthetic(gen);
    if (!data.ok()) return 1;
    SkillModelConfig off = DefaultTrainConfig(gen.num_levels);
    SkillModelConfig on = off;
    on.transitions = TransitionModel::kGlobal;
    std::printf("(a) global progression component (monotone data):\n");
    std::printf("    %-26s skill r = %.3f\n", "transitions off (paper)",
                SkillRecovery(data.value().dataset, data.value().truth, off));
    std::printf("    %-26s skill r = %.3f\n", "transitions kGlobal",
                SkillRecovery(data.value().dataset, data.value().truth, on));

    const auto trained = Trainer(on).Train(data.value().dataset);
    if (trained.ok()) {
      std::printf("    learned p_up = %.4f (generator levels up w.p. 0.1 "
                  "per at-level action)\n",
                  trained.value().level_up_probability);
    }
  }

  // (b) Forgetting on data with planted decay.
  {
    datagen::SyntheticConfig gen = SyntheticSparseConfig();
    gen.num_users = std::max(200, gen.num_users / 2);
    gen.break_probability = 0.05;
    gen.break_gap = 1000;
    gen.forget_probability = 0.9;
    gen.seed = 90210;
    auto data = datagen::GenerateSynthetic(gen);
    if (!data.ok()) return 1;
    SkillModelConfig monotone = DefaultTrainConfig(gen.num_levels);
    SkillModelConfig forgetting = monotone;
    forgetting.forgetting.enabled = true;
    forgetting.forgetting.gap_threshold = 100;
    forgetting.forgetting.drop_probability = 0.1;
    std::printf("\n(b) forgetting extension (5%% of steps are long breaks "
                "that decay skill):\n");
    std::printf("    %-26s skill r = %.3f\n", "monotone model (paper)",
                SkillRecovery(data.value().dataset, data.value().truth,
                              monotone));
    std::printf("    %-26s skill r = %.3f\n", "forgetting down-edges",
                SkillRecovery(data.value().dataset, data.value().truth,
                              forgetting));
  }

  // (c) Progression classes on data with fast and slow learners.
  {
    datagen::SyntheticConfig gen = SyntheticSparseConfig();
    gen.num_users = std::max(200, gen.num_users / 2);
    gen.level_up_probability = 0.04;
    gen.fast_user_fraction = 0.4;
    gen.fast_multiplier = 6.0;
    gen.seed = 515;
    auto data = datagen::GenerateSynthetic(gen);
    if (!data.ok()) return 1;
    SkillModelConfig global = DefaultTrainConfig(gen.num_levels);
    global.transitions = TransitionModel::kGlobal;
    SkillModelConfig per_class = global;
    per_class.transitions = TransitionModel::kPerClass;
    per_class.num_progression_classes = 2;
    std::printf("\n(c) progression classes (40%% of users learn 6x faster):\n");
    std::printf("    %-26s skill r = %.3f\n", "single global speed",
                SkillRecovery(data.value().dataset, data.value().truth,
                              global));
    std::printf("    %-26s skill r = %.3f\n", "2 progression classes",
                SkillRecovery(data.value().dataset, data.value().truth,
                              per_class));
    const auto trained = Trainer(per_class).Train(data.value().dataset);
    if (trained.ok() && trained.value().progression_classes.size() == 2) {
      std::printf("    learned speeds: p_up = %.3f and %.3f (planted: 0.04 "
                  "and 0.24)\n",
                  std::exp(trained.value()
                               .progression_classes[0]
                               .weights.log_up),
                  std::exp(trained.value()
                               .progression_classes[1]
                               .weights.log_up));
    }
  }

  std::printf(
      "\nExpected shape: (a) the progression component is roughly neutral\n"
      "on accuracy (the paper dropped it without loss); (b) the forgetting\n"
      "model fits decaying skills at least as well as the strictly\n"
      "monotone one, which cannot represent any decline; (c) two classes\n"
      "separate into a slow and a fast learned speed.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace upskill

int main() { return upskill::bench::Run(); }
