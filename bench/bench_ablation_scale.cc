// Ablation: data efficiency. How much history does the progression model
// need? Sweeps (a) the number of users and (b) per-user sequence length
// on the synthetic dataset and reports skill/difficulty recovery. This
// backs the paper's data-sparsity narrative (Section VI-D) from a third
// angle: Tables VI-IX vary items per action; here the action budget
// itself varies.

#include <cstdio>

#include "bench/common.h"
#include "core/difficulty.h"
#include "core/trainer.h"
#include "data/sample.h"
#include "eval/metrics.h"

namespace upskill {
namespace bench {
namespace {

struct Recovery {
  double skill_r = -2.0;
  double difficulty_r = -2.0;
  size_t actions = 0;
};

Recovery Evaluate(const Dataset& dataset, const datagen::GroundTruth& truth,
                  std::span<const UserId> user_map,
                  std::span<const double> full_difficulty) {
  Recovery recovery;
  recovery.actions = dataset.num_actions();
  SkillModelConfig config = DefaultTrainConfig(5);
  const auto result = Trainer(config).Train(dataset);
  if (!result.ok()) return recovery;

  // Align flattened truth with the (possibly subsampled/truncated) users.
  std::vector<double> estimated;
  std::vector<double> truth_levels;
  for (size_t original = 0; original < user_map.size(); ++original) {
    const UserId mapped = user_map[original];
    if (mapped < 0) continue;
    const auto& est = result.value().assignments[static_cast<size_t>(mapped)];
    const auto& ref = truth.skill[original];
    for (size_t n = 0; n < est.size() && n < ref.size(); ++n) {
      estimated.push_back(est[n]);
      truth_levels.push_back(ref[n]);
    }
  }
  recovery.skill_r = eval::PearsonCorrelation(estimated, truth_levels);

  const auto difficulty = EstimateDifficultyByGeneration(
      dataset.items(), result.value().model, DifficultyPrior::kEmpirical,
      result.value().assignments);
  if (difficulty.ok() &&
      difficulty.value().size() == full_difficulty.size()) {
    recovery.difficulty_r =
        eval::PearsonCorrelation(difficulty.value(), full_difficulty);
  }
  return recovery;
}

int Run() {
  PrintHeader("Scale ablation: recovery vs. data volume",
              "Section VI-D (data sparsity, third axis)");

  datagen::SyntheticConfig gen = SyntheticSparseConfig();
  auto data = datagen::GenerateSynthetic(gen);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const Dataset& full = data.value().dataset;
  std::vector<UserId> identity_map(static_cast<size_t>(full.num_users()));
  for (size_t u = 0; u < identity_map.size(); ++u) {
    identity_map[u] = static_cast<UserId>(u);
  }

  std::printf("(a) user subsampling (full sequences):\n");
  std::printf("    %-10s %10s %10s %14s\n", "users", "actions", "skill r",
              "difficulty r");
  for (double fraction : {0.05, 0.1, 0.25, 0.5, 1.0}) {
    Rng rng(99);
    const auto sampled = SampleUsers(full, fraction, rng);
    if (!sampled.ok()) continue;
    const Recovery recovery =
        Evaluate(sampled.value().dataset, data.value().truth,
                 sampled.value().user_map, data.value().truth.difficulty);
    std::printf("    %-10d %10zu %10.3f %14.3f\n",
                sampled.value().dataset.num_users(), recovery.actions,
                recovery.skill_r, recovery.difficulty_r);
  }

  std::printf("\n(b) sequence truncation (all users):\n");
  std::printf("    %-10s %10s %10s %14s\n", "max len", "actions", "skill r",
              "difficulty r");
  for (size_t cap : {5, 10, 25, 50, 100}) {
    const auto truncated = TruncateSequences(full, cap);
    if (!truncated.ok()) continue;
    const Recovery recovery =
        Evaluate(truncated.value(), data.value().truth, identity_map,
                 data.value().truth.difficulty);
    std::printf("    %-10zu %10zu %10.3f %14.3f\n", cap, recovery.actions,
                recovery.skill_r, recovery.difficulty_r);
  }

  std::printf(
      "\nExpected shape: both recovery columns improve with data volume and\n"
      "saturate; truncation hurts more than user subsampling at equal\n"
      "action budgets, because short sequences rarely witness a level-up\n"
      "(the paper's rationale for its >= 50-action filters).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace upskill

int main() { return upskill::bench::Run(); }
