// Ablation: item prediction under a *temporal* split (train on the past,
// test on the future — the deployment-realistic protocol) versus the
// paper's per-user last-position holdout (Table XI). Each user can have
// several future test actions here, and the train/test boundary is a
// global timestamp rather than per-user, so this is the harder setting.

#include <cstdio>

#include "baselines/uniform_model.h"
#include "bench/common.h"
#include "core/trainer.h"
#include "eval/tasks.h"

namespace upskill {
namespace bench {
namespace {

void RunDomain(const char* name, const Dataset& dataset) {
  const auto split = SplitActionsByTimeQuantile(dataset, 0.9);
  if (!split.ok()) {
    std::printf("%-10s FAILED (%s)\n", name,
                split.status().ToString().c_str());
    return;
  }
  const Dataset& train = split.value().train;
  const auto& test = split.value().test;
  const SkillModelConfig config = DefaultTrainConfig(5);

  auto evaluate_multi = [&]() -> double {
    Trainer trainer(config);
    const auto trained = trainer.Train(train);
    if (!trained.ok()) return -1.0;
    const auto report = eval::EvaluateItemPrediction(
        train, trained.value().assignments, trained.value().model, test);
    return report.ok() ? report.value().accuracy_at_k : -1.0;
  };
  auto evaluate_uniform = [&]() -> double {
    const auto baseline = TrainUniformBaseline(train, config);
    if (!baseline.ok()) return -1.0;
    const auto report = eval::EvaluateItemPrediction(
        train, baseline.value().assignments, baseline.value().model, test);
    return report.ok() ? report.value().accuracy_at_k : -1.0;
  };

  std::printf("%-10s %8zu test actions   Uniform Acc@10 %.3f   Multi "
              "Acc@10 %.3f\n",
              name, test.size(), evaluate_uniform(), evaluate_multi());
}

int Run() {
  PrintHeader("Item prediction under a temporal split",
              "extension of Table XI (forecast-realistic protocol)");
  {
    auto data = datagen::GenerateCooking(CookingConfigScaled());
    if (data.ok()) RunDomain("Cooking", data.value().dataset);
  }
  {
    auto data = datagen::GenerateBeer(BeerConfigScaled());
    if (data.ok()) RunDomain("Beer", data.value().dataset);
  }
  std::printf(
      "\nExpected shape: accuracies land below the last-position numbers\n"
      "of Table XI's protocol (multiple future actions per user, level\n"
      "inference from an older anchor), with the Multi-faceted model\n"
      "still ahead of the Uniform baseline.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace upskill

int main() { return upskill::bench::Run(); }
