// Ablation: hard-assignment coordinate ascent vs. soft-assignment EM.
// Section IV-B adopts hard assignment citing a reported 1,000x speedup
// over EM "with comparable fitting quality"; this bench measures both
// claims on the synthetic dataset (the gap depends on implementation and
// scale — EM's E-step is a constant factor heavier per iteration and
// needs dense posteriors, while hard assignment runs one Viterbi pass).

#include <cstdio>

#include "bench/common.h"
#include "common/stopwatch.h"
#include "core/em_trainer.h"
#include "core/trainer.h"
#include "eval/metrics.h"

namespace upskill {
namespace bench {
namespace {

int Run() {
  PrintHeader("Trainer ablation: hard assignment vs. EM",
              "Section IV-B (hard assignment adopted over EM)");

  datagen::SyntheticConfig gen = SyntheticSparseConfig();
  gen.num_users = std::max(200, gen.num_users / 4);  // EM is the bottleneck
  auto data = datagen::GenerateSynthetic(gen);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const std::vector<double> truth = FlattenLevels(data.value().truth.skill);
  std::printf("dataset: %d users, %d items, %zu actions\n\n",
              data.value().dataset.num_users(),
              data.value().dataset.items().num_items(),
              data.value().dataset.num_actions());

  std::printf("%-18s %10s %8s %14s %10s\n", "Trainer", "seconds", "iters",
              "final logL", "skill r");

  double hard_seconds = 0.0;
  double em_seconds = 0.0;
  {
    SkillModelConfig config = DefaultTrainConfig(gen.num_levels);
    Stopwatch watch;
    const auto result = Trainer(config).Train(data.value().dataset);
    hard_seconds = watch.ElapsedSeconds();
    if (!result.ok()) return 1;
    const double r = eval::PearsonCorrelation(
        FlattenLevels(result.value().assignments), truth);
    std::printf("%-18s %10.3f %8d %14.1f %10.3f\n", "hard (paper)",
                hard_seconds, result.value().iterations,
                result.value().final_log_likelihood, r);
  }
  {
    EmTrainerConfig config;
    config.model = DefaultTrainConfig(gen.num_levels);
    Stopwatch watch;
    const auto result = EmTrainer(config).Train(data.value().dataset);
    em_seconds = watch.ElapsedSeconds();
    if (!result.ok()) return 1;
    const double r = eval::PearsonCorrelation(
        FlattenLevels(result.value().assignments), truth);
    std::printf("%-18s %10.3f %8d %14.1f %10.3f\n", "EM (soft)", em_seconds,
                result.value().iterations,
                result.value().final_log_likelihood, r);
  }
  std::printf(
      "\nspeedup hard over EM: %.1fx (the paper cites ~1000x at their data\n"
      "scale and implementation). Expect the hard trainer to be markedly\n"
      "faster; EM's soft posteriors can recover skill slightly better on\n"
      "small data, consistent with the paper's \"comparable fitting\n"
      "quality\". The two final logL columns measure different objectives\n"
      "(best-path vs. marginal), so compare the r column for quality.\n",
      hard_seconds > 0.0 ? em_seconds / hard_seconds : 0.0);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace upskill

int main() { return upskill::bench::Run(); }
