// Per-backend exec-layer benchmarks: the two pipeline-level sharded
// kernels (assignment DP sweep and the parameter refit) driven through
// each registered exec::Backend — serial, pool, and numa. The kernels are
// bitwise deterministic across backends (tests/exec/determinism_test.cc),
// so the only thing these benches measure is scheduling: dispatch
// overhead at shards=1, scaling at shards=4/16, and — on multi-socket
// hosts — the NUMA backend's node-sticky placement. Every entry records
// its backend in the benchmark name plus `threads` / `shards` / `nodes` /
// `steals` counters so BENCH_PR9.json slices cleanly per backend.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/skill_model.h"
#include "core/trainer.h"
#include "datagen/synthetic.h"
#include "exec/backend.h"
#include "exec/backend_registry.h"
#include "exec/workspace.h"

namespace upskill {
namespace {

// Same synthetic fixture as bench_micro's pipeline benches, so the
// per-backend numbers here are directly comparable against the pool-only
// BM_AssignSkillsSharded / BM_FitParametersSharded entries recorded in
// BENCH_PR4.json.
const datagen::GeneratedData& PipelineData() {
  static const datagen::GeneratedData* data = [] {
    datagen::SyntheticConfig config;
    config.num_users = 500;
    config.num_items = 2000;
    config.mean_sequence_length = 40.0;
    auto result = datagen::GenerateSynthetic(config);
    return new datagen::GeneratedData(std::move(result).value());
  }();
  return *data;
}

const TrainResult& PipelineModel() {
  static const TrainResult* result = [] {
    SkillModelConfig config;
    config.num_levels = 5;
    config.min_init_actions = 25;
    config.max_iterations = 10;
    Trainer trainer(config);
    auto trained = trainer.Train(PipelineData().dataset);
    return new TrainResult(std::move(trained).value());
  }();
  return *result;
}

// Builds the named backend sized for `threads` and installs it on a fresh
// ExecContext; null on registry failure (reported through the state).
std::shared_ptr<exec::Backend> MakeBackend(benchmark::State& state,
                                           const std::string& name,
                                           int threads) {
  auto backend = exec::CreateBackend(name, threads);
  if (!backend.ok()) {
    state.SkipWithError(backend.status().message().c_str());
    return nullptr;
  }
  return std::move(backend).value();
}

void RecordBackendCounters(benchmark::State& state,
                           const exec::Backend& backend, int threads,
                           int shards, uint64_t steals_before) {
  state.counters["threads"] = threads;
  state.counters["shards"] = shards;
  state.counters["nodes"] = static_cast<double>(backend.num_nodes());
  state.counters["steals"] =
      static_cast<double>(backend.steal_count() - steals_before);
}

void ExecAssignSharded(benchmark::State& state, const std::string& name) {
  const auto& data = PipelineData();
  const auto& trained = PipelineModel();
  const int threads = static_cast<int>(state.range(0));
  const int shards = static_cast<int>(state.range(1));
  std::shared_ptr<exec::Backend> backend = MakeBackend(state, name, threads);
  if (backend == nullptr) return;
  ParallelOptions parallel;
  parallel.num_threads = threads;
  parallel.users = true;
  exec::ExecContext context;
  context.SetBackend(backend);
  const std::vector<double> cache =
      trained.model.ItemLogProbCache(data.dataset.items());
  AssignmentEngine engine(data.dataset, trained.model.num_levels(), shards,
                          &context);
  const uint64_t steals_before = backend->steal_count();
  for (auto _ : state) {
    engine.Assign(trained.model, cache, /*transitions=*/nullptr,
                  /*pool=*/nullptr, parallel);
  }
  RecordBackendCounters(state, *backend, threads, shards, steals_before);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.dataset.num_actions()));
}

void ExecFitSharded(benchmark::State& state, const std::string& name) {
  const auto& data = PipelineData();
  const auto& trained = PipelineModel();
  const int threads = static_cast<int>(state.range(0));
  const int shards = static_cast<int>(state.range(1));
  std::shared_ptr<exec::Backend> backend = MakeBackend(state, name, threads);
  if (backend == nullptr) return;
  ParallelOptions parallel;
  parallel.num_threads = threads;
  parallel.users = true;
  parallel.levels = true;
  parallel.features = true;
  SkillModelConfig config = trained.model.config();
  config.num_shards = shards;
  auto model = SkillModel::Create(trained.model.schema(), config);
  if (!model.ok()) {
    state.SkipWithError("SkillModel::Create failed");
    return;
  }
  exec::ExecContext context;
  context.SetBackend(backend);
  const uint64_t steals_before = backend->steal_count();
  for (auto _ : state) {
    FitParameters(data.dataset, trained.assignments, &model.value(),
                  /*pool=*/nullptr, parallel, &context);
  }
  RecordBackendCounters(state, *backend, threads, shards, steals_before);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.dataset.num_actions()));
}

// Same env knob as bench_micro's sharded sweeps (scripts/bench.sh
// --threads exports it); defaults to {1, 8}.
std::vector<int> SweepThreadCounts() {
  std::vector<int> threads;
  if (const char* env = std::getenv("UPSKILL_BENCH_THREADS")) {
    std::istringstream in(env);
    int value = 0;
    while (in >> value) {
      if (value > 0) threads.push_back(value);
    }
  }
  if (threads.empty()) threads = {1, 8};
  return threads;
}

void RegisterExecSweeps() {
  static const char* kBackends[] = {"serial", "pool", "numa"};
  for (const char* backend : kBackends) {
    const std::string name(backend);
    for (const int threads : SweepThreadCounts()) {
      // The serial backend ignores the thread count; one entry per shard
      // count is enough and keeps the sweep free of duplicate rows.
      if (name == "serial" && threads != SweepThreadCounts().front()) {
        continue;
      }
      const int effective_threads = name == "serial" ? 1 : threads;
      for (const int shards : {1, 4, 16}) {
        benchmark::RegisterBenchmark(
            ("BM_AssignSkillsSharded/backend:" + name).c_str(),
            [name](benchmark::State& state) {
              ExecAssignSharded(state, name);
            })
            ->Args({effective_threads, shards});
        benchmark::RegisterBenchmark(
            ("BM_FitParametersSharded/backend:" + name).c_str(),
            [name](benchmark::State& state) { ExecFitSharded(state, name); })
            ->Args({effective_threads, shards});
      }
    }
  }
}

}  // namespace
}  // namespace upskill

int main(int argc, char** argv) {
  upskill::RegisterExecSweeps();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  upskill::bench::MaybeWriteMetricsDump();
  benchmark::Shutdown();
  return 0;
}
