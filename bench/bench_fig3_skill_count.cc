// Regenerates Figure 3: choosing the number of skill levels S for a
// domain without prior knowledge (Cooking) by held-out log-likelihood on
// a 90/10 split. The paper's curve peaks at S = 5.

#include <cstdio>

#include "bench/common.h"
#include "core/information_criteria.h"
#include "core/model_selection.h"
#include "core/trainer.h"

namespace upskill {
namespace bench {
namespace {

int Run() {
  PrintHeader("Skill-count selection on Cooking",
              "Figure 3 (held-out log-likelihood vs. S)");

  auto data = datagen::GenerateCooking(CookingConfigScaled());
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }

  SkillModelConfig base = DefaultTrainConfig(/*num_levels=*/5);
  base.max_iterations = 30;
  const std::vector<int> candidates = {2, 3, 4, 5, 6, 7, 8};
  Rng rng(90);
  const auto selection = SelectSkillCount(data.value().dataset, candidates,
                                          base, /*test_fraction=*/0.1, rng);
  if (!selection.ok()) {
    std::fprintf(stderr, "%s\n", selection.status().ToString().c_str());
    return 1;
  }

  // BIC on the full data: a no-split alternative (extension; the paper
  // uses held-out likelihood only).
  std::printf("%6s %22s %16s\n", "S", "held-out log-lik", "BIC (full)");
  int bic_best = 0;
  double bic_best_value = 0.0;
  for (const SkillCountPoint& point : selection.value().curve) {
    SkillModelConfig config = base;
    config.num_levels = point.num_levels;
    double bic = 0.0;
    const auto trained = Trainer(config).Train(data.value().dataset);
    if (trained.ok()) {
      const auto criteria = ComputeInformationCriteria(
          data.value().dataset, trained.value().model);
      if (criteria.ok()) bic = criteria.value().bic;
    }
    if (bic != 0.0 && (bic_best == 0 || bic < bic_best_value)) {
      bic_best = point.num_levels;
      bic_best_value = bic;
    }
    std::printf("%6d %22.1f %16.0f\n", point.num_levels,
                point.held_out_log_likelihood, bic);
  }
  std::printf(
      "BIC would select S = %d — with an item-ID vocabulary every extra\n"
      "level costs ~|I| parameters, so BIC's penalty overwhelms the fit\n"
      "gain; the paper's held-out procedure is the right tool here.\n",
      bic_best);
  std::printf(
      "\nselected S = %d (paper selects S = 5 for Cooking). Expected shape:\n"
      "a steep rise from S=2 and a peak at 4-5. The simulator's planted\n"
      "novice violation (level-1 users follow the mid-level difficulty\n"
      "profile, Fig. 5) compresses the bottom of the scale, so the argmax\n"
      "can land at 4, adjacent to the generator's nominal 5 levels.\n",
      selection.value().best_num_levels);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace upskill

int main() { return upskill::bench::Run(); }
