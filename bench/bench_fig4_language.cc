// Regenerates Figure 4: model components learned for the language domain
// (S = 3). The paper finds (a) no trend in the sentence-count Poisson
// means across levels, and (b) corrections-per-corrector falling with
// skill (gamma means 5.062 / 4.852 / 2.640).

#include <cstdio>

#include "bench/common.h"
#include "core/trainer.h"
#include "dist/gamma.h"
#include "dist/poisson.h"

namespace upskill {
namespace bench {
namespace {

int Run() {
  PrintHeader("Language-domain model components",
              "Figure 4 (sentence count & correction count distributions)");

  auto data = datagen::GenerateLanguage(LanguageConfigScaled());
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const Dataset& dataset = data.value().dataset;

  Trainer trainer(DefaultTrainConfig(/*num_levels=*/3));
  const auto trained = trainer.Train(dataset);
  if (!trained.ok()) {
    std::fprintf(stderr, "%s\n", trained.status().ToString().c_str());
    return 1;
  }
  const SkillModel& model = trained.value().model;

  const int f_sentences =
      dataset.schema().FeatureIndex("sentence_count").value();
  const int f_corrections =
      dataset.schema().FeatureIndex("corrections_per_corrector").value();
  const int f_pct = dataset.schema().FeatureIndex("pct_corrected").value();

  std::printf("%6s %18s %24s %18s\n", "level", "sentences (mean)",
              "corrections/corrector", "%corrected (mean)");
  for (int s = 1; s <= 3; ++s) {
    std::printf("%6d %18.3f %24.3f %18.3f\n", s,
                model.component(f_sentences, s).Mean(),
                model.component(f_corrections, s).Mean(),
                model.component(f_pct, s).Mean());
  }
  std::printf(
      "\nPaper (Fig. 4): sentence means ~flat (10.837 / 11.633 / 10.320);\n"
      "correction means fall with skill (5.062 / 4.852 / 2.640). Expect the\n"
      "same shape: a flat first column and a falling second column.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace upskill

int main() { return upskill::bench::Run(); }
