// Regenerates Figure 5: cooking-domain model components (S = 5). The
// paper observes that levels 2-4 grow monotonically in cooking time and
// step count, while level 1 *resembles the mid levels* — novices select
// recipes beyond their capacity, the assumption violation discussed in
// Section VI-C.

#include <cstdio>

#include "bench/common.h"
#include "core/trainer.h"
#include "dist/categorical.h"

namespace upskill {
namespace bench {
namespace {

int Run() {
  PrintHeader("Cooking-domain model components",
              "Figure 5 (time and step-count distributions per level)");

  auto data = datagen::GenerateCooking(CookingConfigScaled());
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const Dataset& dataset = data.value().dataset;
  Trainer trainer(DefaultTrainConfig(/*num_levels=*/5));
  const auto trained = trainer.Train(dataset);
  if (!trained.ok()) {
    std::fprintf(stderr, "%s\n", trained.status().ToString().c_str());
    return 1;
  }
  const SkillModel& model = trained.value().model;

  const int f_time = dataset.schema().FeatureIndex("time_class").value();
  const int f_steps = dataset.schema().FeatureIndex("num_steps").value();
  const int f_ingredients =
      dataset.schema().FeatureIndex("num_ingredients").value();
  const FeatureSpec& time_spec = dataset.schema().feature(f_time);

  std::printf("(a) Cooking-time class distributions P(class | level):\n");
  std::printf("%6s", "level");
  for (const std::string& label : time_spec.labels) {
    std::printf(" %9s", label.c_str());
  }
  std::printf("\n");
  for (int s = 1; s <= 5; ++s) {
    const auto& dist =
        static_cast<const Categorical&>(model.component(f_time, s));
    std::printf("%6d", s);
    for (int c = 0; c < time_spec.cardinality; ++c) {
      std::printf(" %9.3f", dist.Probability(c));
    }
    std::printf("\n");
  }

  std::printf("\n(b) Count components (Poisson means):\n");
  std::printf("%6s %12s %16s\n", "level", "steps", "ingredients");
  for (int s = 1; s <= 5; ++s) {
    std::printf("%6d %12.3f %16.3f\n", s, model.component(f_steps, s).Mean(),
                model.component(f_ingredients, s).Mean());
  }

  std::printf(
      "\nPaper (Fig. 5): levels 2->4 shift toward longer times and more\n"
      "steps; level 1 looks like a mid level (novices over-select complex\n"
      "recipes). Expect level 1's rows to resemble level ~3, not the\n"
      "bottom of the scale.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace upskill

int main() { return upskill::bench::Run(); }
