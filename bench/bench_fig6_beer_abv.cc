// Regenerates Figure 6: alcohol-by-volume (gamma) distributions per skill
// level in the beer domain. The paper reports means rising from 5.846
// (s=1) to 7.460 (s=5).

#include <cstdio>

#include "bench/common.h"
#include "core/trainer.h"
#include "dist/gamma.h"

namespace upskill {
namespace bench {
namespace {

int Run() {
  PrintHeader("Beer-domain ABV distributions",
              "Figure 6 (ABV gamma component per level)");

  auto data = datagen::GenerateBeer(BeerConfigScaled());
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  Trainer trainer(DefaultTrainConfig(/*num_levels=*/5));
  const auto trained = trainer.Train(data.value().dataset);
  if (!trained.ok()) {
    std::fprintf(stderr, "%s\n", trained.status().ToString().c_str());
    return 1;
  }
  const int f_abv =
      data.value().dataset.schema().FeatureIndex("abv").value();

  std::printf("%6s %12s %12s %12s\n", "level", "mean ABV", "shape", "scale");
  for (int s = 1; s <= 5; ++s) {
    const auto& dist = static_cast<const Gamma&>(
        trained.value().model.component(f_abv, s));
    std::printf("%6d %12.3f %12.3f %12.4f\n", s, dist.Mean(), dist.shape(),
                dist.scale());
  }
  std::printf(
      "\nPaper (Fig. 6): the ABV mean rises with the level (5.846 at s=1,\n"
      "7.460 at s=5). Expect a monotone first column.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace upskill

int main() { return upskill::bench::Run(); }
