// Regenerates Figure 7: training time vs. thread count with every
// parallelization technique enabled, for the ID and Multi-faceted models.
// See the single-core caveat in bench_table13_parallel.cc.

#include <cstdio>
#include <thread>

#include "baselines/uniform_model.h"
#include "bench/common.h"
#include "common/stopwatch.h"
#include "core/trainer.h"

namespace upskill {
namespace bench {
namespace {

struct RunStats {
  double seconds = -1.0;
  size_t skipped_users = 0;
  size_t reassigned_users = 0;
};

RunStats TrainOnce(const Dataset& dataset, int num_threads) {
  SkillModelConfig config = DefaultTrainConfig(/*num_levels=*/5);
  config.max_iterations = 40;
  config.relative_tolerance = 0.0;
  config.parallel.num_threads = num_threads;
  config.parallel.users = num_threads > 1;
  config.parallel.features = num_threads > 1;
  config.parallel.levels = num_threads > 1;
  Trainer trainer(config);
  Stopwatch watch;
  const auto result = trainer.Train(dataset);
  RunStats stats;
  if (!result.ok()) return stats;
  stats.seconds = watch.ElapsedSeconds();
  stats.skipped_users = result.value().skipped_users;
  stats.reassigned_users = result.value().reassigned_users;
  return stats;
}

int Run() {
  PrintHeader("Training time vs. thread count (Film)",
              "Figure 7 (running time with 1-5 threads, all techniques)");
  std::printf("hardware threads available: %u\n\n",
              std::thread::hardware_concurrency());

  datagen::FilmConfig film_config = FilmConfigScaled();
  film_config.num_users *= 4;  // efficiency needs a non-trivial workload
  auto data = datagen::GenerateFilm(film_config);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const auto id_dataset = ProjectToIdOnly(data.value().dataset);
  if (!id_dataset.ok()) return 1;

  std::printf("%8s %14s %18s   %s\n", "threads", "ID [6] (s)",
              "Multi-faceted (s)", "skipped/reassigned (multi)");
  for (int threads = 1; threads <= 5; ++threads) {
    const RunStats id_stats = TrainOnce(id_dataset.value(), threads);
    const RunStats multi_stats = TrainOnce(data.value().dataset, threads);
    std::printf("%8d %14.2f %18.2f   %zu / %zu\n", threads, id_stats.seconds,
                multi_stats.seconds, multi_stats.skipped_users,
                multi_stats.reassigned_users);
  }

  std::printf(
      "\nPaper (Fig. 7): both curves fall with thread count and the\n"
      "Multi-faceted model benefits more (it has more parallelizable\n"
      "work). On a single-core host expect flat-to-slightly-rising\n"
      "curves (threading overhead without parallelism).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace upskill

int main() { return upskill::bench::Run(); }
