// Micro-benchmarks (google-benchmark) for the kernels behind the paper's
// complexity analysis (Section IV-C / V-C): the DP assignment step,
// distribution MLE fits, the item log-probability cache, difficulty
// estimators, rank metrics and one FFM epoch. These back the DESIGN.md
// ablation notes (hard assignment's cheap inner loop is what buys the
// reported 1000x-over-EM speedup).

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "core/difficulty.h"
#include "exec/shard.h"
#include "core/dp.h"
#include "core/posterior.h"
#include "core/recommend.h"
#include "core/trainer.h"
#include "common/rng.h"
#include "datagen/synthetic.h"
#include "dist/categorical.h"
#include "dist/gamma.h"
#include "dist/lognormal.h"
#include "dist/poisson.h"
#include "bench/common.h"
#include "eval/metrics.h"
#include "ffm/ffm.h"
#include "simd/simd.h"

namespace upskill {
namespace {

void BM_SolveMonotonePath(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const int levels = static_cast<int>(state.range(1));
  Rng rng(1);
  std::vector<double> log_probs(n * static_cast<size_t>(levels));
  for (double& v : log_probs) v = -10.0 * rng.NextDouble();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveMonotonePath(log_probs, levels));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_SolveMonotonePath)->Args({50, 5})->Args({500, 5})->Args({500, 10});

void BM_GammaFit(benchmark::State& state) {
  Rng rng(2);
  std::vector<double> values(static_cast<size_t>(state.range(0)));
  for (double& v : values) v = rng.NextGamma(3.0, 2.0);
  Gamma dist;
  for (auto _ : state) {
    dist.Fit(values);
    benchmark::DoNotOptimize(dist.shape());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_GammaFit)->Arg(1000)->Arg(100000);

void BM_CategoricalFit(benchmark::State& state) {
  Rng rng(3);
  const int cardinality = 1000;
  std::vector<double> values(static_cast<size_t>(state.range(0)));
  for (double& v : values) {
    v = static_cast<double>(rng.NextInt(cardinality));
  }
  Categorical dist(cardinality, 0.01);
  for (auto _ : state) {
    dist.Fit(values);
    benchmark::DoNotOptimize(dist.Probability(0));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CategoricalFit)->Arg(1000)->Arg(100000);

void BM_PoissonLogProb(benchmark::State& state) {
  Poisson dist(7.3);
  double x = 0.0;
  for (auto _ : state) {
    x += 1.0;
    if (x > 60.0) x = 0.0;
    benchmark::DoNotOptimize(dist.LogProb(x));
  }
}
BENCHMARK(BM_PoissonLogProb);

// Shared synthetic fixture for the pipeline-level benches.
const datagen::GeneratedData& PipelineData() {
  static const datagen::GeneratedData* data = [] {
    datagen::SyntheticConfig config;
    config.num_users = 500;
    config.num_items = 2000;
    config.mean_sequence_length = 40.0;
    auto result = datagen::GenerateSynthetic(config);
    return new datagen::GeneratedData(std::move(result).value());
  }();
  return *data;
}

const TrainResult& PipelineModel() {
  static const TrainResult* result = [] {
    SkillModelConfig config;
    config.num_levels = 5;
    config.min_init_actions = 25;
    config.max_iterations = 10;
    Trainer trainer(config);
    auto trained = trainer.Train(PipelineData().dataset);
    return new TrainResult(std::move(trained).value());
  }();
  return *result;
}

void BM_ItemLogProbCache(benchmark::State& state) {
  const auto& data = PipelineData();
  const auto& trained = PipelineModel();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trained.model.ItemLogProbCache(data.dataset.items()));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          data.dataset.items().num_items());
}
BENCHMARK(BM_ItemLogProbCache);

// The pre-batching cache construction: one virtual LogProb call per
// (item, feature, level) through SkillModel::ItemLogProb. Baseline for
// BM_ItemLogProbCache.
void BM_ItemLogProbCacheReference(benchmark::State& state) {
  const auto& data = PipelineData();
  const auto& trained = PipelineModel();
  const ItemTable& items = data.dataset.items();
  const int levels = trained.model.num_levels();
  for (auto _ : state) {
    std::vector<double> cache(static_cast<size_t>(items.num_items()) *
                              static_cast<size_t>(levels));
    for (ItemId item = 0; item < items.num_items(); ++item) {
      for (int s = 1; s <= levels; ++s) {
        cache[static_cast<size_t>(item) * static_cast<size_t>(levels) +
              static_cast<size_t>(s - 1)] =
            trained.model.ItemLogProb(items, item, s);
      }
    }
    benchmark::DoNotOptimize(cache.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          items.num_items());
}
BENCHMARK(BM_ItemLogProbCacheReference);

// Steady-state trainer iteration: only one (feature, level) cell's
// parameters change between Update() calls, so the incremental cache
// recomputes a single column instead of the full grid.
void BM_ItemLogProbCacheIncremental(benchmark::State& state) {
  const auto& data = PipelineData();
  SkillModel model = PipelineModel().model;
  LogProbCache cache;
  cache.Update(model, data.dataset.items());
  std::vector<double> params = model.component(2, 3).Parameters();
  double delta = 0.03125;
  for (auto _ : state) {
    params[0] += delta;
    delta = -delta;
    if (!model.mutable_component(2, 3)->SetParameters(params).ok()) {
      state.SkipWithError("SetParameters failed");
      break;
    }
    cache.Update(model, data.dataset.items());
    benchmark::DoNotOptimize(cache.values().data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          data.dataset.items().num_items());
}
BENCHMARK(BM_ItemLogProbCacheIncremental);

void BM_AssignmentStep(benchmark::State& state) {
  const auto& data = PipelineData();
  const auto& trained = PipelineModel();
  for (auto _ : state) {
    double ll = 0.0;
    benchmark::DoNotOptimize(
        AssignSkills(data.dataset, trained.model, nullptr, {}, &ll));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.dataset.num_actions()));
}
BENCHMARK(BM_AssignmentStep);

// Seed assignment path: materialize every user's n×S log-prob lattice
// from the cache, then run the materialized DP, with one heap-allocated
// buffer per user. Baseline for BM_AssignSkills. Arg(0) is the thread
// count (users axis).
void BM_AssignSkillsReference(benchmark::State& state) {
  const auto& data = PipelineData();
  const auto& trained = PipelineModel();
  const Dataset& dataset = data.dataset;
  const int threads = static_cast<int>(state.range(0));
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  const std::vector<double> cache =
      trained.model.ItemLogProbCache(dataset.items());
  const size_t levels = static_cast<size_t>(trained.model.num_levels());
  SkillAssignments assignments(static_cast<size_t>(dataset.num_users()));
  std::vector<double> user_ll(static_cast<size_t>(dataset.num_users()));
  for (auto _ : state) {
    ParallelFor(pool.get(), 0, static_cast<size_t>(dataset.num_users()),
                [&](size_t u) {
      std::span<const Action> seq =
          dataset.sequence(static_cast<UserId>(u));
      std::vector<double> log_probs(seq.size() * levels);
      for (size_t t = 0; t < seq.size(); ++t) {
        for (size_t s = 0; s < levels; ++s) {
          log_probs[t * levels + s] =
              cache[static_cast<size_t>(seq[t].item) * levels + s];
        }
      }
      MonotonePath path =
          SolveMonotonePath(log_probs, static_cast<int>(levels));
      user_ll[u] = path.log_likelihood;
      assignments[u] = std::move(path.levels);
    });
    double ll = 0.0;
    for (double v : user_ll) ll += v;
    benchmark::DoNotOptimize(ll);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(dataset.num_actions()));
}
BENCHMARK(BM_AssignSkillsReference)->Arg(1)->Arg(8);

// Fused, arena-backed assignment pass: the engine reads the item-indexed
// cache directly and reuses per-slot scratch, so steady-state iterations
// allocate nothing. Arg(0) is the thread count.
void BM_AssignSkills(benchmark::State& state) {
  const auto& data = PipelineData();
  const auto& trained = PipelineModel();
  const Dataset& dataset = data.dataset;
  const int threads = static_cast<int>(state.range(0));
  std::unique_ptr<ThreadPool> pool;
  ParallelOptions parallel;
  if (threads > 1) {
    pool = std::make_unique<ThreadPool>(threads);
    parallel.num_threads = threads;
    parallel.users = true;
  }
  const std::vector<double> cache =
      trained.model.ItemLogProbCache(dataset.items());
  AssignmentEngine engine(dataset, trained.model.num_levels());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.Assign(trained.model, cache, nullptr, pool.get(), parallel));
  }
  state.counters["threads"] = threads;
  state.counters["shards"] = exec::ResolveShardCount(
      0, pool.get(), static_cast<size_t>(dataset.num_users()));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(dataset.num_actions()));
}
BENCHMARK(BM_AssignSkills)->Arg(1)->Arg(8);

// Thread x shard sweep over the same fused pass: registered dynamically
// in main() for every thread count in UPSKILL_BENCH_THREADS (see
// scripts/bench.sh --threads) crossed with shard counts {1, 4, 16}.
// Results are bitwise identical across the whole grid; only throughput
// moves.
void AssignSkillsSharded(benchmark::State& state) {
  const auto& data = PipelineData();
  const auto& trained = PipelineModel();
  const Dataset& dataset = data.dataset;
  const int threads = static_cast<int>(state.range(0));
  const int shards = static_cast<int>(state.range(1));
  std::unique_ptr<ThreadPool> pool;
  ParallelOptions parallel;
  if (threads > 1) {
    pool = std::make_unique<ThreadPool>(threads);
    parallel.num_threads = threads;
    parallel.users = true;
  }
  const std::vector<double> cache =
      trained.model.ItemLogProbCache(dataset.items());
  AssignmentEngine engine(dataset, trained.model.num_levels(), shards);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.Assign(trained.model, cache, nullptr, pool.get(), parallel));
  }
  state.counters["threads"] = threads;
  state.counters["shards"] = shards;
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(dataset.num_actions()));
}

// Steady-state incremental pass: the update step left most items' cache
// rows untouched (here: 1% of items flagged dirty, the late-training
// regime), so the engine re-solves only the users playing a dirty item
// and carries everyone else forward.
void BM_AssignSkillsSkipping(benchmark::State& state) {
  const auto& data = PipelineData();
  const auto& trained = PipelineModel();
  const Dataset& dataset = data.dataset;
  const std::vector<double> cache =
      trained.model.ItemLogProbCache(dataset.items());
  const size_t num_items =
      static_cast<size_t>(dataset.items().num_items());
  std::vector<uint8_t> dirty(num_items, 0);
  for (size_t i = 0; i < num_items; i += 100) dirty[i] = 1;
  AssignmentEngine engine(dataset, trained.model.num_levels());
  engine.Assign(trained.model, cache, nullptr, nullptr, {});  // warm pass
  size_t skipped = 0;
  for (auto _ : state) {
    const AssignmentStats stats =
        engine.Assign(trained.model, cache, nullptr, nullptr, {}, &dirty,
                      /*weights_changed=*/false);
    skipped = stats.skipped_users;
    benchmark::DoNotOptimize(stats.log_likelihood);
  }
  state.counters["skipped_users"] = static_cast<double>(skipped);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(dataset.num_actions()));
}
BENCHMARK(BM_AssignSkillsSkipping);

void BM_UpdateStep(benchmark::State& state) {
  const auto& data = PipelineData();
  const auto& trained = PipelineModel();
  SkillModel model = trained.model;
  for (auto _ : state) {
    FitParameters(data.dataset, trained.assignments, &model);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.dataset.num_actions()));
}
BENCHMARK(BM_UpdateStep);

// Sufficient-statistics update step vs. the bucket-and-copy reference, at
// 1 and 8 threads (levels+features parallel). Arg(0) is the thread count.
void BM_FitParameters(benchmark::State& state) {
  const auto& data = PipelineData();
  const auto& trained = PipelineModel();
  const int threads = static_cast<int>(state.range(0));
  std::unique_ptr<ThreadPool> pool;
  ParallelOptions parallel;
  if (threads > 1) {
    pool = std::make_unique<ThreadPool>(threads);
    parallel.num_threads = threads;
    parallel.levels = true;
    parallel.features = true;
  }
  SkillModel model = trained.model;
  for (auto _ : state) {
    FitParameters(data.dataset, trained.assignments, &model, pool.get(),
                  parallel);
  }
  state.counters["threads"] = threads;
  state.counters["shards"] = exec::ResolveShardCount(
      0, pool.get(), static_cast<size_t>(data.dataset.num_users()));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.dataset.num_actions()));
}
BENCHMARK(BM_FitParameters)->Arg(1)->Arg(8);

// Thread x shard sweep over the update step, sharing one ExecContext
// across iterations like Trainer::Train does (registered in main(), same
// grid as AssignSkillsSharded).
void FitParametersSharded(benchmark::State& state) {
  const auto& data = PipelineData();
  const auto& trained = PipelineModel();
  const int threads = static_cast<int>(state.range(0));
  const int shards = static_cast<int>(state.range(1));
  std::unique_ptr<ThreadPool> pool;
  ParallelOptions parallel;
  if (threads > 1) {
    pool = std::make_unique<ThreadPool>(threads);
    parallel.num_threads = threads;
    parallel.levels = true;
    parallel.features = true;
  }
  SkillModelConfig config = trained.model.config();
  config.num_shards = shards;
  auto model = SkillModel::Create(trained.model.schema(), config);
  if (!model.ok()) {
    state.SkipWithError("SkillModel::Create failed");
    return;
  }
  exec::ExecContext context;
  for (auto _ : state) {
    FitParameters(data.dataset, trained.assignments, &model.value(),
                  pool.get(), parallel, &context);
  }
  state.counters["threads"] = threads;
  state.counters["shards"] = shards;
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.dataset.num_actions()));
}

void BM_FitParametersReference(benchmark::State& state) {
  const auto& data = PipelineData();
  const auto& trained = PipelineModel();
  const int threads = static_cast<int>(state.range(0));
  std::unique_ptr<ThreadPool> pool;
  ParallelOptions parallel;
  if (threads > 1) {
    pool = std::make_unique<ThreadPool>(threads);
    parallel.num_threads = threads;
    parallel.levels = true;
    parallel.features = true;
  }
  SkillModel model = trained.model;
  for (auto _ : state) {
    FitParametersReference(data.dataset, trained.assignments, &model,
                           pool.get(), parallel);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.dataset.num_actions()));
}
BENCHMARK(BM_FitParametersReference)->Arg(1)->Arg(8);

void BM_DifficultyAssignment(benchmark::State& state) {
  const auto& data = PipelineData();
  const auto& trained = PipelineModel();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EstimateDifficultyByAssignment(data.dataset, trained.assignments));
  }
}
BENCHMARK(BM_DifficultyAssignment);

void BM_DifficultyGeneration(benchmark::State& state) {
  const auto& data = PipelineData();
  const auto& trained = PipelineModel();
  for (auto _ : state) {
    benchmark::DoNotOptimize(EstimateDifficultyByGeneration(
        data.dataset.items(), trained.model, DifficultyPrior::kEmpirical,
        trained.assignments));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          data.dataset.items().num_items());
}
BENCHMARK(BM_DifficultyGeneration);

void BM_SequencePosterior(benchmark::State& state) {
  const auto& data = PipelineData();
  const auto& trained = PipelineModel();
  // The longest user exercises the forward-backward loop hardest.
  UserId user = 0;
  for (UserId u = 1; u < data.dataset.num_users(); ++u) {
    if (data.dataset.sequence(u).size() >
        data.dataset.sequence(user).size()) {
      user = u;
    }
  }
  const TransitionWeights weights = UninformativeTransitions(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSequencePosterior(
        data.dataset.items(), data.dataset.sequence(user), trained.model,
        weights));
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(data.dataset.sequence(user).size()));
}
BENCHMARK(BM_SequencePosterior);

void BM_RecommendForUpskilling(benchmark::State& state) {
  const auto& data = PipelineData();
  const auto& trained = PipelineModel();
  static const std::vector<double>* difficulty = [] {
    auto result = EstimateDifficultyByGeneration(
        PipelineData().dataset.items(), PipelineModel().model,
        DifficultyPrior::kEmpirical, PipelineModel().assignments);
    return new std::vector<double>(std::move(result).value());
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RecommendForUpskilling(
        data.dataset, trained.model, trained.assignments, *difficulty, 3));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          data.dataset.items().num_items());
}
BENCHMARK(BM_RecommendForUpskilling);

void BM_KendallTauB(benchmark::State& state) {
  Rng rng(9);
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> x(n);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = static_cast<double>(rng.NextInt(5));
    y[i] = x[i] + static_cast<double>(rng.NextInt(3));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::KendallTauB(x, y));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_KendallTauB)->Arg(1000)->Arg(100000);

void BM_FfmEpoch(benchmark::State& state) {
  Rng rng(11);
  const int num_users = 200;
  const int num_items = 300;
  std::vector<ffm::Example> examples;
  for (int i = 0; i < 5000; ++i) {
    const int u = static_cast<int>(rng.NextInt(num_users));
    const int item = static_cast<int>(rng.NextInt(num_items));
    examples.push_back(ffm::Example{
        {{0, u, 1.0}, {1, num_users + item, 1.0}},
        3.0 + rng.NextGaussian()});
  }
  auto model = ffm::FfmModel::Create(2, num_users + num_items, ffm::FfmConfig{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.value().TrainEpoch(examples));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(examples.size()));
}
BENCHMARK(BM_FfmEpoch);

// ---------------------------------------------------------------------
// SIMD kernel benches (scripts/bench.sh --suites simd). Every bench is
// registered twice in main(): the ".../scalar" variant forces the
// fallback kernels through simd::ForceScalarForTest, the ".../vector"
// variant runs the compiled backend (identical to scalar on hosts
// without AVX2/NEON), so a single run carries the scalar-vs-vector pair
// BENCH_PR6.json is audited against.

constexpr size_t kSimdBatch = 4096;

// Poisson/Categorical batches consume small integer counts; Gamma and
// LogNormal consume positive reals. The WithLogs variants additionally
// take the precomputed element logs — the form LogProbCache uses to
// share one scalar log pass across all S levels of an item column.
const std::vector<double>& SimdCountInputs() {
  static const std::vector<double>* inputs = [] {
    Rng rng(17);
    auto* values = new std::vector<double>(kSimdBatch);
    for (double& x : *values) x = static_cast<double>(rng.NextInt(60));
    return values;
  }();
  return *inputs;
}

const std::vector<double>& SimdPositiveInputs() {
  static const std::vector<double>* inputs = [] {
    Rng rng(19);
    auto* values = new std::vector<double>(kSimdBatch);
    for (double& x : *values) x = rng.NextGamma(3.0, 2.0);
    return values;
  }();
  return *inputs;
}

const std::vector<double>& SimdPositiveLogs() {
  static const std::vector<double>* logs = [] {
    auto* values = new std::vector<double>(SimdPositiveInputs());
    for (double& x : *values) x = std::log(x);
    return values;
  }();
  return *logs;
}

void LogProbBatchBench(benchmark::State& state, const Distribution& dist,
                       const std::vector<double>& xs, bool with_logs,
                       bool force_scalar) {
  simd::ForceScalarForTest(force_scalar);
  std::vector<double> out(xs.size());
  for (auto _ : state) {
    if (with_logs) {
      dist.LogProbBatchWithLogs(xs, SimdPositiveLogs(), out);
    } else {
      dist.LogProbBatch(xs, out);
    }
    benchmark::DoNotOptimize(out.data());
  }
  simd::ForceScalarForTest(false);
  state.SetLabel(force_scalar ? "scalar" : simd::BackendName());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(xs.size()));
}

// The serve-side double-precision streaming DP: one O(S) forward-column
// update per observed action against a shared [item * S] log-prob cache.
// This is the scalar/vector double baseline the quantized serve bench
// (bench_serve.cc BM_ServeQuantized) is compared against.
void ForwardStepStreamingBench(benchmark::State& state, int levels,
                               bool force_scalar) {
  simd::ForceScalarForTest(force_scalar);
  Rng rng(23);
  const size_t num_items = 512;
  const size_t seq_len = 1024;
  std::vector<double> cache(num_items * static_cast<size_t>(levels));
  for (double& v : cache) v = -10.0 * rng.NextDouble();
  std::vector<int32_t> items(seq_len);
  for (int32_t& item : items) {
    item = static_cast<int32_t>(rng.NextInt(static_cast<int64_t>(num_items)));
  }
  const double log_stay = std::log(0.9);
  const double log_up = std::log(0.1);
  std::vector<double> column(static_cast<size_t>(levels));
  std::vector<double> next(static_cast<size_t>(levels));
  const auto row = [&](size_t t) {
    return std::span<const double>(
        cache.data() +
            static_cast<size_t>(items[t]) * static_cast<size_t>(levels),
        static_cast<size_t>(levels));
  };
  for (auto _ : state) {
    MonotoneForwardStart(row(0), {}, column);
    for (size_t t = 1; t < seq_len; ++t) {
      MonotoneForwardStep(column, row(t), log_stay, log_up,
                          /*allow_down=*/false, 0.0, next);
      column.swap(next);
    }
    benchmark::DoNotOptimize(column.data());
  }
  simd::ForceScalarForTest(false);
  state.SetLabel(force_scalar ? "scalar" : simd::BackendName());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(seq_len));
}

void RegisterSimdBenches() {
  static const Poisson* poisson = new Poisson(7.3);
  static const Categorical* categorical = new Categorical(64, 0.01);
  static const Gamma* gamma = new Gamma(3.0, 2.0);
  static const LogNormal* lognormal = new LogNormal(0.5, 0.9);
  struct BatchCase {
    const char* name;
    const Distribution* dist;
    const std::vector<double>* xs;
    bool with_logs;
  };
  static const std::vector<BatchCase>* cases = new std::vector<BatchCase>{
      {"poisson", poisson, &SimdCountInputs(), false},
      {"categorical", categorical, &SimdCountInputs(), false},
      {"gamma", gamma, &SimdPositiveInputs(), false},
      {"lognormal", lognormal, &SimdPositiveInputs(), false},
      {"gamma_with_logs", gamma, &SimdPositiveInputs(), true},
      {"lognormal_with_logs", lognormal, &SimdPositiveInputs(), true},
  };
  for (const bool force_scalar : {true, false}) {
    const std::string backend = force_scalar ? "scalar" : "vector";
    for (const BatchCase& batch_case : *cases) {
      benchmark::RegisterBenchmark(
          ("BM_LogProbBatch/" + std::string(batch_case.name) + "/" + backend)
              .c_str(),
          [&batch_case, force_scalar](benchmark::State& state) {
            LogProbBatchBench(state, *batch_case.dist, *batch_case.xs,
                              batch_case.with_logs, force_scalar);
          });
    }
    for (const int levels : {5, 32, 64}) {
      benchmark::RegisterBenchmark(
          ("BM_ForwardStepStreaming/levels:" + std::to_string(levels) + "/" +
           backend)
              .c_str(),
          [levels, force_scalar](benchmark::State& state) {
            ForwardStepStreamingBench(state, levels, force_scalar);
          });
    }
  }
}

// Thread counts for the sharded sweeps: a space-separated list in
// UPSKILL_BENCH_THREADS (exported by scripts/bench.sh --threads),
// defaulting to {1, 8} to match the static benches.
std::vector<int> SweepThreadCounts() {
  std::vector<int> threads;
  if (const char* env = std::getenv("UPSKILL_BENCH_THREADS")) {
    std::istringstream in(env);
    int value = 0;
    while (in >> value) {
      if (value > 0) threads.push_back(value);
    }
  }
  if (threads.empty()) threads = {1, 8};
  return threads;
}

void RegisterShardedSweeps() {
  for (const int threads : SweepThreadCounts()) {
    for (const int shards : {1, 4, 16}) {
      benchmark::RegisterBenchmark("BM_AssignSkillsSharded",
                                   AssignSkillsSharded)
          ->Args({threads, shards});
      benchmark::RegisterBenchmark("BM_FitParametersSharded",
                                   FitParametersSharded)
          ->Args({threads, shards});
    }
  }
}

}  // namespace
}  // namespace upskill

int main(int argc, char** argv) {
  upskill::RegisterShardedSweeps();
  upskill::RegisterSimdBenches();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  // Registry dump alongside the benchmark JSON when
  // UPSKILL_BENCH_METRICS_OUT is set (scripts/bench.sh --metrics).
  upskill::bench::MaybeWriteMetricsDump();
  benchmark::Shutdown();
  return 0;
}
