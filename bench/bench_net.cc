// Network serving benchmarks (google-benchmark): the epoll TCP front end
// measured over real loopback sockets. The headline BM_NetServeBinary is
// the PR's >= 1M req/s aggregate bar — per-core SO_REUSEPORT workers,
// binary-framed observe requests pipelined in deep waves so the syscall
// cost amortizes across thousands of requests per read. Counters record
// `workers` and `req_per_core` (aggregate rate / hardware cores) next to
// the aggregate items/s. BM_NetServeText runs the same wave through the
// text protocol for the framing-overhead comparison, and
// BM_NetServeBinaryMix is the 90% observe / 10% recommend mix matching
// BM_ServeThroughput.

#include <benchmark/benchmark.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "common/rng.h"
#include "core/difficulty.h"
#include "core/trainer.h"
#include "datagen/synthetic.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/net_server.h"
#include "serve/server.h"
#include "serve/serving_model.h"
#include "serve/snapshot.h"

namespace upskill {
namespace net {
namespace {

std::shared_ptr<const serve::ServingModel> BenchServingModel() {
  static const std::shared_ptr<const serve::ServingModel>* model = [] {
    datagen::SyntheticConfig data_config;
    data_config.num_users = 400;
    data_config.num_items = 2000;
    data_config.mean_sequence_length = 40.0;
    auto data = datagen::GenerateSynthetic(data_config);
    const Dataset& dataset = data.value().dataset;

    SkillModelConfig config;
    config.num_levels = 5;
    config.min_init_actions = 25;
    config.max_iterations = 8;
    auto trained = Trainer(config).Train(dataset);
    const SkillAssignments assignments =
        AssignSkills(dataset, trained.value().model);
    auto difficulty = EstimateDifficultyByGeneration(
        dataset.items(), trained.value().model, DifficultyPrior::kEmpirical,
        assignments);
    auto snapshot =
        serve::MakeSnapshot(trained.value().model, dataset.items(),
                            std::move(difficulty).value());
    auto serving = serve::ServingModel::FromSnapshot(snapshot.value());
    return new std::shared_ptr<const serve::ServingModel>(serving.value());
  }();
  return *model;
}

/// One client's pre-encoded request wave and how many response frames it
/// owes. Requests carry no timestamp, so the same wave replays forever.
struct Wave {
  std::string bytes;
  size_t responses = 0;
};

Wave BuildBinaryWave(int client_index, int sessions_per_client,
                     size_t wave_size, double recommend_share) {
  Wave wave;
  Rng rng(static_cast<uint64_t>(1000 + client_index));
  const int num_items = BenchServingModel()->num_items();
  for (size_t i = 0; i < wave_size; ++i) {
    serve::ServeRequest request;
    request.user = "c" + std::to_string(client_index) + "u" +
                   std::to_string(rng.NextInt(sessions_per_client));
    if (rng.NextDouble() < recommend_share) {
      request.kind = serve::ServeRequest::Kind::kRecommend;
      request.top_k = 10;
    } else {
      request.kind = serve::ServeRequest::Kind::kObserve;
      request.item = static_cast<ItemId>(rng.NextInt(num_items));
      request.has_time = false;
    }
    EncodeRequest(request, &wave.bytes);
  }
  wave.responses = wave_size;
  return wave;
}

Wave BuildTextWave(int client_index, int sessions_per_client,
                   size_t wave_size) {
  Wave wave;
  Rng rng(static_cast<uint64_t>(1000 + client_index));
  const int num_items = BenchServingModel()->num_items();
  for (size_t i = 0; i < wave_size; ++i) {
    wave.bytes += "observe c" + std::to_string(client_index) + "u" +
                  std::to_string(rng.NextInt(sessions_per_client)) + " " +
                  std::to_string(rng.NextInt(num_items)) + "\n";
  }
  wave.responses = wave_size;
  return wave;
}

/// Sends the whole wave, then drains exactly its responses. Requests are
/// pipelined (the server answers while the client is still writing), so
/// one wave costs a handful of syscalls per 64KB, not per request.
bool RunBinaryWave(int fd, const Wave& wave) {
  size_t sent = 0;
  size_t seen = 0;
  std::string rx;
  size_t rx_off = 0;
  char chunk[256 * 1024];
  while (seen < wave.responses) {
    // Fill the pipe first: non-blocking sends until the kernel buffer is
    // full (EAGAIN means the server holds unread requests, so responses
    // are on the way and the blocking recv below cannot deadlock).
    while (sent < wave.bytes.size()) {
      const ssize_t n = ::send(fd, wave.bytes.data() + sent,
                               wave.bytes.size() - sent,
                               MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n > 0) {
        sent += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    rx.append(chunk, static_cast<size_t>(n));
    // Count complete response frames: header is magic, status, u32 len.
    while (rx.size() - rx_off >= kFrameHeaderBytes) {
      uint32_t payload = 0;
      std::memcpy(&payload, rx.data() + rx_off + 2, sizeof(payload));
      const size_t frame = kFrameHeaderBytes + payload;
      if (rx.size() - rx_off < frame) break;
      rx_off += frame;
      ++seen;
    }
    if (rx_off == rx.size()) {
      rx.clear();
      rx_off = 0;
    }
  }
  return true;
}

bool RunTextWave(int fd, const Wave& wave) {
  size_t sent = 0;
  size_t seen = 0;
  char chunk[256 * 1024];
  while (seen < wave.responses) {
    while (sent < wave.bytes.size()) {
      const ssize_t n = ::send(fd, wave.bytes.data() + sent,
                               wave.bytes.size() - sent,
                               MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n > 0) {
        sent += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    for (ssize_t i = 0; i < n; ++i) {
      if (chunk[i] == '\n') ++seen;
    }
  }
  return true;
}

/// Shared driver: a NetServer with `workers` workers, one pipelining
/// client connection per worker, every client replaying its wave once per
/// benchmark iteration.
template <typename WaveRunner>
void RunNetBench(benchmark::State& state, const std::vector<Wave>& waves,
                 WaveRunner runner) {
  const int workers = static_cast<int>(state.range(0));
  serve::Server server(BenchServingModel(), /*num_shards=*/256);
  NetServerConfig config;
  config.num_workers = workers;
  NetServer net(&server, nullptr, config);
  const Status started = net.Start();
  if (!started.ok()) {
    state.SkipWithError(started.ToString().c_str());
    return;
  }

  std::vector<std::unique_ptr<NetClient>> clients;
  for (int c = 0; c < workers; ++c) {
    auto client = std::make_unique<NetClient>();
    if (!client->Connect("127.0.0.1", net.port()).ok()) {
      state.SkipWithError("client connect failed");
      return;
    }
    clients.push_back(std::move(client));
  }
  // Warm-up wave: creates every session and faults in the buffers.
  for (int c = 0; c < workers; ++c) {
    if (!runner(clients[static_cast<size_t>(c)]->fd(),
                waves[static_cast<size_t>(c)])) {
      state.SkipWithError("warm-up wave failed");
      return;
    }
  }

  size_t total = 0;
  std::atomic<bool> failed{false};
  for (auto _ : state) {
    std::vector<std::thread> threads;
    for (int c = 1; c < workers; ++c) {
      threads.emplace_back([&, c] {
        if (!runner(clients[static_cast<size_t>(c)]->fd(),
                    waves[static_cast<size_t>(c)])) {
          failed.store(true);
        }
      });
    }
    if (!runner(clients[0]->fd(), waves[0])) failed.store(true);
    for (auto& thread : threads) thread.join();
    for (const Wave& wave : waves) total += wave.responses;
    if (failed.load()) {
      state.SkipWithError("wave failed mid-run");
      break;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(total));
  state.counters["workers"] = static_cast<double>(workers);
  const double cores =
      static_cast<double>(std::thread::hardware_concurrency());
  state.counters["req_per_core"] = benchmark::Counter(
      static_cast<double>(total) / (cores > 0 ? cores : 1.0),
      benchmark::Counter::kIsRate);
  state.counters["sessions"] = static_cast<double>(server.num_sessions());
  clients.clear();
  net.Stop();
}

constexpr size_t kWave = 50000;
constexpr int kSessionsPerClient = 2000;

void BM_NetServeBinary(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  std::vector<Wave> waves;
  for (int c = 0; c < workers; ++c) {
    waves.push_back(BuildBinaryWave(c, kSessionsPerClient, kWave, 0.0));
  }
  RunNetBench(state, waves, RunBinaryWave);
}
BENCHMARK(BM_NetServeBinary)
    ->Arg(8)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_NetServeBinaryMix(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  std::vector<Wave> waves;
  for (int c = 0; c < workers; ++c) {
    waves.push_back(BuildBinaryWave(c, kSessionsPerClient, kWave, 0.1));
  }
  RunNetBench(state, waves, RunBinaryWave);
}
BENCHMARK(BM_NetServeBinaryMix)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_NetServeText(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  std::vector<Wave> waves;
  for (int c = 0; c < workers; ++c) {
    waves.push_back(BuildTextWave(c, kSessionsPerClient, kWave));
  }
  RunNetBench(state, waves, RunTextWave);
}
BENCHMARK(BM_NetServeText)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace
}  // namespace net
}  // namespace upskill

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  upskill::bench::MaybeWriteMetricsDump();
  benchmark::Shutdown();
  return 0;
}
