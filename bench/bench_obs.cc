// Observability-overhead benchmarks (google-benchmark): what request
// tracing costs on the serving hot path. BM_RequestTraceOverhead runs
// the same observe/recommend mix through Server::Execute with the flight
// recorder detached (arg 0), attached with 1-in-16 tail sampling
// (arg 1), and attached recording every completion (arg 2). The
// acceptance bar — <= 2% overhead for the sampling configuration
// (BENCH_PR10.json) — is read from the *Paired benches below, which
// resolve the few-ns delta that separate mode-vs-mode runs bury in
// run-to-run drift. BM_FlightRecorderRecord isolates the raw Record()
// cost, and BM_FlightRecorderContended measures it under 8 recording
// threads (the lock-striping story).

#include <benchmark/benchmark.h>
#include <sys/socket.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/difficulty.h"
#include "core/trainer.h"
#include "datagen/synthetic.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/net_server.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/serving_model.h"
#include "serve/snapshot.h"

namespace upskill {
namespace obs {
namespace {

constexpr int kNumItems = 500;

// Trained serving model shared by every benchmark in this binary.
std::shared_ptr<const serve::ServingModel> BenchServingModel() {
  static const std::shared_ptr<const serve::ServingModel> model = [] {
    datagen::SyntheticConfig data_config;
    data_config.num_users = 200;
    data_config.num_items = kNumItems;
    data_config.mean_sequence_length = 30.0;
    data_config.seed = 20260808;
    auto data = datagen::GenerateSynthetic(data_config);
    const Dataset& dataset = data.value().dataset;
    SkillModelConfig config;
    config.num_levels = 5;
    config.min_init_actions = 15;
    config.max_iterations = 6;
    auto trained = Trainer(config).Train(dataset);
    const SkillAssignments assignments =
        AssignSkills(dataset, trained.value().model);
    auto difficulty = EstimateDifficultyByGeneration(
        dataset.items(), trained.value().model, DifficultyPrior::kEmpirical,
        assignments);
    auto snapshot = serve::MakeSnapshot(trained.value().model, dataset.items(),
                                        difficulty.value());
    return serve::ServingModel::FromSnapshot(snapshot.value()).value();
  }();
  return model;
}

// The request mix of the serve-throughput bar: 90% observe, 10%
// recommend, over a rotating set of users. Observes carry no timestamp
// on purpose: the benches replay this fixed batch for thousands of
// laps against persistent sessions, and explicit times would go
// backwards on lap 2 and turn 90% of the traffic into errors — which
// the recorder admits unconditionally (tail sampling), silently
// benchmarking the error slow path instead of the steady state. With
// no timestamp the session carries its own time forward and every lap
// is the non-error hot path.
std::vector<serve::ServeRequest> BenchRequests(size_t count) {
  std::vector<serve::ServeRequest> requests;
  requests.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    serve::ServeRequest request;
    if (i % 10 == 9) {
      request.kind = serve::ServeRequest::Kind::kRecommend;
      request.top_k = 5;
    } else {
      request.kind = serve::ServeRequest::Kind::kObserve;
      request.item = static_cast<ItemId>(i % kNumItems);
    }
    request.user = "bench_user_" + std::to_string(i % 64);
    requests.push_back(request);
  }
  return requests;
}

// Arg 0: recorder detached. Arg 1: attached, sample_every=16 (the
// tail-sampling serve default worth shipping). Arg 2: attached,
// recording every completion.
void BM_RequestTraceOverhead(benchmark::State& state) {
  const auto serving = BenchServingModel();
  serve::Server server(serving);
  std::unique_ptr<FlightRecorder> recorder;
  if (state.range(0) > 0) {
    FlightRecorderOptions options;
    options.capacity = 4096;
    options.sample_every = state.range(0) == 1 ? 16 : 1;
    recorder = std::make_unique<FlightRecorder>(options);
    server.SetFlightRecorder(recorder.get());
  }
  const std::vector<serve::ServeRequest> requests = BenchRequests(1024);
  size_t index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.Execute(requests[index]));
    index = (index + 1) & 1023;
  }
  state.SetItemsProcessed(state.iterations());
  if (recorder != nullptr) {
    const FlightRecorderStats stats = recorder->Stats();
    state.counters["recorded"] =
        static_cast<double>(stats.recorded);
    state.counters["sampled_out"] =
        static_cast<double>(stats.sampled_out);
  }
}
// Repetitions with median reporting: the per-request delta being
// measured (a few ns on a sub-microsecond request) is below
// single-run noise.
BENCHMARK(BM_RequestTraceOverhead)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->ArgName("mode")
    ->Repetitions(9)
    ->ReportAggregatesOnly(true);

// Paired-difference measurement of the same overhead. Separate
// mode-vs-mode runs (above) put minutes between the two sides, so
// thermal/frequency drift (~10% run-to-run on a shared box) swamps the
// tens-of-ns delta, and even two server objects in one binary disagree
// by a couple of percent from heap-placement luck. So: ONE server,
// with the recorder attached and detached between batches, in the
// palindromic order off,on,on,off per iteration — identical code,
// identical heap state, and linear drift cancels exactly in the
// off/on sums. `overhead_pct` is the acceptance-bar readout: the
// tail-sampling (sample_every=16) overhead on the serve hot path,
// measured at ~1.5% (single-digit ns on a ~650ns request).
void BM_RequestTraceOverheadPaired(benchmark::State& state) {
  const auto serving = BenchServingModel();
  serve::Server server(serving);
  FlightRecorderOptions options;
  options.capacity = 4096;
  options.sample_every = 16;
  FlightRecorder recorder(options);
  const std::vector<serve::ServeRequest> requests = BenchRequests(1024);
  const auto run = [&requests, &server]() {
    const auto start = std::chrono::steady_clock::now();
    for (const auto& request : requests) {
      benchmark::DoNotOptimize(server.Execute(request));
    }
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  double plain_ns = 0.0;
  double traced_ns = 0.0;
  for (auto _ : state) {
    server.SetFlightRecorder(nullptr);
    plain_ns += static_cast<double>(run());
    server.SetFlightRecorder(&recorder);
    traced_ns += static_cast<double>(run());
    traced_ns += static_cast<double>(run());
    server.SetFlightRecorder(nullptr);
    plain_ns += static_cast<double>(run());
  }
  state.SetItemsProcessed(state.iterations() * 4 *
                          static_cast<int64_t>(requests.size()));
  const double per_request =
      static_cast<double>(state.iterations()) * 2.0 * requests.size();
  if (per_request > 0) {
    state.counters["plain_ns"] = plain_ns / per_request;
    state.counters["traced_ns"] = traced_ns / per_request;
    state.counters["overhead_pct"] =
        100.0 * (traced_ns - plain_ns) / plain_ns;
  }
  // Errors bypass sampling and take the admitted slow path; any
  // nonzero count here means the bench is measuring the wrong thing.
  state.counters["errors_retained"] =
      static_cast<double>(recorder.Stats().errors_retained);
}
// 15 repetitions: each rep constructs a fresh server, and heap/page
// placement moves the measured delta by a point or two; the median
// over many placements is the stable readout.
BENCHMARK(BM_RequestTraceOverheadPaired)
    ->Repetitions(15)
    ->ReportAggregatesOnly(true);

// The same paired attach/detach measurement over the shipped serving
// stack: the epoll TCP front end on a real loopback socket, binary
// protocol, pipelined waves (bench_net's serving setup). This is the
// deployment-relevant overhead number. Pipelining amortizes syscalls
// hard enough that a binary-protocol request costs only ~370ns — it
// skips Execute's response rendering — so the recorder's few ns per
// request read as ~1.6%, the tightest point against the ≤2% bar.
// SetFlightRecorder between drained waves is safe: the pointer is
// atomic and the worker is idle in epoll_wait.
bool RunObsBinaryWave(int fd, const std::string& bytes, size_t responses) {
  size_t sent = 0;
  size_t seen = 0;
  std::string rx;
  size_t rx_off = 0;
  char chunk[256 * 1024];
  while (seen < responses) {
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n > 0) {
        sent += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    rx.append(chunk, static_cast<size_t>(n));
    while (rx.size() - rx_off >= net::kFrameHeaderBytes) {
      uint32_t payload = 0;
      std::memcpy(&payload, rx.data() + rx_off + 2, sizeof(payload));
      const size_t frame = net::kFrameHeaderBytes + payload;
      if (rx.size() - rx_off < frame) break;
      rx_off += frame;
      ++seen;
    }
    if (rx_off == rx.size()) {
      rx.clear();
      rx_off = 0;
    }
  }
  return true;
}

void BM_NetTraceOverheadPaired(benchmark::State& state) {
  serve::Server server(BenchServingModel());
  net::NetServerConfig config;
  config.num_workers = 1;
  net::NetServer net(&server, nullptr, config);
  if (!net.Start().ok()) {
    state.SkipWithError("net server failed to start");
    return;
  }
  net::NetClient client;
  if (!client.Connect("127.0.0.1", net.port()).ok()) {
    state.SkipWithError("client connect failed");
    return;
  }
  FlightRecorderOptions options;
  options.capacity = 4096;
  options.sample_every = 16;
  FlightRecorder recorder(options);
  const std::vector<serve::ServeRequest> requests = BenchRequests(2048);
  std::string wave;
  for (const auto& request : requests) net::EncodeRequest(request, &wave);
  const auto run = [&]() {
    const auto start = std::chrono::steady_clock::now();
    if (!RunObsBinaryWave(client.fd(), wave, requests.size())) {
      state.SkipWithError("wave failed");
    }
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  run();  // warm-up: creates sessions, faults buffers
  double plain_ns = 0.0;
  double traced_ns = 0.0;
  for (auto _ : state) {
    server.SetFlightRecorder(nullptr);
    plain_ns += static_cast<double>(run());
    server.SetFlightRecorder(&recorder);
    traced_ns += static_cast<double>(run());
    traced_ns += static_cast<double>(run());
    server.SetFlightRecorder(nullptr);
    plain_ns += static_cast<double>(run());
  }
  server.SetFlightRecorder(nullptr);
  state.SetItemsProcessed(state.iterations() * 4 *
                          static_cast<int64_t>(requests.size()));
  const double per_request =
      static_cast<double>(state.iterations()) * 2.0 * requests.size();
  if (per_request > 0) {
    state.counters["plain_ns"] = plain_ns / per_request;
    state.counters["traced_ns"] = traced_ns / per_request;
    state.counters["overhead_pct"] =
        100.0 * (traced_ns - plain_ns) / plain_ns;
  }
  // Nonzero means the wave replay produced errors and the bench
  // measured the always-admitted error path, not the sampled one.
  state.counters["errors_retained"] =
      static_cast<double>(recorder.Stats().errors_retained);
  client.Close();
  net.Stop();
}
BENCHMARK(BM_NetTraceOverheadPaired)
    ->Repetitions(15)
    ->ReportAggregatesOnly(true);

// Raw Record() cost, single thread: one stripe lock, no contention.
void BM_FlightRecorderRecord(benchmark::State& state) {
  FlightRecorder recorder;
  const auto start = std::chrono::steady_clock::now();
  const auto end = start + std::chrono::microseconds(3);
  for (auto _ : state) {
    recorder.Record(0, "serve/observe", start, end, false, false);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlightRecorderRecord);

// Record() under 8 concurrent threads: stripes keep writers apart.
void BM_FlightRecorderContended(benchmark::State& state) {
  static FlightRecorder* recorder = nullptr;
  if (state.thread_index() == 0) {
    FlightRecorderOptions options;
    options.capacity = 8192;
    options.num_stripes = 8;
    recorder = new FlightRecorder(options);
  }
  const auto start = std::chrono::steady_clock::now();
  const auto end = start + std::chrono::microseconds(3);
  for (auto _ : state) {
    recorder->Record(state.thread_index() % FlightRecorder::kMaxKinds,
                     "serve/observe", start, end, false, false);
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete recorder;
    recorder = nullptr;
  }
}
BENCHMARK(BM_FlightRecorderContended)->Threads(8)->UseRealTime();

}  // namespace
}  // namespace obs
}  // namespace upskill

BENCHMARK_MAIN();
