// Serving-path benchmarks (google-benchmark): snapshot save/load, the
// ServingModel precomputation, the O(S) streaming observe step, the
// precomputed-ranking recommend walk, and the headline BM_ServeThroughput
// — a 90% observe / 10% recommend request mix over 100k live sessions
// executed through Server::ExecuteBatch on an 8-thread pool, the workload
// the PR's >= 100k req/s acceptance bar is measured on (BENCH_PR3.json).

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench/common.h"
#include "common/rng.h"
#include "core/difficulty.h"
#include "core/dp.h"
#include "core/trainer.h"
#include "datagen/synthetic.h"
#include "serve/quantized_model.h"
#include "serve/server.h"
#include "serve/serving_model.h"
#include "serve/snapshot.h"
#include "simd/kernels.h"
#include "simd/simd.h"

namespace upskill {
namespace serve {
namespace {

std::string TempSnapshotPath() {
  return "/tmp/upskill_bench_" + std::to_string(::getpid()) + ".snap";
}

// Shared fixture: a trained model over a mid-sized item universe, packaged
// as a snapshot and a ready ServingModel.
const ModelSnapshot& BenchSnapshot() {
  static const ModelSnapshot* snapshot = [] {
    datagen::SyntheticConfig data_config;
    data_config.num_users = 400;
    data_config.num_items = 2000;
    data_config.mean_sequence_length = 40.0;
    auto data = datagen::GenerateSynthetic(data_config);
    const Dataset& dataset = data.value().dataset;

    SkillModelConfig config;
    config.num_levels = 5;
    config.min_init_actions = 25;
    config.max_iterations = 8;
    auto trained = Trainer(config).Train(dataset);
    const SkillAssignments assignments =
        AssignSkills(dataset, trained.value().model);
    auto difficulty = EstimateDifficultyByGeneration(
        dataset.items(), trained.value().model, DifficultyPrior::kEmpirical,
        assignments);
    const TransitionWeights transitions = FitTransitionWeights(
        assignments, config.num_levels, config.smoothing);
    auto snapshot =
        MakeSnapshot(trained.value().model, dataset.items(),
                     std::move(difficulty).value(), &transitions);
    return new ModelSnapshot(std::move(snapshot).value());
  }();
  return *snapshot;
}

std::shared_ptr<const ServingModel> BenchServingModel() {
  static const std::shared_ptr<const ServingModel>* model = [] {
    auto result = ServingModel::FromSnapshot(BenchSnapshot());
    return new std::shared_ptr<const ServingModel>(result.value());
  }();
  return *model;
}

void BM_SnapshotSave(benchmark::State& state) {
  const ModelSnapshot& snapshot = BenchSnapshot();
  const std::string path = TempSnapshotPath();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SaveSnapshot(snapshot, path));
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_SnapshotSave);

void BM_SnapshotLoad(benchmark::State& state) {
  const std::string path = TempSnapshotPath();
  if (!SaveSnapshot(BenchSnapshot(), path).ok()) {
    state.SkipWithError("SaveSnapshot failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(LoadSnapshot(path));
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_SnapshotLoad);

// The swap-time cost: full log-prob matrix + per-level rankings.
void BM_ServingModelBuild(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ServingModel::FromSnapshot(BenchSnapshot(), pool.get()));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          BenchSnapshot().items.num_items());
}
BENCHMARK(BM_ServingModelBuild)->Arg(1)->Arg(8);

// One streaming observe: an O(S) column update behind one shard lock.
void BM_ObserveAction(benchmark::State& state) {
  Server server(BenchServingModel());
  Rng rng(7);
  const int num_items = BenchServingModel()->num_items();
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.Observe(
        "bench-user", static_cast<ItemId>(rng.NextInt(num_items)), 0,
        false));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ObserveAction);

// One recommend: a walk down the precomputed per-level ranking.
void BM_RecommendServing(benchmark::State& state) {
  Server server(BenchServingModel());
  if (!server.Observe("bench-user", 0, 0, false).ok()) {
    state.SkipWithError("Observe failed");
    return;
  }
  UpskillRecommendationOptions options;
  options.max_results = 10;
  options.exclude_tried = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.Recommend("bench-user", options));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RecommendServing);

// The headline throughput bench: 100k live sessions, request waves of a
// 90% observe / 10% recommend mix, executed through the full request API
// (parse-level structs in, rendered response strings out) on a thread
// pool. items_per_second in the JSON output is requests per second.
// Arg(0) = pool threads, Arg(1) = live sessions.
void BM_ServeThroughput(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const int num_sessions = static_cast<int>(state.range(1));
  Server server(BenchServingModel(), /*num_shards=*/256);
  ThreadPool pool(threads);
  const int num_items = BenchServingModel()->num_items();
  Rng rng(13);

  // Seed every session once so recommends always find a live session
  // (and the map reaches steady-state size before timing starts).
  {
    std::vector<ServeRequest> seed(static_cast<size_t>(num_sessions));
    for (int u = 0; u < num_sessions; ++u) {
      ServeRequest& request = seed[static_cast<size_t>(u)];
      request.kind = ServeRequest::Kind::kObserve;
      request.user = "u" + std::to_string(u);
      request.item = static_cast<ItemId>(rng.NextInt(num_items));
    }
    server.ExecuteBatch(seed, &pool);
  }

  // Pre-generated request wave. Observes carry no timestamp (the session
  // reuses its last time), so waves can be replayed indefinitely.
  constexpr size_t kWave = 100000;
  std::vector<ServeRequest> wave(kWave);
  for (size_t i = 0; i < kWave; ++i) {
    ServeRequest& request = wave[i];
    request.user = "u" + std::to_string(rng.NextInt(num_sessions));
    if (rng.NextDouble() < 0.9) {
      request.kind = ServeRequest::Kind::kObserve;
      request.item = static_cast<ItemId>(rng.NextInt(num_items));
    } else {
      request.kind = ServeRequest::Kind::kRecommend;
      request.top_k = 10;
    }
  }

  for (auto _ : state) {
    benchmark::DoNotOptimize(server.ExecuteBatch(wave, &pool).data());
  }
  state.counters["sessions"] = static_cast<double>(server.num_sessions());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kWave));
}
BENCHMARK(BM_ServeThroughput)
    ->Args({8, 100000})
    ->Args({1, 100000})
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// Quantized serving benches (scripts/bench.sh --suites simd). The step
// family is the serve-side streaming DP measured four ways over one
// synthetic fixture — the double column with the scalar backend forced
// (the pre-quantization serve path and the baseline the BENCH_PR6.json
// >= 3x bar is measured against), the double column on the compiled
// backend, and the int16 quantized column on the scalar and dispatched
// kernels. The observe family is the same comparison end to end through
// Server::Observe (shard lock, session map and recommend bookkeeping
// included).

constexpr size_t kStepItems = 512;
constexpr size_t kStepSeq = 1024;

void ServeQuantizedStepBench(benchmark::State& state, int levels,
                             bool quantized, bool force_scalar) {
  Rng rng(31);
  const size_t num_levels = static_cast<size_t>(levels);
  std::vector<double> rows(kStepItems * num_levels);
  for (double& v : rows) v = -10.0 * rng.NextDouble();

  // Quantize each synthetic row with the production format from
  // serve/quantized_model.h: int16 residual lanes at a per-item scale
  // plus a Q15 multiplier back into kQuantAccScale accumulator units.
  std::vector<int16_t> qrows(rows.size());
  std::vector<int16_t> mults(kStepItems);
  for (size_t item = 0; item < kStepItems; ++item) {
    const double* row = rows.data() + item * num_levels;
    double row_max = row[0];
    for (size_t s = 1; s < num_levels; ++s) {
      row_max = std::max(row_max, row[s]);
    }
    double range = 0.0;
    for (size_t s = 0; s < num_levels; ++s) {
      range = std::max(range,
                       std::min(row_max - row[s], kQuantResidualRange));
    }
    for (size_t s = 0; s < num_levels; ++s) {
      const double residual = -std::min(row_max - row[s], kQuantResidualRange);
      qrows[item * num_levels + s] =
          range == 0.0 ? int16_t{0}
                       : static_cast<int16_t>(
                             std::lround(residual * 32767.0 / range));
    }
    mults[item] = static_cast<int16_t>(
        std::lround(kQuantAccScale * range / 32767.0 * 32768.0));
  }

  std::vector<int32_t> items(kStepSeq);
  for (int32_t& item : items) {
    item = static_cast<int32_t>(rng.NextInt(static_cast<int64_t>(kStepItems)));
  }
  const double log_stay = std::log(0.9);
  const double log_up = std::log(0.1);
  const int16_t q_stay =
      static_cast<int16_t>(std::lround(log_stay * kQuantAccScale));
  const int16_t q_up =
      static_cast<int16_t>(std::lround(log_up * kQuantAccScale));

  simd::ForceScalarForTest(force_scalar);
  if (quantized) {
    std::vector<int16_t> column(num_levels);
    std::vector<int16_t> next(num_levels);
    for (auto _ : state) {
      simd::QuantizedForwardInit(
          qrows.data() + static_cast<size_t>(items[0]) * num_levels,
          mults[static_cast<size_t>(items[0])], nullptr, num_levels,
          column.data());
      for (size_t t = 1; t < kStepSeq; ++t) {
        const size_t item = static_cast<size_t>(items[t]);
        simd::QuantizedForwardStep(
            column.data(), qrows.data() + item * num_levels, mults[item],
            q_stay, q_up, /*allow_down=*/false, 0, num_levels, next.data());
        column.swap(next);
      }
      benchmark::DoNotOptimize(
          simd::QuantizedForwardLevel(column.data(), num_levels));
    }
  } else {
    std::vector<double> column(num_levels);
    std::vector<double> next(num_levels);
    const auto row = [&](size_t t) {
      return std::span<const double>(
          rows.data() + static_cast<size_t>(items[t]) * num_levels,
          num_levels);
    };
    for (auto _ : state) {
      MonotoneForwardStart(row(0), {}, column);
      for (size_t t = 1; t < kStepSeq; ++t) {
        MonotoneForwardStep(column, row(t), log_stay, log_up,
                            /*allow_down=*/false, 0.0, next);
        column.swap(next);
      }
      benchmark::DoNotOptimize(MonotoneForwardLevel(column));
    }
  }
  simd::ForceScalarForTest(false);
  state.SetLabel(force_scalar ? "scalar" : simd::BackendName());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kStepSeq));
}

// End-to-end single-session observe, double vs. quantized inference.
void ServeQuantizedObserveBench(benchmark::State& state, bool quantized) {
  Server server(BenchServingModel(), /*num_shards=*/64, quantized);
  Rng rng(7);
  const int num_items = BenchServingModel()->num_items();
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.Observe(
        "bench-user", static_cast<ItemId>(rng.NextInt(num_items)), 0,
        false));
  }
  state.SetLabel(quantized ? "quantized" : "double");
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void RegisterQuantizedBenches() {
  struct StepVariant {
    const char* name;
    bool quantized;
    bool force_scalar;
  };
  static const std::vector<StepVariant>* variants =
      new std::vector<StepVariant>{
          {"double_scalar", false, true},
          {"double_vector", false, false},
          {"quantized_scalar", true, true},
          {"quantized_simd", true, false},
      };
  for (const int levels : {5, 32, 64}) {
    for (const StepVariant& variant : *variants) {
      benchmark::RegisterBenchmark(
          ("BM_ServeQuantized/step/levels:" + std::to_string(levels) + "/" +
           variant.name)
              .c_str(),
          [levels, &variant](benchmark::State& state) {
            ServeQuantizedStepBench(state, levels, variant.quantized,
                                    variant.force_scalar);
          });
    }
  }
  for (const bool quantized : {false, true}) {
    benchmark::RegisterBenchmark(
        (std::string("BM_ServeQuantized/observe/") +
         (quantized ? "quantized" : "double"))
            .c_str(),
        [quantized](benchmark::State& state) {
          ServeQuantizedObserveBench(state, quantized);
        });
  }
}

}  // namespace
}  // namespace serve
}  // namespace upskill

int main(int argc, char** argv) {
  upskill::serve::RegisterQuantizedBenches();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  // Registry dump alongside the benchmark JSON when
  // UPSKILL_BENCH_METRICS_OUT is set (scripts/bench.sh --metrics).
  upskill::bench::MaybeWriteMetricsDump();
  benchmark::Shutdown();
  return 0;
}
