// Out-of-core store benchmarks (google-benchmark): pack throughput, the
// verified/unverified open split, zero-copy mapped scans against the
// in-RAM baseline, ingest-log append rates across batch sizes, the
// incremental online-EM refresh against full replay, and the headline
// BM_OutOfCoreScan — a sequential sweep over a store deliberately built
// larger than the configured RAM budget (UPSKILL_STORE_BUDGET_MB,
// default 64), which is what `scripts/bench.sh <pr> store` records into
// BENCH_PR8.json.

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/online_trainer.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "datagen/synthetic.h"
#include "store/compact.h"
#include "store/ingest_log.h"
#include "store/store_reader.h"
#include "store/store_writer.h"

namespace upskill {
namespace store {
namespace {

std::string TempPath(const std::string& stem) {
  return "/tmp/upskill_bench_store_" + std::to_string(::getpid()) + "_" +
         stem;
}

// Shared mid-sized dataset: enough actions that pack/scan rates are
// meaningful, small enough that the fixture builds in well under a second.
const Dataset& BenchDataset() {
  static const Dataset* dataset = [] {
    datagen::SyntheticConfig config;
    config.num_users = bench::Scaled(2000);
    config.num_items = 500;
    config.mean_sequence_length = 50.0;
    config.seed = 20260808;
    auto data = datagen::GenerateSynthetic(config);
    return new Dataset(std::move(data).value().dataset);
  }();
  return *dataset;
}

// The same dataset packed once, for the open/scan benches.
const std::string& BenchStorePath() {
  static const std::string* path = [] {
    auto* p = new std::string(TempPath("base.store"));
    auto status = PackDataset(BenchDataset(), *p);
    if (!status.ok()) {
      std::fprintf(stderr, "pack failed: %s\n", status.ToString().c_str());
      std::abort();
    }
    return p;
  }();
  return *path;
}

void BM_PackDataset(benchmark::State& state) {
  const Dataset& dataset = BenchDataset();
  const std::string path = TempPath("pack.store");
  for (auto _ : state) {
    auto status = PackDataset(dataset, path);
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
  }
  state.counters["actions_per_second"] = benchmark::Counter(
      static_cast<double>(dataset.num_actions() * state.iterations()),
      benchmark::Counter::kIsRate);
  std::filesystem::remove(path);
}
BENCHMARK(BM_PackDataset)->Unit(benchmark::kMillisecond);

void StoreOpenBench(benchmark::State& state, bool verify) {
  StoreReader::Options options;
  options.verify_checksums = verify;
  for (auto _ : state) {
    auto reader = StoreReader::Open(BenchStorePath(), options);
    if (!reader.ok()) state.SkipWithError(reader.status().ToString().c_str());
    benchmark::DoNotOptimize(reader.value().header());
  }
}
void BM_StoreOpenVerified(benchmark::State& state) {
  StoreOpenBench(state, true);
}
void BM_StoreOpenUnverified(benchmark::State& state) {
  StoreOpenBench(state, false);
}
BENCHMARK(BM_StoreOpenVerified)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_StoreOpenUnverified)->Unit(benchmark::kMicrosecond);

// Full sweep over every action — the access pattern of a training epoch's
// count pass — on the owned dataset vs the zero-copy mapping.
int64_t SweepActions(const Dataset& dataset) {
  int64_t sum = 0;
  dataset.ForEachAction(
      [&sum](UserId, const Action& a) { sum += a.time + a.item; });
  return sum;
}

void BM_ScanActionsInRam(benchmark::State& state) {
  const Dataset& dataset = BenchDataset();
  for (auto _ : state) benchmark::DoNotOptimize(SweepActions(dataset));
  state.counters["actions_per_second"] = benchmark::Counter(
      static_cast<double>(dataset.num_actions() * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ScanActionsInRam)->Unit(benchmark::kMicrosecond);

void BM_ScanActionsMapped(benchmark::State& state) {
  auto reader = StoreReader::Open(BenchStorePath());
  auto mapped = reader.value().MapDataset();
  if (!mapped.ok()) {
    state.SkipWithError(mapped.status().ToString().c_str());
    return;
  }
  for (auto _ : state) benchmark::DoNotOptimize(SweepActions(mapped.value()));
  state.counters["actions_per_second"] = benchmark::Counter(
      static_cast<double>(mapped.value().num_actions() * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ScanActionsMapped)->Unit(benchmark::kMicrosecond);

void BM_IngestAppend(benchmark::State& state) {
  const std::string path = TempPath("append.ingest");
  std::filesystem::remove(path);
  IngestLogOptions options;
  options.batch_records = static_cast<size_t>(state.range(0));
  auto writer = IngestLogWriter::Open(path, options);
  if (!writer.ok()) {
    state.SkipWithError(writer.status().ToString().c_str());
    return;
  }
  const IngestRecord record{"bench-user-000017", 1722470400, 42};
  int64_t appended = 0;
  for (auto _ : state) {
    auto status = writer.value()->Append(record);
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
    ++appended;
  }
  state.counters["records_per_second"] = benchmark::Counter(
      static_cast<double>(appended), benchmark::Counter::kIsRate);
  writer.value().reset();
  std::filesystem::remove(path);
}
BENCHMARK(BM_IngestAppend)->Arg(1)->Arg(64)->Arg(512);

// One incremental Refresh with a fixed number of dirty users, alternating
// between the base dataset and a grown twin so every iteration performs
// real work from a valid previous state. The full-replay counterpart is
// the cost the increment avoids.
constexpr int kDirtyUsers = 16;

Dataset GrownTwin(const Dataset& base) {
  Dataset out(base.items());
  for (UserId u = 0; u < base.num_users(); ++u) {
    out.AddUser(base.user_name(u));
    for (const Action& a : base.sequence(u)) {
      (void)out.AddAction(u, a.time, a.item, a.rating);
    }
  }
  for (UserId u = 0; u < kDirtyUsers; ++u) {
    const auto seq = base.sequence(u);
    const int64_t start = seq.empty() ? 0 : seq.back().time + 1;
    for (int k = 0; k < 8; ++k) {
      (void)out.AddAction(u, start + k,
                          (u * 13 + k) % base.items().num_items());
    }
  }
  return out;
}

void BM_OnlineRefresh(benchmark::State& state) {
  const Dataset& base = BenchDataset();
  const Dataset grown = GrownTwin(base);
  SkillModelConfig config = bench::DefaultTrainConfig(5);
  OnlineTrainer online(config);
  auto trained = online.TrainFullReplay(base);
  if (!trained.ok()) {
    state.SkipWithError(trained.status().ToString().c_str());
    return;
  }
  bool on_base = true;
  for (auto _ : state) {
    const Dataset& previous = on_base ? base : grown;
    const Dataset& current = on_base ? grown : base;
    auto stats = online.Refresh(previous, current);
    if (!stats.ok()) state.SkipWithError(stats.status().ToString().c_str());
    on_base = !on_base;
  }
  state.counters["dirty_users"] = kDirtyUsers;
  state.counters["total_users"] = static_cast<double>(base.num_users());
}
BENCHMARK(BM_OnlineRefresh)->Unit(benchmark::kMillisecond);

void BM_OnlineFullReplay(benchmark::State& state) {
  const Dataset& base = BenchDataset();
  SkillModelConfig config = bench::DefaultTrainConfig(5);
  for (auto _ : state) {
    OnlineTrainer online(config);
    auto trained = online.TrainFullReplay(base);
    if (!trained.ok()) state.SkipWithError(trained.status().ToString().c_str());
  }
  state.counters["total_users"] = static_cast<double>(base.num_users());
}
BENCHMARK(BM_OnlineFullReplay)->Unit(benchmark::kMillisecond);

// --- The out-of-core headline: a store larger than the RAM budget. ---
//
// The store is built by streaming synthetic actions straight through
// StoreWriter — no in-RAM dataset ever exists — until the file exceeds
// twice UPSKILL_STORE_BUDGET_MB (default 64). The scan then runs over the
// mapping; the page cache, not the process, decides what is resident.

uint64_t RamBudgetBytes() {
  const char* env = std::getenv("UPSKILL_STORE_BUDGET_MB");
  const long mb = env != nullptr ? std::atol(env) : 64;
  return static_cast<uint64_t>(mb > 0 ? mb : 64) * (1ull << 20);
}

const std::string& BigStorePath() {
  static const std::string* path = [] {
    auto* p = new std::string(TempPath("big.store"));
    const uint64_t target_bytes = 2 * RamBudgetBytes();
    const uint64_t target_actions = target_bytes / sizeof(Action);
    const uint64_t actions_per_user = 1000;

    auto writer = StoreWriter::Create(*p);
    if (!writer.ok()) std::abort();
    uint64_t written = 0;
    uint64_t seed = 0x9e3779b97f4a7c15ull;
    const int num_items = BenchDataset().items().num_items();
    while (written < target_actions) {
      (void)writer.value()->BeginUser(
          "big-" + std::to_string(written / actions_per_user));
      for (uint64_t k = 0; k < actions_per_user; ++k) {
        seed = seed * 6364136223846793005ull + 1442695040888963407ull;
        const ItemId item =
            static_cast<ItemId>((seed >> 33) % static_cast<uint64_t>(num_items));
        (void)writer.value()->Append(static_cast<int64_t>(k), item);
      }
      written += actions_per_user;
    }
    if (!writer.value()->Finish(BenchDataset().items()).ok()) std::abort();
    return p;
  }();
  return *path;
}

void BM_OutOfCoreScan(benchmark::State& state) {
  const std::string& path = BigStorePath();
  const uint64_t store_bytes = std::filesystem::file_size(path);
  if (store_bytes <= RamBudgetBytes()) {
    state.SkipWithError("store did not exceed the RAM budget");
    return;
  }
  // Unverified open: the verified pass would itself read the whole file
  // and pre-warm the cache, hiding the out-of-core cost being measured.
  StoreReader::Options options;
  options.verify_checksums = false;
  auto reader = StoreReader::Open(path, options);
  if (!reader.ok()) {
    state.SkipWithError(reader.status().ToString().c_str());
    return;
  }
  auto mapped = reader.value().MapDataset();
  if (!mapped.ok()) {
    state.SkipWithError(mapped.status().ToString().c_str());
    return;
  }
  for (auto _ : state) benchmark::DoNotOptimize(SweepActions(mapped.value()));
  state.counters["store_bytes"] = static_cast<double>(store_bytes);
  state.counters["ram_budget_bytes"] = static_cast<double>(RamBudgetBytes());
  state.counters["bytes_per_second"] = benchmark::Counter(
      static_cast<double>(store_bytes * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_OutOfCoreScan)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace store
}  // namespace upskill

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  upskill::bench::MaybeWriteMetricsDump();
  benchmark::Shutdown();
  // Fixture files are keyed by pid; sweep them so repeated bench runs
  // don't accumulate multi-hundred-MB stores in /tmp.
  for (const auto& entry : std::filesystem::directory_iterator("/tmp")) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("upskill_bench_store_" + std::to_string(::getpid()), 0) ==
        0) {
      std::error_code ec;
      std::filesystem::remove(entry.path(), ec);
    }
  }
  return 0;
}
