// Regenerates Table X: item prediction at a random held-out position per
// user (missing-data recovery).

#include "bench/prediction_lib.h"

int main() {
  return upskill::bench::RunItemPrediction(
      upskill::HoldoutPosition::kRandom,
      "Table X (item prediction, random positions)");
}
