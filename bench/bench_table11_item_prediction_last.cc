// Regenerates Table XI: item prediction at the last position of each
// sequence (future forecasting).

#include "bench/prediction_lib.h"

int main() {
  return upskill::bench::RunItemPrediction(
      upskill::HoldoutPosition::kLast,
      "Table XI (item prediction, last positions)");
}
