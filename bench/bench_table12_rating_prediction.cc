// Regenerates Table XII: rating prediction RMSE on the beer domain with a
// field-aware factorization machine, comparing feature sets U+I (biased-MF
// baseline), U+I+S (plus skill level), U+I+D (plus difficulty bucket) and
// U+I+S+D, at both random and last holdout positions.

#include <cstdio>

#include "bench/common.h"
#include "core/difficulty.h"
#include "core/trainer.h"
#include "eval/significance.h"
#include "eval/tasks.h"

namespace upskill {
namespace bench {
namespace {

struct Column {
  const char* name;
  bool skill;
  bool difficulty;
};

constexpr Column kColumns[] = {
    {"U+I [31]", false, false},
    {"U+I+S", true, false},
    {"U+I+D", false, true},
    {"U+I+S+D", true, true},
};

int RunPosition(const Dataset& dataset, HoldoutPosition position,
                const char* label) {
  Rng split_rng(99);
  auto split = MakeHoldoutSplit(dataset, position, split_rng);
  if (!split.ok()) return 1;
  const Dataset& train = split.value().train;

  Trainer trainer(DefaultTrainConfig(/*num_levels=*/5));
  const auto trained = trainer.Train(train);
  if (!trained.ok()) return 1;

  const auto difficulty = EstimateDifficultyByGeneration(
      train.items(), trained.value().model, DifficultyPrior::kEmpirical,
      trained.value().assignments);
  if (!difficulty.ok()) return 1;

  std::printf("%-8s", label);
  std::vector<double> baseline_se;
  std::vector<double> full_se;
  for (const Column& column : kColumns) {
    eval::RatingTaskOptions options;
    options.features.include_skill = column.skill;
    options.features.include_difficulty = column.difficulty;
    options.ffm.epochs = 15;
    options.ffm.regularization = 1e-4;
    options.features.difficulty_buckets = 5;
    Rng rng(7);
    const auto report = eval::EvaluateRatingPrediction(
        train, trained.value().assignments, trained.value().model,
        difficulty.value(), split.value().test, options, rng);
    if (!report.ok()) {
      std::printf("  %s", report.status().ToString().c_str());
      continue;
    }
    std::printf(" %9.3f", report.value().rmse);
    if (!column.skill && !column.difficulty) {
      baseline_se = report.value().squared_errors;
    }
    if (column.skill && column.difficulty) {
      full_se = report.value().squared_errors;
    }
  }
  std::printf("\n");
  const auto test = eval::WilcoxonSignedRank(full_se, baseline_se);
  if (test.ok()) {
    std::printf("%-8s Wilcoxon(SE) U+I+S+D vs U+I: z=%.2f p=%s\n", "",
                test.value().z,
                test.value().p_value <= 0.05 ? "<=0.05" : "n.s.");
  }
  return 0;
}

int Run() {
  PrintHeader("Rating prediction on Beer (FFM)",
              "Table XII (rating prediction RMSE)");

  auto data = datagen::GenerateBeer(BeerConfigScaled());
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }

  std::printf("%-8s %9s %9s %9s %9s\n", "Position", "U+I", "U+I+S", "U+I+D",
              "U+I+S+D");
  if (RunPosition(data.value().dataset, HoldoutPosition::kRandom, "Random") !=
      0) {
    return 1;
  }
  if (RunPosition(data.value().dataset, HoldoutPosition::kLast, "Last") != 0) {
    return 1;
  }

  std::printf(
      "\nPaper (Table XII): Random 0.572 / 0.569 / 0.569 / 0.568; Last\n"
      "0.571 / 0.562 / 0.568 / 0.561. Expect small but consistent gains\n"
      "from adding S and D, largest for U+I+S+D at the last position.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace upskill

int main() { return upskill::bench::Run(); }
