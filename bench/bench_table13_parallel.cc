// Regenerates Table XIII: skill-model training time under the paper's
// five parallelization conditions (none / users / features / levels /
// all), for both the ID baseline and the Multi-faceted model, using 5
// threads as in the paper. Feature-parallelism is N/A for the ID model
// (one feature), exactly as in the paper's table.
//
// NOTE: wall-clock speedups require physical cores; on a single-core
// container the code paths still run and correctness is asserted by the
// test suite, but times will not improve (see EXPERIMENTS.md).

#include <cstdio>

#include "baselines/uniform_model.h"
#include "bench/common.h"
#include "common/stopwatch.h"
#include "core/trainer.h"

namespace upskill {
namespace bench {
namespace {

struct Condition {
  const char* label;
  bool users;
  bool features;
  bool levels;
};

constexpr Condition kConditions[] = {
    {"none           ", false, false, false},
    {"users          ", true, false, false},
    {"features       ", false, true, false},
    {"levels         ", false, false, true},
    {"users+feat+lvl ", true, true, true},
};

struct PhaseSplit {
  double total = -1.0;
  double assignment = 0.0;
  double cache = 0.0;
  double update = 0.0;
  size_t skipped_users = 0;
  size_t reassigned_users = 0;
};

PhaseSplit TrainOnce(const Dataset& dataset, const Condition& condition,
                     int num_threads) {
  SkillModelConfig config = DefaultTrainConfig(/*num_levels=*/5);
  config.max_iterations = 40;  // fixed work per condition
  config.relative_tolerance = 0.0;
  config.parallel.num_threads = num_threads;
  config.parallel.users = condition.users;
  config.parallel.features = condition.features;
  config.parallel.levels = condition.levels;
  Trainer trainer(config);
  Stopwatch watch;
  const auto result = trainer.Train(dataset);
  PhaseSplit split;
  if (!result.ok()) return split;
  split.total = watch.ElapsedSeconds();
  split.assignment = result.value().assignment_seconds;
  split.cache = result.value().cache_seconds;
  split.update = result.value().update_seconds;
  split.skipped_users = result.value().skipped_users;
  split.reassigned_users = result.value().reassigned_users;
  return split;
}

int Run() {
  PrintHeader("Training time under parallelization conditions (Film)",
              "Table XIII (running time with 5 threads)");

  datagen::FilmConfig film_config = FilmConfigScaled();
  film_config.num_users *= 4;  // efficiency needs a non-trivial workload
  auto data = datagen::GenerateFilm(film_config);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const Dataset& multi_dataset = data.value().dataset;
  const auto id_dataset = ProjectToIdOnly(multi_dataset);
  if (!id_dataset.ok()) return 1;

  std::printf("dataset: %d users, %d items, %zu actions; threads = 5\n\n",
              multi_dataset.num_users(), multi_dataset.items().num_items(),
              multi_dataset.num_actions());
  std::printf("%-18s %14s %14s   %s   %s\n", "Parallelized", "ID [6] (s)",
              "Multi-faceted (s)", "Multi split: assign/cache/update (s)",
              "skipped/reassigned");
  for (const Condition& condition : kConditions) {
    PhaseSplit id_split;
    if (!condition.features || condition.users || condition.levels) {
      // The ID model has a single feature: feature-only parallelism is
      // N/A (paper marks it N/A as well).
      Condition id_condition = condition;
      id_condition.features = false;
      if (!(condition.features && !condition.users && !condition.levels)) {
        id_split = TrainOnce(id_dataset.value(), id_condition, 5);
      }
    }
    const PhaseSplit multi = TrainOnce(multi_dataset, condition, 5);
    if (id_split.total < 0.0) {
      std::printf("%-18s %14s %14.2f   %.2f / %.2f / %.2f   %zu / %zu\n",
                  condition.label, "N/A", multi.total, multi.assignment,
                  multi.cache, multi.update, multi.skipped_users,
                  multi.reassigned_users);
    } else {
      std::printf("%-18s %14.2f %14.2f   %.2f / %.2f / %.2f   %zu / %zu\n",
                  condition.label, id_split.total, multi.total,
                  multi.assignment, multi.cache, multi.update,
                  multi.skipped_users, multi.reassigned_users);
    }
  }

  std::printf(
      "\nPaper (Table XIII, hours on their testbed): sequential ID 0.944 /\n"
      "Multi 9.557; user-parallel is the largest single win (0.425 /\n"
      "4.272); all three combined reach 0.374 / 2.814. Expected shape:\n"
      "Multi-faceted costs a constant factor more than ID, user-\n"
      "parallelism helps most, feature-parallelism applies only to Multi.\n"
      "On a single-core host the parallel rows exercise the same code but\n"
      "cannot run faster than 'none'.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace upskill

int main() { return upskill::bench::Run(); }
