// Regenerates Table I: dataset statistics after filtering, for the five
// datasets (four simulated real-domain stand-ins plus the paper-exact
// synthetic generator). The paper's filtering rules are applied where the
// paper applied them: Beer and Film get the 50-unique-items-per-user /
// 50-unique-users-per-item activity filter; Language, Cooking and
// Synthetic are left unfiltered (Section VI-B).

#include <cstdio>

#include "bench/common.h"
#include "data/filter.h"
#include "data/statistics.h"
#include "datagen/types.h"

namespace upskill {
namespace bench {
namespace {

void PrintRow(const std::string& name, const Dataset& dataset,
              const char* paper_row) {
  const DatasetStats stats = ComputeDatasetStats(dataset);
  std::printf("%s   | paper: %s\n", FormatStatsRow(name, stats).c_str(),
              paper_row);
}

int Run() {
  PrintHeader("Dataset statistics after filtering",
              "Table I (dataset statistics)");
  std::printf("%-12s %10s %10s %12s\n", "Dataset", "#Users", "#Items",
              "#Actions");

  {
    auto data = datagen::GenerateLanguage(LanguageConfigScaled());
    if (!data.ok()) return 1;
    PrintRow("Language", data.value().dataset, "51,644 / 248,009 / 248,009");
  }
  {
    auto data = datagen::GenerateCooking(CookingConfigScaled());
    if (!data.ok()) return 1;
    PrintRow("Cooking", data.value().dataset, "6,012 / 37,092 / 115,337");
  }
  {
    auto data = datagen::GenerateBeer(BeerConfigScaled());
    if (!data.ok()) return 1;
    auto filtered = FilterByActivity(data.value().dataset, 50, 50);
    if (!filtered.ok()) return 1;
    PrintRow("Beer", filtered.value().dataset, "4,540 / 8,953 / 1,986,231");
  }
  {
    auto data = datagen::GenerateFilm(FilmConfigScaled());
    if (!data.ok()) return 1;
    auto filtered = FilterByActivity(data.value().dataset, 50, 50);
    if (!filtered.ok()) return 1;
    PrintRow("Film", filtered.value().dataset, "85,095 / 4,589 / 8,508,819");
  }
  {
    auto data = datagen::GenerateSynthetic(SyntheticSparseConfig());
    if (!data.ok()) return 1;
    PrintRow("Synthetic", data.value().dataset, "10,000 / 50,000 / 500,491");
  }

  std::printf(
      "\nNote: simulated stand-ins run at UPSKILL_BENCH_SCALE=%.2f of the\n"
      "paper's proprietary dataset sizes; the filter thresholds (50/50) are\n"
      "the paper's. Shapes to compare: Beer sequences are the longest,\n"
      "Language items are single-use (items == actions), Film has the\n"
      "fewest items relative to actions.\n",
      ScaleFactor());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace upskill

int main() { return upskill::bench::Run(); }
