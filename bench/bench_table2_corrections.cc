// Regenerates Table II: the correction rules dominated by unskilled and
// skilled language learners, scored as P_f(x | theta(S)) - P_f(x |
// theta(1)). The paper finds capitalization/punctuation rules at the
// bottom and article/bracket rules at the top.

#include <cstdio>

#include "bench/common.h"
#include "core/dominance.h"
#include "core/trainer.h"

namespace upskill {
namespace bench {
namespace {

int Run() {
  PrintHeader("Correction-rule dominance in the language domain",
              "Table II (top-10 corrections by skill dominance)");

  auto data = datagen::GenerateLanguage(LanguageConfigScaled());
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  Trainer trainer(DefaultTrainConfig(/*num_levels=*/3));
  const auto trained = trainer.Train(data.value().dataset);
  if (!trained.ok()) {
    std::fprintf(stderr, "%s\n", trained.status().ToString().c_str());
    return 1;
  }
  const int feature =
      data.value().dataset.schema().FeatureIndex("correction_rule").value();

  const auto print_side = [&](bool skilled, const char* title) {
    std::printf("\n%s\n%-24s %10s\n", title, "Rule", "Score");
    const auto top =
        TopDominantCategories(trained.value().model, feature, 10, skilled);
    if (!top.ok()) return;
    for (const DominanceEntry& entry : top.value()) {
      std::printf("%-24s %10.4f\n", entry.label.c_str(), entry.score);
    }
  };
  print_side(false, "(a) Dominated by the lowest skill level");
  print_side(true, "(b) Dominated by the highest skill level");

  std::printf(
      "\nPaper (Table II): unskilled side led by capitalization and basic\n"
      "punctuation (\"i -> I\", \"eps -> I\", \"english -> English\", ...);\n"
      "skilled side led by article and bracket insertions (\"eps -> the\",\n"
      "\"eps -> (\", \"a -> the\", ...). Expect the same split.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace upskill

int main() { return upskill::bench::Run(); }
