// Regenerates Table III: beer styles dominated by unskilled and skilled
// users. The paper finds lagers at the unskilled end (Pale Lager first)
// and strong/hoppy styles at the skilled end (Imperial/Double IPA first).

#include <cstdio>

#include "bench/common.h"
#include "core/dominance.h"
#include "core/trainer.h"

namespace upskill {
namespace bench {
namespace {

int Run() {
  PrintHeader("Beer-style dominance",
              "Table III (top-10 styles by skill dominance)");

  auto data = datagen::GenerateBeer(BeerConfigScaled());
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  Trainer trainer(DefaultTrainConfig(/*num_levels=*/5));
  const auto trained = trainer.Train(data.value().dataset);
  if (!trained.ok()) {
    std::fprintf(stderr, "%s\n", trained.status().ToString().c_str());
    return 1;
  }
  const int feature =
      data.value().dataset.schema().FeatureIndex("style").value();

  const auto print_side = [&](bool skilled, const char* title) {
    std::printf("\n%s\n%-26s %10s\n", title, "Style", "Score");
    const auto top =
        TopDominantCategories(trained.value().model, feature, 10, skilled);
    if (!top.ok()) return;
    for (const DominanceEntry& entry : top.value()) {
      std::printf("%-26s %10.4f\n", entry.label.c_str(), entry.score);
    }
  };
  print_side(false, "(a) Users with lowest skill level");
  print_side(true, "(b) Users with highest skill level");

  std::printf(
      "\nPaper (Table III): unskilled list led by Pale Lager (-0.123) and\n"
      "other lagers; skilled list led by Imperial/Double IPA (0.056),\n"
      "Imperial Stout, Sour/Wild Ale. Expect lagers below, imperial and\n"
      "sour styles above.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace upskill

int main() { return upskill::bench::Run(); }
