// Regenerates Tables IV and V: the film-domain lastness effect. Without
// preprocessing, the progression model mistakes release-recency drift for
// skill (Table IV: lowest level = older releases, highest = the newest).
// After removing movies released after the first action (Section VI-C),
// the recovered levels reflect taste instead: blockbusters at the bottom,
// classics at the top (Table V).

#include <cstdio>

#include "bench/common.h"
#include "core/dominance.h"
#include "core/trainer.h"
#include "data/filter.h"

namespace upskill {
namespace bench {
namespace {

// Prints the top-10 movies by ID-feature probability for the lowest and
// highest levels, with release years, plus the mean release year per
// level for the drift diagnosis.
int AnalyzeAndPrint(const Dataset& dataset, const char* title) {
  Trainer trainer(DefaultTrainConfig(/*num_levels=*/5));
  const auto trained = trainer.Train(dataset);
  if (!trained.ok()) {
    std::fprintf(stderr, "%s\n", trained.status().ToString().c_str());
    return 1;
  }
  const auto release =
      dataset.items().Metadata(datagen::kFilmReleaseTimeKey);
  if (!release.ok()) return 1;
  const int id_feature = dataset.schema().id_feature();

  std::printf("\n%s\n", title);
  for (int level : {1, 5}) {
    std::printf("  Top 10 movies at %s skill level:\n",
                level == 1 ? "lowest" : "highest");
    const auto top =
        TopFrequentCategories(trained.value().model, id_feature, level, 10);
    if (!top.ok()) return 1;
    double year_sum = 0.0;
    for (const DominanceEntry& entry : top.value()) {
      const double year =
          release.value()[static_cast<size_t>(entry.category)] / 365.25;
      year_sum += year;
      std::printf("    %-50s %6.0f\n",
                  dataset.items().name(entry.category).c_str(), year);
    }
    std::printf("  mean release year of the list: %.1f\n",
                year_sum / static_cast<double>(top.value().size()));
  }
  return 0;
}

int Run() {
  PrintHeader("Film-domain lastness effect",
              "Tables IV & V (top movies per level, with and without "
              "release-date preprocessing)");

  auto data = datagen::GenerateFilm(FilmConfigScaled());
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }

  if (AnalyzeAndPrint(data.value().dataset,
                      "=== Table IV: WITHOUT preprocessing (lastness "
                      "confounds skill) ===") != 0) {
    return 1;
  }

  const auto filtered =
      FilterOldItems(data.value().dataset, datagen::kFilmReleaseTimeKey);
  if (!filtered.ok()) {
    std::fprintf(stderr, "%s\n", filtered.status().ToString().c_str());
    return 1;
  }
  std::printf("\npreprocessing removed %d of %d movies (released after the "
              "first action)\n",
              data.value().dataset.items().num_items() -
                  filtered.value().dataset.items().num_items(),
              data.value().dataset.items().num_items());
  if (AnalyzeAndPrint(filtered.value().dataset,
                      "=== Table V: WITH preprocessing (taste signal "
                      "dominates) ===") != 0) {
    return 1;
  }

  std::printf(
      "\nPaper: without preprocessing the highest level is dominated by\n"
      "the newest releases (The Dark Knight, Iron Man, Avatar, ...). With\n"
      "preprocessing, the lowest level lists blockbusters (Pulp Fiction,\n"
      "Star Wars, Jurassic Park) and the highest level lists classics\n"
      "(Rear Window, Casablanca, Citizen Kane). Expect the same pattern:\n"
      "a large year gap between levels before preprocessing, and a\n"
      "blockbuster/classic split after.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace upskill

int main() { return upskill::bench::Run(); }
