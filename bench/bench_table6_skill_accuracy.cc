// Regenerates Table VI: skill-assignment accuracy on the sparse Synthetic
// dataset (50k-item shape), comparing Uniform / ID / ID+feature ablations /
// Multi-faceted.

#include "bench/accuracy_lib.h"
#include "bench/common.h"

int main() {
  return upskill::bench::RunSkillAccuracy(
      upskill::bench::SyntheticSparseConfig(), "Synthetic (sparse)",
      "Table VI (skill accuracy, sparse synthetic data)");
}
