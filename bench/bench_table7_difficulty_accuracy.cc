// Regenerates Table VII: item-difficulty accuracy on the sparse Synthetic
// dataset, over the skill-model x difficulty-estimator grid, including the
// rare-item robustness analysis.

#include "bench/accuracy_lib.h"
#include "bench/common.h"

int main() {
  return upskill::bench::RunDifficultyAccuracy(
      upskill::bench::SyntheticSparseConfig(), "Synthetic (sparse)",
      "Table VII (difficulty accuracy, sparse synthetic data)");
}
