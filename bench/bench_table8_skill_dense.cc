// Regenerates Table VIII: skill-assignment accuracy on Synthetic_dense
// (one fifth the items of Synthetic), probing the data-sparsity claim.

#include "bench/accuracy_lib.h"
#include "bench/common.h"

int main() {
  return upskill::bench::RunSkillAccuracy(
      upskill::bench::SyntheticDenseConfig(), "Synthetic_dense",
      "Table VIII (skill accuracy, dense synthetic data)");
}
