// Regenerates Table IX: item-difficulty accuracy on Synthetic_dense.

#include "bench/accuracy_lib.h"
#include "bench/common.h"

int main() {
  return upskill::bench::RunDifficultyAccuracy(
      upskill::bench::SyntheticDenseConfig(), "Synthetic_dense",
      "Table IX (difficulty accuracy, dense synthetic data)");
}
