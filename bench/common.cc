#include "bench/common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/exposition.h"
#include "obs/metrics.h"

namespace upskill {
namespace bench {

double ScaleFactor() {
  const char* env = std::getenv("UPSKILL_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double value = std::atof(env);
  return value > 0.0 ? value : 1.0;
}

int Scaled(int base, int minimum) {
  const double scaled = static_cast<double>(base) * ScaleFactor();
  return std::max(minimum, static_cast<int>(scaled));
}

datagen::SyntheticConfig SyntheticSparseConfig() {
  datagen::SyntheticConfig config;
  // Paper scale: 10,000 users / 50,000 items / ~500k actions. The default
  // scale keeps the actions-per-item ratio (~10) that makes this the
  // *sparse* variant.
  config.num_users = Scaled(2000);
  config.num_items = Scaled(10000, 5) / 5 * 5;  // multiple of num_levels
  config.mean_sequence_length = 50.0;
  config.seed = 20200407;
  return config;
}

datagen::SyntheticConfig SyntheticDenseConfig() {
  datagen::SyntheticConfig config = SyntheticSparseConfig();
  // Paper: same users/actions, one fifth the items (each item selected
  // ~5x more often).
  config.num_items = std::max(5, config.num_items / 5) / 5 * 5;
  config.seed = 20200408;
  return config;
}

datagen::LanguageConfig LanguageConfigScaled() {
  datagen::LanguageConfig config;
  config.num_users = Scaled(4000);
  return config;
}

datagen::CookingConfig CookingConfigScaled() {
  datagen::CookingConfig config;
  config.num_users = Scaled(1500);
  config.num_recipes = Scaled(8000, 100);
  return config;
}

datagen::BeerConfig BeerConfigScaled() {
  datagen::BeerConfig config;
  config.num_users = Scaled(600);
  config.num_beers = Scaled(2000, 100);
  return config;
}

datagen::FilmConfig FilmConfigScaled() {
  datagen::FilmConfig config;
  config.num_users = Scaled(1200);
  config.num_filler_movies = Scaled(1400, 100);
  return config;
}

SkillModelConfig DefaultTrainConfig(int num_levels) {
  SkillModelConfig config;
  config.num_levels = num_levels;
  config.smoothing = 0.01;          // paper Section IV-B
  config.min_init_actions = 50;     // paper Section IV-B
  config.max_iterations = 50;
  return config;
}

void PrintHeader(const std::string& experiment,
                 const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Scale factor: %.2f (set UPSKILL_BENCH_SCALE to change)\n",
              ScaleFactor());
  std::printf("================================================================\n");
}

void PrintCorrelationRow(const std::string& name,
                         const eval::CorrelationReport& report) {
  std::printf("%-28s %8.3f %8.3f %8.3f %8.3f\n", name.c_str(), report.pearson,
              report.spearman, report.kendall, report.rmse);
}

std::vector<double> FlattenLevels(const SkillAssignments& assignments) {
  std::vector<double> flat;
  for (const auto& seq : assignments) {
    for (int level : seq) flat.push_back(static_cast<double>(level));
  }
  return flat;
}

void MaybeWriteMetricsDump() {
  const char* path = std::getenv("UPSKILL_BENCH_METRICS_OUT");
  if (path == nullptr || *path == '\0') return;
  const std::string text =
      obs::RenderPrometheus(obs::MetricsRegistry::Global());
  std::FILE* file = std::fopen(path, "wb");
  if (file == nullptr) {
    std::fprintf(stderr, "bench: cannot open %s for metrics dump\n", path);
    return;
  }
  std::fwrite(text.data(), 1, text.size(), file);
  std::fclose(file);
  std::fprintf(stderr, "bench: metrics -> %s\n", path);
}

}  // namespace bench
}  // namespace upskill
