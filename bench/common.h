#ifndef UPSKILL_BENCH_COMMON_H_
#define UPSKILL_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "core/skill_model.h"
#include "datagen/beer.h"
#include "datagen/cooking.h"
#include "datagen/film.h"
#include "datagen/language.h"
#include "datagen/synthetic.h"
#include "eval/metrics.h"

namespace upskill {
namespace bench {

/// Global size multiplier read from the UPSKILL_BENCH_SCALE environment
/// variable (default 1.0). It scales the number of users in every
/// generated dataset, so `UPSKILL_BENCH_SCALE=5 ./bench_table6_...`
/// approaches the paper's full dataset sizes while the default stays
/// laptop-friendly.
double ScaleFactor();

/// Applies the scale factor with a floor of `minimum`.
int Scaled(int base, int minimum = 1);

/// Scaled dataset configurations shared across bench binaries (defaults
/// documented in DESIGN.md; all derive from the paper's Table I shapes).
datagen::SyntheticConfig SyntheticSparseConfig();   // "Synthetic"
datagen::SyntheticConfig SyntheticDenseConfig();    // "Synthetic_dense"
datagen::LanguageConfig LanguageConfigScaled();
datagen::CookingConfig CookingConfigScaled();
datagen::BeerConfig BeerConfigScaled();
datagen::FilmConfig FilmConfigScaled();

/// Standard training configuration used by the accuracy benches.
SkillModelConfig DefaultTrainConfig(int num_levels);

/// Prints a banner naming the experiment and the paper artifact it
/// regenerates.
void PrintHeader(const std::string& experiment, const std::string& paper_ref);

/// Prints one "model-name  r  rho  tau  rmse" row.
void PrintCorrelationRow(const std::string& name,
                         const eval::CorrelationReport& report);

/// Flattens per-user per-action levels into one vector aligned with
/// ForEachAction order.
std::vector<double> FlattenLevels(const SkillAssignments& assignments);

/// If UPSKILL_BENCH_METRICS_OUT names a path, writes the Prometheus
/// exposition of the process metrics registry there (call once, after
/// the benchmarks have run — `scripts/bench.sh --metrics` sets the
/// variable so registry dumps land next to the google-benchmark JSON).
void MaybeWriteMetricsDump();

}  // namespace bench
}  // namespace upskill

#endif  // UPSKILL_BENCH_COMMON_H_
