#include "bench/prediction_lib.h"

#include <cmath>
#include <cstdio>
#include <functional>

#include "baselines/sequence_baselines.h"
#include "baselines/uniform_model.h"
#include "bench/common.h"
#include "core/trainer.h"
#include "eval/ranking.h"
#include "eval/significance.h"
#include "eval/tasks.h"

namespace upskill {
namespace bench {

namespace {

struct DomainResult {
  bool ok = false;
  eval::ItemPredictionReport uniform;
  eval::ItemPredictionReport id;
  eval::ItemPredictionReport multi;
  BaselinePredictionReport sequence_baselines;
  int num_items = 0;
};

DomainResult RunDomain(const Dataset& dataset, HoldoutPosition position,
                       int num_levels) {
  DomainResult result;
  Rng rng(2718);
  auto split = MakeHoldoutSplit(dataset, position, rng);
  if (!split.ok()) return result;
  const Dataset& train = split.value().train;
  const auto& test = split.value().test;
  result.num_items = dataset.items().num_items();

  const SkillModelConfig config = DefaultTrainConfig(num_levels);

  // Uniform baseline.
  {
    const auto baseline = TrainUniformBaseline(train, config);
    if (!baseline.ok()) return result;
    const auto report = eval::EvaluateItemPrediction(
        train, baseline.value().assignments, baseline.value().model, test);
    if (!report.ok()) return result;
    result.uniform = report.value();
  }
  // ID model (Yang et al.).
  {
    const auto projected = ProjectToIdOnly(train);
    if (!projected.ok()) return result;
    Trainer trainer(config);
    const auto trained = trainer.Train(projected.value());
    if (!trained.ok()) return result;
    const auto report = eval::EvaluateItemPrediction(
        projected.value(), trained.value().assignments, trained.value().model,
        test);
    if (!report.ok()) return result;
    result.id = report.value();
  }
  // Multi-faceted.
  {
    Trainer trainer(config);
    const auto trained = trainer.Train(train);
    if (!trained.ok()) return result;
    const auto report = eval::EvaluateItemPrediction(
        train, trained.value().assignments, trained.value().model, test);
    if (!report.ok()) return result;
    result.multi = report.value();
  }
  // Popularity / Markov-chain floor (library extension; the paper's
  // related work positions progression models against this family).
  {
    const auto report = EvaluateSequenceBaselines(train, test);
    if (report.ok()) result.sequence_baselines = report.value();
  }
  result.ok = true;
  return result;
}

void PrintDomain(const char* name, const DomainResult& result) {
  if (!result.ok) {
    std::printf("%-10s FAILED\n", name);
    return;
  }
  std::printf("%-10s %9.3f %7.4f   %9.3f %7.4f   %9.3f %7.4f   | random: "
              "%.4f %.4f\n",
              name, result.uniform.accuracy_at_k,
              result.uniform.mean_reciprocal_rank, result.id.accuracy_at_k,
              result.id.mean_reciprocal_rank, result.multi.accuracy_at_k,
              result.multi.mean_reciprocal_rank,
              eval::RandomGuessAccuracyAtK(result.num_items, 10),
              eval::RandomGuessMeanReciprocalRank(result.num_items));
  const auto test =
      eval::WilcoxonSignedRank(result.multi.reciprocal_ranks,
                               result.id.reciprocal_ranks);
  if (test.ok()) {
    std::printf("%-10s Wilcoxon(RR) Multi vs ID: z=%.2f p=%s", "",
                test.value().z,
                test.value().p_value < 0.01 ? "<0.01" : "n.s.");
  }
  // nDCG@10 (library extension beyond the paper's two measures).
  std::vector<int> multi_ranks;
  for (double rr : result.multi.reciprocal_ranks) {
    multi_ranks.push_back(static_cast<int>(std::lround(1.0 / rr)));
  }
  const auto ndcg = eval::AggregateSingleRelevant(multi_ranks, 10);
  if (ndcg.ok()) {
    std::printf("   Multi nDCG@10 %.4f", ndcg.value().ndcg_at_k);
  }
  std::printf("\n%-10s popularity Acc@10 %.3f RR %.4f | markov Acc@10 "
              "%.3f RR %.4f\n",
              "", result.sequence_baselines.popularity_accuracy_at_k,
              result.sequence_baselines.popularity_mrr,
              result.sequence_baselines.markov_accuracy_at_k,
              result.sequence_baselines.markov_mrr);
}

}  // namespace

int RunItemPrediction(HoldoutPosition position, const char* paper_ref) {
  PrintHeader(position == HoldoutPosition::kRandom
                  ? "Item prediction at random positions"
                  : "Item prediction at last positions",
              paper_ref);
  std::printf("%-10s %9s %7s   %9s %7s   %9s %7s\n", "", "Uniform", "",
              "ID [6]", "", "Multi", "");
  std::printf("%-10s %9s %7s   %9s %7s   %9s %7s\n", "Dataset", "Acc@10",
              "RR", "Acc@10", "RR", "Acc@10", "RR");

  {
    auto data = datagen::GenerateCooking(CookingConfigScaled());
    if (data.ok()) {
      PrintDomain("Cooking", RunDomain(data.value().dataset, position, 5));
    }
  }
  {
    auto data = datagen::GenerateBeer(BeerConfigScaled());
    if (data.ok()) {
      PrintDomain("Beer", RunDomain(data.value().dataset, position, 5));
    }
  }
  {
    auto data = datagen::GenerateFilm(FilmConfigScaled());
    if (data.ok()) {
      PrintDomain("Film", RunDomain(data.value().dataset, position, 5));
    }
  }

  if (position == HoldoutPosition::kRandom) {
    std::printf(
        "\nPaper (Table X, random): Cooking 0.023/0.050/0.073 Acc@10 for\n"
        "Uniform/ID/Multi; Beer 0.019/0.025/0.029; Film 0.095/0.102/0.109.\n"
        "Expect Multi > ID > Uniform everywhere, with the largest margin on\n"
        "the item-rich Cooking domain.\n");
  } else {
    std::printf(
        "\nPaper (Table XI, last): Cooking 0.012/0.043/0.060 Acc@10; Beer\n"
        "0.008/0.015/0.018; Film roughly tied (0.045/0.044/0.047). Expect\n"
        "Multi >= ID > Uniform, with a smaller margin on Film.\n");
  }
  return 0;
}

}  // namespace bench
}  // namespace upskill
