#ifndef UPSKILL_BENCH_PREDICTION_LIB_H_
#define UPSKILL_BENCH_PREDICTION_LIB_H_

#include "data/split.h"

namespace upskill {
namespace bench {

/// Runs the Table X / XI protocol: item prediction at the given holdout
/// position on the Cooking, Beer and Film stand-ins, with Uniform / ID /
/// Multi-faceted models, reporting Acc@10 and mean reciprocal rank plus
/// the random-guess floor and a Wilcoxon test on reciprocal ranks.
int RunItemPrediction(HoldoutPosition position, const char* paper_ref);

}  // namespace bench
}  // namespace upskill

#endif  // UPSKILL_BENCH_PREDICTION_LIB_H_
