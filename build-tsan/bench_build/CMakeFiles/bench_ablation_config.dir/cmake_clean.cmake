file(REMOVE_RECURSE
  "../bench/bench_ablation_config"
  "../bench/bench_ablation_config.pdb"
  "CMakeFiles/bench_ablation_config.dir/bench_ablation_config.cc.o"
  "CMakeFiles/bench_ablation_config.dir/bench_ablation_config.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
