# Empty dependencies file for bench_ablation_config.
# This may be replaced when dependencies are built.
