file(REMOVE_RECURSE
  "../bench/bench_ablation_extensions"
  "../bench/bench_ablation_extensions.pdb"
  "CMakeFiles/bench_ablation_extensions.dir/bench_ablation_extensions.cc.o"
  "CMakeFiles/bench_ablation_extensions.dir/bench_ablation_extensions.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
