# Empty compiler generated dependencies file for bench_ablation_extensions.
# This may be replaced when dependencies are built.
