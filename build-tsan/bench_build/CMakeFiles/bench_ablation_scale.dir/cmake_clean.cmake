file(REMOVE_RECURSE
  "../bench/bench_ablation_scale"
  "../bench/bench_ablation_scale.pdb"
  "CMakeFiles/bench_ablation_scale.dir/bench_ablation_scale.cc.o"
  "CMakeFiles/bench_ablation_scale.dir/bench_ablation_scale.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
