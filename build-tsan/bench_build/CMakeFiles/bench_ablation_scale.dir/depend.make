# Empty dependencies file for bench_ablation_scale.
# This may be replaced when dependencies are built.
