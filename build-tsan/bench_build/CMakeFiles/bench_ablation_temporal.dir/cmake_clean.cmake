file(REMOVE_RECURSE
  "../bench/bench_ablation_temporal"
  "../bench/bench_ablation_temporal.pdb"
  "CMakeFiles/bench_ablation_temporal.dir/bench_ablation_temporal.cc.o"
  "CMakeFiles/bench_ablation_temporal.dir/bench_ablation_temporal.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
