# Empty compiler generated dependencies file for bench_ablation_temporal.
# This may be replaced when dependencies are built.
