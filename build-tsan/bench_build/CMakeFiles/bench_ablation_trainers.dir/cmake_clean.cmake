file(REMOVE_RECURSE
  "../bench/bench_ablation_trainers"
  "../bench/bench_ablation_trainers.pdb"
  "CMakeFiles/bench_ablation_trainers.dir/bench_ablation_trainers.cc.o"
  "CMakeFiles/bench_ablation_trainers.dir/bench_ablation_trainers.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_trainers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
