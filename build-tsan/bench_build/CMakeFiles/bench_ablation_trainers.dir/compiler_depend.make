# Empty compiler generated dependencies file for bench_ablation_trainers.
# This may be replaced when dependencies are built.
