file(REMOVE_RECURSE
  "../bench/bench_fig3_skill_count"
  "../bench/bench_fig3_skill_count.pdb"
  "CMakeFiles/bench_fig3_skill_count.dir/bench_fig3_skill_count.cc.o"
  "CMakeFiles/bench_fig3_skill_count.dir/bench_fig3_skill_count.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_skill_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
