# Empty dependencies file for bench_fig3_skill_count.
# This may be replaced when dependencies are built.
