file(REMOVE_RECURSE
  "../bench/bench_fig4_language"
  "../bench/bench_fig4_language.pdb"
  "CMakeFiles/bench_fig4_language.dir/bench_fig4_language.cc.o"
  "CMakeFiles/bench_fig4_language.dir/bench_fig4_language.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_language.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
