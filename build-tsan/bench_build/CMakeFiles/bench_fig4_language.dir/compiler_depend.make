# Empty compiler generated dependencies file for bench_fig4_language.
# This may be replaced when dependencies are built.
