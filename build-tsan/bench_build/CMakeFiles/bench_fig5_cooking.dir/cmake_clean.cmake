file(REMOVE_RECURSE
  "../bench/bench_fig5_cooking"
  "../bench/bench_fig5_cooking.pdb"
  "CMakeFiles/bench_fig5_cooking.dir/bench_fig5_cooking.cc.o"
  "CMakeFiles/bench_fig5_cooking.dir/bench_fig5_cooking.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_cooking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
