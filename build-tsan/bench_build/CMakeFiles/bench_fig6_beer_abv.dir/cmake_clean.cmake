file(REMOVE_RECURSE
  "../bench/bench_fig6_beer_abv"
  "../bench/bench_fig6_beer_abv.pdb"
  "CMakeFiles/bench_fig6_beer_abv.dir/bench_fig6_beer_abv.cc.o"
  "CMakeFiles/bench_fig6_beer_abv.dir/bench_fig6_beer_abv.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_beer_abv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
