# Empty dependencies file for bench_fig6_beer_abv.
# This may be replaced when dependencies are built.
