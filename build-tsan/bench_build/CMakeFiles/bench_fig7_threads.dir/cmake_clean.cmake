file(REMOVE_RECURSE
  "../bench/bench_fig7_threads"
  "../bench/bench_fig7_threads.pdb"
  "CMakeFiles/bench_fig7_threads.dir/bench_fig7_threads.cc.o"
  "CMakeFiles/bench_fig7_threads.dir/bench_fig7_threads.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
