# Empty dependencies file for bench_fig7_threads.
# This may be replaced when dependencies are built.
