file(REMOVE_RECURSE
  "../bench/bench_micro"
  "../bench/bench_micro.pdb"
  "CMakeFiles/bench_micro.dir/bench_micro.cc.o"
  "CMakeFiles/bench_micro.dir/bench_micro.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
