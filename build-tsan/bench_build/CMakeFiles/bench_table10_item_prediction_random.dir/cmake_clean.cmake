file(REMOVE_RECURSE
  "../bench/bench_table10_item_prediction_random"
  "../bench/bench_table10_item_prediction_random.pdb"
  "CMakeFiles/bench_table10_item_prediction_random.dir/bench_table10_item_prediction_random.cc.o"
  "CMakeFiles/bench_table10_item_prediction_random.dir/bench_table10_item_prediction_random.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_item_prediction_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
