# Empty compiler generated dependencies file for bench_table10_item_prediction_random.
# This may be replaced when dependencies are built.
