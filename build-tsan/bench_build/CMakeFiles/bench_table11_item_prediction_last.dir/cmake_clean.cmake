file(REMOVE_RECURSE
  "../bench/bench_table11_item_prediction_last"
  "../bench/bench_table11_item_prediction_last.pdb"
  "CMakeFiles/bench_table11_item_prediction_last.dir/bench_table11_item_prediction_last.cc.o"
  "CMakeFiles/bench_table11_item_prediction_last.dir/bench_table11_item_prediction_last.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_item_prediction_last.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
