# Empty compiler generated dependencies file for bench_table11_item_prediction_last.
# This may be replaced when dependencies are built.
