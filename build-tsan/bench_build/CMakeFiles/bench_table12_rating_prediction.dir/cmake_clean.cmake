file(REMOVE_RECURSE
  "../bench/bench_table12_rating_prediction"
  "../bench/bench_table12_rating_prediction.pdb"
  "CMakeFiles/bench_table12_rating_prediction.dir/bench_table12_rating_prediction.cc.o"
  "CMakeFiles/bench_table12_rating_prediction.dir/bench_table12_rating_prediction.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table12_rating_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
