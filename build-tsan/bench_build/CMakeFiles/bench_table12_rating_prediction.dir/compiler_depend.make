# Empty compiler generated dependencies file for bench_table12_rating_prediction.
# This may be replaced when dependencies are built.
