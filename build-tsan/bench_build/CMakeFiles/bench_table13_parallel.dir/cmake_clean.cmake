file(REMOVE_RECURSE
  "../bench/bench_table13_parallel"
  "../bench/bench_table13_parallel.pdb"
  "CMakeFiles/bench_table13_parallel.dir/bench_table13_parallel.cc.o"
  "CMakeFiles/bench_table13_parallel.dir/bench_table13_parallel.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table13_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
