# Empty compiler generated dependencies file for bench_table13_parallel.
# This may be replaced when dependencies are built.
