file(REMOVE_RECURSE
  "../bench/bench_table1_datasets"
  "../bench/bench_table1_datasets.pdb"
  "CMakeFiles/bench_table1_datasets.dir/bench_table1_datasets.cc.o"
  "CMakeFiles/bench_table1_datasets.dir/bench_table1_datasets.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
