file(REMOVE_RECURSE
  "../bench/bench_table2_corrections"
  "../bench/bench_table2_corrections.pdb"
  "CMakeFiles/bench_table2_corrections.dir/bench_table2_corrections.cc.o"
  "CMakeFiles/bench_table2_corrections.dir/bench_table2_corrections.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_corrections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
