# Empty dependencies file for bench_table2_corrections.
# This may be replaced when dependencies are built.
