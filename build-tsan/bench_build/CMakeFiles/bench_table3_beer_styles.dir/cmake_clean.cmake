file(REMOVE_RECURSE
  "../bench/bench_table3_beer_styles"
  "../bench/bench_table3_beer_styles.pdb"
  "CMakeFiles/bench_table3_beer_styles.dir/bench_table3_beer_styles.cc.o"
  "CMakeFiles/bench_table3_beer_styles.dir/bench_table3_beer_styles.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_beer_styles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
