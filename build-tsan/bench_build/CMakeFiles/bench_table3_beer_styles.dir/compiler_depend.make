# Empty compiler generated dependencies file for bench_table3_beer_styles.
# This may be replaced when dependencies are built.
