file(REMOVE_RECURSE
  "../bench/bench_table45_film"
  "../bench/bench_table45_film.pdb"
  "CMakeFiles/bench_table45_film.dir/bench_table45_film.cc.o"
  "CMakeFiles/bench_table45_film.dir/bench_table45_film.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table45_film.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
