# Empty dependencies file for bench_table45_film.
# This may be replaced when dependencies are built.
