file(REMOVE_RECURSE
  "../bench/bench_table6_skill_accuracy"
  "../bench/bench_table6_skill_accuracy.pdb"
  "CMakeFiles/bench_table6_skill_accuracy.dir/bench_table6_skill_accuracy.cc.o"
  "CMakeFiles/bench_table6_skill_accuracy.dir/bench_table6_skill_accuracy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_skill_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
