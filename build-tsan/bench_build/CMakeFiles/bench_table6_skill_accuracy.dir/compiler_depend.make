# Empty compiler generated dependencies file for bench_table6_skill_accuracy.
# This may be replaced when dependencies are built.
