
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table7_difficulty_accuracy.cc" "bench_build/CMakeFiles/bench_table7_difficulty_accuracy.dir/bench_table7_difficulty_accuracy.cc.o" "gcc" "bench_build/CMakeFiles/bench_table7_difficulty_accuracy.dir/bench_table7_difficulty_accuracy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/bench_build/CMakeFiles/upskill_bench_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/upskill.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
