file(REMOVE_RECURSE
  "../bench/bench_table7_difficulty_accuracy"
  "../bench/bench_table7_difficulty_accuracy.pdb"
  "CMakeFiles/bench_table7_difficulty_accuracy.dir/bench_table7_difficulty_accuracy.cc.o"
  "CMakeFiles/bench_table7_difficulty_accuracy.dir/bench_table7_difficulty_accuracy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_difficulty_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
