# Empty compiler generated dependencies file for bench_table7_difficulty_accuracy.
# This may be replaced when dependencies are built.
