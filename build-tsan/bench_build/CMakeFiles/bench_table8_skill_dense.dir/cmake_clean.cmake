file(REMOVE_RECURSE
  "../bench/bench_table8_skill_dense"
  "../bench/bench_table8_skill_dense.pdb"
  "CMakeFiles/bench_table8_skill_dense.dir/bench_table8_skill_dense.cc.o"
  "CMakeFiles/bench_table8_skill_dense.dir/bench_table8_skill_dense.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_skill_dense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
