# Empty compiler generated dependencies file for bench_table8_skill_dense.
# This may be replaced when dependencies are built.
