file(REMOVE_RECURSE
  "../bench/bench_table9_difficulty_dense"
  "../bench/bench_table9_difficulty_dense.pdb"
  "CMakeFiles/bench_table9_difficulty_dense.dir/bench_table9_difficulty_dense.cc.o"
  "CMakeFiles/bench_table9_difficulty_dense.dir/bench_table9_difficulty_dense.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_difficulty_dense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
