# Empty dependencies file for bench_table9_difficulty_dense.
# This may be replaced when dependencies are built.
