file(REMOVE_RECURSE
  "CMakeFiles/upskill_bench_common.dir/accuracy_lib.cc.o"
  "CMakeFiles/upskill_bench_common.dir/accuracy_lib.cc.o.d"
  "CMakeFiles/upskill_bench_common.dir/common.cc.o"
  "CMakeFiles/upskill_bench_common.dir/common.cc.o.d"
  "CMakeFiles/upskill_bench_common.dir/prediction_lib.cc.o"
  "CMakeFiles/upskill_bench_common.dir/prediction_lib.cc.o.d"
  "libupskill_bench_common.a"
  "libupskill_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upskill_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
