file(REMOVE_RECURSE
  "libupskill_bench_common.a"
)
