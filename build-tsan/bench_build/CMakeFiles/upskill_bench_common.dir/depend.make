# Empty dependencies file for upskill_bench_common.
# This may be replaced when dependencies are built.
