file(REMOVE_RECURSE
  "CMakeFiles/example_cooking_progression.dir/cooking_progression.cpp.o"
  "CMakeFiles/example_cooking_progression.dir/cooking_progression.cpp.o.d"
  "example_cooking_progression"
  "example_cooking_progression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_cooking_progression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
