# Empty compiler generated dependencies file for example_cooking_progression.
# This may be replaced when dependencies are built.
