file(REMOVE_RECURSE
  "CMakeFiles/example_film_confounder.dir/film_confounder.cpp.o"
  "CMakeFiles/example_film_confounder.dir/film_confounder.cpp.o.d"
  "example_film_confounder"
  "example_film_confounder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_film_confounder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
