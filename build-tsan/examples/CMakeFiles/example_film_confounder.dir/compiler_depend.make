# Empty compiler generated dependencies file for example_film_confounder.
# This may be replaced when dependencies are built.
