file(REMOVE_RECURSE
  "CMakeFiles/example_language_learning.dir/language_learning.cpp.o"
  "CMakeFiles/example_language_learning.dir/language_learning.cpp.o.d"
  "example_language_learning"
  "example_language_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_language_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
