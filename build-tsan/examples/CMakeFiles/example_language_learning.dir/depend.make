# Empty dependencies file for example_language_learning.
# This may be replaced when dependencies are built.
