file(REMOVE_RECURSE
  "CMakeFiles/example_upskill_cli.dir/upskill_cli.cpp.o"
  "CMakeFiles/example_upskill_cli.dir/upskill_cli.cpp.o.d"
  "example_upskill_cli"
  "example_upskill_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_upskill_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
