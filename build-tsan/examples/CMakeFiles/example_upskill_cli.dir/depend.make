# Empty dependencies file for example_upskill_cli.
# This may be replaced when dependencies are built.
