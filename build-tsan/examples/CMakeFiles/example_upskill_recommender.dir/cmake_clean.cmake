file(REMOVE_RECURSE
  "CMakeFiles/example_upskill_recommender.dir/upskill_recommender.cpp.o"
  "CMakeFiles/example_upskill_recommender.dir/upskill_recommender.cpp.o.d"
  "example_upskill_recommender"
  "example_upskill_recommender.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_upskill_recommender.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
