# Empty compiler generated dependencies file for example_upskill_recommender.
# This may be replaced when dependencies are built.
