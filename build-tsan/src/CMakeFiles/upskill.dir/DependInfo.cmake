
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/sequence_baselines.cc" "src/CMakeFiles/upskill.dir/baselines/sequence_baselines.cc.o" "gcc" "src/CMakeFiles/upskill.dir/baselines/sequence_baselines.cc.o.d"
  "/root/repo/src/baselines/uniform_model.cc" "src/CMakeFiles/upskill.dir/baselines/uniform_model.cc.o" "gcc" "src/CMakeFiles/upskill.dir/baselines/uniform_model.cc.o.d"
  "/root/repo/src/common/csv.cc" "src/CMakeFiles/upskill.dir/common/csv.cc.o" "gcc" "src/CMakeFiles/upskill.dir/common/csv.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/upskill.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/upskill.dir/common/logging.cc.o.d"
  "/root/repo/src/common/math.cc" "src/CMakeFiles/upskill.dir/common/math.cc.o" "gcc" "src/CMakeFiles/upskill.dir/common/math.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/upskill.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/upskill.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/upskill.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/upskill.dir/common/stats.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/upskill.dir/common/status.cc.o" "gcc" "src/CMakeFiles/upskill.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/upskill.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/upskill.dir/common/string_util.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/upskill.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/upskill.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/core/assignments_io.cc" "src/CMakeFiles/upskill.dir/core/assignments_io.cc.o" "gcc" "src/CMakeFiles/upskill.dir/core/assignments_io.cc.o.d"
  "/root/repo/src/core/difficulty.cc" "src/CMakeFiles/upskill.dir/core/difficulty.cc.o" "gcc" "src/CMakeFiles/upskill.dir/core/difficulty.cc.o.d"
  "/root/repo/src/core/dominance.cc" "src/CMakeFiles/upskill.dir/core/dominance.cc.o" "gcc" "src/CMakeFiles/upskill.dir/core/dominance.cc.o.d"
  "/root/repo/src/core/dp.cc" "src/CMakeFiles/upskill.dir/core/dp.cc.o" "gcc" "src/CMakeFiles/upskill.dir/core/dp.cc.o.d"
  "/root/repo/src/core/em_trainer.cc" "src/CMakeFiles/upskill.dir/core/em_trainer.cc.o" "gcc" "src/CMakeFiles/upskill.dir/core/em_trainer.cc.o.d"
  "/root/repo/src/core/inference.cc" "src/CMakeFiles/upskill.dir/core/inference.cc.o" "gcc" "src/CMakeFiles/upskill.dir/core/inference.cc.o.d"
  "/root/repo/src/core/information_criteria.cc" "src/CMakeFiles/upskill.dir/core/information_criteria.cc.o" "gcc" "src/CMakeFiles/upskill.dir/core/information_criteria.cc.o.d"
  "/root/repo/src/core/model_report.cc" "src/CMakeFiles/upskill.dir/core/model_report.cc.o" "gcc" "src/CMakeFiles/upskill.dir/core/model_report.cc.o.d"
  "/root/repo/src/core/model_selection.cc" "src/CMakeFiles/upskill.dir/core/model_selection.cc.o" "gcc" "src/CMakeFiles/upskill.dir/core/model_selection.cc.o.d"
  "/root/repo/src/core/posterior.cc" "src/CMakeFiles/upskill.dir/core/posterior.cc.o" "gcc" "src/CMakeFiles/upskill.dir/core/posterior.cc.o.d"
  "/root/repo/src/core/recommend.cc" "src/CMakeFiles/upskill.dir/core/recommend.cc.o" "gcc" "src/CMakeFiles/upskill.dir/core/recommend.cc.o.d"
  "/root/repo/src/core/skill_model.cc" "src/CMakeFiles/upskill.dir/core/skill_model.cc.o" "gcc" "src/CMakeFiles/upskill.dir/core/skill_model.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/CMakeFiles/upskill.dir/core/trainer.cc.o" "gcc" "src/CMakeFiles/upskill.dir/core/trainer.cc.o.d"
  "/root/repo/src/core/trajectory.cc" "src/CMakeFiles/upskill.dir/core/trajectory.cc.o" "gcc" "src/CMakeFiles/upskill.dir/core/trajectory.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/upskill.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/upskill.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/describe.cc" "src/CMakeFiles/upskill.dir/data/describe.cc.o" "gcc" "src/CMakeFiles/upskill.dir/data/describe.cc.o.d"
  "/root/repo/src/data/filter.cc" "src/CMakeFiles/upskill.dir/data/filter.cc.o" "gcc" "src/CMakeFiles/upskill.dir/data/filter.cc.o.d"
  "/root/repo/src/data/io.cc" "src/CMakeFiles/upskill.dir/data/io.cc.o" "gcc" "src/CMakeFiles/upskill.dir/data/io.cc.o.d"
  "/root/repo/src/data/log_builder.cc" "src/CMakeFiles/upskill.dir/data/log_builder.cc.o" "gcc" "src/CMakeFiles/upskill.dir/data/log_builder.cc.o.d"
  "/root/repo/src/data/sample.cc" "src/CMakeFiles/upskill.dir/data/sample.cc.o" "gcc" "src/CMakeFiles/upskill.dir/data/sample.cc.o.d"
  "/root/repo/src/data/schema.cc" "src/CMakeFiles/upskill.dir/data/schema.cc.o" "gcc" "src/CMakeFiles/upskill.dir/data/schema.cc.o.d"
  "/root/repo/src/data/split.cc" "src/CMakeFiles/upskill.dir/data/split.cc.o" "gcc" "src/CMakeFiles/upskill.dir/data/split.cc.o.d"
  "/root/repo/src/data/statistics.cc" "src/CMakeFiles/upskill.dir/data/statistics.cc.o" "gcc" "src/CMakeFiles/upskill.dir/data/statistics.cc.o.d"
  "/root/repo/src/datagen/beer.cc" "src/CMakeFiles/upskill.dir/datagen/beer.cc.o" "gcc" "src/CMakeFiles/upskill.dir/datagen/beer.cc.o.d"
  "/root/repo/src/datagen/cooking.cc" "src/CMakeFiles/upskill.dir/datagen/cooking.cc.o" "gcc" "src/CMakeFiles/upskill.dir/datagen/cooking.cc.o.d"
  "/root/repo/src/datagen/film.cc" "src/CMakeFiles/upskill.dir/datagen/film.cc.o" "gcc" "src/CMakeFiles/upskill.dir/datagen/film.cc.o.d"
  "/root/repo/src/datagen/language.cc" "src/CMakeFiles/upskill.dir/datagen/language.cc.o" "gcc" "src/CMakeFiles/upskill.dir/datagen/language.cc.o.d"
  "/root/repo/src/datagen/synthetic.cc" "src/CMakeFiles/upskill.dir/datagen/synthetic.cc.o" "gcc" "src/CMakeFiles/upskill.dir/datagen/synthetic.cc.o.d"
  "/root/repo/src/dist/categorical.cc" "src/CMakeFiles/upskill.dir/dist/categorical.cc.o" "gcc" "src/CMakeFiles/upskill.dir/dist/categorical.cc.o.d"
  "/root/repo/src/dist/distribution.cc" "src/CMakeFiles/upskill.dir/dist/distribution.cc.o" "gcc" "src/CMakeFiles/upskill.dir/dist/distribution.cc.o.d"
  "/root/repo/src/dist/gamma.cc" "src/CMakeFiles/upskill.dir/dist/gamma.cc.o" "gcc" "src/CMakeFiles/upskill.dir/dist/gamma.cc.o.d"
  "/root/repo/src/dist/lognormal.cc" "src/CMakeFiles/upskill.dir/dist/lognormal.cc.o" "gcc" "src/CMakeFiles/upskill.dir/dist/lognormal.cc.o.d"
  "/root/repo/src/dist/poisson.cc" "src/CMakeFiles/upskill.dir/dist/poisson.cc.o" "gcc" "src/CMakeFiles/upskill.dir/dist/poisson.cc.o.d"
  "/root/repo/src/eval/bootstrap.cc" "src/CMakeFiles/upskill.dir/eval/bootstrap.cc.o" "gcc" "src/CMakeFiles/upskill.dir/eval/bootstrap.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/upskill.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/upskill.dir/eval/metrics.cc.o.d"
  "/root/repo/src/eval/ranking.cc" "src/CMakeFiles/upskill.dir/eval/ranking.cc.o" "gcc" "src/CMakeFiles/upskill.dir/eval/ranking.cc.o.d"
  "/root/repo/src/eval/significance.cc" "src/CMakeFiles/upskill.dir/eval/significance.cc.o" "gcc" "src/CMakeFiles/upskill.dir/eval/significance.cc.o.d"
  "/root/repo/src/eval/tasks.cc" "src/CMakeFiles/upskill.dir/eval/tasks.cc.o" "gcc" "src/CMakeFiles/upskill.dir/eval/tasks.cc.o.d"
  "/root/repo/src/ffm/feature_builder.cc" "src/CMakeFiles/upskill.dir/ffm/feature_builder.cc.o" "gcc" "src/CMakeFiles/upskill.dir/ffm/feature_builder.cc.o.d"
  "/root/repo/src/ffm/ffm.cc" "src/CMakeFiles/upskill.dir/ffm/ffm.cc.o" "gcc" "src/CMakeFiles/upskill.dir/ffm/ffm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
