file(REMOVE_RECURSE
  "libupskill.a"
)
