# Empty dependencies file for upskill.
# This may be replaced when dependencies are built.
