# Empty dependencies file for baselines_sequence_baselines_test.
# This may be replaced when dependencies are built.
