file(REMOVE_RECURSE
  "CMakeFiles/baselines_uniform_model_test.dir/baselines/uniform_model_test.cc.o"
  "CMakeFiles/baselines_uniform_model_test.dir/baselines/uniform_model_test.cc.o.d"
  "baselines_uniform_model_test"
  "baselines_uniform_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_uniform_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
