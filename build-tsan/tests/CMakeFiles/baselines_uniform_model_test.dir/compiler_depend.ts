# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for baselines_uniform_model_test.
