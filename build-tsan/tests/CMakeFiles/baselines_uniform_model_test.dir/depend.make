# Empty dependencies file for baselines_uniform_model_test.
# This may be replaced when dependencies are built.
