file(REMOVE_RECURSE
  "CMakeFiles/common_csv_test.dir/common/csv_test.cc.o"
  "CMakeFiles/common_csv_test.dir/common/csv_test.cc.o.d"
  "common_csv_test"
  "common_csv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_csv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
