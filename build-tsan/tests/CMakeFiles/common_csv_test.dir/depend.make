# Empty dependencies file for common_csv_test.
# This may be replaced when dependencies are built.
