file(REMOVE_RECURSE
  "CMakeFiles/common_logging_test.dir/common/logging_test.cc.o"
  "CMakeFiles/common_logging_test.dir/common/logging_test.cc.o.d"
  "common_logging_test"
  "common_logging_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_logging_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
