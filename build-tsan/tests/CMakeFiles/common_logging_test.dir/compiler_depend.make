# Empty compiler generated dependencies file for common_logging_test.
# This may be replaced when dependencies are built.
