file(REMOVE_RECURSE
  "CMakeFiles/common_math_test.dir/common/math_test.cc.o"
  "CMakeFiles/common_math_test.dir/common/math_test.cc.o.d"
  "common_math_test"
  "common_math_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_math_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
