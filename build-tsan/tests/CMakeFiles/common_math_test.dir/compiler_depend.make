# Empty compiler generated dependencies file for common_math_test.
# This may be replaced when dependencies are built.
