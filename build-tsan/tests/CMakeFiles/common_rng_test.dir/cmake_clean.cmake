file(REMOVE_RECURSE
  "CMakeFiles/common_rng_test.dir/common/rng_test.cc.o"
  "CMakeFiles/common_rng_test.dir/common/rng_test.cc.o.d"
  "common_rng_test"
  "common_rng_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_rng_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
