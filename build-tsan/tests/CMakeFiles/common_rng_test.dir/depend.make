# Empty dependencies file for common_rng_test.
# This may be replaced when dependencies are built.
