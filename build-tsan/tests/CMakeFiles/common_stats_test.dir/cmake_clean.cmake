file(REMOVE_RECURSE
  "CMakeFiles/common_stats_test.dir/common/stats_test.cc.o"
  "CMakeFiles/common_stats_test.dir/common/stats_test.cc.o.d"
  "common_stats_test"
  "common_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
