# Empty dependencies file for common_stats_test.
# This may be replaced when dependencies are built.
