file(REMOVE_RECURSE
  "CMakeFiles/common_string_util_test.dir/common/string_util_test.cc.o"
  "CMakeFiles/common_string_util_test.dir/common/string_util_test.cc.o.d"
  "common_string_util_test"
  "common_string_util_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_string_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
