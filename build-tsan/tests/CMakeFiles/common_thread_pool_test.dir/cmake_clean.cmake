file(REMOVE_RECURSE
  "CMakeFiles/common_thread_pool_test.dir/common/thread_pool_test.cc.o"
  "CMakeFiles/common_thread_pool_test.dir/common/thread_pool_test.cc.o.d"
  "common_thread_pool_test"
  "common_thread_pool_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_thread_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
