# Empty dependencies file for common_thread_pool_test.
# This may be replaced when dependencies are built.
