file(REMOVE_RECURSE
  "CMakeFiles/core_assignments_io_test.dir/core/assignments_io_test.cc.o"
  "CMakeFiles/core_assignments_io_test.dir/core/assignments_io_test.cc.o.d"
  "core_assignments_io_test"
  "core_assignments_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_assignments_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
