# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for core_assignments_io_test.
