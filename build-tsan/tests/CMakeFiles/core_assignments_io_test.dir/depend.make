# Empty dependencies file for core_assignments_io_test.
# This may be replaced when dependencies are built.
