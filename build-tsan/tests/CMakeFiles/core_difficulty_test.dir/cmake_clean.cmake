file(REMOVE_RECURSE
  "CMakeFiles/core_difficulty_test.dir/core/difficulty_test.cc.o"
  "CMakeFiles/core_difficulty_test.dir/core/difficulty_test.cc.o.d"
  "core_difficulty_test"
  "core_difficulty_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_difficulty_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
