# Empty dependencies file for core_difficulty_test.
# This may be replaced when dependencies are built.
