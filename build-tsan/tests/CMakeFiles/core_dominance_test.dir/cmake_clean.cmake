file(REMOVE_RECURSE
  "CMakeFiles/core_dominance_test.dir/core/dominance_test.cc.o"
  "CMakeFiles/core_dominance_test.dir/core/dominance_test.cc.o.d"
  "core_dominance_test"
  "core_dominance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_dominance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
