# Empty compiler generated dependencies file for core_dominance_test.
# This may be replaced when dependencies are built.
