file(REMOVE_RECURSE
  "CMakeFiles/core_dp_test.dir/core/dp_test.cc.o"
  "CMakeFiles/core_dp_test.dir/core/dp_test.cc.o.d"
  "core_dp_test"
  "core_dp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_dp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
