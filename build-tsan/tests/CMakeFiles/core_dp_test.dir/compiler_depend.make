# Empty compiler generated dependencies file for core_dp_test.
# This may be replaced when dependencies are built.
