file(REMOVE_RECURSE
  "CMakeFiles/core_em_trainer_test.dir/core/em_trainer_test.cc.o"
  "CMakeFiles/core_em_trainer_test.dir/core/em_trainer_test.cc.o.d"
  "core_em_trainer_test"
  "core_em_trainer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_em_trainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
