# Empty compiler generated dependencies file for core_em_trainer_test.
# This may be replaced when dependencies are built.
