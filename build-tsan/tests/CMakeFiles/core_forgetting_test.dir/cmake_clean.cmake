file(REMOVE_RECURSE
  "CMakeFiles/core_forgetting_test.dir/core/forgetting_test.cc.o"
  "CMakeFiles/core_forgetting_test.dir/core/forgetting_test.cc.o.d"
  "core_forgetting_test"
  "core_forgetting_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_forgetting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
