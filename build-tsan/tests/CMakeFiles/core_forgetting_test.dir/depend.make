# Empty dependencies file for core_forgetting_test.
# This may be replaced when dependencies are built.
