file(REMOVE_RECURSE
  "CMakeFiles/core_inference_test.dir/core/inference_test.cc.o"
  "CMakeFiles/core_inference_test.dir/core/inference_test.cc.o.d"
  "core_inference_test"
  "core_inference_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_inference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
