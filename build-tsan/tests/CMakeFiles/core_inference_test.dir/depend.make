# Empty dependencies file for core_inference_test.
# This may be replaced when dependencies are built.
