file(REMOVE_RECURSE
  "CMakeFiles/core_information_criteria_test.dir/core/information_criteria_test.cc.o"
  "CMakeFiles/core_information_criteria_test.dir/core/information_criteria_test.cc.o.d"
  "core_information_criteria_test"
  "core_information_criteria_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_information_criteria_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
