# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for core_information_criteria_test.
