# Empty dependencies file for core_information_criteria_test.
# This may be replaced when dependencies are built.
