file(REMOVE_RECURSE
  "CMakeFiles/core_model_selection_test.dir/core/model_selection_test.cc.o"
  "CMakeFiles/core_model_selection_test.dir/core/model_selection_test.cc.o.d"
  "core_model_selection_test"
  "core_model_selection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_model_selection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
