file(REMOVE_RECURSE
  "CMakeFiles/core_posterior_test.dir/core/posterior_test.cc.o"
  "CMakeFiles/core_posterior_test.dir/core/posterior_test.cc.o.d"
  "core_posterior_test"
  "core_posterior_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_posterior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
