# Empty dependencies file for core_posterior_test.
# This may be replaced when dependencies are built.
