file(REMOVE_RECURSE
  "CMakeFiles/core_progression_class_test.dir/core/progression_class_test.cc.o"
  "CMakeFiles/core_progression_class_test.dir/core/progression_class_test.cc.o.d"
  "core_progression_class_test"
  "core_progression_class_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_progression_class_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
