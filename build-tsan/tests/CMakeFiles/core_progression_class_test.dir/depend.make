# Empty dependencies file for core_progression_class_test.
# This may be replaced when dependencies are built.
