file(REMOVE_RECURSE
  "CMakeFiles/core_recommend_test.dir/core/recommend_test.cc.o"
  "CMakeFiles/core_recommend_test.dir/core/recommend_test.cc.o.d"
  "core_recommend_test"
  "core_recommend_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_recommend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
