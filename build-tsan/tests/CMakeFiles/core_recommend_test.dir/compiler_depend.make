# Empty compiler generated dependencies file for core_recommend_test.
# This may be replaced when dependencies are built.
