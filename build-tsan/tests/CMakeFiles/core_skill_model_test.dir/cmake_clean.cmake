file(REMOVE_RECURSE
  "CMakeFiles/core_skill_model_test.dir/core/skill_model_test.cc.o"
  "CMakeFiles/core_skill_model_test.dir/core/skill_model_test.cc.o.d"
  "core_skill_model_test"
  "core_skill_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_skill_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
