# Empty dependencies file for core_skill_model_test.
# This may be replaced when dependencies are built.
