file(REMOVE_RECURSE
  "CMakeFiles/core_trainer_equivalence_test.dir/core/trainer_equivalence_test.cc.o"
  "CMakeFiles/core_trainer_equivalence_test.dir/core/trainer_equivalence_test.cc.o.d"
  "core_trainer_equivalence_test"
  "core_trainer_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_trainer_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
