# Empty dependencies file for core_trainer_equivalence_test.
# This may be replaced when dependencies are built.
