file(REMOVE_RECURSE
  "CMakeFiles/core_trajectory_test.dir/core/trajectory_test.cc.o"
  "CMakeFiles/core_trajectory_test.dir/core/trajectory_test.cc.o.d"
  "core_trajectory_test"
  "core_trajectory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_trajectory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
