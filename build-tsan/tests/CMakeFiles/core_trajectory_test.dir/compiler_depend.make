# Empty compiler generated dependencies file for core_trajectory_test.
# This may be replaced when dependencies are built.
