file(REMOVE_RECURSE
  "CMakeFiles/data_dataset_test.dir/data/dataset_test.cc.o"
  "CMakeFiles/data_dataset_test.dir/data/dataset_test.cc.o.d"
  "data_dataset_test"
  "data_dataset_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_dataset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
