# Empty dependencies file for data_dataset_test.
# This may be replaced when dependencies are built.
