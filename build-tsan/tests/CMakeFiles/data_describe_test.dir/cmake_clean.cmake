file(REMOVE_RECURSE
  "CMakeFiles/data_describe_test.dir/data/describe_test.cc.o"
  "CMakeFiles/data_describe_test.dir/data/describe_test.cc.o.d"
  "data_describe_test"
  "data_describe_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_describe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
