# Empty dependencies file for data_describe_test.
# This may be replaced when dependencies are built.
