file(REMOVE_RECURSE
  "CMakeFiles/data_filter_test.dir/data/filter_test.cc.o"
  "CMakeFiles/data_filter_test.dir/data/filter_test.cc.o.d"
  "data_filter_test"
  "data_filter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
