file(REMOVE_RECURSE
  "CMakeFiles/data_io_test.dir/data/io_test.cc.o"
  "CMakeFiles/data_io_test.dir/data/io_test.cc.o.d"
  "data_io_test"
  "data_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
