# Empty dependencies file for data_io_test.
# This may be replaced when dependencies are built.
