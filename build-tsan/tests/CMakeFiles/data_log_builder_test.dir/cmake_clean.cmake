file(REMOVE_RECURSE
  "CMakeFiles/data_log_builder_test.dir/data/log_builder_test.cc.o"
  "CMakeFiles/data_log_builder_test.dir/data/log_builder_test.cc.o.d"
  "data_log_builder_test"
  "data_log_builder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_log_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
