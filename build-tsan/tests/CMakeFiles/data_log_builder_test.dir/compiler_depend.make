# Empty compiler generated dependencies file for data_log_builder_test.
# This may be replaced when dependencies are built.
