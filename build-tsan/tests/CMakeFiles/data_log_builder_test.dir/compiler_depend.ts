# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for data_log_builder_test.
