file(REMOVE_RECURSE
  "CMakeFiles/data_sample_test.dir/data/sample_test.cc.o"
  "CMakeFiles/data_sample_test.dir/data/sample_test.cc.o.d"
  "data_sample_test"
  "data_sample_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_sample_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
