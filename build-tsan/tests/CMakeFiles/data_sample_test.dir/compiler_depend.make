# Empty compiler generated dependencies file for data_sample_test.
# This may be replaced when dependencies are built.
