file(REMOVE_RECURSE
  "CMakeFiles/data_schema_test.dir/data/schema_test.cc.o"
  "CMakeFiles/data_schema_test.dir/data/schema_test.cc.o.d"
  "data_schema_test"
  "data_schema_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
