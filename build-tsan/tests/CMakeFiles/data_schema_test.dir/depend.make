# Empty dependencies file for data_schema_test.
# This may be replaced when dependencies are built.
