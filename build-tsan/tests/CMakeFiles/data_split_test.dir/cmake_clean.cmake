file(REMOVE_RECURSE
  "CMakeFiles/data_split_test.dir/data/split_test.cc.o"
  "CMakeFiles/data_split_test.dir/data/split_test.cc.o.d"
  "data_split_test"
  "data_split_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_split_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
