# Empty dependencies file for data_split_test.
# This may be replaced when dependencies are built.
