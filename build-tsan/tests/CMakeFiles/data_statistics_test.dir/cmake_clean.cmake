file(REMOVE_RECURSE
  "CMakeFiles/data_statistics_test.dir/data/statistics_test.cc.o"
  "CMakeFiles/data_statistics_test.dir/data/statistics_test.cc.o.d"
  "data_statistics_test"
  "data_statistics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_statistics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
