# Empty compiler generated dependencies file for data_statistics_test.
# This may be replaced when dependencies are built.
