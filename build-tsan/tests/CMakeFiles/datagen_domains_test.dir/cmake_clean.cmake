file(REMOVE_RECURSE
  "CMakeFiles/datagen_domains_test.dir/datagen/domains_test.cc.o"
  "CMakeFiles/datagen_domains_test.dir/datagen/domains_test.cc.o.d"
  "datagen_domains_test"
  "datagen_domains_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datagen_domains_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
