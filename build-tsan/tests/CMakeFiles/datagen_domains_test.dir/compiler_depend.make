# Empty compiler generated dependencies file for datagen_domains_test.
# This may be replaced when dependencies are built.
