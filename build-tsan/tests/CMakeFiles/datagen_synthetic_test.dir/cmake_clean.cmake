file(REMOVE_RECURSE
  "CMakeFiles/datagen_synthetic_test.dir/datagen/synthetic_test.cc.o"
  "CMakeFiles/datagen_synthetic_test.dir/datagen/synthetic_test.cc.o.d"
  "datagen_synthetic_test"
  "datagen_synthetic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datagen_synthetic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
