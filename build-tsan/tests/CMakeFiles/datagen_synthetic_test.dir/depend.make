# Empty dependencies file for datagen_synthetic_test.
# This may be replaced when dependencies are built.
