file(REMOVE_RECURSE
  "CMakeFiles/dist_categorical_test.dir/dist/categorical_test.cc.o"
  "CMakeFiles/dist_categorical_test.dir/dist/categorical_test.cc.o.d"
  "dist_categorical_test"
  "dist_categorical_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_categorical_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
