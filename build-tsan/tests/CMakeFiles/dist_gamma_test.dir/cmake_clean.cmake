file(REMOVE_RECURSE
  "CMakeFiles/dist_gamma_test.dir/dist/gamma_test.cc.o"
  "CMakeFiles/dist_gamma_test.dir/dist/gamma_test.cc.o.d"
  "dist_gamma_test"
  "dist_gamma_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_gamma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
