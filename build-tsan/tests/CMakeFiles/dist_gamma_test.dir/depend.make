# Empty dependencies file for dist_gamma_test.
# This may be replaced when dependencies are built.
