file(REMOVE_RECURSE
  "CMakeFiles/dist_lognormal_test.dir/dist/lognormal_test.cc.o"
  "CMakeFiles/dist_lognormal_test.dir/dist/lognormal_test.cc.o.d"
  "dist_lognormal_test"
  "dist_lognormal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_lognormal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
