# Empty compiler generated dependencies file for dist_lognormal_test.
# This may be replaced when dependencies are built.
