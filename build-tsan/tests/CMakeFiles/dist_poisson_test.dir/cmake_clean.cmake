file(REMOVE_RECURSE
  "CMakeFiles/dist_poisson_test.dir/dist/poisson_test.cc.o"
  "CMakeFiles/dist_poisson_test.dir/dist/poisson_test.cc.o.d"
  "dist_poisson_test"
  "dist_poisson_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_poisson_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
