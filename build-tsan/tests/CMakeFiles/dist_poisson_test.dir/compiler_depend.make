# Empty compiler generated dependencies file for dist_poisson_test.
# This may be replaced when dependencies are built.
