file(REMOVE_RECURSE
  "CMakeFiles/dist_suffstats_test.dir/dist/suffstats_test.cc.o"
  "CMakeFiles/dist_suffstats_test.dir/dist/suffstats_test.cc.o.d"
  "dist_suffstats_test"
  "dist_suffstats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_suffstats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
