# Empty dependencies file for dist_suffstats_test.
# This may be replaced when dependencies are built.
