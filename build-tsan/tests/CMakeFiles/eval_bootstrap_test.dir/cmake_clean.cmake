file(REMOVE_RECURSE
  "CMakeFiles/eval_bootstrap_test.dir/eval/bootstrap_test.cc.o"
  "CMakeFiles/eval_bootstrap_test.dir/eval/bootstrap_test.cc.o.d"
  "eval_bootstrap_test"
  "eval_bootstrap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_bootstrap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
