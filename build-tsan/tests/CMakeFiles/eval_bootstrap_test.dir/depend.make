# Empty dependencies file for eval_bootstrap_test.
# This may be replaced when dependencies are built.
