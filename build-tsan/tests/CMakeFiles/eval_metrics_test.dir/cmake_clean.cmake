file(REMOVE_RECURSE
  "CMakeFiles/eval_metrics_test.dir/eval/metrics_test.cc.o"
  "CMakeFiles/eval_metrics_test.dir/eval/metrics_test.cc.o.d"
  "eval_metrics_test"
  "eval_metrics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
