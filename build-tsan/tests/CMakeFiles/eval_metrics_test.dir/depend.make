# Empty dependencies file for eval_metrics_test.
# This may be replaced when dependencies are built.
