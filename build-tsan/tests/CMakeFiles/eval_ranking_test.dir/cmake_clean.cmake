file(REMOVE_RECURSE
  "CMakeFiles/eval_ranking_test.dir/eval/ranking_test.cc.o"
  "CMakeFiles/eval_ranking_test.dir/eval/ranking_test.cc.o.d"
  "eval_ranking_test"
  "eval_ranking_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_ranking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
