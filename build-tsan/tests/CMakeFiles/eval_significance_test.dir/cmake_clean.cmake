file(REMOVE_RECURSE
  "CMakeFiles/eval_significance_test.dir/eval/significance_test.cc.o"
  "CMakeFiles/eval_significance_test.dir/eval/significance_test.cc.o.d"
  "eval_significance_test"
  "eval_significance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_significance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
