# Empty compiler generated dependencies file for eval_significance_test.
# This may be replaced when dependencies are built.
