file(REMOVE_RECURSE
  "CMakeFiles/eval_tasks_test.dir/eval/tasks_test.cc.o"
  "CMakeFiles/eval_tasks_test.dir/eval/tasks_test.cc.o.d"
  "eval_tasks_test"
  "eval_tasks_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_tasks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
