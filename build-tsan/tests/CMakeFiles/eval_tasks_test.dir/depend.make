# Empty dependencies file for eval_tasks_test.
# This may be replaced when dependencies are built.
