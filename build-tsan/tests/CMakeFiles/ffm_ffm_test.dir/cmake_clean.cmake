file(REMOVE_RECURSE
  "CMakeFiles/ffm_ffm_test.dir/ffm/ffm_test.cc.o"
  "CMakeFiles/ffm_ffm_test.dir/ffm/ffm_test.cc.o.d"
  "ffm_ffm_test"
  "ffm_ffm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ffm_ffm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
