# Empty compiler generated dependencies file for ffm_ffm_test.
# This may be replaced when dependencies are built.
