file(REMOVE_RECURSE
  "CMakeFiles/integration_domain_reproduction_test.dir/integration/domain_reproduction_test.cc.o"
  "CMakeFiles/integration_domain_reproduction_test.dir/integration/domain_reproduction_test.cc.o.d"
  "integration_domain_reproduction_test"
  "integration_domain_reproduction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_domain_reproduction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
