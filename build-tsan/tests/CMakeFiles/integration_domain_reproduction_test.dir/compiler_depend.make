# Empty compiler generated dependencies file for integration_domain_reproduction_test.
# This may be replaced when dependencies are built.
