file(REMOVE_RECURSE
  "CMakeFiles/integration_end_to_end_test.dir/integration/end_to_end_test.cc.o"
  "CMakeFiles/integration_end_to_end_test.dir/integration/end_to_end_test.cc.o.d"
  "integration_end_to_end_test"
  "integration_end_to_end_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_end_to_end_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
