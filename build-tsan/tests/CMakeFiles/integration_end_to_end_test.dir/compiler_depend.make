# Empty compiler generated dependencies file for integration_end_to_end_test.
# This may be replaced when dependencies are built.
