file(REMOVE_RECURSE
  "CMakeFiles/integration_property_test.dir/integration/property_test.cc.o"
  "CMakeFiles/integration_property_test.dir/integration/property_test.cc.o.d"
  "integration_property_test"
  "integration_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
