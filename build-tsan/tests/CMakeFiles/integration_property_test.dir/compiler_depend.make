# Empty compiler generated dependencies file for integration_property_test.
# This may be replaced when dependencies are built.
