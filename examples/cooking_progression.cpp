// Cooking-domain walkthrough: pick the number of skill levels from data
// (Figure 3's procedure), train on simulated recipe activity, inspect the
// learned progression, and shortlist recipes that would stretch a
// specific user slightly beyond their current level — the paper's
// upskilling recommendation scenario.
//
// Build & run:  ./build/examples/example_cooking_progression

#include <algorithm>
#include <cstdio>

#include "core/difficulty.h"
#include "core/model_selection.h"
#include "core/trainer.h"
#include "datagen/cooking.h"

int main() {
  using namespace upskill;

  datagen::CookingConfig data_config;
  data_config.num_users = 500;
  data_config.num_recipes = 2000;
  auto data = datagen::GenerateCooking(data_config);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const Dataset& dataset = data.value().dataset;

  // Data-driven choice of S: train on 90%, score held-out actions.
  SkillModelConfig base;
  base.min_init_actions = 15;
  base.max_iterations = 20;
  Rng rng(42);
  const std::vector<int> candidates = {3, 4, 5, 6};
  auto selection =
      SelectSkillCount(dataset, candidates, base, /*test_fraction=*/0.1, rng);
  if (!selection.ok()) return 1;
  std::printf("held-out log-likelihood per S:\n");
  for (const SkillCountPoint& point : selection.value().curve) {
    std::printf("  S=%d  %.1f\n", point.num_levels,
                point.held_out_log_likelihood);
  }
  const int S = selection.value().best_num_levels;
  std::printf("selected S = %d\n\n", S);

  // Train the final model on all data.
  SkillModelConfig config = base;
  config.num_levels = S;
  config.max_iterations = 50;
  Trainer trainer(config);
  auto trained = trainer.Train(dataset);
  if (!trained.ok()) return 1;

  // Learned progression: step counts per level.
  const int f_steps = dataset.schema().FeatureIndex("num_steps").value();
  std::printf("mean #steps of recipes cooked per level:\n");
  for (int s = 1; s <= S; ++s) {
    std::printf("  level %d: %.2f\n", s,
                trained.value().model.component(f_steps, s).Mean());
  }

  // Difficulty on the same scale, then a stretch-recommendation for the
  // most active user: recipes just above their current level.
  auto difficulty = EstimateDifficultyByGeneration(
      dataset.items(), trained.value().model, DifficultyPrior::kEmpirical,
      trained.value().assignments);
  if (!difficulty.ok()) return 1;

  UserId target = 0;
  for (UserId u = 1; u < dataset.num_users(); ++u) {
    if (dataset.sequence(u).size() > dataset.sequence(target).size()) {
      target = u;
    }
  }
  const int current_level =
      trained.value().assignments[static_cast<size_t>(target)].back();
  std::printf("\nuser %d (%zu recipes cooked) is at level %d\n", target,
              dataset.sequence(target).size(), current_level);

  // Candidate stretch recipes: difficulty in (level, level + 0.7].
  struct Candidate {
    ItemId recipe;
    double difficulty;
  };
  std::vector<Candidate> candidates_list;
  for (ItemId i = 0; i < dataset.items().num_items(); ++i) {
    const double d = difficulty.value()[static_cast<size_t>(i)];
    if (d > current_level && d <= current_level + 0.7) {
      candidates_list.push_back({i, d});
    }
  }
  std::sort(candidates_list.begin(), candidates_list.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.difficulty < b.difficulty;
            });
  std::printf("stretch recipes (difficulty in (%d, %.1f]):\n", current_level,
              current_level + 0.7);
  for (size_t i = 0; i < candidates_list.size() && i < 5; ++i) {
    std::printf("  %-14s difficulty %.2f\n",
                dataset.items().name(candidates_list[i].recipe).c_str(),
                candidates_list[i].difficulty);
  }
  return 0;
}
