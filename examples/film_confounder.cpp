// Film-domain walkthrough: detecting and fixing a temporal confounder.
//
// In domains where users prefer *recent* items (movies, news, fashion),
// release-recency drift masquerades as skill: a progression model happily
// "learns" that early actions (old releases) are low-skill and late
// actions (new releases) are high-skill (the paper's Table IV). This
// example shows the diagnostic — mean release year per learned level —
// and the fix: drop items released after the first observed action
// (Section VI-C / Table V), after which genuine taste maturation emerges.
//
// Build & run:  ./build/examples/example_film_confounder

#include <cstdio>

#include "core/dominance.h"
#include "core/trainer.h"
#include "data/filter.h"
#include "datagen/film.h"

namespace {

using namespace upskill;

// Mean release year of each level's top-20 movies: the drift diagnostic.
int PrintDiagnostic(const Dataset& dataset, const char* label) {
  SkillModelConfig config;
  config.num_levels = 5;
  config.min_init_actions = 50;
  Trainer trainer(config);
  const auto trained = trainer.Train(dataset);
  if (!trained.ok()) {
    std::fprintf(stderr, "%s\n", trained.status().ToString().c_str());
    return 1;
  }
  const auto release =
      dataset.items().Metadata(datagen::kFilmReleaseTimeKey);
  if (!release.ok()) return 1;
  const int id_feature = dataset.schema().id_feature();

  std::printf("%s\n", label);
  std::printf("  %-6s %-18s %s\n", "level", "mean release year",
              "top movie");
  for (int s = 1; s <= 5; ++s) {
    const auto top =
        TopFrequentCategories(trained.value().model, id_feature, s, 20);
    if (!top.ok()) return 1;
    double year_sum = 0.0;
    for (const DominanceEntry& entry : top.value()) {
      year_sum += release.value()[static_cast<size_t>(entry.category)] /
                  365.25;
    }
    std::printf("  %-6d %-18.1f %s\n", s,
                year_sum / static_cast<double>(top.value().size()),
                dataset.items().name(top.value()[0].category).c_str());
  }
  return 0;
}

}  // namespace

int main() {
  datagen::FilmConfig config;
  config.num_users = 600;
  config.num_filler_movies = 800;
  config.mean_sequence_length = 60.0;
  auto data = datagen::GenerateFilm(config);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }

  std::printf("Step 1: train naively. If the per-level mean release year\n"
              "climbs steadily, the model has learned the calendar, not\n"
              "the users.\n\n");
  if (PrintDiagnostic(data.value().dataset,
                      "naive model (lastness confounded):") != 0) {
    return 1;
  }

  std::printf("\nStep 2: apply the paper's preprocessing — drop items\n"
              "released after the earliest action, so every remaining item\n"
              "was selectable at every time.\n\n");
  const auto filtered =
      FilterOldItems(data.value().dataset, datagen::kFilmReleaseTimeKey);
  if (!filtered.ok()) {
    std::fprintf(stderr, "%s\n", filtered.status().ToString().c_str());
    return 1;
  }
  std::printf("removed %d of %d movies\n\n",
              data.value().dataset.items().num_items() -
                  filtered.value().dataset.items().num_items(),
              data.value().dataset.items().num_items());
  if (PrintDiagnostic(filtered.value().dataset,
                      "after preprocessing (taste signal):") != 0) {
    return 1;
  }

  std::printf(
      "\nReading the result: before preprocessing the year column climbs\n"
      "with the level (drift = skill); after it, the top level skews\n"
      "toward old classics while the bottom holds 90s blockbusters — the\n"
      "taste-maturation signal the paper reports in Table V.\n");
  return 0;
}
