// Language-domain walkthrough: a domain with *single-use items* (every
// action posts a brand-new article, so an item-ID model learns nothing).
// The multi-faceted model instead learns from features shared across
// articles, recovering (a) falling correction counts and (b) the
// beginner-vs-advanced split of correction rules (paper Fig. 4 and
// Table II).
//
// Build & run:  ./build/examples/example_language_learning

#include <cstdio>

#include "core/dominance.h"
#include "core/trainer.h"
#include "core/trajectory.h"
#include "datagen/language.h"

int main() {
  using namespace upskill;

  datagen::LanguageConfig data_config;
  data_config.num_users = 1500;
  auto data = datagen::GenerateLanguage(data_config);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const Dataset& dataset = data.value().dataset;
  std::printf("dataset: %d learners, %zu articles (each written once)\n",
              dataset.num_users(), dataset.num_actions());

  SkillModelConfig config;
  config.num_levels = 3;  // the paper's choice for this domain
  config.min_init_actions = 50;
  Trainer trainer(config);
  auto trained = trainer.Train(dataset);
  if (!trained.ok()) {
    std::fprintf(stderr, "%s\n", trained.status().ToString().c_str());
    return 1;
  }
  const SkillModel& model = trained.value().model;

  // Fig. 4-style component summary.
  const int f_corrections =
      dataset.schema().FeatureIndex("corrections_per_corrector").value();
  const int f_sentences =
      dataset.schema().FeatureIndex("sentence_count").value();
  std::printf("\nlearned components per level:\n");
  std::printf("  %-6s %-22s %-18s\n", "level", "corrections/corrector",
              "sentences/article");
  for (int s = 1; s <= 3; ++s) {
    std::printf("  %-6d %-22.2f %-18.2f\n", s,
                model.component(f_corrections, s).Mean(),
                model.component(f_sentences, s).Mean());
  }

  // Table II-style dominance of correction rules.
  const int f_rule =
      dataset.schema().FeatureIndex("correction_rule").value();
  std::printf("\ncorrections typical of beginners:\n");
  auto beginner = TopDominantCategories(model, f_rule, 5, /*skilled=*/false);
  if (beginner.ok()) {
    for (const DominanceEntry& entry : beginner.value()) {
      std::printf("  %-22s %+.4f\n", entry.label.c_str(), entry.score);
    }
  }
  std::printf("corrections typical of advanced learners:\n");
  auto advanced = TopDominantCategories(model, f_rule, 5, /*skilled=*/true);
  if (advanced.ok()) {
    for (const DominanceEntry& entry : advanced.value()) {
      std::printf("  %-22s %+.4f\n", entry.label.c_str(), entry.score);
    }
  }

  // How long do learners take to level up?
  const auto summary =
      SummarizeTrajectories(trained.value().assignments, 3);
  if (summary.ok() && summary.value().level_ups > 0) {
    std::printf("\nrecovered pace: one level-up every %.1f articles; "
                "%zu/%zu/%zu learners end at levels 1/2/3\n",
                summary.value().actions_per_level_up,
                summary.value().users_ending_at_level[0],
                summary.value().users_ending_at_level[1],
                summary.value().users_ending_at_level[2]);
  }
  return 0;
}
