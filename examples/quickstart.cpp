// Quickstart: the full upskill pipeline in ~80 lines.
//
//   1. Build a dataset (here: the paper's synthetic generator).
//   2. Train the multi-faceted progression model.
//   3. Read the recovered per-action skill levels.
//   4. Estimate item difficulty on the same 1..S scale.
//   5. Score the recovery against the generator's ground truth.
//
// Build & run:  ./build/examples/example_quickstart

#include <cstdio>

#include "core/difficulty.h"
#include "core/trainer.h"
#include "datagen/synthetic.h"
#include "eval/metrics.h"

int main() {
  using namespace upskill;

  // 1. A small synthetic world: 5 latent skill levels, 200 users, items
  //    whose features drift with the level that produced them.
  datagen::SyntheticConfig data_config;
  data_config.num_users = 200;
  data_config.num_items = 1000;
  data_config.mean_sequence_length = 40.0;
  auto data = datagen::GenerateSynthetic(data_config);
  if (!data.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }
  const Dataset& dataset = data.value().dataset;
  std::printf("dataset: %d users, %d items, %zu actions\n",
              dataset.num_users(), dataset.items().num_items(),
              dataset.num_actions());

  // 2. Train. The trainer alternates the DP assignment step with
  //    per-(feature, level) maximum-likelihood updates until convergence.
  SkillModelConfig config;
  config.num_levels = 5;
  config.min_init_actions = 25;
  Trainer trainer(config);
  auto trained = trainer.Train(dataset);
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 trained.status().ToString().c_str());
    return 1;
  }
  std::printf("trained in %d iterations (log-likelihood %.1f)\n",
              trained.value().iterations,
              trained.value().final_log_likelihood);

  // 3. Per-action skill levels: assignments[user][n] in {1..5}.
  const SkillAssignments& skills = trained.value().assignments;
  std::printf("user 0 skill trajectory:");
  for (int level : skills[0]) std::printf(" %d", level);
  std::printf("\n");

  // 4. Item difficulty from the generative model (works for items nobody
  //    selected yet), empirical skill prior.
  auto difficulty = EstimateDifficultyByGeneration(
      dataset.items(), trained.value().model, DifficultyPrior::kEmpirical,
      skills);
  if (!difficulty.ok()) return 1;
  std::printf("item 0 difficulty: %.2f (scale 1..5)\n",
              difficulty.value()[0]);

  // 5. Score against ground truth.
  std::vector<double> flat_estimated;
  std::vector<double> flat_truth;
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    for (size_t n = 0; n < skills[static_cast<size_t>(u)].size(); ++n) {
      flat_estimated.push_back(skills[static_cast<size_t>(u)][n]);
      flat_truth.push_back(
          data.value().truth.skill[static_cast<size_t>(u)][n]);
    }
  }
  std::printf("skill recovery:      Pearson r = %.3f\n",
              eval::PearsonCorrelation(flat_estimated, flat_truth));
  std::printf("difficulty recovery: Pearson r = %.3f\n",
              eval::PearsonCorrelation(difficulty.value(),
                                       data.value().truth.difficulty));
  return 0;
}
