// upskill_cli — command-line front end for the library. Commands:
//
//   generate       build a simulated dataset (synthetic | language |
//                  cooking | beer | film)
//   import         ingest a raw user,time,item[,rating] CSV event log
//   stats          dataset counts, schema, optional per-feature detail
//   select-levels  choose S by held-out likelihood (Fig. 3 procedure)
//   train          fit the progression model (hard, --em, --transitions,
//                  --threads)
//   assign         per-action skill levels (histogram, --user trace,
//                  --out CSV)
//   summary        trajectory statistics (starts/ends per level, pace)
//   model          human-readable report of the learned components
//   difficulty     per-item difficulty (CSV or --top list)
//   recommend      upskilling shortlist for one user
//   snapshot       package model + items + difficulty into a binary
//                  serving snapshot
//   dataset        columnar store tooling: pack a CSV dataset into the
//                  mmap format, inspect a store file, compact an ingest
//                  log into a base store
//   serve          online serving loop over stdin/stdout (see README
//                  "Serving" for the protocol); --ingest-log tees
//                  observed actions into the append-only store log
//
// Run with no arguments for full flag syntax. Datasets are the CSV
// directories written by SaveDataset (schema.csv, items.csv, users.csv,
// actions.csv), so generated data can be inspected and edited with
// ordinary tools.

#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/assignments_io.h"
#include "core/difficulty.h"
#include "core/em_trainer.h"
#include "core/online_trainer.h"
#include "core/model_report.h"
#include "core/model_selection.h"
#include "core/recommend.h"
#include "core/trainer.h"
#include "core/trajectory.h"
#include "data/io.h"
#include "common/string_util.h"
#include "data/describe.h"
#include "data/log_builder.h"
#include "data/statistics.h"
#include "datagen/beer.h"
#include "datagen/cooking.h"
#include "datagen/film.h"
#include "datagen/language.h"
#include "datagen/synthetic.h"
#include "exec/backend.h"
#include "exec/backend_registry.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/trace.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/http_admin.h"
#include "net/net_server.h"
#include "serve/server.h"
#include "serve/serving_model.h"
#include "serve/snapshot.h"
#include "store/compact.h"
#include "store/ingest_log.h"
#include "store/store_reader.h"
#include "store/store_writer.h"

namespace {

using namespace upskill;

// Minimal flag parser: positional arguments plus --key value / --switch.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  bool HasFlag(const std::string& name) const { return flags.count(name) > 0; }
  long long IntFlag(const std::string& name, long long fallback) const {
    const auto it = flags.find(name);
    if (it == flags.end()) return fallback;
    const auto parsed = ParseInt(it->second);
    return parsed.ok() ? parsed.value() : fallback;
  }
  std::string StringFlag(const std::string& name,
                         const std::string& fallback) const {
    const auto it = flags.find(name);
    return it == flags.end() ? fallback : it->second;
  }
};

// Every --flag is either a boolean switch or takes exactly one value.
// Declaring which is which up front is what lets the parser reject a
// value-taking flag whose value is missing or looks like another flag
// (`train d m.csv --levels --em` used to silently train with default S).
const std::set<std::string> kValueFlags = {
    "users", "seed",    "levels", "threads", "user",  "out",
    "top",   "stretch", "prior",  "min",     "max",   "shards",
    "backend", "metrics-out", "trace-out",
    "listen", "net-workers", "deadline-ms", "max-conns",
    "checkpoint", "previous", "ingest-log",
    "admin-listen", "flight-recorder-size", "flight-recorder-sample",
};
const std::set<std::string> kSwitchFlags = {
    "em", "verbose", "transitions", "detail", "quantized", "binary",
    "from-store", "online",
};

Result<Args> ParseArgs(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      const std::string name = token.substr(2);
      if (kValueFlags.count(name) > 0) {
        if (i + 1 >= argc || std::string(argv[i + 1]).rfind("--", 0) == 0) {
          return Status::InvalidArgument("flag --" + name +
                                         " requires a value");
        }
        args.flags[name] = argv[++i];
      } else if (kSwitchFlags.count(name) > 0) {
        args.flags[name] = "";  // boolean switch
      } else {
        return Status::InvalidArgument("unknown flag --" + name);
      }
    } else {
      args.positional.push_back(token);
    }
  }
  return args;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

Status WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return Status::IoError("cannot open " + path);
  const size_t written = std::fwrite(content.data(), 1, content.size(), file);
  const bool closed = std::fclose(file) == 0;
  if (written != content.size() || !closed) {
    return Status::IoError("short write to " + path);
  }
  return Status::OK();
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: upskill_cli <command> ...\n"
      "  generate <domain> <out_dir> [--users N] [--seed X]\n"
      "  import <log.csv> <out_dir>        (user,time,item[,rating] rows)\n"
      "  stats <data_dir> [--detail]\n"
      "  select-levels <data_dir> [--min 2] [--max 8]\n"
      "  train <data_dir> <model_out.csv> [--levels S] [--em]\n"
      "        [--transitions] [--threads N] [--verbose]\n"
      "        [--backend serial|pool|numa]   (execution backend; results\n"
      "        are bitwise identical across backends — default picks pool\n"
      "        when --threads > 1 and serial otherwise)\n"
      "        [--metrics-out metrics.prom] [--trace-out trace.json]\n"
      "        [--from-store]   (read a packed .store instead of CSVs)\n"
      "        [--online --checkpoint ck.bin [--previous prev.store]]\n"
      "        (incremental refresh from an online-EM checkpoint when\n"
      "        --previous names the dataset the checkpoint was trained\n"
      "        on; full-batch replay that seeds the checkpoint otherwise)\n"
      "  assign <data_dir> <model.csv> [--levels S] [--user U] [--out f.csv]\n"
      "  summary <data_dir> <model.csv> [--levels S]\n"
      "  model <data_dir> <model.csv> [--levels S] [--top 3]\n"
      "  difficulty <data_dir> <model.csv> [--levels S]\n"
      "        [--prior empirical|uniform] [--top K]\n"
      "  recommend <data_dir> <model.csv> --user U [--levels S]\n"
      "        [--stretch 1.0] [--top 10]\n"
      "  snapshot <data_dir> <model.csv> <out.snap> [--levels S]\n"
      "        [--prior empirical|uniform] [--transitions] [--threads N]\n"
      "  dataset pack <data_dir> <out.store>\n"
      "  dataset inspect <file.store>\n"
      "  dataset compact <base.store> <log.ingest> <out.store>\n"
      "  serve <snapshot.snap> [--threads N] [--shards N] [--quantized]\n"
      "        [--backend serial|pool|numa]   (backend for snapshot\n"
      "        builds, requantization, and batch fan-out)\n"
      "        [--ingest-log log.ingest]   (tee observed actions into the\n"
      "        append-only store log for later compaction + refresh)\n"
      "        (newline-delimited protocol on stdin/stdout; see README)\n"
      "        [--listen host:port] [--net-workers N] [--deadline-ms D]\n"
      "        [--max-conns N]   (TCP front end instead of stdio; text and\n"
      "        binary protocols share the port; runs until stdin closes)\n"
      "        [--admin-listen host:port]   (HTTP admin plane on its own\n"
      "        port: /metrics /healthz /statusz /tracez; works with both\n"
      "        the stdio and --listen front ends)\n"
      "        [--flight-recorder-size K]   (ring of the last K completed\n"
      "        requests + tail-sampled errors/sheds/slowest, dumped by\n"
      "        /tracez; default 4096, 0 disables)\n"
      "        [--flight-recorder-sample N] (keep one in N completions in\n"
      "        the ring; errors/sheds/slowest always kept; default 16,\n"
      "        1 records everything)\n"
      "  client <host:port> [--binary]\n"
      "        (forward stdin request lines to a serve --listen process;\n"
      "        --binary re-encodes them as binary frames)\n");
  return 2;
}

int CmdGenerate(const Args& args) {
  if (args.positional.size() != 2) return Usage();
  const std::string& domain = args.positional[0];
  const std::string& out_dir = args.positional[1];
  const int users = static_cast<int>(args.IntFlag("users", 0));
  const uint64_t seed = static_cast<uint64_t>(args.IntFlag("seed", 0));

  Result<datagen::GeneratedData> data = [&]() -> Result<datagen::GeneratedData> {
    if (domain == "synthetic") {
      datagen::SyntheticConfig config;
      if (users > 0) config.num_users = users;
      if (seed > 0) config.seed = seed;
      return datagen::GenerateSynthetic(config);
    }
    if (domain == "language") {
      datagen::LanguageConfig config;
      if (users > 0) config.num_users = users;
      if (seed > 0) config.seed = seed;
      return datagen::GenerateLanguage(config);
    }
    if (domain == "cooking") {
      datagen::CookingConfig config;
      if (users > 0) config.num_users = users;
      if (seed > 0) config.seed = seed;
      return datagen::GenerateCooking(config);
    }
    if (domain == "beer") {
      datagen::BeerConfig config;
      if (users > 0) config.num_users = users;
      if (seed > 0) config.seed = seed;
      return datagen::GenerateBeer(config);
    }
    if (domain == "film") {
      datagen::FilmConfig config;
      if (users > 0) config.num_users = users;
      if (seed > 0) config.seed = seed;
      return datagen::GenerateFilm(config);
    }
    return Status::InvalidArgument("unknown domain: " + domain);
  }();
  if (!data.ok()) return Fail(data.status());

  const Status saved = SaveDataset(data.value().dataset, out_dir);
  if (!saved.ok()) return Fail(saved);
  const DatasetStats stats = ComputeDatasetStats(data.value().dataset);
  std::printf("wrote %s: %d users, %d items, %zu actions\n", out_dir.c_str(),
              stats.num_users, stats.num_table_items, stats.num_actions);
  return 0;
}

int CmdImport(const Args& args) {
  if (args.positional.size() != 2) return Usage();
  const auto dataset = LoadActionLogCsv(args.positional[0]);
  if (!dataset.ok()) return Fail(dataset.status());
  const Status saved = SaveDataset(dataset.value(), args.positional[1]);
  if (!saved.ok()) return Fail(saved);
  const DatasetStats stats = ComputeDatasetStats(dataset.value());
  std::printf("imported %zu actions (%d users, %d items) -> %s\n",
              stats.num_actions, stats.num_users, stats.num_table_items,
              args.positional[1].c_str());
  return 0;
}

int CmdStats(const Args& args) {
  if (args.positional.size() != 1) return Usage();
  const auto dataset = LoadDataset(args.positional[0]);
  if (!dataset.ok()) return Fail(dataset.status());
  const DatasetStats stats = ComputeDatasetStats(dataset.value());
  std::printf("users:             %d\n", stats.num_users);
  std::printf("items (table):     %d\n", stats.num_table_items);
  std::printf("items (selected):  %d\n", stats.num_used_items);
  std::printf("actions:           %zu\n", stats.num_actions);
  std::printf("sequence length:   mean %.1f, min %zu, max %zu\n",
              stats.mean_sequence_length, stats.min_sequence_length,
              stats.max_sequence_length);
  std::printf("rating coverage:   %.1f%%\n", 100.0 * stats.rating_coverage);
  std::printf("features:\n");
  for (int f = 0; f < dataset.value().schema().num_features(); ++f) {
    const FeatureSpec& spec = dataset.value().schema().feature(f);
    std::printf("  %-24s %s (%s)%s\n", spec.name.c_str(),
                FeatureTypeToString(spec.type),
                DistributionKindToString(spec.distribution),
                f == dataset.value().schema().id_feature() ? "  [item id]"
                                                           : "");
  }
  if (args.HasFlag("detail")) {
    // Per-feature distributions over the selected actions.
    const DatasetDescription description =
        DescribeDataset(dataset.value());
    std::printf("\naction-weighted feature summary:\n%s",
                FormatDescription(description, dataset.value().schema())
                    .c_str());
  }
  return 0;
}

SkillModelConfig ConfigFromArgs(const Args& args) {
  SkillModelConfig config;
  config.num_levels = static_cast<int>(args.IntFlag("levels", 5));
  config.verbose = args.HasFlag("verbose");
  const int threads = static_cast<int>(args.IntFlag("threads", 1));
  if (threads > 1) {
    config.parallel.num_threads = threads;
    config.parallel.users = true;
    config.parallel.levels = true;
    config.parallel.features = true;
  }
  if (args.HasFlag("transitions")) {
    config.transitions = TransitionModel::kGlobal;
  }
  config.backend = args.StringFlag("backend", "");
  return config;
}

// `--from-store` swaps the CSV loader for the zero-copy mmap reader; the
// returned Dataset keeps the mapping alive, so trainer/eval code runs on
// it unmodified (and datasets larger than RAM page in on demand).
Result<Dataset> LoadDatasetOrStore(const std::string& path, bool from_store) {
  if (!from_store) return LoadDataset(path);
  auto reader = store::StoreReader::Open(path);
  if (!reader.ok()) return reader.status();
  return reader.value().MapDataset();
}

// `train --online`: seed or advance an OnlineTrainer checkpoint. With
// --previous, one incremental Refresh over the delta between the two
// dataset versions; without, a full-batch replay (bitwise identical to
// plain `train`) that establishes the checkpoint.
int TrainOnline(const Args& args, const Dataset& dataset,
                const SkillModelConfig& config) {
  const std::string checkpoint = args.StringFlag("checkpoint", "");
  if (checkpoint.empty()) {
    return Fail(Status::InvalidArgument("--online requires --checkpoint"));
  }
  if (args.HasFlag("em")) {
    return Fail(Status::InvalidArgument(
        "--online supports the hard-assignment trainer only"));
  }
  const int threads = static_cast<int>(args.IntFlag("threads", 1));
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);

  OnlineTrainer trainer(config);
  if (args.HasFlag("previous")) {
    const auto previous = LoadDatasetOrStore(
        args.StringFlag("previous", ""), args.HasFlag("from-store"));
    if (!previous.ok()) return Fail(previous.status());
    auto loaded = OnlineTrainer::LoadCheckpoint(checkpoint, config);
    if (!loaded.ok()) return Fail(loaded.status());
    trainer = std::move(loaded).value();
    const auto stats = trainer.Refresh(previous.value(), dataset, pool.get());
    if (!stats.ok()) return Fail(stats.status());
    std::printf("refreshed: %zu dirty users (%zu new), %zu clean; "
                "%zu actions added, %zu replaced, %.3fs\n",
                stats.value().dirty_users, stats.value().new_users,
                stats.value().clean_users, stats.value().actions_added,
                stats.value().actions_removed, stats.value().refresh_seconds);
  } else {
    const auto result = trainer.TrainFullReplay(dataset);
    if (!result.ok()) return Fail(result.status());
    std::printf("full replay: %d iterations (log-likelihood %.1f)\n",
                result.value().iterations,
                result.value().final_log_likelihood);
  }
  const Status saved_ck = trainer.SaveCheckpoint(checkpoint);
  if (!saved_ck.ok()) return Fail(saved_ck);
  const Status saved = trainer.model().Save(args.positional[1]);
  if (!saved.ok()) return Fail(saved);
  std::printf("checkpoint -> %s; model -> %s\n", checkpoint.c_str(),
              args.positional[1].c_str());
  return 0;
}

int CmdTrain(const Args& args) {
  if (args.positional.size() != 2) return Usage();
  const auto dataset =
      LoadDatasetOrStore(args.positional[0], args.HasFlag("from-store"));
  if (!dataset.ok()) return Fail(dataset.status());
  const SkillModelConfig config = ConfigFromArgs(args);
  if (args.HasFlag("online")) {
    return TrainOnline(args, dataset.value(), config);
  }

  // Telemetry sinks: --trace-out captures one Chrome-tracing span per
  // trainer phase per iteration; --metrics-out dumps the Prometheus
  // exposition after training. Both are pure observers — the trained
  // model is bitwise identical with or without them.
  const std::string metrics_out = args.StringFlag("metrics-out", "");
  const std::string trace_out = args.StringFlag("trace-out", "");
  if (!trace_out.empty()) obs::TraceRecorder::Global().Enable();

  SkillModel model;
  double final_ll = 0.0;
  int iterations = 0;
  if (args.HasFlag("em")) {
    EmTrainerConfig em_config;
    em_config.model = config;
    const auto result = EmTrainer(em_config).Train(dataset.value());
    if (!result.ok()) return Fail(result.status());
    model = result.value().model;
    final_ll = result.value().final_log_likelihood;
    iterations = result.value().iterations;
  } else {
    const auto result = Trainer(config).Train(dataset.value());
    if (!result.ok()) return Fail(result.status());
    model = result.value().model;
    final_ll = result.value().final_log_likelihood;
    iterations = result.value().iterations;
  }
  const Status saved = model.Save(args.positional[1]);
  if (!saved.ok()) return Fail(saved);
  if (!trace_out.empty()) {
    obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
    recorder.Disable();
    const Status wrote =
        WriteTextFile(trace_out, obs::RenderChromeTrace(recorder));
    if (!wrote.ok()) return Fail(wrote);
    std::printf("trace -> %s (%zu spans)\n", trace_out.c_str(),
                recorder.Events().size());
  }
  if (!metrics_out.empty()) {
    const Status wrote = WriteTextFile(
        metrics_out, obs::RenderPrometheus(obs::MetricsRegistry::Global()));
    if (!wrote.ok()) return Fail(wrote);
    std::printf("metrics -> %s\n", metrics_out.c_str());
  }
  std::printf("trained %d levels in %d iterations (log-likelihood %.1f); "
              "model -> %s\n",
              config.num_levels, iterations, final_ll,
              args.positional[1].c_str());
  return 0;
}

int CmdAssign(const Args& args) {
  if (args.positional.size() != 2) return Usage();
  const auto dataset = LoadDataset(args.positional[0]);
  if (!dataset.ok()) return Fail(dataset.status());
  SkillModelConfig config = ConfigFromArgs(args);
  const auto model =
      SkillModel::Load(args.positional[1], dataset.value().schema(), config);
  if (!model.ok()) return Fail(model.status());

  const SkillAssignments assignments =
      AssignSkills(dataset.value(), model.value());
  if (args.HasFlag("out")) {
    const std::string out = args.StringFlag("out", "");
    const Status saved = SaveAssignments(assignments, out);
    if (!saved.ok()) return Fail(saved);
    std::printf("assignments -> %s\n", out.c_str());
  }
  if (args.HasFlag("user")) {
    const UserId user = static_cast<UserId>(args.IntFlag("user", 0));
    if (user < 0 || user >= dataset.value().num_users()) {
      return Fail(Status::OutOfRange("no such user"));
    }
    std::printf("user %d (%s):", user,
                dataset.value().user_name(user).c_str());
    for (int level : assignments[static_cast<size_t>(user)]) {
      std::printf(" %d", level);
    }
    std::printf("\n");
    return 0;
  }
  // Level histogram over all actions.
  std::vector<size_t> histogram(static_cast<size_t>(config.num_levels), 0);
  size_t total = 0;
  for (const auto& seq : assignments) {
    for (int level : seq) {
      ++histogram[static_cast<size_t>(level - 1)];
      ++total;
    }
  }
  std::printf("actions per skill level:\n");
  for (int s = 1; s <= config.num_levels; ++s) {
    std::printf("  level %d: %8zu (%.1f%%)\n", s,
                histogram[static_cast<size_t>(s - 1)],
                total == 0 ? 0.0
                           : 100.0 * histogram[static_cast<size_t>(s - 1)] /
                                 static_cast<double>(total));
  }
  return 0;
}

int CmdDifficulty(const Args& args) {
  if (args.positional.size() != 2) return Usage();
  const auto dataset = LoadDataset(args.positional[0]);
  if (!dataset.ok()) return Fail(dataset.status());
  SkillModelConfig config = ConfigFromArgs(args);
  const auto model =
      SkillModel::Load(args.positional[1], dataset.value().schema(), config);
  if (!model.ok()) return Fail(model.status());

  const SkillAssignments assignments =
      AssignSkills(dataset.value(), model.value());
  const std::string prior = args.StringFlag("prior", "empirical");
  const auto difficulty = EstimateDifficultyByGeneration(
      dataset.value().items(), model.value(),
      prior == "uniform" ? DifficultyPrior::kUniform
                         : DifficultyPrior::kEmpirical,
      assignments);
  if (!difficulty.ok()) return Fail(difficulty.status());

  const int top = static_cast<int>(args.IntFlag("top", 0));
  if (top > 0) {
    std::vector<ItemId> order(difficulty.value().size());
    for (size_t i = 0; i < order.size(); ++i) {
      order[i] = static_cast<ItemId>(i);
    }
    std::sort(order.begin(), order.end(), [&](ItemId a, ItemId b) {
      return difficulty.value()[static_cast<size_t>(a)] >
             difficulty.value()[static_cast<size_t>(b)];
    });
    std::printf("hardest %d items:\n", top);
    for (int i = 0; i < top && i < static_cast<int>(order.size()); ++i) {
      const ItemId item = order[static_cast<size_t>(i)];
      std::printf("  %8d  %.3f  %s\n", item,
                  difficulty.value()[static_cast<size_t>(item)],
                  dataset.value().items().name(item).c_str());
    }
    return 0;
  }
  std::printf("item,difficulty\n");
  for (size_t i = 0; i < difficulty.value().size(); ++i) {
    std::printf("%zu,%.6f\n", i, difficulty.value()[i]);
  }
  return 0;
}

int CmdModel(const Args& args) {
  if (args.positional.size() != 2) return Usage();
  const auto dataset = LoadDataset(args.positional[0]);
  if (!dataset.ok()) return Fail(dataset.status());
  SkillModelConfig config = ConfigFromArgs(args);
  const auto model =
      SkillModel::Load(args.positional[1], dataset.value().schema(), config);
  if (!model.ok()) return Fail(model.status());
  std::printf("%s",
              FormatModelReport(model.value(),
                                static_cast<int>(args.IntFlag("top", 3)))
                  .c_str());
  return 0;
}

int CmdSummary(const Args& args) {
  if (args.positional.size() != 2) return Usage();
  const auto dataset = LoadDataset(args.positional[0]);
  if (!dataset.ok()) return Fail(dataset.status());
  SkillModelConfig config = ConfigFromArgs(args);
  const auto model =
      SkillModel::Load(args.positional[1], dataset.value().schema(), config);
  if (!model.ok()) return Fail(model.status());
  const SkillAssignments assignments =
      AssignSkills(dataset.value(), model.value());
  const auto summary =
      SummarizeTrajectories(assignments, config.num_levels);
  if (!summary.ok()) return Fail(summary.status());
  std::printf("%-8s %12s %10s %10s\n", "level", "actions", "starts",
              "ends");
  for (int s = 1; s <= config.num_levels; ++s) {
    std::printf("%-8d %12zu %10zu %10zu\n", s,
                summary.value().actions_per_level[static_cast<size_t>(s - 1)],
                summary.value()
                    .users_starting_at_level[static_cast<size_t>(s - 1)],
                summary.value()
                    .users_ending_at_level[static_cast<size_t>(s - 1)]);
  }
  std::printf("level-ups: %zu (one every %.1f actions)\n",
              summary.value().level_ups,
              summary.value().actions_per_level_up);
  if (summary.value().level_downs > 0) {
    std::printf("level-downs: %zu\n", summary.value().level_downs);
  }
  return 0;
}

int CmdRecommend(const Args& args) {
  if (args.positional.size() != 2 || !args.HasFlag("user")) return Usage();
  const auto dataset = LoadDataset(args.positional[0]);
  if (!dataset.ok()) return Fail(dataset.status());
  SkillModelConfig config = ConfigFromArgs(args);
  const auto model =
      SkillModel::Load(args.positional[1], dataset.value().schema(), config);
  if (!model.ok()) return Fail(model.status());
  const SkillAssignments assignments =
      AssignSkills(dataset.value(), model.value());
  const auto difficulty = EstimateDifficultyByGeneration(
      dataset.value().items(), model.value(), DifficultyPrior::kEmpirical,
      assignments);
  if (!difficulty.ok()) return Fail(difficulty.status());

  const UserId user = static_cast<UserId>(args.IntFlag("user", 0));
  UpskillRecommendationOptions options;
  options.max_results = static_cast<int>(args.IntFlag("top", 10));
  const auto stretch = args.flags.find("stretch");
  if (stretch != args.flags.end()) {
    const auto parsed = ParseDouble(stretch->second);
    if (parsed.ok()) options.stretch = parsed.value();
  }
  const auto picks = RecommendForUpskilling(
      dataset.value(), model.value(), assignments, difficulty.value(), user,
      options);
  if (!picks.ok()) return Fail(picks.status());

  const int level = assignments[static_cast<size_t>(user)].back();
  std::printf("user %d is at level %d of %d; stretch window (%d, %.2f]\n",
              user, level, config.num_levels, level,
              level + options.stretch);
  for (const UpskillRecommendation& pick : picks.value()) {
    std::printf("  %8d  difficulty %.2f  logP %.2f  %s\n", pick.item,
                pick.difficulty, pick.log_prob,
                dataset.value().items().name(pick.item).c_str());
  }
  if (picks.value().empty()) std::printf("  (no eligible items)\n");
  return 0;
}

int CmdSnapshot(const Args& args) {
  if (args.positional.size() != 3) return Usage();
  const auto dataset = LoadDataset(args.positional[0]);
  if (!dataset.ok()) return Fail(dataset.status());
  SkillModelConfig config = ConfigFromArgs(args);
  const auto model =
      SkillModel::Load(args.positional[1], dataset.value().schema(), config);
  if (!model.ok()) return Fail(model.status());

  const int threads = static_cast<int>(args.IntFlag("threads", 1));
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);

  const SkillAssignments assignments = AssignSkills(
      dataset.value(), model.value(), pool.get(), config.parallel);
  const std::string prior = args.StringFlag("prior", "empirical");
  const auto difficulty = EstimateDifficultyByGeneration(
      dataset.value().items(), model.value(),
      prior == "uniform" ? DifficultyPrior::kUniform
                         : DifficultyPrior::kEmpirical,
      assignments);
  if (!difficulty.ok()) return Fail(difficulty.status());

  TransitionWeights transitions;
  const bool with_transitions = args.HasFlag("transitions");
  if (with_transitions) {
    transitions = FitTransitionWeights(assignments, config.num_levels,
                                       config.smoothing);
  }
  const auto snapshot = serve::MakeSnapshot(
      model.value(), dataset.value().items(), difficulty.value(),
      with_transitions ? &transitions : nullptr);
  if (!snapshot.ok()) return Fail(snapshot.status());
  const Status saved = serve::SaveSnapshot(snapshot.value(),
                                           args.positional[2]);
  if (!saved.ok()) return Fail(saved);
  std::printf("snapshot -> %s (%d levels, %d items%s)\n",
              args.positional[2].c_str(), config.num_levels,
              dataset.value().items().num_items(),
              with_transitions ? ", transitions" : "");
  return 0;
}

int CmdDataset(const Args& args) {
  if (args.positional.empty()) return Usage();
  const std::string& verb = args.positional[0];
  if (verb == "pack") {
    if (args.positional.size() != 3) return Usage();
    const auto dataset = LoadDataset(args.positional[1]);
    if (!dataset.ok()) return Fail(dataset.status());
    const Status packed =
        store::PackDataset(dataset.value(), args.positional[2]);
    if (!packed.ok()) return Fail(packed);
    std::printf("packed %d users, %llu actions, %d items -> %s\n",
                dataset.value().num_users(),
                static_cast<unsigned long long>(dataset.value().num_actions()),
                dataset.value().items().num_items(),
                args.positional[2].c_str());
    return 0;
  }
  if (verb == "inspect") {
    if (args.positional.size() != 2) return Usage();
    auto reader = store::StoreReader::Open(args.positional[1]);
    if (!reader.ok()) return Fail(reader.status());
    std::printf("%s", reader.value().Describe().c_str());
    return 0;
  }
  if (verb == "compact") {
    if (args.positional.size() != 4) return Usage();
    const auto stats = store::CompactStore(
        args.positional[1], args.positional[2], args.positional[3]);
    if (!stats.ok()) return Fail(stats.status());
    std::printf("compacted %llu log records into %llu base actions "
                "(%llu new users) -> %s (%llu actions)\n",
                static_cast<unsigned long long>(stats.value().log_records),
                static_cast<unsigned long long>(stats.value().base_actions),
                static_cast<unsigned long long>(stats.value().new_users),
                args.positional[3].c_str(),
                static_cast<unsigned long long>(stats.value().total_actions));
    return 0;
  }
  return Usage();
}

int CmdServe(const Args& args) {
  if (args.positional.size() != 1) return Usage();
  const int threads = static_cast<int>(args.IntFlag("threads", 1));
  const int shards = static_cast<int>(args.IntFlag("shards", 64));
  const bool quantized = args.HasFlag("quantized");
  // One execution backend for the whole serving process: the initial
  // snapshot build here, plus (installed on the server below) every
  // later swap/requantization and batch fan-out.
  auto backend_result =
      exec::CreateBackend(args.StringFlag("backend", ""), threads);
  if (!backend_result.ok()) return Fail(backend_result.status());
  std::shared_ptr<exec::Backend> backend = std::move(backend_result).value();

  const auto model =
      serve::ServingModel::FromSnapshotFile(args.positional[0], backend.get());
  if (!model.ok()) return Fail(model.status());
  serve::Server server(model.value(), shards, quantized);
  server.SetBackend(backend);
  std::fprintf(stderr,
               "serving %s: %d levels, %d items, %d shards, backend=%s%s\n",
               args.positional[0].c_str(), model.value()->num_levels(),
               model.value()->num_items(), shards, backend->name(),
               quantized ? ", quantized int16 inference" : "");

  // --ingest-log tees every accepted observe into the append-only store
  // log (crash-safe batched frames; recovery truncates a torn tail on
  // open). The hook runs on request threads; the writer serializes
  // appends internally. Synced before exit on every return path below.
  std::unique_ptr<store::IngestLogWriter> ingest;
  if (args.HasFlag("ingest-log")) {
    auto opened =
        store::IngestLogWriter::Open(args.StringFlag("ingest-log", ""));
    if (!opened.ok()) return Fail(opened.status());
    ingest = std::move(opened).value();
    store::IngestLogWriter* log = ingest.get();
    server.SetObserveHook(
        [log](const std::string& user, ItemId item, int64_t time) {
          const Status appended = log->Append({user, time, item});
          if (!appended.ok()) {
            std::fprintf(stderr, "ingest append failed: %s\n",
                         appended.ToString().c_str());
          }
        });
    std::fprintf(stderr, "ingest log -> %s\n",
                 args.StringFlag("ingest-log", "").c_str());
  }
  const auto sync_ingest = [&ingest]() {
    if (ingest == nullptr) return;
    const Status synced = ingest->Sync();
    if (!synced.ok()) {
      std::fprintf(stderr, "ingest sync failed: %s\n",
                   synced.ToString().c_str());
    }
  };

  // Flight recorder: ring of the last K completed requests plus
  // tail-sampled retention, shared by every front end through the
  // server. K=0 turns it off (and /tracez reports an empty trace).
  std::unique_ptr<obs::FlightRecorder> flight_recorder;
  const long long recorder_size = args.IntFlag("flight-recorder-size", 4096);
  if (recorder_size > 0) {
    obs::FlightRecorderOptions recorder_options;
    recorder_options.capacity = static_cast<size_t>(recorder_size);
    // Thin the main ring to one record in N by default: errors, sheds,
    // and the slowest requests per kind are always retained regardless,
    // and the sampled-out path costs a single atomic increment.
    // --flight-recorder-sample 1 records every completion.
    const long long sample =
        args.IntFlag("flight-recorder-sample", 16);
    recorder_options.sample_every =
        sample > 0 ? static_cast<uint64_t>(sample) : 1;
    flight_recorder =
        std::make_unique<obs::FlightRecorder>(recorder_options);
    server.SetFlightRecorder(flight_recorder.get());
  }

  // Admin plane: its own port, its own thread, never sharing fate with
  // the data plane. Works with the stdio loop too, so an operator can
  // scrape a pipe-driven server.
  std::unique_ptr<net::HttpAdminServer> admin;
  if (args.HasFlag("admin-listen")) {
    net::HttpAdminConfig admin_config;
    const Status parsed =
        net::ParseHostPort(args.StringFlag("admin-listen", ""),
                           &admin_config.host, &admin_config.port);
    if (!parsed.ok()) return Fail(parsed);
    admin = std::make_unique<net::HttpAdminServer>(admin_config);
    net::InstallAdminEndpoints(admin.get(), &server, flight_recorder.get());
    const Status started = admin->Start();
    if (!started.ok()) return Fail(started);
    // Tests parse this line for the actual port (host:0 binds ephemeral).
    std::fprintf(stderr, "admin listening on %s:%u\n",
                 admin_config.host.c_str(), admin->port());
    std::fflush(stderr);
  }

  if (args.HasFlag("listen")) {
    // TCP front end: epoll event loop with per-core SO_REUSEPORT workers
    // (src/net). The process stays up until stdin reaches EOF, so a
    // supervising test/script owns the lifetime through the pipe.
    net::NetServerConfig config;
    const Status parsed =
        net::ParseListenAddress(args.StringFlag("listen", ""), &config);
    if (!parsed.ok()) return Fail(parsed);
    config.num_workers = static_cast<int>(args.IntFlag("net-workers", 1));
    config.deadline_seconds =
        static_cast<double>(args.IntFlag("deadline-ms", 0)) / 1000.0;
    config.max_connections =
        static_cast<int>(args.IntFlag("max-conns", 4096));
    // Swaps route through the server's installed backend (null pool).
    net::NetServer net_server(&server, nullptr, config);
    const Status started = net_server.Start();
    if (!started.ok()) return Fail(started);
    // Tests parse this line for the actual port (--listen host:0 binds an
    // ephemeral one).
    std::fprintf(stderr, "listening on %s:%u workers=%d\n",
                 config.host.c_str(), net_server.port(),
                 net_server.num_workers());
    std::fflush(stderr);
    std::string line;
    while (std::getline(std::cin, line)) {
      if (StripWhitespace(line) == "shutdown") break;
    }
    net_server.Stop();
    sync_ingest();
    return 0;
  }

  // Line-at-a-time request/response loop, plus the `batch <N>` directive:
  // the next N lines form one batch executed in parallel over the pool,
  // responses emitted in request order. Unparseable lines get an error
  // response; only `quit` or EOF ends the session.
  std::string line;
  while (std::getline(std::cin, line)) {
    if (StripWhitespace(line).empty()) continue;
    const std::vector<std::string> head = Split(
        std::string(StripWhitespace(line)), ' ');
    if (head.size() == 2 && head[0] == "batch") {
      const Result<long long> count = ParseInt(head[1]);
      if (!count.ok() || count.value() < 0) {
        std::printf("%s\n",
                    serve::FormatErrorResponse(
                        Status::InvalidArgument("batch expects: batch <N>"))
                        .c_str());
        std::fflush(stdout);
        continue;
      }
      std::vector<serve::ServeRequest> requests;
      std::vector<std::string> parse_errors(
          static_cast<size_t>(count.value()));
      std::vector<int> request_index(static_cast<size_t>(count.value()), -1);
      for (long long i = 0; i < count.value(); ++i) {
        if (!std::getline(std::cin, line)) break;
        const auto request = serve::ParseServeRequest(line);
        if (request.ok()) {
          request_index[static_cast<size_t>(i)] =
              static_cast<int>(requests.size());
          requests.push_back(request.value());
        } else {
          parse_errors[static_cast<size_t>(i)] =
              serve::FormatErrorResponse(request.status());
        }
      }
      const std::vector<std::string> responses =
          server.ExecuteBatch(requests);
      for (size_t i = 0; i < request_index.size(); ++i) {
        if (request_index[i] >= 0) {
          std::printf("%s\n",
                      responses[static_cast<size_t>(request_index[i])]
                          .c_str());
        } else {
          std::printf("%s\n", parse_errors[i].c_str());
        }
      }
      std::fflush(stdout);
      continue;
    }
    const auto request = serve::ParseServeRequest(line);
    if (!request.ok()) {
      std::printf("%s\n",
                  serve::FormatErrorResponse(request.status()).c_str());
      std::fflush(stdout);
      continue;
    }
    std::printf("%s\n", server.Execute(request.value()).c_str());
    std::fflush(stdout);
    if (request.value().kind == serve::ServeRequest::Kind::kQuit) break;
  }
  sync_ingest();
  return 0;
}

int CmdClient(const Args& args) {
  if (args.positional.size() != 1) return Usage();
  net::NetServerConfig addr;
  const Status parsed = net::ParseListenAddress(args.positional[0], &addr);
  if (!parsed.ok()) return Fail(parsed);
  net::NetClient client;
  const Status connected = client.Connect(
      addr.host == "0.0.0.0" ? "127.0.0.1" : addr.host, addr.port);
  if (!connected.ok()) return Fail(connected);
  const bool binary = args.HasFlag("binary");

  // Same request grammar as the stdio serve loop, forwarded over TCP.
  // In --binary mode each line is parsed locally, shipped as a framed
  // request, and the typed response rendered back to the text form, so
  // the output is interchangeable with the text-protocol path.
  std::string line;
  while (std::getline(std::cin, line)) {
    if (StripWhitespace(line).empty()) continue;
    if (binary) {
      const auto request = serve::ParseServeRequest(line);
      if (!request.ok()) {
        std::printf("%s\n",
                    serve::FormatErrorResponse(request.status()).c_str());
        std::fflush(stdout);
        continue;
      }
      const auto response = client.Call(request.value());
      if (!response.ok()) return Fail(response.status());
      std::printf("%s\n",
                  net::RenderResponseAsText(response.value(),
                                            request.value().kind)
                      .c_str());
      std::fflush(stdout);
      if (request.value().kind == serve::ServeRequest::Kind::kQuit) break;
      continue;
    }
    // Text passthrough. `batch <N>` emits exactly N responses (one per
    // collected line), every other line exactly one.
    size_t expected = 1;
    std::string payload = line + "\n";
    const std::vector<std::string> head =
        Split(std::string(StripWhitespace(line)), ' ');
    if (head.size() == 2 && head[0] == "batch") {
      const Result<long long> count = ParseInt(head[1]);
      if (count.ok() && count.value() >= 0) {
        expected = static_cast<size_t>(count.value());
        std::string batch_line;
        for (long long i = 0; i < count.value(); ++i) {
          if (!std::getline(std::cin, batch_line)) break;
          payload += batch_line + "\n";
        }
      }
    }
    const Status sent = client.SendRaw(payload);
    if (!sent.ok()) return Fail(sent);
    const auto responses = client.ReadLines(expected);
    if (!responses.ok()) return Fail(responses.status());
    for (const std::string& response : responses.value()) {
      std::printf("%s\n", response.c_str());
    }
    std::fflush(stdout);
    if (head.size() == 1 && head[0] == "quit") break;
  }
  return 0;
}

int CmdSelectLevels(const Args& args) {
  if (args.positional.size() != 1) return Usage();
  const auto dataset = LoadDataset(args.positional[0]);
  if (!dataset.ok()) return Fail(dataset.status());
  const int lo = static_cast<int>(args.IntFlag("min", 2));
  const int hi = static_cast<int>(args.IntFlag("max", 8));
  if (lo < 1 || hi < lo) return Fail(Status::InvalidArgument("bad range"));
  std::vector<int> candidates;
  for (int s = lo; s <= hi; ++s) candidates.push_back(s);
  SkillModelConfig base;
  base.max_iterations = 30;
  Rng rng(static_cast<uint64_t>(args.IntFlag("seed", 90)));
  const auto selection =
      SelectSkillCount(dataset.value(), candidates, base, 0.1, rng);
  if (!selection.ok()) return Fail(selection.status());
  for (const SkillCountPoint& point : selection.value().curve) {
    std::printf("S=%d  held-out log-likelihood %.1f\n", point.num_levels,
                point.held_out_log_likelihood);
  }
  std::printf("selected S = %d\n", selection.value().best_num_levels);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Result<Args> parsed = ParseArgs(argc, argv, 2);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.status().ToString().c_str());
    return Usage();
  }
  const Args& args = parsed.value();
  if (command == "generate") return CmdGenerate(args);
  if (command == "import") return CmdImport(args);
  if (command == "stats") return CmdStats(args);
  if (command == "train") return CmdTrain(args);
  if (command == "assign") return CmdAssign(args);
  if (command == "summary") return CmdSummary(args);
  if (command == "model") return CmdModel(args);
  if (command == "difficulty") return CmdDifficulty(args);
  if (command == "recommend") return CmdRecommend(args);
  if (command == "snapshot") return CmdSnapshot(args);
  if (command == "dataset") return CmdDataset(args);
  if (command == "serve") return CmdServe(args);
  if (command == "client") return CmdClient(args);
  if (command == "select-levels") return CmdSelectLevels(args);
  return Usage();
}
