// End-to-end upskilling recommender (the system Figure 1 of the paper
// envisions), on the beer-appreciation domain:
//
//   - train the progression model on everyone's history;
//   - estimate every beer's difficulty on the shared 1..S scale;
//   - for a target user, read their *current* level from the tail of
//     their trajectory;
//   - recommend beers that are (a) plausible under their level's taste
//     model and (b) slightly above their capacity — challenging but not
//     discouraging.
//
// Build & run:  ./build/examples/example_upskill_recommender [user-id]

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/difficulty.h"
#include "core/recommend.h"
#include "core/trainer.h"
#include "datagen/beer.h"

int main(int argc, char** argv) {
  using namespace upskill;

  datagen::BeerConfig data_config;
  data_config.num_users = 300;
  data_config.num_beers = 800;
  data_config.mean_sequence_length = 80.0;
  auto data = datagen::GenerateBeer(data_config);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const Dataset& dataset = data.value().dataset;

  SkillModelConfig config;
  config.num_levels = 5;
  config.min_init_actions = 50;
  Trainer trainer(config);
  auto trained = trainer.Train(dataset);
  if (!trained.ok()) {
    std::fprintf(stderr, "%s\n", trained.status().ToString().c_str());
    return 1;
  }

  auto difficulty = EstimateDifficultyByGeneration(
      dataset.items(), trained.value().model, DifficultyPrior::kEmpirical,
      trained.value().assignments);
  if (!difficulty.ok()) return 1;

  const UserId user =
      argc > 1 ? static_cast<UserId>(std::atoi(argv[1])) : 7;
  if (user < 0 || user >= dataset.num_users()) {
    std::fprintf(stderr, "user id out of range (0..%d)\n",
                 dataset.num_users() - 1);
    return 1;
  }
  const auto& trajectory =
      trained.value().assignments[static_cast<size_t>(user)];
  const int level = trajectory.back();
  std::printf("user %d: %zu check-ins, level trajectory %d -> %d\n", user,
              dataset.sequence(user).size(), trajectory.front(), level);

  // Upskilling shortlist via the library API: untried beers with
  // difficulty in (level, level + 1], ranked by how plausible the *next*
  // level's taste model finds them — the items the user should grow into.
  UpskillRecommendationOptions options;
  options.stretch = 1.0;
  options.max_results = 8;
  const auto picks = RecommendForUpskilling(
      dataset, trained.value().model, trained.value().assignments,
      difficulty.value(), user, options);
  if (!picks.ok()) {
    std::fprintf(stderr, "%s\n", picks.status().ToString().c_str());
    return 1;
  }

  std::printf("\nupskilling shortlist (difficulty in (%d, %d]):\n", level,
              level + 1);
  std::printf("  %-32s %10s %12s\n", "beer", "difficulty", "logP(next)");
  for (const UpskillRecommendation& pick : picks.value()) {
    std::printf("  %-32s %10.2f %12.2f\n",
                dataset.items().name(pick.item).c_str(), pick.difficulty,
                pick.log_prob);
  }
  if (picks.value().empty()) {
    std::printf("  (user is already at the top of the scale — nothing "
                "harder to recommend)\n");
  }
  return 0;
}
