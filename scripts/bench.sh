#!/usr/bin/env bash
# Records a benchmark suite from a dedicated Release build.
#
# Usage: scripts/bench.sh [PR_NUMBER] [SUITE] [BENCHMARK_FILTER]
#
#   SUITE is `micro` (bench_micro: training/eval kernels) or `serve`
#   (bench_serve: snapshot IO, streaming observe, BM_ServeThroughput).
#
# Produces BENCH_PR<N>.json at the repo root (google-benchmark JSON,
# includes build context). Always benchmarks a -DCMAKE_BUILD_TYPE=Release
# tree in build-bench/, independent of whatever ./build currently holds —
# BENCH_PR1.json was recorded from a debug build and is superseded by the
# Release rerecording in BENCH_PR2.json; BENCH_PR3.json records the serve
# suite.
set -euo pipefail

cd "$(dirname "$0")/.."

PR_NUMBER="${1:-3}"
SUITE="${2:-serve}"
FILTER="${3:-}"
BUILD_DIR=build-bench
OUT="BENCH_PR${PR_NUMBER}.json"

case "$SUITE" in
  micro|serve) ;;
  *) echo "unknown suite '$SUITE' (want micro or serve)" >&2; exit 2 ;;
esac

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release \
  -DUPSKILL_SANITIZE= >/dev/null
cmake --build "$BUILD_DIR" --target "bench_${SUITE}" -j "$(nproc)"

ARGS=(--benchmark_out="$OUT" --benchmark_out_format=json)
if [[ -n "$FILTER" ]]; then
  ARGS+=(--benchmark_filter="$FILTER")
fi
"./$BUILD_DIR/bench/bench_${SUITE}" "${ARGS[@]}"

echo "wrote $OUT"
