#!/usr/bin/env bash
# Records a benchmark suite from a dedicated Release build.
#
# Usage: scripts/bench.sh [PR_NUMBER] [SUITE] [BENCHMARK_FILTER]
#                         [--threads "T1 T2 ..."] [--metrics]
#
#   SUITE is `micro` (bench_micro: training/eval kernels) or `serve`
#   (bench_serve: snapshot IO, streaming observe, BM_ServeThroughput).
#
#   --threads sweeps the sharded micro benches (BM_AssignSkillsSharded,
#   BM_FitParametersSharded) over the given thread counts; each emitted
#   entry records its thread and shard count in the `threads` / `shards`
#   counters. Default sweep is "1 8".
#
#   --metrics attaches a Prometheus registry dump next to the benchmark
#   JSON (BENCH_PR<N>.metrics.prom): the binary writes the process
#   metrics registry on exit via UPSKILL_BENCH_METRICS_OUT.
#
# Produces BENCH_PR<N>.json at the repo root (google-benchmark JSON,
# includes build context). Always benchmarks a -DCMAKE_BUILD_TYPE=Release
# tree in build-bench/, independent of whatever ./build currently holds —
# BENCH_PR1.json was recorded from a debug build and is superseded by the
# Release rerecording in BENCH_PR2.json; BENCH_PR3.json records the serve
# suite; BENCH_PR4.json rerecords micro with the thread x shard sweep.
set -euo pipefail

cd "$(dirname "$0")/.."

THREADS=""
METRICS=0
POSITIONAL=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --threads)
      [[ $# -ge 2 ]] || { echo "--threads needs a value" >&2; exit 2; }
      THREADS="$2"; shift 2 ;;
    --threads=*)
      THREADS="${1#--threads=}"; shift ;;
    --metrics)
      METRICS=1; shift ;;
    *)
      POSITIONAL+=("$1"); shift ;;
  esac
done
set -- "${POSITIONAL[@]:-}"

PR_NUMBER="${1:-4}"
SUITE="${2:-micro}"
FILTER="${3:-}"
BUILD_DIR=build-bench
OUT="BENCH_PR${PR_NUMBER}.json"

case "$SUITE" in
  micro|serve) ;;
  *) echo "unknown suite '$SUITE' (want micro or serve)" >&2; exit 2 ;;
esac

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release \
  -DUPSKILL_SANITIZE= >/dev/null
cmake --build "$BUILD_DIR" --target "bench_${SUITE}" -j "$(nproc)"

ARGS=(--benchmark_out="$OUT" --benchmark_out_format=json)
if [[ -n "$FILTER" ]]; then
  ARGS+=(--benchmark_filter="$FILTER")
fi
if [[ -n "$THREADS" ]]; then
  export UPSKILL_BENCH_THREADS="$THREADS"
fi
if [[ "$METRICS" -eq 1 ]]; then
  export UPSKILL_BENCH_METRICS_OUT="BENCH_PR${PR_NUMBER}.metrics.prom"
fi
"./$BUILD_DIR/bench/bench_${SUITE}" "${ARGS[@]}"

echo "wrote $OUT"
if [[ "$METRICS" -eq 1 ]]; then
  echo "wrote $UPSKILL_BENCH_METRICS_OUT"
fi
