#!/usr/bin/env bash
# Records a benchmark suite from a dedicated Release build.
#
# Usage: scripts/bench.sh [PR_NUMBER] [SUITE] [BENCHMARK_FILTER]
#                         [--suites "S1 S2 ..."] [--threads "T1 T2 ..."]
#                         [--metrics]
#
#   SUITE (or --suites, which accepts several) is one of:
#     micro  bench_micro: training/eval kernels
#     serve  bench_serve: snapshot IO, streaming observe, BM_ServeThroughput
#     simd   the SIMD/quantized kernel slices of both binaries:
#            BM_LogProbBatch + BM_ForwardStepStreaming from bench_micro and
#            BM_ServeQuantized from bench_serve, merged into one JSON so the
#            scalar-vs-vector-vs-quantized triples land in a single run.
#     net    bench_net: epoll TCP front end over real loopback sockets
#            (binary/text protocol waves, req/s-per-core counters)
#     store  bench_store: out-of-core store — pack throughput, verified
#            vs unverified open, mapped vs in-RAM scans, ingest append
#            rates, online refresh vs full replay, and BM_OutOfCoreScan
#            over a store built larger than UPSKILL_STORE_BUDGET_MB
#            (default 64; the fixture writes ~2x the budget to /tmp)
#     exec   bench_exec: the sharded assignment/fit kernels once per
#            execution backend (serial | pool | numa); every entry names
#            its backend and records threads/shards/nodes/steals counters
#     obs    bench_obs: request-trace overhead on the serving hot path —
#            BM_RequestTraceOverhead with the flight recorder detached /
#            tail-sampling / recording everything (the <= 2% overhead
#            acceptance bar), plus raw and contended Record() cost
#
#   --threads sweeps the sharded micro benches (BM_AssignSkillsSharded,
#   BM_FitParametersSharded) over the given thread counts; each emitted
#   entry records its thread and shard count in the `threads` / `shards`
#   counters. Default sweep is "1 8".
#
#   --metrics attaches a Prometheus registry dump next to the benchmark
#   JSON (BENCH_PR<N>.metrics.prom): the binary writes the process
#   metrics registry on exit via UPSKILL_BENCH_METRICS_OUT.
#
# Produces BENCH_PR<N>.json at the repo root (google-benchmark JSON,
# includes build context). Always benchmarks a -DCMAKE_BUILD_TYPE=Release
# tree in build-bench/, independent of whatever ./build currently holds —
# BENCH_PR1.json was recorded from a debug build and is superseded by the
# Release rerecording in BENCH_PR2.json; BENCH_PR3.json records the serve
# suite; BENCH_PR4.json rerecords micro with the thread x shard sweep;
# BENCH_PR6.json records the simd suite; BENCH_PR8.json records the
# store suite; BENCH_PR9.json records the exec backend suite;
# BENCH_PR10.json records the obs request-trace overhead suite.
set -euo pipefail

cd "$(dirname "$0")/.."

THREADS=""
METRICS=0
SUITES=""
POSITIONAL=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --suites)
      [[ $# -ge 2 ]] || { echo "--suites needs a value" >&2; exit 2; }
      SUITES="$2"; shift 2 ;;
    --suites=*)
      SUITES="${1#--suites=}"; shift ;;
    --threads)
      [[ $# -ge 2 ]] || { echo "--threads needs a value" >&2; exit 2; }
      THREADS="$2"; shift 2 ;;
    --threads=*)
      THREADS="${1#--threads=}"; shift ;;
    --metrics)
      METRICS=1; shift ;;
    *)
      POSITIONAL+=("$1"); shift ;;
  esac
done
set -- "${POSITIONAL[@]:-}"

PR_NUMBER="${1:-4}"
[[ -n "$SUITES" ]] || SUITES="${2:-micro}"
FILTER="${3:-}"
BUILD_DIR=build-bench
OUT="BENCH_PR${PR_NUMBER}.json"

# Each suite expands to `binary:filter` run specs (empty filter = all).
RUNS=()
BINARIES=()
for SUITE in $SUITES; do
  case "$SUITE" in
    micro) RUNS+=("bench_micro:"); BINARIES+=(bench_micro) ;;
    serve) RUNS+=("bench_serve:"); BINARIES+=(bench_serve) ;;
    simd)
      RUNS+=("bench_micro:BM_LogProbBatch|BM_ForwardStepStreaming")
      RUNS+=("bench_serve:BM_ServeQuantized")
      BINARIES+=(bench_micro bench_serve) ;;
    net) RUNS+=("bench_net:"); BINARIES+=(bench_net) ;;
    store) RUNS+=("bench_store:"); BINARIES+=(bench_store) ;;
    exec) RUNS+=("bench_exec:"); BINARIES+=(bench_exec) ;;
    obs) RUNS+=("bench_obs:"); BINARIES+=(bench_obs) ;;
    *)
      echo "error: unknown suite '$SUITE'" \
           "(want micro, serve, simd, net, store, exec, or obs)" >&2
      exit 2 ;;
  esac
done

if [[ "${#RUNS[@]}" -eq 0 ]]; then
  echo "error: no suites requested (SUITE/--suites expanded to nothing)" >&2
  exit 2
fi

if ! cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release \
    -DUPSKILL_SANITIZE= >/dev/null; then
  echo "error: cmake configure failed for '$BUILD_DIR'" >&2
  exit 3
fi
if [[ ! -d "$BUILD_DIR" ]]; then
  echo "error: build directory '$BUILD_DIR' is missing after configure" >&2
  exit 3
fi
cmake --build "$BUILD_DIR" --target "${BINARIES[@]}" -j "$(nproc)"

# Fail fast with a clear message if a requested bench binary never got
# built (e.g. the target was renamed or the build partially failed),
# instead of a bare "No such file or directory" halfway through a sweep.
for BINARY in "${BINARIES[@]}"; do
  if [[ ! -x "$BUILD_DIR/bench/$BINARY" ]]; then
    echo "error: bench binary '$BUILD_DIR/bench/$BINARY' is missing or not" \
         "executable; the '$BINARY' build target did not produce it" >&2
    exit 3
  fi
done

if [[ -n "$THREADS" ]]; then
  export UPSKILL_BENCH_THREADS="$THREADS"
fi
if [[ "$METRICS" -eq 1 ]]; then
  export UPSKILL_BENCH_METRICS_OUT="BENCH_PR${PR_NUMBER}.metrics.prom"
fi

# Run each spec into its own JSON, then merge (the merge is a no-op move
# for single-run suites). An explicit FILTER argument narrows every run.
PARTS=()
INDEX=0
for RUN in "${RUNS[@]}"; do
  BINARY="${RUN%%:*}"
  RUN_FILTER="${RUN#*:}"
  if [[ -n "$FILTER" ]]; then
    RUN_FILTER="$FILTER"
  fi
  PART="${OUT%.json}.part${INDEX}.json"
  ARGS=(--benchmark_out="$PART" --benchmark_out_format=json)
  if [[ -n "$RUN_FILTER" ]]; then
    ARGS+=(--benchmark_filter="$RUN_FILTER")
  fi
  if [[ "$BINARY" == bench_obs ]]; then
    # The obs overhead suite compares medians of repeated runs whose
    # deltas (~tens of ns) sit below slow thermal/frequency drift;
    # interleaving the repetitions decorrelates that drift from the
    # recorder mode being measured.
    ARGS+=(--benchmark_enable_random_interleaving=true)
  fi
  "./$BUILD_DIR/bench/$BINARY" "${ARGS[@]}"
  PARTS+=("$PART")
  INDEX=$((INDEX + 1))
done

if [[ "${#PARTS[@]}" -eq 1 ]]; then
  mv "${PARTS[0]}" "$OUT"
else
  python3 - "$OUT" "${PARTS[@]}" <<'EOF'
import json
import sys

out_path, *part_paths = sys.argv[1:]
with open(part_paths[0]) as first:
    merged = json.load(first)
for path in part_paths[1:]:
    with open(path) as part:
        merged["benchmarks"].extend(json.load(part)["benchmarks"])
with open(out_path, "w") as out:
    json.dump(merged, out, indent=1)
    out.write("\n")
EOF
  rm -f "${PARTS[@]}"
fi

echo "wrote $OUT"
if [[ "$METRICS" -eq 1 ]]; then
  echo "wrote $UPSKILL_BENCH_METRICS_OUT"
fi
