#!/usr/bin/env bash
# Records the micro-benchmark suite from a dedicated Release build.
#
# Usage: scripts/bench.sh [PR_NUMBER] [BENCHMARK_FILTER]
#
# Produces BENCH_PR<N>.json at the repo root (google-benchmark JSON,
# includes build context). Always benchmarks a -DCMAKE_BUILD_TYPE=Release
# tree in build-bench/, independent of whatever ./build currently holds —
# BENCH_PR1.json was recorded from a debug build and is superseded by the
# Release rerecording in BENCH_PR2.json.
set -euo pipefail

cd "$(dirname "$0")/.."

PR_NUMBER="${1:-2}"
FILTER="${2:-}"
BUILD_DIR=build-bench
OUT="BENCH_PR${PR_NUMBER}.json"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release \
  -DUPSKILL_SANITIZE= >/dev/null
cmake --build "$BUILD_DIR" --target bench_micro -j "$(nproc)"

ARGS=(--benchmark_out="$OUT" --benchmark_out_format=json)
if [[ -n "$FILTER" ]]; then
  ARGS+=(--benchmark_filter="$FILTER")
fi
"./$BUILD_DIR/bench/bench_micro" "${ARGS[@]}"

echo "wrote $OUT"
