#include "baselines/sequence_baselines.h"

#include <algorithm>
#include <numeric>

#include "common/string_util.h"

namespace upskill {

PopularityModel PopularityModel::Train(const Dataset& train) {
  PopularityModel model;
  model.counts_.assign(static_cast<size_t>(train.items().num_items()), 0);
  train.ForEachAction([&model](UserId, const Action& a) {
    ++model.counts_[static_cast<size_t>(a.item)];
  });
  // Precompute ranks: sort ids by (count desc, id asc).
  std::vector<ItemId> order(model.counts_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&model](ItemId a, ItemId b) {
    const size_t ca = model.counts_[static_cast<size_t>(a)];
    const size_t cb = model.counts_[static_cast<size_t>(b)];
    if (ca != cb) return ca > cb;
    return a < b;
  });
  model.rank_.resize(model.counts_.size());
  for (size_t position = 0; position < order.size(); ++position) {
    model.rank_[static_cast<size_t>(order[position])] =
        static_cast<int>(position) + 1;
  }
  return model;
}

Result<int> PopularityModel::Rank(ItemId target) const {
  if (target < 0 || static_cast<size_t>(target) >= rank_.size()) {
    return Status::OutOfRange(StringPrintf("item %d", target));
  }
  return rank_[static_cast<size_t>(target)];
}

std::vector<ItemId> PopularityModel::TopItems(int k) const {
  std::vector<ItemId> order(counts_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](ItemId a, ItemId b) {
    return rank_[static_cast<size_t>(a)] < rank_[static_cast<size_t>(b)];
  });
  order.resize(std::min(order.size(), static_cast<size_t>(std::max(0, k))));
  return order;
}

MarkovChainModel MarkovChainModel::Train(const Dataset& train,
                                         double smoothing) {
  MarkovChainModel model;
  model.num_items_ = train.items().num_items();
  model.smoothing_ = smoothing;
  model.transitions_.resize(static_cast<size_t>(model.num_items_));
  model.row_totals_.assign(static_cast<size_t>(model.num_items_), 0);
  model.popularity_ = PopularityModel::Train(train);

  for (UserId u = 0; u < train.num_users(); ++u) {
    std::span<const Action> seq = train.sequence(u);
    for (size_t n = 1; n < seq.size(); ++n) {
      auto& row = model.transitions_[static_cast<size_t>(seq[n - 1].item)];
      const ItemId next = seq[n].item;
      const auto it = std::lower_bound(
          row.begin(), row.end(), next,
          [](const std::pair<ItemId, size_t>& entry, ItemId value) {
            return entry.first < value;
          });
      if (it != row.end() && it->first == next) {
        ++it->second;
      } else {
        row.insert(it, {next, 1});
      }
      ++model.row_totals_[static_cast<size_t>(seq[n - 1].item)];
    }
  }
  return model;
}

double MarkovChainModel::TransitionProbability(ItemId previous,
                                               ItemId next) const {
  if (previous < 0 || previous >= num_items_ || next < 0 ||
      next >= num_items_) {
    return 0.0;
  }
  const auto& row = transitions_[static_cast<size_t>(previous)];
  const auto it = std::lower_bound(
      row.begin(), row.end(), next,
      [](const std::pair<ItemId, size_t>& entry, ItemId value) {
        return entry.first < value;
      });
  const size_t count =
      (it != row.end() && it->first == next) ? it->second : 0;
  const double denom =
      static_cast<double>(row_totals_[static_cast<size_t>(previous)]) +
      smoothing_ * static_cast<double>(num_items_);
  if (denom <= 0.0) return 0.0;
  return (static_cast<double>(count) + smoothing_) / denom;
}

Result<int> MarkovChainModel::Rank(ItemId previous, ItemId target) const {
  if (previous < 0 || previous >= num_items_) {
    return Status::OutOfRange(StringPrintf("previous item %d", previous));
  }
  if (target < 0 || target >= num_items_) {
    return Status::OutOfRange(StringPrintf("target item %d", target));
  }
  // An unseen predecessor carries no signal: fall back to popularity.
  if (row_totals_[static_cast<size_t>(previous)] == 0) {
    return popularity_.Rank(target);
  }
  // With additive smoothing, only explicitly-observed successors can beat
  // the smoothed floor; everything else ties at the floor. Rank = 1 +
  // #(observed successors with higher count) + floor ties before target.
  const auto& row = transitions_[static_cast<size_t>(previous)];
  size_t target_count = 0;
  for (const auto& [next, count] : row) {
    if (next == target) {
      target_count = count;
      break;
    }
  }
  int rank = 1;
  if (target_count > 0) {
    for (const auto& [next, count] : row) {
      if (count > target_count || (count == target_count && next < target)) {
        ++rank;
      }
    }
    return rank;
  }
  // Target sits at the smoothing floor: all observed successors rank
  // above it, plus the floor-tied items with smaller ids.
  rank += static_cast<int>(row.size());
  for (ItemId i = 0; i < target; ++i) {
    // Items in `row` were already counted above; skip them among the ties.
    const auto it = std::lower_bound(
        row.begin(), row.end(), i,
        [](const std::pair<ItemId, size_t>& entry, ItemId value) {
          return entry.first < value;
        });
    if (it == row.end() || it->first != i) ++rank;
  }
  return rank;
}

Result<BaselinePredictionReport> EvaluateSequenceBaselines(
    const Dataset& train, const std::vector<HeldOutAction>& test, int k) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  const PopularityModel popularity = PopularityModel::Train(train);
  const MarkovChainModel markov = MarkovChainModel::Train(train);

  BaselinePredictionReport report;
  size_t popularity_hits = 0;
  size_t markov_hits = 0;
  double popularity_rr = 0.0;
  double markov_rr = 0.0;
  for (const HeldOutAction& held : test) {
    std::span<const Action> seq = train.sequence(held.user);
    if (seq.empty()) continue;
    // Predecessor: last training action strictly before the held-out
    // time; the first action when none precedes it.
    ItemId previous = seq.front().item;
    for (const Action& a : seq) {
      if (a.time >= held.action.time) break;
      previous = a.item;
    }
    const Result<int> popularity_rank = popularity.Rank(held.action.item);
    if (!popularity_rank.ok()) return popularity_rank.status();
    const Result<int> markov_rank = markov.Rank(previous, held.action.item);
    if (!markov_rank.ok()) return markov_rank.status();
    popularity_hits += popularity_rank.value() <= k;
    markov_hits += markov_rank.value() <= k;
    popularity_rr += 1.0 / popularity_rank.value();
    markov_rr += 1.0 / markov_rank.value();
    ++report.num_cases;
  }
  if (report.num_cases > 0) {
    const double n = static_cast<double>(report.num_cases);
    report.popularity_accuracy_at_k =
        static_cast<double>(popularity_hits) / n;
    report.markov_accuracy_at_k = static_cast<double>(markov_hits) / n;
    report.popularity_mrr = popularity_rr / n;
    report.markov_mrr = markov_rr / n;
  }
  return report;
}

}  // namespace upskill
