#ifndef UPSKILL_BASELINES_SEQUENCE_BASELINES_H_
#define UPSKILL_BASELINES_SEQUENCE_BASELINES_H_

#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "data/split.h"

namespace upskill {

/// Non-progression baselines for the item-prediction task (Section VI-E).
/// The paper compares against Yang et al.'s ID model and notes prior work
/// beat logistic-regression and HMM baselines; these two cover the
/// standard sequential-recommendation floor: global popularity and a
/// first-order Markov chain (Rendle et al.'s FPMC ancestor).

/// Ranks items by their global selection count in the training data.
class PopularityModel {
 public:
  /// Counts selections per item over `train`.
  static PopularityModel Train(const Dataset& train);

  /// 1-based rank of `target` (count ties break toward the smaller id).
  Result<int> Rank(ItemId target) const;

  /// Top-k items by count.
  std::vector<ItemId> TopItems(int k) const;

  int num_items() const { return static_cast<int>(counts_.size()); }

 private:
  std::vector<size_t> counts_;
  /// rank_[i] = precomputed 1-based rank of item i.
  std::vector<int> rank_;
};

/// First-order Markov chain over consecutive selections:
/// P(next = j | previous = i) with additive smoothing. Items never seen
/// as a predecessor fall back to the popularity distribution.
class MarkovChainModel {
 public:
  /// Counts consecutive (previous, next) pairs over `train`.
  /// `smoothing` is the additive pseudo-count per (i, j) cell.
  static MarkovChainModel Train(const Dataset& train,
                                double smoothing = 0.01);

  /// 1-based rank of `target` among all items given the predecessor
  /// `previous` (probability ties break toward the smaller id).
  Result<int> Rank(ItemId previous, ItemId target) const;

  /// Smoothed transition probability P(next | previous).
  double TransitionProbability(ItemId previous, ItemId next) const;

  int num_items() const { return num_items_; }

 private:
  int num_items_ = 0;
  double smoothing_ = 0.01;
  /// Sparse rows: transitions_[i] holds (next, count) pairs sorted by id.
  std::vector<std::vector<std::pair<ItemId, size_t>>> transitions_;
  std::vector<size_t> row_totals_;
  PopularityModel popularity_;
};

/// Item-prediction scores for the two baselines under the standard
/// protocol (the held-out action's predecessor is the chronologically
/// nearest *earlier* training action; users with no earlier action use
/// their first training action).
struct BaselinePredictionReport {
  double popularity_accuracy_at_k = 0.0;
  double popularity_mrr = 0.0;
  double markov_accuracy_at_k = 0.0;
  double markov_mrr = 0.0;
  size_t num_cases = 0;
};
Result<BaselinePredictionReport> EvaluateSequenceBaselines(
    const Dataset& train, const std::vector<HeldOutAction>& test, int k = 10);

}  // namespace upskill

#endif  // UPSKILL_BASELINES_SEQUENCE_BASELINES_H_
