#include "baselines/uniform_model.h"

#include <algorithm>

namespace upskill {

Result<UniformBaselineResult> TrainUniformBaseline(
    const Dataset& dataset, const SkillModelConfig& config) {
  if (dataset.num_actions() == 0) {
    return Status::InvalidArgument("cannot fit a baseline on empty data");
  }
  Result<SkillModel> model = SkillModel::Create(dataset.schema(), config);
  if (!model.ok()) return model.status();

  UniformBaselineResult result;
  result.model = std::move(model).value();
  result.assignments.resize(static_cast<size_t>(dataset.num_users()));
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    result.assignments[static_cast<size_t>(u)] =
        SegmentUniformly(dataset.sequence(u).size(), config.num_levels);
  }
  FitParameters(dataset, result.assignments, &result.model);
  return result;
}

Result<Dataset> ProjectToFeatures(const Dataset& dataset,
                                  const std::vector<std::string>& keep) {
  const FeatureSchema& schema = dataset.schema();
  if (schema.id_feature() < 0) {
    return Status::FailedPrecondition("dataset schema has no ID feature");
  }

  // Build the projected schema, preserving original feature order.
  FeatureSchema projected;
  std::vector<int> kept_features;
  for (int f = 0; f < schema.num_features(); ++f) {
    const FeatureSpec& spec = schema.feature(f);
    const bool is_id = f == schema.id_feature();
    const bool requested =
        std::find(keep.begin(), keep.end(), spec.name) != keep.end();
    if (!is_id && !requested) continue;
    Result<int> added = [&]() -> Result<int> {
      if (is_id) return projected.AddIdFeature(spec.cardinality);
      switch (spec.type) {
        case FeatureType::kCategorical:
          return projected.AddCategorical(spec.name, spec.cardinality,
                                          spec.labels);
        case FeatureType::kCount:
          return projected.AddCount(spec.name);
        case FeatureType::kReal:
          return projected.AddReal(spec.name, spec.distribution);
      }
      return Status::Internal("unhandled feature type");
    }();
    if (!added.ok()) return added.status();
    kept_features.push_back(f);
  }

  const ItemTable& items = dataset.items();
  ItemTable projected_items(std::move(projected));
  std::vector<double> row(kept_features.size());
  for (ItemId i = 0; i < items.num_items(); ++i) {
    for (size_t c = 0; c < kept_features.size(); ++c) {
      row[c] = items.value(i, kept_features[c]);
    }
    Result<ItemId> added = projected_items.AddItem(row, items.name(i));
    if (!added.ok()) return added.status();
  }
  for (const auto& [key, column] : items.metadata()) {
    UPSKILL_RETURN_IF_ERROR(projected_items.SetMetadata(key, column));
  }

  Dataset out(std::move(projected_items));
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    out.AddUser(dataset.user_name(u));
    for (const Action& a : dataset.sequence(u)) {
      UPSKILL_RETURN_IF_ERROR(out.AddAction(u, a.time, a.item, a.rating));
    }
  }
  return out;
}

Result<Dataset> ProjectToIdOnly(const Dataset& dataset) {
  return ProjectToFeatures(dataset, {});
}

}  // namespace upskill
