#ifndef UPSKILL_BASELINES_UNIFORM_MODEL_H_
#define UPSKILL_BASELINES_UNIFORM_MODEL_H_

#include "common/status.h"
#include "core/skill_model.h"
#include "core/trainer.h"
#include "data/dataset.h"

namespace upskill {

/// The "Uniform" baseline of Section VI-D: each sequence is segmented into
/// S equal-length groups and the s-th group gets level s; no iteration.
/// The returned model's parameters are fitted once from those assignments
/// so the baseline can also rank items for the prediction tasks.
struct UniformBaselineResult {
  SkillModel model;
  SkillAssignments assignments;
};

/// Segments all sequences and fits model parameters once.
Result<UniformBaselineResult> TrainUniformBaseline(
    const Dataset& dataset, const SkillModelConfig& config);

/// Helper for building the ID-only (Yang et al.) schema: a copy of
/// `items`' schema reduced to just the item-ID feature, with the item
/// table rebuilt accordingly. Training the standard Trainer on the result
/// reproduces the paper's "ID" baseline.
Result<Dataset> ProjectToIdOnly(const Dataset& dataset);

/// Projects `dataset` onto a subset of features named in `keep` (the ID
/// feature is always retained). Supports the paper's ID+categorical /
/// ID+gamma / ID+Poisson ablations (Table VI).
Result<Dataset> ProjectToFeatures(const Dataset& dataset,
                                  const std::vector<std::string>& keep);

}  // namespace upskill

#endif  // UPSKILL_BASELINES_UNIFORM_MODEL_H_
