#ifndef UPSKILL_COMMON_BYTES_H_
#define UPSKILL_COMMON_BYTES_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace upskill {

// Every binary format in this repo (serve snapshots, the columnar store,
// ingest-log batches, online-EM checkpoints) commits to little-endian
// on-disk layout; raw memcpy of host integers/doubles is only correct on
// little-endian hosts (every platform this library targets). A big-endian
// port would add byte swaps here, in one place.
static_assert(std::endian::native == std::endian::little,
              "binary serialization assumes a little-endian host");

/// Append-only little-endian byte sink used by the binary writers.
class ByteWriter {
 public:
  void U8(uint8_t v) { Raw(&v, 1); }
  void U32(uint32_t v) { Raw(&v, sizeof v); }
  void U64(uint64_t v) { Raw(&v, sizeof v); }
  void I32(int32_t v) { Raw(&v, sizeof v); }
  void I64(int64_t v) { Raw(&v, sizeof v); }
  void F64(double v) { Raw(&v, sizeof v); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  void VecF64(const std::vector<double>& v) {
    U32(static_cast<uint32_t>(v.size()));
    Raw(v.data(), v.size() * sizeof(double));
  }
  void Raw(const void* data, size_t size) {
    buffer_.append(static_cast<const char*>(data), size);
  }
  const std::string& buffer() const { return buffer_; }

 private:
  std::string buffer_;
};

/// Bounds-checked sequential reader; every getter returns false once the
/// input is exhausted, and callers convert that into Corruption.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(std::span<const uint8_t> bytes)
      : data_(reinterpret_cast<const char*>(bytes.data())),
        size_(bytes.size()) {}

  bool U8(uint8_t* v) { return Raw(v, 1); }
  bool U32(uint32_t* v) { return Raw(v, sizeof *v); }
  bool U64(uint64_t* v) { return Raw(v, sizeof *v); }
  bool I32(int32_t* v) { return Raw(v, sizeof *v); }
  bool I64(int64_t* v) { return Raw(v, sizeof *v); }
  bool F64(double* v) { return Raw(v, sizeof *v); }
  bool Str(std::string* s) {
    uint32_t n = 0;
    if (!U32(&n) || size_ - pos_ < n) return false;
    s->assign(data_ + pos_, n);
    pos_ += n;
    return true;
  }
  bool VecF64(std::vector<double>* v) {
    uint32_t n = 0;
    if (!U32(&n) || size_ - pos_ < static_cast<size_t>(n) * sizeof(double)) {
      return false;
    }
    v->resize(n);
    std::memcpy(v->data(), data_ + pos_, n * sizeof(double));
    pos_ += static_cast<size_t>(n) * sizeof(double);
    return true;
  }
  bool Doubles(std::span<double> out) {
    return Raw(out.data(), out.size() * sizeof(double));
  }
  bool Raw(void* out, size_t size) {
    if (size_ - pos_ < size) return false;
    std::memcpy(out, data_ + pos_, size);
    pos_ += size;
    return true;
  }
  bool exhausted() const { return pos_ == size_; }
  size_t position() const { return pos_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace upskill

#endif  // UPSKILL_COMMON_BYTES_H_
