#include "common/crc32.h"

namespace upskill {

void Crc32Accumulator::Update(const void* data, size_t size) {
  // Nibble-table variant: small enough to live in a cache line, fast
  // enough for multi-gigabyte segment scans that are I/O-bound anyway.
  static constexpr uint32_t kTable[16] = {
      0x00000000, 0x1db71064, 0x3b6e20c8, 0x26d930ac,
      0x76dc4190, 0x6b6b51f4, 0x4db26158, 0x5005713c,
      0xedb88320, 0xf00f9344, 0xd6d6a3e8, 0xcb61b38c,
      0x9b64c2b0, 0x86d3d2d4, 0xa00ae278, 0xbdbdf21c};
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = crc_;
  for (size_t i = 0; i < size; ++i) {
    crc ^= bytes[i];
    crc = (crc >> 4) ^ kTable[crc & 0xf];
    crc = (crc >> 4) ^ kTable[crc & 0xf];
  }
  crc_ = crc;
}

uint32_t Crc32(const void* data, size_t size) {
  Crc32Accumulator crc;
  crc.Update(data, size);
  return crc.Finish();
}

}  // namespace upskill
