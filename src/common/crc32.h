#ifndef UPSKILL_COMMON_CRC32_H_
#define UPSKILL_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace upskill {

/// Incremental CRC-32 (IEEE 802.3, reflected, nibble-table variant): the
/// integrity check shared by serve snapshots, the columnar store, the
/// ingest log, and EM checkpoints. The accumulator form exists because
/// store segments are written (and verified) in streaming chunks that can
/// be far larger than any buffer we'd want to hold.
class Crc32Accumulator {
 public:
  void Update(const void* data, size_t size);
  uint32_t Finish() const { return crc_ ^ 0xffffffffu; }

 private:
  uint32_t crc_ = 0xffffffffu;
};

/// One-shot CRC-32 of `data`.
uint32_t Crc32(const void* data, size_t size);

}  // namespace upskill

#endif  // UPSKILL_COMMON_CRC32_H_
