#include "common/csv.h"

#include <fstream>

namespace upskill {

Result<std::vector<std::string>> ParseCsvLine(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      current += c;
      ++i;
      continue;
    }
    if (c == '"') {
      if (!current.empty()) {
        return Status::Corruption("quote inside unquoted CSV field");
      }
      in_quotes = true;
      ++i;
      continue;
    }
    if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
      ++i;
      continue;
    }
    current += c;
    ++i;
  }
  if (in_quotes) return Status::Corruption("unterminated quoted CSV field");
  fields.push_back(std::move(current));
  return fields;
}

std::string FormatCsvLine(const std::vector<std::string>& fields) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += ',';
    const std::string& field = fields[i];
    const bool needs_quotes =
        field.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes) {
      out += field;
      continue;
    }
    out += '"';
    for (char c : field) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
  }
  return out;
}

Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path) {
  std::ifstream file(path);
  if (!file.is_open()) return Status::IoError("cannot open " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(file, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    Result<std::vector<std::string>> fields = ParseCsvLine(line);
    if (!fields.ok()) return fields.status();
    rows.push_back(std::move(fields).value());
  }
  return rows;
}

Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows) {
  std::ofstream file(path, std::ios::trunc);
  if (!file.is_open()) return Status::IoError("cannot open " + path);
  for (const auto& row : rows) {
    file << FormatCsvLine(row) << '\n';
  }
  file.flush();
  if (!file.good()) return Status::IoError("write failed for " + path);
  return Status::OK();
}

}  // namespace upskill
