#include "common/csv.h"

#include <cstring>
#include <fstream>
#include <utility>

#include "common/string_util.h"

namespace upskill {

Result<std::vector<std::string>> ParseCsvLine(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      current += c;
      ++i;
      continue;
    }
    if (c == '"') {
      if (!current.empty()) {
        return Status::Corruption("quote inside unquoted CSV field");
      }
      in_quotes = true;
      ++i;
      continue;
    }
    if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
      ++i;
      continue;
    }
    current += c;
    ++i;
  }
  if (in_quotes) return Status::Corruption("unterminated quoted CSV field");
  fields.push_back(std::move(current));
  return fields;
}

std::string FormatCsvLine(const std::vector<std::string>& fields) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += ',';
    const std::string& field = fields[i];
    const bool needs_quotes =
        field.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes) {
      out += field;
      continue;
    }
    out += '"';
    for (char c : field) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
  }
  return out;
}

Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path) {
  std::ifstream file(path);
  if (!file.is_open()) return Status::IoError("cannot open " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(file, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    Result<std::vector<std::string>> fields = ParseCsvLine(line);
    if (!fields.ok()) return fields.status();
    rows.push_back(std::move(fields).value());
  }
  return rows;
}

CsvScanner::CsvScanner(FILE* file, std::string path, size_t max_line_bytes)
    : file_(file), path_(std::move(path)), buffer_(max_line_bytes + 2) {}

Result<CsvScanner> CsvScanner::Open(const std::string& path,
                                    size_t max_line_bytes) {
  FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return Status::IoError("cannot open " + path);
  return CsvScanner(file, path, max_line_bytes);
}

Status CsvScanner::CorruptionAt(const std::string& what) const {
  return Status::Corruption(StringPrintf(
      "%s:%zu (byte %llu): %s", path_.c_str(), line_number_,
      static_cast<unsigned long long>(line_offset_), what.c_str()));
}

Result<bool> CsvScanner::Next(std::vector<std::string>* fields) {
  // fgets into the fixed buffer: one line per call, memory bounded by
  // the buffer regardless of file size. A line that fills the buffer
  // without a terminator is over-long — rejected, never grown.
  while (std::fgets(buffer_.data(), static_cast<int>(buffer_.size()),
                    file_.get()) != nullptr) {
    ++line_number_;
    line_offset_ = next_offset_;
    size_t length = std::strlen(buffer_.data());
    next_offset_ += length;
    const bool saw_newline = length > 0 && buffer_[length - 1] == '\n';
    if (saw_newline) {
      --length;
    } else if (length + 1 == buffer_.size()) {
      return CorruptionAt(StringPrintf("line exceeds %zu bytes",
                                       buffer_.size() - 2));
    }
    if (length > 0 && buffer_[length - 1] == '\r') --length;
    if (length == 0) continue;  // skip blank lines, like ReadCsvFile
    Result<std::vector<std::string>> parsed =
        ParseCsvLine(std::string_view(buffer_.data(), length));
    if (!parsed.ok()) return CorruptionAt(parsed.status().message());
    *fields = std::move(parsed).value();
    return true;
  }
  if (std::ferror(file_.get())) {
    return Status::IoError("read failed for " + path_);
  }
  return false;
}

Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows) {
  std::ofstream file(path, std::ios::trunc);
  if (!file.is_open()) return Status::IoError("cannot open " + path);
  for (const auto& row : rows) {
    file << FormatCsvLine(row) << '\n';
  }
  file.flush();
  if (!file.good()) return Status::IoError("write failed for " + path);
  return Status::OK();
}

}  // namespace upskill
