#ifndef UPSKILL_COMMON_CSV_H_
#define UPSKILL_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace upskill {

/// Parses one CSV record. Supports RFC-4180-style double-quoted fields with
/// embedded commas and doubled quotes; does not support embedded newlines
/// (records are line-oriented throughout this library).
Result<std::vector<std::string>> ParseCsvLine(std::string_view line);

/// Escapes and joins fields into one CSV record (no trailing newline).
std::string FormatCsvLine(const std::vector<std::string>& fields);

/// Reads an entire CSV file into rows of fields. Skips blank lines.
Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path);

/// Writes rows to `path`, overwriting any existing file.
Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows);

}  // namespace upskill

#endif  // UPSKILL_COMMON_CSV_H_
