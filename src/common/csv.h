#ifndef UPSKILL_COMMON_CSV_H_
#define UPSKILL_COMMON_CSV_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace upskill {

/// Parses one CSV record. Supports RFC-4180-style double-quoted fields with
/// embedded commas and doubled quotes; does not support embedded newlines
/// (records are line-oriented throughout this library).
Result<std::vector<std::string>> ParseCsvLine(std::string_view line);

/// Escapes and joins fields into one CSV record (no trailing newline).
std::string FormatCsvLine(const std::vector<std::string>& fields);

/// Reads an entire CSV file into rows of fields. Skips blank lines.
Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path);

/// Writes rows to `path`, overwriting any existing file.
Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows);

/// Streaming line-oriented CSV reader with a bounded line buffer: memory
/// use is O(max_line_bytes) regardless of file size, so the dataset
/// loaders can ingest event logs far larger than RAM row by row. Tracks
/// the 1-based line number and the byte offset where each record starts,
/// so callers can report parse errors as `file:line (byte N)` — precise
/// enough to seek straight to the bad row with ordinary tools.
class CsvScanner {
 public:
  /// Opens `path`; a line longer than `max_line_bytes` (terminator
  /// excluded) is a Corruption, not an allocation.
  static Result<CsvScanner> Open(const std::string& path,
                                 size_t max_line_bytes = 1 << 20);

  CsvScanner(CsvScanner&&) = default;
  CsvScanner& operator=(CsvScanner&&) = default;

  /// Reads the next non-blank record into `fields`. Returns true when a
  /// record was read, false at end of file; malformed rows and over-long
  /// lines come back as Corruption citing the byte offset.
  Result<bool> Next(std::vector<std::string>* fields);

  /// 1-based line number of the record Next() last returned.
  size_t line_number() const { return line_number_; }
  /// Byte offset (from the start of the file) of that record's first
  /// character.
  uint64_t line_offset() const { return line_offset_; }
  const std::string& path() const { return path_; }

  /// "path:line (byte N): what" — the uniform parse-error shape.
  Status CorruptionAt(const std::string& what) const;

 private:
  CsvScanner(FILE* file, std::string path, size_t max_line_bytes);

  struct FileCloser {
    void operator()(FILE* f) const {
      if (f != nullptr) std::fclose(f);
    }
  };
  std::unique_ptr<FILE, FileCloser> file_;
  std::string path_;
  std::vector<char> buffer_;  // bounded: max_line_bytes + terminator
  size_t line_number_ = 0;
  uint64_t line_offset_ = 0;
  uint64_t next_offset_ = 0;
};

}  // namespace upskill

#endif  // UPSKILL_COMMON_CSV_H_
