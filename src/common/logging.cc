#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace upskill {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

// Serializes writes so interleaved messages from worker threads stay whole.
std::mutex& LogMutex() {
  static std::mutex* mutex = new std::mutex;
  return *mutex;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

bool ParseLogLevel(const std::string& name, LogLevel* level) {
  std::string lowered;
  lowered.reserve(name.size());
  for (char c : name) {
    lowered.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lowered == "debug") {
    *level = LogLevel::kDebug;
  } else if (lowered == "info") {
    *level = LogLevel::kInfo;
  } else if (lowered == "warning") {
    *level = LogLevel::kWarning;
  } else if (lowered == "error") {
    *level = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

void InitLogLevelFromEnv() {
  static const bool applied = [] {
    internal_logging::ApplyLogLevelFromEnv();
    return true;
  }();
  (void)applied;
}

namespace {

// Honors UPSKILL_LOG_LEVEL before main() so every binary linking the
// library picks it up without explicit wiring.
const bool g_env_log_level_applied = [] {
  InitLogLevelFromEnv();
  return true;
}();

}  // namespace

namespace internal_logging {

bool ApplyLogLevelFromEnv() {
  const char* value = std::getenv("UPSKILL_LOG_LEVEL");
  if (value == nullptr || *value == '\0') return false;
  LogLevel level;
  if (!ParseLogLevel(value, &level)) {
    // Plain fprintf: the threshold machinery is exactly what failed to
    // configure, so don't route the complaint through it.
    std::fprintf(stderr,
                 "upskill: ignoring UPSKILL_LOG_LEVEL=\"%s\" "
                 "(expected debug|info|warning|error)\n",
                 value);
    return false;
  }
  SetLogLevel(level);
  return true;
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* basename = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') basename = p + 1;
  }
  stream_ << "[" << LevelTag(level_) << " " << basename << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> lock(LogMutex());
  std::cerr << stream_.str() << std::endl;
}

void CheckFailure(const char* expression, const char* file, int line) {
  {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::cerr << "[F " << file << ":" << line << "] CHECK failed: " << expression
              << std::endl;
  }
  std::abort();
}

}  // namespace internal_logging

}  // namespace upskill
