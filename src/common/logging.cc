#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace upskill {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

// Serializes writes so interleaved messages from worker threads stay whole.
std::mutex& LogMutex() {
  static std::mutex* mutex = new std::mutex;
  return *mutex;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* basename = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') basename = p + 1;
  }
  stream_ << "[" << LevelTag(level_) << " " << basename << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> lock(LogMutex());
  std::cerr << stream_.str() << std::endl;
}

void CheckFailure(const char* expression, const char* file, int line) {
  {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::cerr << "[F " << file << ":" << line << "] CHECK failed: " << expression
              << std::endl;
  }
  std::abort();
}

}  // namespace internal_logging

}  // namespace upskill
