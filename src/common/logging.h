#ifndef UPSKILL_COMMON_LOGGING_H_
#define UPSKILL_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace upskill {

/// Severity levels in increasing order. Messages below the global threshold
/// are discarded.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum severity that is emitted. Thread-safe.
void SetLogLevel(LogLevel level);

/// Returns the current global minimum severity.
LogLevel GetLogLevel();

/// Parses a case-insensitive severity name ("debug", "info", "warning",
/// "error") into `level`; returns false (and leaves `level` untouched)
/// for anything else.
bool ParseLogLevel(const std::string& name, LogLevel* level);

/// Applies the `UPSKILL_LOG_LEVEL` environment variable (debug|info|
/// warning|error, case-insensitive) to the global threshold. The
/// variable is read once per process — the first call wins, later calls
/// are no-ops — and it runs automatically before main() via a static
/// initializer, so exported binaries honor it with no wiring. An unset
/// variable leaves the default (info); an unrecognized value is reported
/// on stderr and ignored.
void InitLogLevelFromEnv();

namespace internal_logging {

/// Unconditional re-read of UPSKILL_LOG_LEVEL (no once-guard); returns
/// true when the variable was set to a valid level and applied. Exists so
/// tests can exercise the override after setenv(); production code uses
/// InitLogLevelFromEnv().
bool ApplyLogLevelFromEnv();

/// Stream-style log message; emits to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Sink for disabled log statements; swallows the streamed expression.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

#define UPSKILL_LOG(level)                                                  \
  (::upskill::LogLevel::k##level < ::upskill::GetLogLevel())                \
      ? void(0)                                                             \
      : ::upskill::internal_logging::Voidify() &                            \
            ::upskill::internal_logging::LogMessage(                        \
                ::upskill::LogLevel::k##level, __FILE__, __LINE__)          \
                .stream()

namespace internal_logging {

/// Helper giving the conditional in UPSKILL_LOG a common void type.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging

/// Aborts the process with a message when `condition` is false. Used for
/// internal invariants (not for user input validation, which returns
/// Status).
#define UPSKILL_CHECK(condition)                                        \
  (condition) ? void(0)                                                 \
              : ::upskill::internal_logging::CheckFailure(#condition,   \
                                                          __FILE__, __LINE__)

namespace internal_logging {

[[noreturn]] void CheckFailure(const char* expression, const char* file,
                               int line);

}  // namespace internal_logging

}  // namespace upskill

#endif  // UPSKILL_COMMON_LOGGING_H_
