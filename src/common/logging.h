#ifndef UPSKILL_COMMON_LOGGING_H_
#define UPSKILL_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace upskill {

/// Severity levels in increasing order. Messages below the global threshold
/// are discarded.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum severity that is emitted. Thread-safe.
void SetLogLevel(LogLevel level);

/// Returns the current global minimum severity.
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log message; emits to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Sink for disabled log statements; swallows the streamed expression.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

#define UPSKILL_LOG(level)                                                  \
  (::upskill::LogLevel::k##level < ::upskill::GetLogLevel())                \
      ? void(0)                                                             \
      : ::upskill::internal_logging::Voidify() &                            \
            ::upskill::internal_logging::LogMessage(                        \
                ::upskill::LogLevel::k##level, __FILE__, __LINE__)          \
                .stream()

namespace internal_logging {

/// Helper giving the conditional in UPSKILL_LOG a common void type.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging

/// Aborts the process with a message when `condition` is false. Used for
/// internal invariants (not for user input validation, which returns
/// Status).
#define UPSKILL_CHECK(condition)                                        \
  (condition) ? void(0)                                                 \
              : ::upskill::internal_logging::CheckFailure(#condition,   \
                                                          __FILE__, __LINE__)

namespace internal_logging {

[[noreturn]] void CheckFailure(const char* expression, const char* file,
                               int line);

}  // namespace internal_logging

}  // namespace upskill

#endif  // UPSKILL_COMMON_LOGGING_H_
