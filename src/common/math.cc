#include "common/math.h"

#include <array>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace upskill {

namespace {

// std::lgamma writes the process-global `signgam`, which is a data race
// when batched log-prob kernels fan out across threads. Use the
// reentrant form where available; the sign is discarded (callers require
// x > 0, where gamma(x) > 0).
double ThreadSafeLogGamma(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

}  // namespace

double LogGamma(double x) {
  UPSKILL_CHECK(x > 0.0);
  return ThreadSafeLogGamma(x);
}

double Digamma(double x) {
  UPSKILL_CHECK(x > 0.0);
  // Shift x up until the asymptotic expansion is accurate.
  double result = 0.0;
  while (x < 6.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  // Asymptotic series: psi(x) ~ ln x - 1/(2x) - sum B_2n / (2n x^{2n}).
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv;
  result -= inv2 * (1.0 / 12.0 -
                    inv2 * (1.0 / 120.0 -
                            inv2 * (1.0 / 252.0 -
                                    inv2 * (1.0 / 240.0 - inv2 / 132.0))));
  return result;
}

double Trigamma(double x) {
  UPSKILL_CHECK(x > 0.0);
  double result = 0.0;
  while (x < 10.0) {
    result += 1.0 / (x * x);
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  // psi'(x) ~ 1/x + 1/(2x^2) + sum B_2n / x^{2n+1}.
  result += inv * (1.0 +
                   inv * (0.5 +
                          inv * (1.0 / 6.0 -
                                 inv2 * (1.0 / 30.0 -
                                         inv2 * (1.0 / 42.0 - inv2 / 30.0)))));
  return result;
}

double LogFactorial(long long k) {
  UPSKILL_CHECK(k >= 0);
  static constexpr int kTableSize = 256;
  static const std::array<double, kTableSize> kTable = [] {
    std::array<double, kTableSize> table{};
    table[0] = 0.0;
    for (int i = 1; i < kTableSize; ++i) {
      table[i] = table[i - 1] + std::log(static_cast<double>(i));
    }
    return table;
  }();
  if (k < kTableSize) return kTable[static_cast<size_t>(k)];
  return ThreadSafeLogGamma(static_cast<double>(k) + 1.0);
}

double LogSumExp(std::span<const double> values) {
  if (values.empty()) return -std::numeric_limits<double>::infinity();
  double max_value = -std::numeric_limits<double>::infinity();
  for (double v : values) max_value = std::max(max_value, v);
  if (!std::isfinite(max_value)) return max_value;
  double sum = 0.0;
  for (double v : values) sum += std::exp(v - max_value);
  return max_value + std::log(sum);
}

}  // namespace upskill
