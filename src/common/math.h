#ifndef UPSKILL_COMMON_MATH_H_
#define UPSKILL_COMMON_MATH_H_

#include <span>

namespace upskill {

/// Natural log of the gamma function for x > 0.
double LogGamma(double x);

/// Digamma function psi(x) = d/dx log Gamma(x), for x > 0.
/// Accurate to ~1e-12 via upward recurrence plus asymptotic expansion.
double Digamma(double x);

/// Trigamma function psi'(x), for x > 0.
double Trigamma(double x);

/// log(k!) for k >= 0; small arguments are served from a table.
double LogFactorial(long long k);

/// Numerically stable log(sum_i exp(values[i])). Returns -inf for empty
/// input.
double LogSumExp(std::span<const double> values);

}  // namespace upskill

#endif  // UPSKILL_COMMON_MATH_H_
