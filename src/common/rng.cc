#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace upskill {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

int64_t Rng::NextInt(int64_t bound) {
  UPSKILL_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t ubound = static_cast<uint64_t>(bound);
  const uint64_t limit = UINT64_MAX - UINT64_MAX % ubound;
  uint64_t value;
  do {
    value = NextUint64();
  } while (value >= limit);
  return static_cast<int64_t>(value % ubound);
}

int64_t Rng::NextIntInRange(int64_t lo, int64_t hi) {
  UPSKILL_CHECK(lo <= hi);
  return lo + NextInt(hi - lo + 1);
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  // Box–Muller transform; u1 kept away from zero to make log finite.
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

int64_t Rng::NextPoisson(double lambda) {
  UPSKILL_CHECK(lambda >= 0.0);
  if (lambda == 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth inversion.
    const double threshold = std::exp(-lambda);
    int64_t k = 0;
    double product = NextDouble();
    while (product > threshold) {
      ++k;
      product *= NextDouble();
    }
    return k;
  }
  // Normal approximation with continuity correction; adequate for data
  // generation at the rates this library uses.
  const double sample = lambda + std::sqrt(lambda) * NextGaussian() + 0.5;
  return sample < 0.0 ? 0 : static_cast<int64_t>(sample);
}

double Rng::NextGamma(double shape, double scale) {
  UPSKILL_CHECK(shape > 0.0);
  UPSKILL_CHECK(scale > 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia–Tsang trick).
    const double u = NextDouble();
    return NextGamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x;
    double v;
    do {
      x = NextGaussian();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

double Rng::NextLogNormal(double mu, double sigma) {
  UPSKILL_CHECK(sigma >= 0.0);
  return std::exp(mu + sigma * NextGaussian());
}

int Rng::NextCategorical(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    UPSKILL_CHECK(w >= 0.0);
    total += w;
  }
  UPSKILL_CHECK(total > 0.0);
  double target = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return static_cast<int>(i);
  }
  // Floating-point slack: fall back to the last positive weight.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return static_cast<int>(i - 1);
  }
  return 0;
}

Rng Rng::Split() { return Rng(NextUint64()); }

}  // namespace upskill
