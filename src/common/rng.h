#ifndef UPSKILL_COMMON_RNG_H_
#define UPSKILL_COMMON_RNG_H_

#include <cstdint>
#include <span>
#include <vector>

namespace upskill {

/// Deterministic pseudo-random number generator (xoshiro256**), seeded via
/// SplitMix64 so that any 64-bit seed yields a well-mixed state. Every
/// stochastic component in the library (data generators, bootstrap,
/// initial FFM weights) takes an explicit `Rng&` so that experiments are
/// reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound). `bound` must be positive.
  int64_t NextInt(int64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextIntInRange(int64_t lo, int64_t hi);

  /// True with probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Standard normal variate (Box–Muller, no caching).
  double NextGaussian();

  /// Poisson variate with mean `lambda` (inversion for small lambda,
  /// normal-approximation with rejection fallback for large lambda).
  int64_t NextPoisson(double lambda);

  /// Gamma(shape, scale) variate (Marsaglia–Tsang).
  double NextGamma(double shape, double scale);

  /// Log-normal variate with the given log-space mean and stddev.
  double NextLogNormal(double mu, double sigma);

  /// Samples an index from the (unnormalized, non-negative) weights.
  /// Requires at least one strictly positive weight.
  int NextCategorical(std::span<const double> weights);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextInt(static_cast<int64_t>(i)));
      std::swap(values[i - 1], values[j]);
    }
  }

  /// Derives an independent child generator (for per-thread or per-user
  /// streams) without correlating with this generator's future output.
  Rng Split();

 private:
  uint64_t state_[4];
};

}  // namespace upskill

#endif  // UPSKILL_COMMON_RNG_H_
