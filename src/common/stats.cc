#include "common/stats.h"

#include <cmath>

namespace upskill {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::sample_variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Mean(std::span<const double> values) {
  RunningStats stats;
  for (double v : values) stats.Add(v);
  return stats.mean();
}

double Variance(std::span<const double> values) {
  RunningStats stats;
  for (double v : values) stats.Add(v);
  return stats.variance();
}

}  // namespace upskill
