#ifndef UPSKILL_COMMON_STATS_H_
#define UPSKILL_COMMON_STATS_H_

#include <cstddef>
#include <span>

namespace upskill {

/// Streaming accumulator for count / mean / variance (Welford) plus
/// min/max. Used for descriptive statistics and by the distribution
/// fitters.
class RunningStats {
 public:
  RunningStats() = default;

  /// Adds one observation.
  void Add(double x);

  /// Merges another accumulator into this one.
  void Merge(const RunningStats& other);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Population variance (denominator n); 0 for fewer than 2 samples.
  double variance() const;
  /// Sample variance (denominator n-1); 0 for fewer than 2 samples.
  double sample_variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of `values`; 0 for empty input.
double Mean(std::span<const double> values);

/// Population variance of `values`; 0 for fewer than 2 samples.
double Variance(std::span<const double> values);

}  // namespace upskill

#endif  // UPSKILL_COMMON_STATS_H_
