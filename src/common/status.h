#ifndef UPSKILL_COMMON_STATUS_H_
#define UPSKILL_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace upskill {

/// Error categories used across the library. The public API is
/// exception-free: fallible operations return `Status` or `Result<T>`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  kCorruption,
  kInternal,
  /// Transient overload: the caller should back off and retry. Used by
  /// the serving front ends for deadline-based load shedding and
  /// connection-limit rejections — a distinct code so clients never
  /// confuse "server is busy" with a malformed or unserviceable request.
  kUnavailable,
};

/// Returns a short human-readable name for `code` ("OK", "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Lightweight success/error value, modeled after the Status idiom used by
/// production storage engines. An OK status carries no message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type `T` or an error `Status`. Accessing the value of
/// an errored result is a programming error (checked by assert in debug
/// builds; undefined in release builds, as with other precondition
/// violations in this library).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or from an error status keeps call
  /// sites terse (`return value;` / `return Status::NotFound(...);`).
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result from Status requires an error status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the contained value, or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller.
#define UPSKILL_RETURN_IF_ERROR(expr)              \
  do {                                             \
    ::upskill::Status _upskill_status = (expr);    \
    if (!_upskill_status.ok()) return _upskill_status; \
  } while (false)

}  // namespace upskill

#endif  // UPSKILL_COMMON_STATUS_H_
