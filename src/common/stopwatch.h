#ifndef UPSKILL_COMMON_STOPWATCH_H_
#define UPSKILL_COMMON_STOPWATCH_H_

#include <chrono>

namespace upskill {

/// Wall-clock stopwatch used by the efficiency experiments (Table XIII,
/// Figure 7) and the training loop's progress logging.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts timing from now.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace upskill

#endif  // UPSKILL_COMMON_STOPWATCH_H_
