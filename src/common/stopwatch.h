#ifndef UPSKILL_COMMON_STOPWATCH_H_
#define UPSKILL_COMMON_STOPWATCH_H_

#include <chrono>

namespace upskill {

/// Wall-clock stopwatch used by the efficiency experiments (Table XIII,
/// Figure 7), the training loop's progress logging, and the obs::Span
/// timing primitives.
///
/// Timing is taken from std::chrono::steady_clock, which the standard
/// guarantees is monotonic: it never jumps backwards on NTP slews,
/// daylight-saving shifts, or manual wall-clock changes. Consequently
/// ElapsedSeconds() is always >= 0, including immediately after Reset()
/// and across Reset() boundaries (regression-tested in
/// tests/common/logging_test.cc). Durations measured here are therefore
/// safe to feed into histograms and trace spans without clamping.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts timing from now.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace upskill

#endif  // UPSKILL_COMMON_STOPWATCH_H_
