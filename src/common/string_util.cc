#include "common/string_util.h"

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace upskill {

std::vector<std::string> Split(std::string_view input, char delimiter) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    const size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(input.substr(start));
      break;
    }
    parts.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end && (input[begin] == ' ' || input[begin] == '\t' ||
                         input[begin] == '\r' || input[begin] == '\n')) {
    ++begin;
  }
  while (end > begin && (input[end - 1] == ' ' || input[end - 1] == '\t' ||
                         input[end - 1] == '\r' || input[end - 1] == '\n')) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

Result<long long> ParseInt(std::string_view input) {
  const std::string buffer(StripWhitespace(input));
  if (buffer.empty()) return Status::InvalidArgument("empty integer field");
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buffer.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of range: " + buffer);
  }
  if (end == buffer.c_str() || *end != '\0') {
    return Status::InvalidArgument("not an integer: " + buffer);
  }
  return value;
}

Result<double> ParseDouble(std::string_view input) {
  const std::string buffer(StripWhitespace(input));
  if (buffer.empty()) return Status::InvalidArgument("empty numeric field");
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("number out of range: " + buffer);
  }
  if (end == buffer.c_str() || *end != '\0') {
    return Status::InvalidArgument("not a number: " + buffer);
  }
  return value;
}

bool StartsWith(std::string_view input, std::string_view prefix) {
  return input.size() >= prefix.size() &&
         input.substr(0, prefix.size()) == prefix;
}

std::string StringPrintf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int size = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (size > 0) {
    out.resize(static_cast<size_t>(size));
    std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace upskill
