#ifndef UPSKILL_COMMON_STRING_UTIL_H_
#define UPSKILL_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace upskill {

/// Splits `input` on `delimiter`, keeping empty fields.
std::vector<std::string> Split(std::string_view input, char delimiter);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view input);

/// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Parses a base-10 integer; rejects trailing garbage.
Result<long long> ParseInt(std::string_view input);

/// Parses a floating-point value; rejects trailing garbage.
Result<double> ParseDouble(std::string_view input);

/// True if `input` starts with `prefix`.
bool StartsWith(std::string_view input, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace upskill

#endif  // UPSKILL_COMMON_STRING_UTIL_H_
