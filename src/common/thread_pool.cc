#include "common/thread_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace upskill {

ThreadPool::ThreadPool(int num_threads) {
  const int count = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  UPSKILL_CHECK(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    UPSKILL_CHECK(!shutting_down_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& body) {
  if (begin >= end) return;
  const size_t count = end - begin;
  if (pool == nullptr || pool->num_threads() <= 1 || count == 1) {
    for (size_t i = begin; i < end; ++i) body(i);
    return;
  }
  const size_t num_chunks =
      std::min(count, static_cast<size_t>(pool->num_threads()) * 4);
  const size_t chunk = (count + num_chunks - 1) / num_chunks;
  for (size_t chunk_begin = begin; chunk_begin < end; chunk_begin += chunk) {
    const size_t chunk_end = std::min(end, chunk_begin + chunk);
    pool->Submit([chunk_begin, chunk_end, &body] {
      for (size_t i = chunk_begin; i < chunk_end; ++i) body(i);
    });
  }
  pool->Wait();
}

}  // namespace upskill
