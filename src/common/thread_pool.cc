#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>

#include "common/logging.h"
#include "obs/metrics.h"

namespace upskill {

namespace {

// Pool telemetry: queue depth after every push/pop and the submit->start
// wait per task. Shared by every pool in the process (the gauge is a
// last-write-wins observation; the histogram aggregates). Registered
// lazily so the registry exists before first use.
obs::Gauge& QueueDepthGauge() {
  static obs::Gauge& gauge = obs::MetricsRegistry::Global().GetGauge(
      "upskill_threadpool_queue_depth");
  return gauge;
}

obs::Histogram& TaskWaitHistogram() {
  static obs::Histogram& histogram =
      obs::MetricsRegistry::Global().GetHistogram(
          "upskill_threadpool_task_wait_seconds");
  return histogram;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int count = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  UPSKILL_CHECK(task != nullptr);
  if (obs::MetricsEnabled()) {
    // Wrap to measure queue wait (submit -> first instruction). The
    // wrapper is one extra std::function move per task; tasks here are
    // coarse (a ParallelForChunked worker's whole share), so the cost is
    // noise next to the work itself.
    const auto enqueued = std::chrono::steady_clock::now();
    task = [enqueued, inner = std::move(task)] {
      TaskWaitHistogram().Observe(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        enqueued)
              .count());
      inner();
    };
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    UPSKILL_CHECK(!shutting_down_);
    queue_.push_back(std::move(task));
    ++in_flight_;
    if (obs::MetricsEnabled()) {
      QueueDepthGauge().Set(static_cast<double>(queue_.size()));
    }
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop_front();
      if (obs::MetricsEnabled()) {
        QueueDepthGauge().Set(static_cast<double>(queue_.size()));
      }
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

int ParallelMaxSlots(const ThreadPool* pool) {
  return pool == nullptr ? 1 : pool->num_threads() + 1;
}

namespace {

// Shared state of one ParallelForChunked call. Tasks capture it via
// shared_ptr: a straggler task that wakes up after the loop completed
// finds the range exhausted and returns without touching the body, so the
// caller may safely return (and destroy the objects the body references)
// as soon as every *chunk* — not every task — has finished.
struct ParallelLoopState {
  std::function<void(int, size_t, size_t)> chunk_body;
  size_t end = 0;
  size_t chunk_size = 1;
  size_t total_chunks = 0;
  std::atomic<size_t> next{0};
  std::atomic<size_t> completed{0};
  std::atomic<int> next_slot{1};  // slot 0 is reserved for the caller
  std::mutex mutex;
  std::condition_variable all_chunks_done;

  // Grabs chunks off the shared counter until the range is exhausted.
  void RunWorker(int slot) {
    size_t done = 0;
    while (true) {
      const size_t chunk_begin =
          next.fetch_add(chunk_size, std::memory_order_relaxed);
      if (chunk_begin >= end) break;
      chunk_body(slot, chunk_begin, std::min(end, chunk_begin + chunk_size));
      ++done;
    }
    if (done == 0) return;
    // Release pairs with the caller's acquire load, publishing the body's
    // writes before the caller can observe completion.
    const size_t finished =
        completed.fetch_add(done, std::memory_order_acq_rel) + done;
    if (finished == total_chunks) {
      // Taking the mutex orders the notify after the caller enters its
      // wait, so the wakeup cannot be lost.
      std::lock_guard<std::mutex> lock(mutex);
      all_chunks_done.notify_all();
    }
  }
};

}  // namespace

void ParallelForChunked(
    ThreadPool* pool, size_t begin, size_t end,
    const std::function<void(int slot, size_t chunk_begin, size_t chunk_end)>&
        chunk_body) {
  if (begin >= end) return;
  const size_t count = end - begin;
  if (pool == nullptr || pool->num_threads() <= 1 || count == 1) {
    chunk_body(0, begin, end);
    return;
  }
  const size_t threads = static_cast<size_t>(pool->num_threads());
  // ~8 chunks per thread keeps skewed per-chunk costs balanced while the
  // one atomic fetch_add per chunk stays amortized.
  const size_t chunk = std::max<size_t>(1, count / (threads * 8));
  auto state = std::make_shared<ParallelLoopState>();
  state->chunk_body = chunk_body;
  state->end = end;
  state->chunk_size = chunk;
  state->total_chunks = (count + chunk - 1) / chunk;
  state->next.store(begin, std::memory_order_relaxed);
  // The caller takes one worker's share itself, so a nested loop makes
  // progress even when every pool worker is occupied.
  const size_t tasks = std::min(threads, state->total_chunks - 1);
  for (size_t t = 0; t < tasks; ++t) {
    pool->Submit([state] {
      state->RunWorker(state->next_slot.fetch_add(1, std::memory_order_relaxed));
    });
  }
  state->RunWorker(0);
  std::unique_lock<std::mutex> lock(state->mutex);
  state->all_chunks_done.wait(lock, [&state] {
    return state->completed.load(std::memory_order_acquire) ==
           state->total_chunks;
  });
}

void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& body) {
  if (begin >= end) return;
  if (pool == nullptr || pool->num_threads() <= 1 || end - begin == 1) {
    for (size_t i = begin; i < end; ++i) body(i);
    return;
  }
  ParallelForChunked(pool, begin, end,
                     [&body](int /*slot*/, size_t chunk_begin,
                             size_t chunk_end) {
                       for (size_t i = chunk_begin; i < chunk_end; ++i) {
                         body(i);
                       }
                     });
}

}  // namespace upskill
