#ifndef UPSKILL_COMMON_THREAD_POOL_H_
#define UPSKILL_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace upskill {

/// Fixed-size worker pool. Section IV-C of the paper derives three
/// independent axes of parallelism for training (users in the assignment
/// step; skill levels and features in the update step); the trainer maps
/// each axis onto this pool via ParallelFor below.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. Pool-global: it
  /// observes tasks submitted by *any* thread, so callers coordinating a
  /// specific batch should prefer ParallelFor/ParallelForChunked, which
  /// block on a per-call completion latch instead.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t in_flight_ = 0;  // queued + currently executing tasks
  bool shutting_down_ = false;
};

/// Exclusive upper bound on the `slot` values ParallelForChunked passes to
/// its body on `pool`: one slot per pool worker plus one for the calling
/// thread (1 when `pool` is null). Size per-slot accumulators with this.
int ParallelMaxSlots(const ThreadPool* pool);

/// Dynamically scheduled chunked loop: [begin, end) is carved into chunks
/// that the pool's workers and the calling thread grab off a shared
/// atomic counter, so skewed per-index costs cannot serialize the tail
/// the way static chunking does. `chunk_body(slot, chunk_begin,
/// chunk_end)` processes one contiguous chunk; `slot` is stable for the
/// duration of the thread's participation in this call and lies in
/// [0, ParallelMaxSlots(pool)), which makes per-slot scratch state safe
/// without locking. Which slot sees which chunk is nondeterministic, so
/// per-slot accumulation is only order-independent-safe (e.g. exact
/// integer counts).
///
/// Completion blocks on a per-call latch, never on the pool-global
/// Wait(): concurrent and nested loops on one pool are safe, and the
/// calling thread always participates, so a nested loop completes even
/// when every other worker is busy.
void ParallelForChunked(
    ThreadPool* pool, size_t begin, size_t end,
    const std::function<void(int slot, size_t chunk_begin, size_t chunk_end)>&
        chunk_body);

/// Runs `body(i)` for every i in [begin, end). When `pool` is null or the
/// range is trivial, runs inline on the calling thread; otherwise
/// schedules dynamically via ParallelForChunked. `body` must be safe to
/// invoke concurrently for distinct indices.
void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& body);

}  // namespace upskill

#endif  // UPSKILL_COMMON_THREAD_POOL_H_
