#ifndef UPSKILL_COMMON_THREAD_POOL_H_
#define UPSKILL_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace upskill {

/// Fixed-size worker pool. Section IV-C of the paper derives three
/// independent axes of parallelism for training (users in the assignment
/// step; skill levels and features in the update step); the trainer maps
/// each axis onto this pool via ParallelFor below.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t in_flight_ = 0;  // queued + currently executing tasks
  bool shutting_down_ = false;
};

/// Runs `body(i)` for every i in [begin, end). When `pool` is null or the
/// range is trivial, runs inline on the calling thread; otherwise splits
/// the range into contiguous chunks, one batch per worker. `body` must be
/// safe to invoke concurrently for distinct indices.
void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& body);

}  // namespace upskill

#endif  // UPSKILL_COMMON_THREAD_POOL_H_
