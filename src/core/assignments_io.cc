#include "core/assignments_io.h"

#include "common/csv.h"
#include "common/string_util.h"

namespace upskill {

Status SaveAssignments(const SkillAssignments& assignments,
                       const std::string& path) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"user", "position", "level"});
  for (size_t u = 0; u < assignments.size(); ++u) {
    for (size_t n = 0; n < assignments[u].size(); ++n) {
      rows.push_back({StringPrintf("%zu", u), StringPrintf("%zu", n),
                      StringPrintf("%d", assignments[u][n])});
    }
  }
  return WriteCsvFile(path, rows);
}

Result<SkillAssignments> LoadAssignments(const std::string& path,
                                         int num_users, int num_levels) {
  if (num_users < 0) {
    return Status::InvalidArgument("num_users must be non-negative");
  }
  Result<std::vector<std::vector<std::string>>> rows = ReadCsvFile(path);
  if (!rows.ok()) return rows.status();

  // Collect (position, level) pairs per user, then validate density.
  std::vector<std::vector<std::pair<size_t, int>>> pending(
      static_cast<size_t>(num_users));
  for (size_t r = 1; r < rows.value().size(); ++r) {
    const std::vector<std::string>& row = rows.value()[r];
    if (row.size() != 3) {
      return Status::Corruption(StringPrintf("assignments row %zu", r));
    }
    const Result<long long> user = ParseInt(row[0]);
    const Result<long long> position = ParseInt(row[1]);
    const Result<long long> level = ParseInt(row[2]);
    if (!user.ok()) return user.status();
    if (!position.ok()) return position.status();
    if (!level.ok()) return level.status();
    if (user.value() < 0 || user.value() >= num_users) {
      return Status::OutOfRange(
          StringPrintf("user %lld out of range", user.value()));
    }
    if (level.value() < 1 || level.value() > num_levels) {
      return Status::OutOfRange(
          StringPrintf("level %lld out of range", level.value()));
    }
    if (position.value() < 0) {
      return Status::OutOfRange("negative position");
    }
    pending[static_cast<size_t>(user.value())].emplace_back(
        static_cast<size_t>(position.value()),
        static_cast<int>(level.value()));
  }

  SkillAssignments assignments(static_cast<size_t>(num_users));
  for (size_t u = 0; u < pending.size(); ++u) {
    std::vector<int>& levels = assignments[u];
    levels.assign(pending[u].size(), 0);
    for (const auto& [position, level] : pending[u]) {
      // Levels are validated >= 1 above, so 0 is a safe "unseen" sentinel;
      // a non-zero slot means this (user, position) appeared twice. Report
      // that distinctly from a gap — a duplicate is a corrupt writer, a
      // gap is a missing row, and the two are debugged differently.
      if (position < levels.size() && levels[position] != 0) {
        return Status::Corruption(StringPrintf(
            "duplicate (user, position) row: user %zu position %zu", u,
            position));
      }
      if (position >= levels.size()) {
        return Status::Corruption(StringPrintf(
            "user %zu: positions are not a gapless 0..n-1 range", u));
      }
      levels[position] = level;
    }
  }
  return assignments;
}

}  // namespace upskill
