#ifndef UPSKILL_CORE_ASSIGNMENTS_IO_H_
#define UPSKILL_CORE_ASSIGNMENTS_IO_H_

#include <string>

#include "common/status.h"
#include "core/skill_model.h"

namespace upskill {

/// Writes per-action skill assignments as CSV (`user,position,level`),
/// one row per action. Users with empty sequences contribute no rows but
/// are restored by LoadAssignments via the `num_users` argument.
Status SaveAssignments(const SkillAssignments& assignments,
                       const std::string& path);

/// Restores assignments written by SaveAssignments. `num_users` sets the
/// output size (users absent from the file get empty sequences);
/// `num_levels` bounds level validation. Rows may appear in any order but
/// positions per user must form a gapless 0..n-1 range.
Result<SkillAssignments> LoadAssignments(const std::string& path,
                                         int num_users, int num_levels);

}  // namespace upskill

#endif  // UPSKILL_CORE_ASSIGNMENTS_IO_H_
