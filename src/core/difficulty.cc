#include "core/difficulty.h"

#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/math.h"

namespace upskill {

std::vector<double> EstimateDifficultyByAssignment(
    const Dataset& dataset, const SkillAssignments& assignments) {
  const size_t num_items = static_cast<size_t>(dataset.items().num_items());
  std::vector<double> level_sum(num_items, 0.0);
  std::vector<size_t> count(num_items, 0);
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    std::span<const Action> seq = dataset.sequence(u);
    const std::vector<int>& levels = assignments[static_cast<size_t>(u)];
    UPSKILL_CHECK(levels.size() == seq.size());
    for (size_t n = 0; n < seq.size(); ++n) {
      level_sum[static_cast<size_t>(seq[n].item)] +=
          static_cast<double>(levels[n]);
      ++count[static_cast<size_t>(seq[n].item)];
    }
  }
  std::vector<double> difficulty(num_items,
                                 std::numeric_limits<double>::quiet_NaN());
  for (size_t i = 0; i < num_items; ++i) {
    if (count[i] > 0) {
      difficulty[i] = level_sum[i] / static_cast<double>(count[i]);
    }
  }
  return difficulty;
}

std::vector<double> UniformSkillPrior(int num_levels) {
  UPSKILL_CHECK(num_levels >= 1);
  return std::vector<double>(static_cast<size_t>(num_levels),
                             1.0 / static_cast<double>(num_levels));
}

std::vector<double> EmpiricalSkillPrior(const SkillAssignments& assignments,
                                        int num_levels) {
  UPSKILL_CHECK(num_levels >= 1);
  std::vector<double> prior(static_cast<size_t>(num_levels), 0.0);
  size_t total = 0;
  for (const std::vector<int>& seq : assignments) {
    for (int level : seq) {
      UPSKILL_CHECK(level >= 1 && level <= num_levels);
      prior[static_cast<size_t>(level - 1)] += 1.0;
      ++total;
    }
  }
  if (total == 0) return UniformSkillPrior(num_levels);
  for (double& p : prior) p /= static_cast<double>(total);
  return prior;
}

Result<std::vector<double>> EstimateDifficultyByGeneration(
    const ItemTable& items, const SkillModel& model,
    std::span<const double> prior) {
  const int num_levels = model.num_levels();
  if (static_cast<int>(prior.size()) != num_levels) {
    return Status::InvalidArgument("prior size does not match num_levels");
  }
  double prior_sum = 0.0;
  for (double p : prior) {
    if (p < 0.0) return Status::InvalidArgument("negative prior entry");
    prior_sum += p;
  }
  if (prior_sum <= 0.0) return Status::InvalidArgument("prior sums to zero");

  std::vector<double> difficulty(static_cast<size_t>(items.num_items()));
  std::vector<double> log_posterior(static_cast<size_t>(num_levels));
  for (ItemId i = 0; i < items.num_items(); ++i) {
    for (int s = 1; s <= num_levels; ++s) {
      const double log_prior =
          prior[static_cast<size_t>(s - 1)] > 0.0
              ? std::log(prior[static_cast<size_t>(s - 1)])
              : -std::numeric_limits<double>::infinity();
      log_posterior[static_cast<size_t>(s - 1)] =
          model.ItemLogProb(items, i, s) + log_prior;
    }
    const double log_norm = LogSumExp(log_posterior);
    double expected = 0.0;
    if (std::isfinite(log_norm)) {
      for (int s = 1; s <= num_levels; ++s) {
        expected +=
            static_cast<double>(s) *
            std::exp(log_posterior[static_cast<size_t>(s - 1)] - log_norm);
      }
    } else {
      // The item is impossible under every level (can happen for
      // out-of-vocabulary inputs with zero smoothing); fall back to the
      // scale midpoint rather than propagating NaN.
      expected = 0.5 * (1.0 + static_cast<double>(num_levels));
    }
    difficulty[static_cast<size_t>(i)] = expected;
  }
  return difficulty;
}

Result<std::vector<double>> EstimateDifficultyByGeneration(
    const ItemTable& items, const SkillModel& model, DifficultyPrior prior,
    const SkillAssignments& assignments) {
  const std::vector<double> prior_vector =
      prior == DifficultyPrior::kUniform
          ? UniformSkillPrior(model.num_levels())
          : EmpiricalSkillPrior(assignments, model.num_levels());
  return EstimateDifficultyByGeneration(items, model, prior_vector);
}

Result<std::vector<double>> EstimateDifficultyShrunken(
    const Dataset& dataset, const SkillModel& model,
    const SkillAssignments& assignments, DifficultyPrior prior,
    double generation_weight) {
  if (!(generation_weight > 0.0)) {
    return Status::InvalidArgument("generation_weight must be positive");
  }
  Result<std::vector<double>> generation = EstimateDifficultyByGeneration(
      dataset.items(), model, prior, assignments);
  if (!generation.ok()) return generation.status();
  const std::vector<double> assignment =
      EstimateDifficultyByAssignment(dataset, assignments);

  std::vector<size_t> counts(static_cast<size_t>(dataset.items().num_items()),
                             0);
  dataset.ForEachAction([&counts](UserId, const Action& a) {
    ++counts[static_cast<size_t>(a.item)];
  });

  std::vector<double> combined(generation.value().size());
  for (size_t i = 0; i < combined.size(); ++i) {
    const double n = static_cast<double>(counts[i]);
    if (n == 0.0 || std::isnan(assignment[i])) {
      combined[i] = generation.value()[i];
      continue;
    }
    combined[i] = (n * assignment[i] + generation_weight *
                                           generation.value()[i]) /
                  (n + generation_weight);
  }
  return combined;
}

}  // namespace upskill
