#ifndef UPSKILL_CORE_DIFFICULTY_H_
#define UPSKILL_CORE_DIFFICULTY_H_

#include <vector>

#include "common/status.h"
#include "core/skill_model.h"
#include "data/dataset.h"

namespace upskill {

/// Skill prior P(s) used by the generation-based estimator (Section V-B).
enum class DifficultyPrior {
  /// P(s) = 1/S.
  kUniform,
  /// P(s) = fraction of actions assigned level s.
  kEmpirical,
};

/// Assignment-based difficulty (Equation 8): the mean assigned skill level
/// over the actions that select each item. Items never selected get NaN —
/// the estimator's documented blind spot for new items.
std::vector<double> EstimateDifficultyByAssignment(
    const Dataset& dataset, const SkillAssignments& assignments);

/// Uniform prior vector (1/S per level).
std::vector<double> UniformSkillPrior(int num_levels);

/// Empirical prior (Section V-B2): level frequencies over all assigned
/// actions. Falls back to uniform for empty assignments.
std::vector<double> EmpiricalSkillPrior(const SkillAssignments& assignments,
                                        int num_levels);

/// Generation-based difficulty (Equations 9-10) for every item in `items`:
/// d_i = sum_s s * P(s|i) with P(s|i) proportional to P(i|s) * prior[s-1].
/// Works for items with no selection history, which is the estimator's
/// point (Section V-B). `prior` must have one non-negative entry per level
/// with a positive sum.
Result<std::vector<double>> EstimateDifficultyByGeneration(
    const ItemTable& items, const SkillModel& model,
    std::span<const double> prior);

/// Convenience wrapper choosing the prior by enum.
Result<std::vector<double>> EstimateDifficultyByGeneration(
    const ItemTable& items, const SkillModel& model, DifficultyPrior prior,
    const SkillAssignments& assignments);

/// Shrinkage combination of the two estimators (an extension past the
/// paper, addressing its Section V-B robustness discussion head-on): for
/// an item selected n times,
///
///   d_i = (n * d_assignment + w * d_generation) / (n + w)
///
/// so frequently-selected items trust their observed audience while rare
/// and unseen items fall back to the generative estimate.
/// `generation_weight` (w > 0) is the pseudo-count of the generative
/// side; w -> 0 recovers Assignment (where defined), w -> inf recovers
/// the generation estimator.
Result<std::vector<double>> EstimateDifficultyShrunken(
    const Dataset& dataset, const SkillModel& model,
    const SkillAssignments& assignments, DifficultyPrior prior,
    double generation_weight = 5.0);

}  // namespace upskill

#endif  // UPSKILL_CORE_DIFFICULTY_H_
