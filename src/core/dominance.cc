#include "core/dominance.h"

#include <algorithm>

#include "dist/categorical.h"

namespace upskill {

namespace {

// Checks `feature` is categorical and returns its components at levels 1
// and S plus the spec.
Status CheckCategorical(const SkillModel& model, int feature) {
  if (feature < 0 || feature >= model.num_features()) {
    return Status::OutOfRange("feature index out of range");
  }
  if (model.schema().feature(feature).type != FeatureType::kCategorical) {
    return Status::InvalidArgument("dominance requires a categorical feature");
  }
  return Status::OK();
}

std::string LabelFor(const FeatureSpec& spec, int category) {
  if (static_cast<size_t>(category) < spec.labels.size()) {
    return spec.labels[static_cast<size_t>(category)];
  }
  return "";
}

}  // namespace

Result<std::vector<DominanceEntry>> TopDominantCategories(
    const SkillModel& model, int feature, int k, bool skilled) {
  UPSKILL_RETURN_IF_ERROR(CheckCategorical(model, feature));
  const FeatureSpec& spec = model.schema().feature(feature);
  const auto& lowest =
      static_cast<const Categorical&>(model.component(feature, 1));
  const auto& highest = static_cast<const Categorical&>(
      model.component(feature, model.num_levels()));

  std::vector<DominanceEntry> entries;
  entries.reserve(static_cast<size_t>(spec.cardinality));
  for (int c = 0; c < spec.cardinality; ++c) {
    entries.push_back(DominanceEntry{
        c, LabelFor(spec, c), highest.Probability(c) - lowest.Probability(c)});
  }
  const auto more_extreme = [skilled](const DominanceEntry& a,
                                      const DominanceEntry& b) {
    if (a.score != b.score) return skilled ? a.score > b.score
                                           : a.score < b.score;
    return a.category < b.category;
  };
  const size_t take = std::min(entries.size(),
                               static_cast<size_t>(std::max(0, k)));
  std::partial_sort(entries.begin(),
                    entries.begin() + static_cast<ptrdiff_t>(take),
                    entries.end(), more_extreme);
  entries.resize(take);
  return entries;
}

Result<std::vector<DominanceEntry>> TopFrequentCategories(
    const SkillModel& model, int feature, int level, int k) {
  UPSKILL_RETURN_IF_ERROR(CheckCategorical(model, feature));
  if (level < 1 || level > model.num_levels()) {
    return Status::OutOfRange("level out of range");
  }
  const FeatureSpec& spec = model.schema().feature(feature);
  const auto& dist =
      static_cast<const Categorical&>(model.component(feature, level));

  std::vector<DominanceEntry> entries;
  entries.reserve(static_cast<size_t>(spec.cardinality));
  for (int c = 0; c < spec.cardinality; ++c) {
    entries.push_back(DominanceEntry{c, LabelFor(spec, c),
                                     dist.Probability(c)});
  }
  const size_t take = std::min(entries.size(),
                               static_cast<size_t>(std::max(0, k)));
  std::partial_sort(entries.begin(),
                    entries.begin() + static_cast<ptrdiff_t>(take),
                    entries.end(),
                    [](const DominanceEntry& a, const DominanceEntry& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.category < b.category;
                    });
  entries.resize(take);
  return entries;
}

}  // namespace upskill
