#ifndef UPSKILL_CORE_DOMINANCE_H_
#define UPSKILL_CORE_DOMINANCE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/skill_model.h"

namespace upskill {

/// A categorical value with its skill-dominance score
/// P_f(x | theta_f(S)) - P_f(x | theta_f(1)) (Section VI-C, after McAuley
/// and Leskovec): negative scores mark values dominated by unskilled
/// users, positive scores values dominated by skilled users.
struct DominanceEntry {
  int category = 0;
  std::string label;
  double score = 0.0;
};

/// Scores every value of categorical feature `feature` and returns the
/// `k` most extreme entries: the most negative when `skilled` is false
/// (Table IIa / IIIa) or the most positive when true (Table IIb / IIIb).
Result<std::vector<DominanceEntry>> TopDominantCategories(
    const SkillModel& model, int feature, int k, bool skilled);

/// The `k` most probable values of categorical feature `feature` at
/// `level` (Tables IV and V use this with the item-ID feature). `label`
/// carries the schema label when present.
Result<std::vector<DominanceEntry>> TopFrequentCategories(
    const SkillModel& model, int feature, int level, int k);

}  // namespace upskill

#endif  // UPSKILL_CORE_DOMINANCE_H_
