#include "core/dp.h"

#include <limits>

#include "common/logging.h"

namespace upskill {

MonotonePath SolveMonotonePath(std::span<const double> log_probs,
                               int num_levels) {
  return SolveMonotonePathWithTransitions(log_probs, num_levels,
                                          /*log_initial=*/{},
                                          /*log_stay=*/0.0, /*log_up=*/0.0);
}

MonotonePath SolveMonotonePathWithTransitions(
    std::span<const double> log_probs, int num_levels,
    std::span<const double> log_initial, double log_stay, double log_up) {
  UPSKILL_CHECK(num_levels >= 1);
  UPSKILL_CHECK(log_initial.empty() ||
                log_initial.size() == static_cast<size_t>(num_levels));
  MonotonePath result;
  if (log_probs.empty()) return result;
  UPSKILL_CHECK(log_probs.size() % static_cast<size_t>(num_levels) == 0);
  const size_t n = log_probs.size() / static_cast<size_t>(num_levels);
  const size_t levels = static_cast<size_t>(num_levels);

  // best[t * levels + s0] = L(t+1, s0+1); from[...] = 1 when the optimal
  // predecessor is one level below (the "improve" edge), 0 for "stay".
  std::vector<double> best(n * levels);
  std::vector<uint8_t> from(n * levels, 0);

  for (size_t s = 0; s < levels; ++s) {
    best[s] = log_probs[s] + (log_initial.empty() ? 0.0 : log_initial[s]);
  }
  for (size_t t = 1; t < n; ++t) {
    for (size_t s = 0; s < levels; ++s) {
      // Staying at the top level is the only move there, so it is free.
      const double stay_cost = (s + 1 < levels) ? log_stay : 0.0;
      double incoming = best[(t - 1) * levels + s] + stay_cost;
      uint8_t step = 0;
      if (s > 0) {
        // Strict improvement required so ties resolve to "stay", which
        // keeps the path at the lowest attainable level.
        const double up = best[(t - 1) * levels + (s - 1)] + log_up;
        if (up > incoming) {
          incoming = up;
          step = 1;
        }
      }
      best[t * levels + s] = incoming + log_probs[t * levels + s];
      from[t * levels + s] = step;
    }
  }

  // Final level: argmax, ties to the lowest level.
  size_t level = 0;
  double best_ll = best[(n - 1) * levels];
  for (size_t s = 1; s < levels; ++s) {
    const double candidate = best[(n - 1) * levels + s];
    if (candidate > best_ll) {
      best_ll = candidate;
      level = s;
    }
  }

  result.levels.resize(n);
  result.log_likelihood = best_ll;
  for (size_t t = n; t-- > 0;) {
    result.levels[t] = static_cast<int>(level) + 1;
    if (t > 0 && from[t * levels + level]) --level;
  }
  return result;
}

MonotonePath SolveMonotonePathWithForgetting(
    std::span<const double> log_probs, int num_levels,
    std::span<const double> log_initial, double log_stay, double log_up,
    std::span<const uint8_t> allow_down, double log_down) {
  UPSKILL_CHECK(num_levels >= 1);
  UPSKILL_CHECK(log_initial.empty() ||
                log_initial.size() == static_cast<size_t>(num_levels));
  MonotonePath result;
  if (log_probs.empty()) return result;
  UPSKILL_CHECK(log_probs.size() % static_cast<size_t>(num_levels) == 0);
  const size_t n = log_probs.size() / static_cast<size_t>(num_levels);
  UPSKILL_CHECK(allow_down.size() == n - 1);
  const size_t levels = static_cast<size_t>(num_levels);

  std::vector<double> best(n * levels);
  // Predecessor offset relative to the current level: -1 (came from
  // below, "up" move), 0 ("stay"), +1 (came from above, "forget" move).
  std::vector<int8_t> from(n * levels, 0);

  for (size_t s = 0; s < levels; ++s) {
    best[s] = log_probs[s] + (log_initial.empty() ? 0.0 : log_initial[s]);
  }
  for (size_t t = 1; t < n; ++t) {
    for (size_t s = 0; s < levels; ++s) {
      const double stay_cost = (s + 1 < levels) ? log_stay : 0.0;
      double incoming = best[(t - 1) * levels + s] + stay_cost;
      int8_t step = 0;
      if (s > 0) {
        const double up = best[(t - 1) * levels + (s - 1)] + log_up;
        if (up > incoming) {
          incoming = up;
          step = -1;
        }
      }
      if (s + 1 < levels && allow_down[t - 1]) {
        const double down = best[(t - 1) * levels + (s + 1)] + log_down;
        if (down > incoming) {
          incoming = down;
          step = 1;
        }
      }
      best[t * levels + s] = incoming + log_probs[t * levels + s];
      from[t * levels + s] = step;
    }
  }

  size_t level = 0;
  double best_ll = best[(n - 1) * levels];
  for (size_t s = 1; s < levels; ++s) {
    const double candidate = best[(n - 1) * levels + s];
    if (candidate > best_ll) {
      best_ll = candidate;
      level = s;
    }
  }

  result.levels.resize(n);
  result.log_likelihood = best_ll;
  for (size_t t = n; t-- > 0;) {
    result.levels[t] = static_cast<int>(level) + 1;
    if (t > 0) {
      level = static_cast<size_t>(static_cast<int>(level) +
                                  from[t * levels + level]);
    }
  }
  return result;
}

}  // namespace upskill
