#include "core/dp.h"

#include <limits>
#include <utility>

#include "common/logging.h"
#include "simd/kernels.h"

namespace upskill {

MonotonePath SolveMonotonePath(std::span<const double> log_probs,
                               int num_levels) {
  return SolveMonotonePathWithTransitions(log_probs, num_levels,
                                          /*log_initial=*/{},
                                          /*log_stay=*/0.0, /*log_up=*/0.0);
}

MonotonePath SolveMonotonePathWithTransitions(
    std::span<const double> log_probs, int num_levels,
    std::span<const double> log_initial, double log_stay, double log_up) {
  UPSKILL_CHECK(num_levels >= 1);
  UPSKILL_CHECK(log_initial.empty() ||
                log_initial.size() == static_cast<size_t>(num_levels));
  MonotonePath result;
  if (log_probs.empty()) return result;
  UPSKILL_CHECK(log_probs.size() % static_cast<size_t>(num_levels) == 0);
  const size_t n = log_probs.size() / static_cast<size_t>(num_levels);
  const size_t levels = static_cast<size_t>(num_levels);

  // best[t * levels + s0] = L(t+1, s0+1); from[...] = 1 when the optimal
  // predecessor is one level below (the "improve" edge), 0 for "stay".
  std::vector<double> best(n * levels);
  std::vector<uint8_t> from(n * levels, 0);

  for (size_t s = 0; s < levels; ++s) {
    best[s] = log_probs[s] + (log_initial.empty() ? 0.0 : log_initial[s]);
  }
  for (size_t t = 1; t < n; ++t) {
    for (size_t s = 0; s < levels; ++s) {
      // Staying at the top level is the only move there, so it is free.
      const double stay_cost = (s + 1 < levels) ? log_stay : 0.0;
      double incoming = best[(t - 1) * levels + s] + stay_cost;
      uint8_t step = 0;
      if (s > 0) {
        // Strict improvement required so ties resolve to "stay", which
        // keeps the path at the lowest attainable level.
        const double up = best[(t - 1) * levels + (s - 1)] + log_up;
        if (up > incoming) {
          incoming = up;
          step = 1;
        }
      }
      best[t * levels + s] = incoming + log_probs[t * levels + s];
      from[t * levels + s] = step;
    }
  }

  // Final level: argmax, ties to the lowest level.
  size_t level = 0;
  double best_ll = best[(n - 1) * levels];
  for (size_t s = 1; s < levels; ++s) {
    const double candidate = best[(n - 1) * levels + s];
    if (candidate > best_ll) {
      best_ll = candidate;
      level = s;
    }
  }

  result.levels.resize(n);
  result.log_likelihood = best_ll;
  for (size_t t = n; t-- > 0;) {
    result.levels[t] = static_cast<int>(level) + 1;
    if (t > 0 && from[t * levels + level]) --level;
  }
  return result;
}

MonotonePath SolveMonotonePathWithForgetting(
    std::span<const double> log_probs, int num_levels,
    std::span<const double> log_initial, double log_stay, double log_up,
    std::span<const uint8_t> allow_down, double log_down) {
  UPSKILL_CHECK(num_levels >= 1);
  UPSKILL_CHECK(log_initial.empty() ||
                log_initial.size() == static_cast<size_t>(num_levels));
  MonotonePath result;
  if (log_probs.empty()) return result;
  UPSKILL_CHECK(log_probs.size() % static_cast<size_t>(num_levels) == 0);
  const size_t n = log_probs.size() / static_cast<size_t>(num_levels);
  UPSKILL_CHECK(allow_down.size() == n - 1);
  const size_t levels = static_cast<size_t>(num_levels);

  std::vector<double> best(n * levels);
  // Predecessor offset relative to the current level: -1 (came from
  // below, "up" move), 0 ("stay"), +1 (came from above, "forget" move).
  std::vector<int8_t> from(n * levels, 0);

  for (size_t s = 0; s < levels; ++s) {
    best[s] = log_probs[s] + (log_initial.empty() ? 0.0 : log_initial[s]);
  }
  for (size_t t = 1; t < n; ++t) {
    for (size_t s = 0; s < levels; ++s) {
      const double stay_cost = (s + 1 < levels) ? log_stay : 0.0;
      double incoming = best[(t - 1) * levels + s] + stay_cost;
      int8_t step = 0;
      if (s > 0) {
        const double up = best[(t - 1) * levels + (s - 1)] + log_up;
        if (up > incoming) {
          incoming = up;
          step = -1;
        }
      }
      if (s + 1 < levels && allow_down[t - 1]) {
        const double down = best[(t - 1) * levels + (s + 1)] + log_down;
        if (down > incoming) {
          incoming = down;
          step = 1;
        }
      }
      best[t * levels + s] = incoming + log_probs[t * levels + s];
      from[t * levels + s] = step;
    }
  }

  size_t level = 0;
  double best_ll = best[(n - 1) * levels];
  for (size_t s = 1; s < levels; ++s) {
    const double candidate = best[(n - 1) * levels + s];
    if (candidate > best_ll) {
      best_ll = candidate;
      level = s;
    }
  }

  result.levels.resize(n);
  result.log_likelihood = best_ll;
  for (size_t t = n; t-- > 0;) {
    result.levels[t] = static_cast<int>(level) + 1;
    if (t > 0) {
      level = static_cast<size_t>(static_cast<int>(level) +
                                  from[t * levels + level]);
    }
  }
  return result;
}

namespace {

// Backtracks through `from` (0 = stay, 1 = from below, 2 = from above)
// starting at the argmax of the final row; ties prefer the lower level.
// Shared by both item-indexed kernels.
double BacktrackFused(const double* final_row, const uint8_t* from, size_t n,
                      size_t levels, std::vector<int>* out) {
  size_t level = 0;
  double best_ll = final_row[0];
  for (size_t s = 1; s < levels; ++s) {
    if (final_row[s] > best_ll) {
      best_ll = final_row[s];
      level = s;
    }
  }
  for (size_t t = n; t-- > 0;) {
    (*out)[t] = static_cast<int>(level) + 1;
    if (t > 0) {
      const uint8_t step = from[t * levels + level];
      if (step == 1) {
        --level;
      } else if (step == 2) {
        ++level;
      }
    }
  }
  return best_ll;
}

}  // namespace

double SolveMonotonePathItems(std::span<const double> item_log_probs,
                              std::span<const int32_t> items, int num_levels,
                              std::span<const double> log_initial,
                              double log_stay, double log_up,
                              DpScratch& scratch) {
  UPSKILL_CHECK(num_levels >= 1);
  UPSKILL_CHECK(log_initial.empty() ||
                log_initial.size() == static_cast<size_t>(num_levels));
  const size_t n = items.size();
  scratch.levels.resize(n);
  if (n == 0) return 0.0;
  const size_t levels = static_cast<size_t>(num_levels);

  scratch.best_rows.resize(2 * levels);
  scratch.from.resize(n * levels);
  double* prev = scratch.best_rows.data();
  double* curr = prev + levels;

  const double* first = item_log_probs.data() +
                        static_cast<size_t>(items[0]) * levels;
  for (size_t s = 0; s < levels; ++s) {
    prev[s] = first[s] + (log_initial.empty() ? 0.0 : log_initial[s]);
  }
  for (size_t t = 1; t < n; ++t) {
    const double* row = item_log_probs.data() +
                        static_cast<size_t>(items[t]) * levels;
    uint8_t* from_row = scratch.from.data() + t * levels;
    // The bottom and top levels are peeled so the interior kernel carries
    // no stay-cost or boundary branch; the up-vs-stay choice is a select
    // (the comparison outcome is data-dependent and would otherwise
    // mispredict roughly half the time), vectorized across levels by
    // simd::DpRowInterior. Strict > keeps ties on "stay", which keeps the
    // path at the lowest attainable level; values and backpointers stay
    // bitwise identical to the materialized solver on every backend.
    curr[0] = prev[0] + (levels > 1 ? log_stay : 0.0) + row[0];
    from_row[0] = 0;
    simd::DpRowInterior(prev, row, levels, log_stay, log_up, curr, from_row);
    if (levels > 1) {
      // Staying at the top level is the only move there, so it is free.
      const size_t s = levels - 1;
      const double stay = prev[s] + 0.0;
      const double up = prev[s - 1] + log_up;
      const bool up_wins = up > stay;
      curr[s] = (up_wins ? up : stay) + row[s];
      from_row[s] = static_cast<uint8_t>(up_wins);
    }
    std::swap(prev, curr);
  }
  return BacktrackFused(prev, scratch.from.data(), n, levels,
                        &scratch.levels);
}

double SolveMonotonePathItemsWithForgetting(
    std::span<const double> item_log_probs, std::span<const int32_t> items,
    int num_levels, std::span<const double> log_initial, double log_stay,
    double log_up, std::span<const uint8_t> allow_down, double log_down,
    DpScratch& scratch) {
  UPSKILL_CHECK(num_levels >= 1);
  UPSKILL_CHECK(log_initial.empty() ||
                log_initial.size() == static_cast<size_t>(num_levels));
  const size_t n = items.size();
  scratch.levels.resize(n);
  if (n == 0) return 0.0;
  UPSKILL_CHECK(allow_down.size() == n - 1);
  const size_t levels = static_cast<size_t>(num_levels);

  scratch.best_rows.resize(2 * levels);
  scratch.from.resize(n * levels);
  double* prev = scratch.best_rows.data();
  double* curr = prev + levels;

  const double* first = item_log_probs.data() +
                        static_cast<size_t>(items[0]) * levels;
  for (size_t s = 0; s < levels; ++s) {
    prev[s] = first[s] + (log_initial.empty() ? 0.0 : log_initial[s]);
  }
  for (size_t t = 1; t < n; ++t) {
    const double* row = item_log_probs.data() +
                        static_cast<size_t>(items[t]) * levels;
    uint8_t* from_row = scratch.from.data() + t * levels;
    const bool down_open = allow_down[t - 1] != 0;
    // Same peeled, branchless structure as SolveMonotonePathItems; the
    // down-edge is checked after stay/up exactly as in the materialized
    // solver so backpointers stay bitwise identical.
    {
      double incoming = prev[0] + (levels > 1 ? log_stay : 0.0);
      uint8_t step = 0;
      if (levels > 1 && down_open) {
        const double down = prev[1] + log_down;
        const bool down_wins = down > incoming;
        incoming = down_wins ? down : incoming;
        step = down_wins ? 2 : step;
      }
      curr[0] = incoming + row[0];
      from_row[0] = step;
    }
    if (down_open) {
      simd::DpRowInteriorWithDown(prev, row, levels, log_stay, log_up,
                                  log_down, curr, from_row);
    } else {
      simd::DpRowInterior(prev, row, levels, log_stay, log_up, curr,
                          from_row);
    }
    if (levels > 1) {
      const size_t s = levels - 1;
      const double stay = prev[s] + 0.0;
      const double up = prev[s - 1] + log_up;
      const bool up_wins = up > stay;
      curr[s] = (up_wins ? up : stay) + row[s];
      from_row[s] = static_cast<uint8_t>(up_wins);
    }
    std::swap(prev, curr);
  }
  return BacktrackFused(prev, scratch.from.data(), n, levels,
                        &scratch.levels);
}

void MonotoneForwardStart(std::span<const double> item_row,
                          std::span<const double> log_initial,
                          std::span<double> column) {
  const size_t levels = column.size();
  UPSKILL_CHECK(levels >= 1);
  UPSKILL_CHECK(item_row.size() >= levels);
  UPSKILL_CHECK(log_initial.empty() || log_initial.size() == levels);
  for (size_t s = 0; s < levels; ++s) {
    column[s] = item_row[s] + (log_initial.empty() ? 0.0 : log_initial[s]);
  }
}

void MonotoneForwardStep(std::span<const double> prev_column,
                         std::span<const double> item_row, double log_stay,
                         double log_up, bool allow_down, double log_down,
                         std::span<double> next_column) {
  const size_t levels = prev_column.size();
  UPSKILL_CHECK(levels >= 1);
  UPSKILL_CHECK(item_row.size() >= levels);
  UPSKILL_CHECK(next_column.size() == levels);
  UPSKILL_CHECK(next_column.data() != prev_column.data());
  const double* prev = prev_column.data();
  const double* row = item_row.data();
  double* curr = next_column.data();
  // Mirrors the peeled structure of the item-indexed kernels exactly
  // (stay/up select with strict >, down-edge checked after, free stay at
  // the top) so the column stays bitwise equal to the batch best-row.
  {
    double incoming = prev[0] + (levels > 1 ? log_stay : 0.0);
    if (levels > 1 && allow_down) {
      const double down = prev[1] + log_down;
      incoming = down > incoming ? down : incoming;
    }
    curr[0] = incoming + row[0];
  }
  if (allow_down) {
    simd::DpRowInteriorWithDown(prev, row, levels, log_stay, log_up, log_down,
                                curr, /*from=*/nullptr);
  } else {
    simd::DpRowInterior(prev, row, levels, log_stay, log_up, curr,
                        /*from=*/nullptr);
  }
  if (levels > 1) {
    const size_t s = levels - 1;
    const double stay = prev[s] + 0.0;
    const double up = prev[s - 1] + log_up;
    curr[s] = (up > stay ? up : stay) + row[s];
  }
}

int MonotoneForwardLevel(std::span<const double> column) {
  UPSKILL_CHECK(!column.empty());
  size_t level = 0;
  double best = column[0];
  for (size_t s = 1; s < column.size(); ++s) {
    if (column[s] > best) {
      best = column[s];
      level = s;
    }
  }
  return static_cast<int>(level) + 1;
}

}  // namespace upskill
