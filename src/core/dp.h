#ifndef UPSKILL_CORE_DP_H_
#define UPSKILL_CORE_DP_H_

#include <cstdint>
#include <span>
#include <vector>

namespace upskill {

/// Result of the per-user dynamic program (Figure 2 / Equation 4).
struct MonotonePath {
  /// 1-based skill level per action; empty for an empty sequence.
  std::vector<int> levels;
  /// Log-likelihood of the best path (sum of the chosen entries).
  double log_likelihood = 0.0;
};

/// Finds the monotone non-decreasing, unit-step level path that maximizes
/// sum_n log_probs[n * num_levels + (s_n - 1)] over an action-skill
/// lattice with `n = log_probs.size() / num_levels` actions. The first
/// action may take any level (users can start above level 1); each
/// subsequent action stays or moves up one level. Ties prefer the lower
/// level, making results deterministic.
///
/// Runs in O(n * S) time and memory, matching the complexity analysis in
/// Section IV-C.
MonotonePath SolveMonotonePath(std::span<const double> log_probs,
                               int num_levels);

/// Variant with an explicit probabilistic progression component (the
/// extension Section IV-A points to via Shin et al.): the path score adds
/// `log_initial[s0 - 1]` for the start level, `log_stay` per same-level
/// transition below the top level, and `log_up` per level-up. The top
/// level's self-transition costs 0 (staying is the only option there).
/// `log_initial` may be empty, meaning a free (uniform, unscored) start.
/// Ties still prefer the lower level.
MonotonePath SolveMonotonePathWithTransitions(
    std::span<const double> log_probs, int num_levels,
    std::span<const double> log_initial, double log_stay, double log_up);

/// Variant with forgetting (Section VII's future-work extension): at
/// positions where `allow_down[t - 1]` is set (the time gap before action
/// t exceeded the configured threshold), the path may additionally drop
/// exactly one level at cost `log_down`. Elsewhere the usual monotone
/// stay/up moves apply. `allow_down` has one entry per transition
/// (n - 1 total).
MonotonePath SolveMonotonePathWithForgetting(
    std::span<const double> log_probs, int num_levels,
    std::span<const double> log_initial, double log_stay, double log_up,
    std::span<const uint8_t> allow_down, double log_down);

}  // namespace upskill

#endif  // UPSKILL_CORE_DP_H_
