#ifndef UPSKILL_CORE_DP_H_
#define UPSKILL_CORE_DP_H_

#include <cstdint>
#include <span>
#include <vector>

namespace upskill {

/// Result of the per-user dynamic program (Figure 2 / Equation 4).
struct MonotonePath {
  /// 1-based skill level per action; empty for an empty sequence.
  std::vector<int> levels;
  /// Log-likelihood of the best path (sum of the chosen entries).
  double log_likelihood = 0.0;
};

/// Finds the monotone non-decreasing, unit-step level path that maximizes
/// sum_n log_probs[n * num_levels + (s_n - 1)] over an action-skill
/// lattice with `n = log_probs.size() / num_levels` actions. The first
/// action may take any level (users can start above level 1); each
/// subsequent action stays or moves up one level. Ties prefer the lower
/// level, making results deterministic.
///
/// Runs in O(n * S) time and memory, matching the complexity analysis in
/// Section IV-C.
MonotonePath SolveMonotonePath(std::span<const double> log_probs,
                               int num_levels);

/// Variant with an explicit probabilistic progression component (the
/// extension Section IV-A points to via Shin et al.): the path score adds
/// `log_initial[s0 - 1]` for the start level, `log_stay` per same-level
/// transition below the top level, and `log_up` per level-up. The top
/// level's self-transition costs 0 (staying is the only option there).
/// `log_initial` may be empty, meaning a free (uniform, unscored) start.
/// Ties still prefer the lower level.
MonotonePath SolveMonotonePathWithTransitions(
    std::span<const double> log_probs, int num_levels,
    std::span<const double> log_initial, double log_stay, double log_up);

/// Variant with forgetting (Section VII's future-work extension): at
/// positions where `allow_down[t - 1]` is set (the time gap before action
/// t exceeded the configured threshold), the path may additionally drop
/// exactly one level at cost `log_down`. Elsewhere the usual monotone
/// stay/up moves apply. `allow_down` has one entry per transition
/// (n - 1 total).
MonotonePath SolveMonotonePathWithForgetting(
    std::span<const double> log_probs, int num_levels,
    std::span<const double> log_initial, double log_stay, double log_up,
    std::span<const uint8_t> allow_down, double log_down);

/// Reusable scratch arena for the item-indexed DP kernels below: two
/// rolling S-sized best rows (the recurrence only ever reads the previous
/// row), the n×S backpointer matrix, and per-sequence staging buffers for
/// item ids and allow-down flags. Buffers grow on demand and never
/// shrink, so one arena per thread slot makes repeated assignment passes
/// allocation-free in the steady state.
struct DpScratch {
  /// Rolling best rows; laid out as [2 * S], ping-ponged by the kernels.
  std::vector<double> best_rows;
  /// Backpointers, [t * S + s]: 0 = stay, 1 = came from one level below
  /// ("improve"), 2 = came from one level above (forgetting only).
  std::vector<uint8_t> from;
  /// Item id per action, filled by the caller before invoking a kernel.
  std::vector<int32_t> items;
  /// Per-transition down-edge flags (forgetting), filled by the caller.
  std::vector<uint8_t> allow_down;
  /// Kernel output staging: 1-based level per action.
  std::vector<int> levels;
  /// Secondary staging buffer for callers comparing candidate paths
  /// (e.g. the per-class assignment step keeps its best path here).
  std::vector<int> best_levels;
};

/// Fused, item-indexed form of SolveMonotonePathWithTransitions: instead
/// of consuming a per-user n×S log-prob copy, reads rows of the shared
/// per-(item, level) cache (`item_log_probs[item * num_levels + s]`,
/// e.g. LogProbCache::values()) directly for the given item ids. Writes
/// the path into `scratch.levels` (resized to items.size()) and returns
/// its log-likelihood. Levels and log-likelihood are bitwise identical to
/// the materialized solver on the gathered lattice, including the
/// ties-to-lowest-level rule. Pass log_initial empty and zero costs to
/// reproduce SolveMonotonePath.
double SolveMonotonePathItems(std::span<const double> item_log_probs,
                              std::span<const int32_t> items, int num_levels,
                              std::span<const double> log_initial,
                              double log_stay, double log_up,
                              DpScratch& scratch);

/// Item-indexed form of SolveMonotonePathWithForgetting; `allow_down` has
/// one entry per transition (items.size() - 1, may alias
/// scratch.allow_down). Same bitwise-equivalence guarantee.
double SolveMonotonePathItemsWithForgetting(
    std::span<const double> item_log_probs, std::span<const int32_t> items,
    int num_levels, std::span<const double> log_initial, double log_stay,
    double log_up, std::span<const uint8_t> allow_down, double log_down,
    DpScratch& scratch);

/// Streaming forward-column primitives for the serving subsystem. The
/// batch solvers above materialize all n columns of the lattice because
/// they need backpointers for the full path; an online session only needs
/// the *tail* level after each action, and the recurrence of Equation 4
/// reads nothing but the previous column — so a live session can carry a
/// single S-sized column and update it in O(S) per observed action.
///
/// The arithmetic (operation order, peeled bottom/top rows, strict-`>`
/// tie-breaking toward "stay", free self-transition at the top level, the
/// down-edge checked after stay/up) mirrors SolveMonotonePathItems /
/// SolveMonotonePathItemsWithForgetting term by term, so after feeding a
/// prefix of a user's item rows through Start + Step the column is bitwise
/// equal to the final best-row of the batch kernel on that prefix, and
/// MonotoneForwardLevel equals the tail level of the batch path (the
/// batch backtrack starts at exactly this argmax-ties-low).
///
/// Initializes `column` (size = num_levels) for the first action:
/// column[s] = item_row[s] + log_initial[s] (log_initial may be empty for
/// a free start). `item_row` is the item's S-sized slice of a
/// [item * S + (level-1)] cache.
void MonotoneForwardStart(std::span<const double> item_row,
                          std::span<const double> log_initial,
                          std::span<double> column);

/// Advances `prev_column` by one action with item row `item_row`, writing
/// the next column into `next_column` (must not alias `prev_column`).
/// `allow_down` opens the forgetting down-edge at cost `log_down` for this
/// transition; pass false (and any log_down) when forgetting is disabled.
void MonotoneForwardStep(std::span<const double> prev_column,
                         std::span<const double> item_row, double log_stay,
                         double log_up, bool allow_down, double log_down,
                         std::span<double> next_column);

/// 1-based argmax level of a forward column, ties to the lowest level —
/// the rule the batch backtrack applies to its final row.
int MonotoneForwardLevel(std::span<const double> column);

}  // namespace upskill

#endif  // UPSKILL_CORE_DP_H_
