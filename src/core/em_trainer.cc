#include "core/em_trainer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/math.h"
#include "core/dp.h"
#include "core/trainer.h"
#include "exec/backend.h"
#include "exec/backend_registry.h"
#include "exec/map_reduce.h"
#include "exec/workspace.h"

namespace upskill {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr double kMinTransitionProb = 1e-4;

// Flat per-action offsets so worker threads can write disjoint gamma
// regions.
std::vector<size_t> ActionOffsets(const Dataset& dataset) {
  std::vector<size_t> offsets(static_cast<size_t>(dataset.num_users()) + 1,
                              0);
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    offsets[static_cast<size_t>(u) + 1] =
        offsets[static_cast<size_t>(u)] + dataset.sequence(u).size();
  }
  return offsets;
}

}  // namespace

Result<EmTrainResult> EmTrainer::Train(const Dataset& dataset) const {
  if (dataset.num_actions() == 0) {
    return Status::InvalidArgument("cannot train on an empty dataset");
  }
  if (!(config_.initial_level_up_probability > 0.0 &&
        config_.initial_level_up_probability < 1.0)) {
    return Status::InvalidArgument("initial_level_up_probability in (0,1)");
  }
  Result<SkillModel> created =
      SkillModel::Create(dataset.schema(), config_.model);
  if (!created.ok()) return created.status();

  EmTrainResult result;
  result.model = std::move(created).value();
  const int S = config_.model.num_levels;
  const size_t levels = static_cast<size_t>(S);

  Result<std::shared_ptr<exec::Backend>> backend_result = exec::CreateBackend(
      config_.model.backend,
      config_.model.parallel.any() ? config_.model.parallel.num_threads : 1);
  if (!backend_result.ok()) return backend_result.status();
  std::shared_ptr<exec::Backend> backend = std::move(backend_result).value();
  exec::Backend* user_backend =
      (config_.model.parallel.users && backend->concurrency() > 1)
          ? backend.get()
          : exec::SerialBackend::Get();

  // One sharded-execution context for the run: the E-step, the hard
  // readout, and the update step's count sweep share the same user-axis
  // shard plan and per-shard workspaces (forward/backward arenas, DP
  // arenas) across all iterations.
  exec::ExecContext exec_context;
  exec_context.SetBackend(backend);
  exec_context.EnsureUserShards(dataset, config_.model.num_shards);

  // Initialization: same uniform-segmentation hard fit as the hard
  // trainer, so the two are directly comparable.
  {
    const SkillAssignments init = InitializeAssignments(
        dataset, S, config_.model.min_init_actions);
    FitParameters(dataset, init, &result.model, nullptr,
                  config_.model.parallel, &exec_context);
  }
  result.initial_distribution.assign(levels, 1.0 / static_cast<double>(S));
  result.level_up_probability = config_.initial_level_up_probability;

  const std::vector<size_t> offsets = ActionOffsets(dataset);
  const size_t total_actions = dataset.num_actions();
  std::vector<double> gamma(total_actions * levels, 0.0);
  std::vector<double> per_user_ll(static_cast<size_t>(dataset.num_users()));
  std::vector<double> per_user_ups(static_cast<size_t>(dataset.num_users()));
  std::vector<double> per_user_stays(
      static_cast<size_t>(dataset.num_users()));
  std::vector<double> masked_ll(static_cast<size_t>(dataset.num_users()));
  std::vector<double> initial_counts(levels);

  // Persistent across iterations: only cells whose parameters changed in
  // the last M-step are recomputed.
  LogProbCache log_prob_cache;

  double previous_ll = kNegInf;
  for (int iteration = 0; iteration < config_.model.max_iterations;
       ++iteration) {
    log_prob_cache.Update(result.model, dataset.items(), user_backend);
    const std::vector<double>& cache = log_prob_cache.values();
    std::vector<double> log_initial(levels);
    for (size_t s = 0; s < levels; ++s) {
      log_initial[s] = result.initial_distribution[s] > 0.0
                           ? std::log(result.initial_distribution[s])
                           : kNegInf;
    }
    const double log_up = std::log(result.level_up_probability);
    const double log_stay = std::log(1.0 - result.level_up_probability);

    // ---- E-step: forward-backward per user, one task per user shard.
    // Each shard's workspace keeps the forward/backward arenas alive
    // across users and iterations; all outputs (gamma, the per-user
    // ll/ups/stays vectors) are written at user granularity, so nothing
    // depends on which thread ran which shard.
    exec::MapShards(user_backend, exec_context.num_shards(),
                    [&](int shard_index) {
      const exec::DatasetShard& shard =
          exec_context.shards()[static_cast<size_t>(shard_index)];
      exec::ShardWorkspace& ws = exec_context.workspace(shard_index);
      for (UserId user = shard.user_begin(); user < shard.user_end(); ++user) {
      const size_t u = static_cast<size_t>(user);
      std::span<const Action> seq = shard.sequence(user);
      per_user_ll[u] = 0.0;
      per_user_ups[u] = 0.0;
      per_user_stays[u] = 0.0;
      if (seq.empty()) continue;
      const size_t n = seq.size();
      auto lp = [&](size_t t, size_t s) {
        return cache[static_cast<size_t>(seq[t].item) * levels + s];
      };
      // stay cost: free at the top level (no other move exists there).
      auto stay_cost = [&](size_t s) {
        return s + 1 < levels ? log_stay : 0.0;
      };

      ws.alpha.resize(n * levels);
      ws.beta.resize(n * levels);
      std::vector<double>& alpha = ws.alpha;
      std::vector<double>& beta = ws.beta;
      for (size_t s = 0; s < levels; ++s) {
        alpha[s] = log_initial[s] + lp(0, s);
      }
      for (size_t t = 1; t < n; ++t) {
        for (size_t s = 0; s < levels; ++s) {
          const double stay = alpha[(t - 1) * levels + s] + stay_cost(s);
          double incoming = stay;
          if (s > 0) {
            const double up = alpha[(t - 1) * levels + (s - 1)] + log_up;
            const double pair[] = {stay, up};
            incoming = LogSumExp(pair);
          }
          alpha[t * levels + s] = incoming + lp(t, s);
        }
      }
      for (size_t s = 0; s < levels; ++s) beta[(n - 1) * levels + s] = 0.0;
      for (size_t t = n - 1; t-- > 0;) {
        for (size_t s = 0; s < levels; ++s) {
          const double stay =
              stay_cost(s) + lp(t + 1, s) + beta[(t + 1) * levels + s];
          double outgoing = stay;
          if (s + 1 < levels) {
            const double up = log_up + lp(t + 1, s + 1) +
                              beta[(t + 1) * levels + (s + 1)];
            const double pair[] = {stay, up};
            outgoing = LogSumExp(pair);
          }
          beta[t * levels + s] = outgoing;
        }
      }

      const double log_z = LogSumExp(
          std::span<const double>(alpha).subspan((n - 1) * levels, levels));
      per_user_ll[u] = log_z;
      double* user_gamma = &gamma[offsets[u] * levels];
      if (!std::isfinite(log_z)) {
        // Sequence impossible under the current parameters (can happen
        // with zero smoothing); contribute nothing this round.
        std::fill(user_gamma, user_gamma + n * levels, 0.0);
        continue;
      }
      for (size_t t = 0; t < n; ++t) {
        for (size_t s = 0; s < levels; ++s) {
          user_gamma[t * levels + s] =
              std::exp(alpha[t * levels + s] + beta[t * levels + s] - log_z);
        }
      }
      // Expected transition counts for the level-up probability.
      for (size_t t = 0; t + 1 < n; ++t) {
        for (size_t s = 0; s + 1 < levels; ++s) {
          const double stay = alpha[t * levels + s] + stay_cost(s) +
                              lp(t + 1, s) + beta[(t + 1) * levels + s];
          const double up = alpha[t * levels + s] + log_up +
                            lp(t + 1, s + 1) +
                            beta[(t + 1) * levels + (s + 1)];
          per_user_stays[u] += std::exp(stay - log_z);
          per_user_ups[u] += std::exp(up - log_z);
        }
      }
      }
    });

    // Mask non-finite per-user terms to zero, then reduce with the fixed
    // per-user tree: the objective is a pure function of the per-user
    // values in index order — bitwise identical for any thread count and
    // any shard count.
    for (size_t u = 0; u < per_user_ll.size(); ++u) {
      masked_ll[u] = std::isfinite(per_user_ll[u]) ? per_user_ll[u] : 0.0;
    }
    const double ll = exec::ReduceOrderedSum(masked_ll);
    result.log_likelihood_trace.push_back(ll);
    result.iterations = iteration + 1;
    result.final_log_likelihood = ll;
    if (config_.model.verbose) {
      UPSKILL_LOG(Info) << "EM iteration " << iteration + 1
                        << " log-likelihood " << ll;
    }
    const bool small_gain =
        std::isfinite(previous_ll) &&
        ll - previous_ll <=
            config_.model.relative_tolerance * std::abs(previous_ll);
    if (small_gain) {
      result.converged = true;
      break;
    }
    previous_ll = ll;

    // ---- M-step. ------------------------------------------------------
    // Initial distribution from first-action posteriors. Intentionally
    // serial: S accumulators over a float (not exact-integer) stream, so
    // sharding it would change summation order with the shard count. One
    // read per user is cheap next to the E-step anyway.
    std::fill(initial_counts.begin(), initial_counts.end(), 0.0);
    for (UserId u = 0; u < dataset.num_users(); ++u) {
      if (dataset.sequence(u).empty()) continue;
      const double* user_gamma =
          &gamma[offsets[static_cast<size_t>(u)] * levels];
      for (size_t s = 0; s < levels; ++s) initial_counts[s] += user_gamma[s];
    }
    double initial_total = 0.0;
    for (double c : initial_counts) initial_total += c;
    if (initial_total > 0.0) {
      for (size_t s = 0; s < levels; ++s) {
        result.initial_distribution[s] =
            (initial_counts[s] + config_.model.smoothing) /
            (initial_total +
             config_.model.smoothing * static_cast<double>(S));
      }
    }
    // Level-up probability from expected transition counts, reduced with
    // the same fixed per-user tree as the objective. (Below
    // kReduceLeafElements users this matches the old serial sum bitwise;
    // above it the reassociation is deterministic.)
    if (config_.learn_transitions) {
      const double ups = exec::ReduceOrderedSum(per_user_ups);
      const double stays = exec::ReduceOrderedSum(per_user_stays);
      if (ups + stays > 0.0) {
        result.level_up_probability =
            std::clamp(ups / (ups + stays), kMinTransitionProb,
                       1.0 - kMinTransitionProb);
      }
    }
    // Emission components: weighted sufficient-statistics refits. One pass
    // over the actions per feature feeds all S level statistics at once
    // (gamma rows are action-major), replacing the former dense
    // value/weight buffer copies. Each feature's pass is intentionally
    // serial in global action order — the gamma-weighted sums are inexact,
    // so sharding the user axis here would make the fitted parameters
    // depend on the shard count. Parallelism comes from the feature axis
    // only (independent components, disjoint writes).
    const int num_features = result.model.num_features();
    exec::Backend* feature_backend =
        (config_.model.parallel.features && backend->concurrency() > 1)
            ? backend.get()
            : exec::SerialBackend::Get();
    exec::MapShards(feature_backend, num_features, [&](int f) {
      const double* column = dataset.items().column(f).data();
      std::vector<SufficientStats> stats(
          levels, result.model.component(f, 1).MakeStats());
      size_t index = 0;
      for (UserId u = 0; u < dataset.num_users(); ++u) {
        for (const Action& a : dataset.sequence(u)) {
          const double x = column[a.item];
          const double* weights = &gamma[index * levels];
          for (size_t s = 0; s < levels; ++s) stats[s].Add(x, weights[s]);
          ++index;
        }
      }
      for (int s = 1; s <= S; ++s) {
        const SufficientStats& cell = stats[static_cast<size_t>(s - 1)];
        if (!cell.empty()) {
          result.model.mutable_component(f, s)->FitFromStats(cell);
        }
      }
    });
  }

  // Hard readout with the learned transition weights.
  std::vector<double> log_initial(levels);
  for (size_t s = 0; s < levels; ++s) {
    log_initial[s] = std::log(result.initial_distribution[s]);
  }
  const double log_up = std::log(result.level_up_probability);
  const double log_stay = std::log(1.0 - result.level_up_probability);
  log_prob_cache.Update(result.model, dataset.items(), user_backend);
  const std::vector<double>& cache = log_prob_cache.values();
  result.assignments.resize(static_cast<size_t>(dataset.num_users()));
  // Fused item-indexed DP over the same user shards as the E-step, each
  // reusing its shard workspace's DP arena: no per-user n×S
  // materialization of the cache. (Deliberately NOT routed through
  // AssignmentEngine::Assign — the engine honors the forgetting config,
  // which the EM E-step ignores; the readout must score the exact model
  // EM fitted.)
  exec::MapShards(user_backend, exec_context.num_shards(),
                  [&](int shard_index) {
    const exec::DatasetShard& shard =
        exec_context.shards()[static_cast<size_t>(shard_index)];
    exec::ShardWorkspace& ws = exec_context.workspace(shard_index);
    for (UserId user = shard.user_begin(); user < shard.user_end(); ++user) {
      std::span<const Action> seq = shard.sequence(user);
      ws.dp.items.resize(seq.size());
      for (size_t t = 0; t < seq.size(); ++t) {
        ws.dp.items[t] = seq[t].item;
      }
      SolveMonotonePathItems(cache, ws.dp.items, S, log_initial, log_stay,
                             log_up, ws.dp);
      result.assignments[static_cast<size_t>(user)].assign(
          ws.dp.levels.begin(), ws.dp.levels.end());
    }
  });
  return result;
}

}  // namespace upskill
