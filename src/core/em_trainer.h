#ifndef UPSKILL_CORE_EM_TRAINER_H_
#define UPSKILL_CORE_EM_TRAINER_H_

#include <vector>

#include "common/status.h"
#include "core/skill_model.h"
#include "data/dataset.h"

namespace upskill {

/// Configuration of the soft-assignment (EM / Baum-Welch) trainer —
/// the approach the paper declines in favour of hard assignment because
/// it is "1,000 times" slower at comparable fit (Section IV-B). It is
/// implemented here so that the trade-off can be measured
/// (bench_ablation_trainers) rather than taken on faith.
struct EmTrainerConfig {
  /// Base model hyper-parameters (num_levels, smoothing, init, ...).
  SkillModelConfig model;
  /// Starting value for the global level-up probability.
  double initial_level_up_probability = 0.1;
  /// When false, transitions stay fixed at the initial value and only the
  /// emission components and initial distribution are learned.
  bool learn_transitions = true;
};

/// Output of EmTrainer::Train.
struct EmTrainResult {
  SkillModel model;
  /// Hard readout: the Viterbi path under the final parameters (with the
  /// learned transition weights), so downstream consumers see the same
  /// monotone assignment format as the hard trainer.
  SkillAssignments assignments;
  /// Marginal data log-likelihood after each EM iteration (monotone
  /// non-decreasing by the EM guarantee).
  std::vector<double> log_likelihood_trace;
  int iterations = 0;
  bool converged = false;
  double final_log_likelihood = 0.0;
  /// Learned initial level distribution pi(s), size S.
  std::vector<double> initial_distribution;
  /// Learned global level-up probability.
  double level_up_probability = 0.1;
};

/// Soft-assignment trainer for the same monotone progression model: the
/// E-step runs the forward-backward algorithm over the action-skill
/// lattice (stay / up-one transitions), the M-step refits every component
/// with posterior weights (Distribution::FitWeighted), the initial level
/// distribution, and (optionally) the level-up probability.
class EmTrainer {
 public:
  explicit EmTrainer(EmTrainerConfig config) : config_(config) {}

  Result<EmTrainResult> Train(const Dataset& dataset) const;

  const EmTrainerConfig& config() const { return config_; }

 private:
  EmTrainerConfig config_;
};

}  // namespace upskill

#endif  // UPSKILL_CORE_EM_TRAINER_H_
