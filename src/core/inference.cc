#include "core/inference.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"
#include "dist/categorical.h"

namespace upskill {

namespace {

// The ID-feature categorical at `level`, or an error when the schema has
// no ID feature.
Result<const Categorical*> IdComponent(const SkillModel& model, int level) {
  const int id_feature = model.schema().id_feature();
  if (id_feature < 0) {
    return Status::FailedPrecondition(
        "model schema has no item-ID feature; item ranking is undefined");
  }
  const Distribution& dist = model.component(id_feature, level);
  return static_cast<const Categorical*>(&dist);
}

}  // namespace

int NearestActionLevel(std::span<const Action> train_sequence,
                       const std::vector<int>& train_levels, int64_t time) {
  UPSKILL_CHECK(train_sequence.size() == train_levels.size());
  if (train_sequence.empty()) return 1;
  // Sequences are chronologically sorted: binary-search the insertion
  // point, then compare the two neighbours.
  const auto it = std::lower_bound(
      train_sequence.begin(), train_sequence.end(), time,
      [](const Action& a, int64_t t) { return a.time < t; });
  const size_t after = static_cast<size_t>(it - train_sequence.begin());
  if (after == 0) return train_levels.front();
  if (after == train_sequence.size()) return train_levels.back();
  const int64_t gap_before = time - train_sequence[after - 1].time;
  const int64_t gap_after = train_sequence[after].time - time;
  return gap_before <= gap_after ? train_levels[after - 1]
                                 : train_levels[after];
}

double HeldOutLogLikelihood(const Dataset& train,
                            const SkillAssignments& assignments,
                            const SkillModel& model,
                            const std::vector<HeldOutAction>& test) {
  double total = 0.0;
  for (const HeldOutAction& held : test) {
    const int level =
        NearestActionLevel(train.sequence(held.user),
                           assignments[static_cast<size_t>(held.user)],
                           held.action.time);
    total += model.ItemLogProb(train.items(), held.action.item, level);
  }
  return total;
}

Result<int> ItemRankAtLevel(const SkillModel& model, int level,
                            ItemId target) {
  Result<const Categorical*> id = IdComponent(model, level);
  if (!id.ok()) return id.status();
  const Categorical& dist = *id.value();
  if (target < 0 || target >= dist.cardinality()) {
    return Status::OutOfRange("target item outside the ID vocabulary");
  }
  const double target_prob = dist.Probability(target);
  int rank = 1;
  for (int i = 0; i < dist.cardinality(); ++i) {
    const double p = dist.Probability(i);
    if (p > target_prob || (p == target_prob && i < target)) ++rank;
  }
  return rank;
}

Result<std::vector<ItemId>> TopItemsAtLevel(const SkillModel& model, int level,
                                            int k) {
  Result<const Categorical*> id = IdComponent(model, level);
  if (!id.ok()) return id.status();
  const Categorical& dist = *id.value();
  std::vector<ItemId> order(static_cast<size_t>(dist.cardinality()));
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<ItemId>(i);
  const size_t take =
      std::min(order.size(), static_cast<size_t>(std::max(0, k)));
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<ptrdiff_t>(take), order.end(),
                    [&dist](ItemId a, ItemId b) {
                      const double pa = dist.Probability(a);
                      const double pb = dist.Probability(b);
                      if (pa != pb) return pa > pb;
                      return a < b;
                    });
  order.resize(take);
  return order;
}

}  // namespace upskill
