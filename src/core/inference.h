#ifndef UPSKILL_CORE_INFERENCE_H_
#define UPSKILL_CORE_INFERENCE_H_

#include <vector>

#include "common/status.h"
#include "core/skill_model.h"
#include "data/dataset.h"
#include "data/split.h"

namespace upskill {

/// Infers the skill level a user holds at `time` from their *training*
/// sequence: the level assigned to the chronologically closest training
/// action (the rule used for held-out likelihood and both prediction tasks,
/// Sections VI-B and VI-E). Ties (equidistant neighbours) resolve to the
/// earlier action. Returns 1 for a user with no training actions.
int NearestActionLevel(std::span<const Action> train_sequence,
                       const std::vector<int>& train_levels, int64_t time);

/// Log-likelihood of held-out actions under `model`, with each action's
/// level inferred by NearestActionLevel against `train` and its
/// `assignments`. Used to pick the skill count S (Figure 3).
double HeldOutLogLikelihood(const Dataset& train,
                            const SkillAssignments& assignments,
                            const SkillModel& model,
                            const std::vector<HeldOutAction>& test);

/// Rank (1-based) of `target` among all items ordered by the ID-feature
/// probability at `level`, descending. Ties count items with equal
/// probability and a smaller id as ranked above the target, making the
/// metric deterministic. Requires the model's schema to have an ID
/// feature.
Result<int> ItemRankAtLevel(const SkillModel& model, int level, ItemId target);

/// Top-`k` item ids by ID-feature probability at `level`, descending
/// (probability ties break toward the smaller id).
Result<std::vector<ItemId>> TopItemsAtLevel(const SkillModel& model, int level,
                                            int k);

}  // namespace upskill

#endif  // UPSKILL_CORE_INFERENCE_H_
