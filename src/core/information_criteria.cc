#include "core/information_criteria.h"

#include <cmath>

#include "core/trainer.h"

namespace upskill {

long long CountModelParameters(const FeatureSchema& schema, int num_levels) {
  long long per_level = 0;
  for (int f = 0; f < schema.num_features(); ++f) {
    const FeatureSpec& spec = schema.feature(f);
    switch (spec.distribution) {
      case DistributionKind::kCategorical:
        per_level += spec.cardinality - 1;  // simplex constraint
        break;
      case DistributionKind::kPoisson:
        per_level += 1;
        break;
      case DistributionKind::kGamma:
      case DistributionKind::kLogNormal:
        per_level += 2;
        break;
    }
  }
  return per_level * static_cast<long long>(num_levels);
}

Result<InformationCriteria> ComputeInformationCriteria(
    const Dataset& dataset, const SkillModel& model) {
  if (dataset.num_actions() == 0) {
    return Status::InvalidArgument("empty dataset");
  }
  InformationCriteria criteria;
  criteria.num_actions = dataset.num_actions();
  criteria.num_parameters =
      CountModelParameters(model.schema(), model.num_levels());
  AssignSkills(dataset, model, nullptr, {}, &criteria.log_likelihood);
  const double k = static_cast<double>(criteria.num_parameters);
  const double n = static_cast<double>(criteria.num_actions);
  criteria.bic = -2.0 * criteria.log_likelihood + k * std::log(n);
  criteria.aic = -2.0 * criteria.log_likelihood + 2.0 * k;
  return criteria;
}

}  // namespace upskill
