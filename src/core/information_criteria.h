#ifndef UPSKILL_CORE_INFORMATION_CRITERIA_H_
#define UPSKILL_CORE_INFORMATION_CRITERIA_H_

#include "common/status.h"
#include "core/skill_model.h"
#include "data/dataset.h"

namespace upskill {

/// Model-complexity diagnostics: an in-sample alternative to the paper's
/// held-out procedure for choosing S (Section VI-B). Penalized criteria
/// trade the training-data fit of Equation 3 against the parameter count
/// of the component grid, so no split is needed.
struct InformationCriteria {
  /// Training log-likelihood of the best assignments (Equation 3).
  double log_likelihood = 0.0;
  /// Free parameters: per level, (C_f - 1) per categorical feature, 1 per
  /// Poisson, 2 per gamma / log-normal.
  long long num_parameters = 0;
  size_t num_actions = 0;
  /// -2 LL + k ln n.
  double bic = 0.0;
  /// -2 LL + 2 k.
  double aic = 0.0;
};

/// Computes the criteria for a trained model: runs one assignment pass to
/// obtain the Equation-3 value, counts parameters from the schema, and
/// applies the penalties. Fails on an empty dataset.
Result<InformationCriteria> ComputeInformationCriteria(
    const Dataset& dataset, const SkillModel& model);

/// Free-parameter count of the component grid for `schema` at
/// `num_levels` levels (exposed for tests and custom criteria).
long long CountModelParameters(const FeatureSchema& schema, int num_levels);

}  // namespace upskill

#endif  // UPSKILL_CORE_INFORMATION_CRITERIA_H_
