#include "core/model_report.h"

#include <algorithm>
#include <vector>

#include "common/string_util.h"
#include "dist/categorical.h"

namespace upskill {

namespace {

std::string CategoricalLine(const Categorical& dist, const FeatureSpec& spec,
                            int top_categories) {
  std::vector<int> order(static_cast<size_t>(dist.cardinality()));
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  const size_t take = std::min(
      order.size(), static_cast<size_t>(std::max(0, top_categories)));
  std::partial_sort(order.begin(), order.begin() + static_cast<long>(take),
                    order.end(), [&dist](int a, int b) {
                      const double pa = dist.Probability(a);
                      const double pb = dist.Probability(b);
                      if (pa != pb) return pa > pb;
                      return a < b;
                    });
  std::string line;
  for (size_t i = 0; i < take; ++i) {
    const int value = order[i];
    const std::string label =
        static_cast<size_t>(value) < spec.labels.size()
            ? spec.labels[static_cast<size_t>(value)]
            : StringPrintf("#%d", value);
    line += StringPrintf("%s%s=%.3f", i == 0 ? "" : ", ", label.c_str(),
                         dist.Probability(value));
  }
  return line;
}

}  // namespace

std::string FormatModelReport(const SkillModel& model, int top_categories) {
  std::string out;
  for (int f = 0; f < model.num_features(); ++f) {
    const FeatureSpec& spec = model.schema().feature(f);
    out += StringPrintf("%s (%s)%s\n", spec.name.c_str(),
                        FeatureTypeToString(spec.type),
                        f == model.schema().id_feature() ? "  [item id]" : "");
    for (int s = 1; s <= model.num_levels(); ++s) {
      const Distribution& dist = model.component(f, s);
      if (spec.type == FeatureType::kCategorical) {
        out += StringPrintf(
            "  level %d: %s\n", s,
            CategoricalLine(static_cast<const Categorical&>(dist), spec,
                            top_categories)
                .c_str());
      } else {
        out += StringPrintf("  level %d: %s, mean %.3f\n", s,
                            dist.DebugString().c_str(), dist.Mean());
      }
    }
  }
  return out;
}

}  // namespace upskill
