#ifndef UPSKILL_CORE_MODEL_REPORT_H_
#define UPSKILL_CORE_MODEL_REPORT_H_

#include <string>

#include "core/skill_model.h"

namespace upskill {

/// Renders a trained model as a human-readable report: one block per
/// feature, one line per level. Count/real components print their
/// parameterization and mean; categorical components print their
/// `top_categories` most probable values (with schema labels when
/// available). This is the textual form of the analyses behind the
/// paper's Figs. 4-6.
std::string FormatModelReport(const SkillModel& model,
                              int top_categories = 3);

}  // namespace upskill

#endif  // UPSKILL_CORE_MODEL_REPORT_H_
