#include "core/model_selection.h"

#include "common/logging.h"
#include "core/inference.h"
#include "core/trainer.h"
#include "data/split.h"

namespace upskill {

Result<SkillCountSelection> SelectSkillCount(const Dataset& dataset,
                                             std::span<const int> candidates,
                                             const SkillModelConfig& base,
                                             double test_fraction, Rng& rng) {
  if (candidates.empty()) {
    return Status::InvalidArgument("no candidate skill counts");
  }
  Result<ActionSplit> split =
      SplitActionsRandomly(dataset, test_fraction, rng);
  if (!split.ok()) return split.status();

  SkillCountSelection selection;
  double best_ll = 0.0;
  for (int num_levels : candidates) {
    SkillModelConfig config = base;
    config.num_levels = num_levels;
    Trainer trainer(config);
    Result<TrainResult> trained = trainer.Train(split.value().train);
    if (!trained.ok()) return trained.status();
    const double ll =
        HeldOutLogLikelihood(split.value().train, trained.value().assignments,
                             trained.value().model, split.value().test);
    if (base.verbose) {
      UPSKILL_LOG(Info) << "S=" << num_levels << " held-out LL " << ll;
    }
    selection.curve.push_back(SkillCountPoint{num_levels, ll});
    if (selection.best_num_levels == 0 || ll > best_ll) {
      selection.best_num_levels = num_levels;
      best_ll = ll;
    }
  }
  return selection;
}

}  // namespace upskill
