#ifndef UPSKILL_CORE_MODEL_SELECTION_H_
#define UPSKILL_CORE_MODEL_SELECTION_H_

#include <span>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/skill_model.h"
#include "data/dataset.h"

namespace upskill {

/// One point on the Figure-3 curve.
struct SkillCountPoint {
  int num_levels = 0;
  double held_out_log_likelihood = 0.0;
};

/// Result of the data-driven choice of S (Section VI-B).
struct SkillCountSelection {
  int best_num_levels = 0;
  std::vector<SkillCountPoint> curve;
};

/// Picks the number of skill levels by held-out likelihood: split the
/// dataset 1-`test_fraction` / `test_fraction` at random, train a model
/// per candidate S on the training part, and score the held-out actions
/// with the level of each user's chronologically nearest training action.
/// `base` supplies every config knob except num_levels.
Result<SkillCountSelection> SelectSkillCount(const Dataset& dataset,
                                             std::span<const int> candidates,
                                             const SkillModelConfig& base,
                                             double test_fraction, Rng& rng);

}  // namespace upskill

#endif  // UPSKILL_CORE_MODEL_SELECTION_H_
