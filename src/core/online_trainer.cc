#include "core/online_trainer.h"

#include <unistd.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/crc32.h"
#include "common/string_util.h"
#include "data/schema_io.h"
#include "obs/metrics.h"
#include "obs/model_health.h"
#include "obs/trace.h"

namespace upskill {
namespace {

// "UPSKONL1": online-EM checkpoint, version 1.
constexpr char kCheckpointMagic[8] = {'U', 'P', 'S', 'K', 'O', 'N', 'L', '1'};
constexpr uint32_t kCheckpointVersion = 1;

// Bitwise action equality, field by field: the struct's padding bytes are
// unspecified for in-RAM datasets (the store zeroes them, AddAction need
// not), so a raw memcmp could flag clean users dirty. Ratings compare as
// bit patterns so NaN == NaN (an absent rating stays clean).
bool SameAction(const Action& a, const Action& b) {
  return a.time == b.time && a.item == b.item &&
         std::bit_cast<uint64_t>(a.rating) == std::bit_cast<uint64_t>(b.rating);
}

bool SameSequence(std::span<const Action> a, std::span<const Action> b) {
  if (a.size() != b.size()) return false;
  for (size_t n = 0; n < a.size(); ++n) {
    if (!SameAction(a[n], b[n])) return false;
  }
  return true;
}

Status SyncParentDirectory(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  FILE* f = std::fopen(dir.c_str(), "r");
  if (f == nullptr) return Status::OK();  // best effort (e.g. NFS)
  ::fsync(fileno(f));
  std::fclose(f);
  return Status::OK();
}

struct RefreshInstruments {
  obs::Counter& refreshes;
  obs::Counter& dirty_users;
  obs::Counter& clean_users;
  obs::Counter& actions_added;
  obs::Histogram& refresh_seconds;

  static RefreshInstruments& Get() {
    static RefreshInstruments* instruments = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return new RefreshInstruments{
          registry.GetCounter("upskill_online_refreshes_total"),
          registry.GetCounter("upskill_online_dirty_users_total"),
          registry.GetCounter("upskill_online_clean_users_total"),
          registry.GetCounter("upskill_online_actions_added_total"),
          registry.GetHistogram("upskill_online_refresh_seconds"),
      };
    }();
    return *instruments;
  }
};

}  // namespace

Status OnlineTrainer::ValidateConfig() const {
  if (config_.transitions == TransitionModel::kPerClass) {
    return Status::FailedPrecondition(
        "online training does not support TransitionModel::kPerClass "
        "(per-user class posteriors are not maintained incrementally)");
  }
  return Status::OK();
}

Result<TrainResult> OnlineTrainer::TrainFullReplay(const Dataset& dataset) {
  UPSKILL_RETURN_IF_ERROR(ValidateConfig());
  obs::Span span("online/full_replay");
  Result<TrainResult> trained = Trainer(config_).Train(dataset);
  if (!trained.ok()) return trained.status();

  model_ = trained.value().model;  // deep copy; the result stays intact
  assignments_ = trained.value().assignments;

  // Rebuild the count grid from the final assignments with one serial
  // sweep. The entries are exact integer sums in doubles, so this grid is
  // bitwise identical to the one any sharded/parallel build would
  // produce, and incremental subtract/add maintenance keeps it that way.
  const size_t num_items = static_cast<size_t>(dataset.items().num_items());
  const size_t levels = static_cast<size_t>(config_.num_levels);
  level_counts_.assign(levels * num_items, 0.0);
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    const std::vector<int>& path = assignments_[static_cast<size_t>(u)];
    const std::span<const Action> seq = dataset.sequence(u);
    UPSKILL_CHECK(path.size() == seq.size());
    for (size_t n = 0; n < seq.size(); ++n) {
      level_counts_[static_cast<size_t>(path[n] - 1) * num_items +
                    static_cast<size_t>(seq[n].item)] += 1.0;
    }
  }

  // Self-consistent transition weights: refit from the adopted (final)
  // assignments — a pure function of checkpointed state, so a resumed
  // trainer reconstructs the same weights.
  if (config_.transitions == TransitionModel::kGlobal) {
    transitions_ = FitTransitionWeights(assignments_, config_.num_levels,
                                        config_.smoothing);
  }
  trained_ = true;
  return trained;
}

Result<OnlineRefreshStats> OnlineTrainer::Refresh(const Dataset& previous,
                                                  const Dataset& current,
                                                  ThreadPool* pool) {
  if (!trained_) {
    return Status::FailedPrecondition(
        "online trainer has no state; call TrainFullReplay or "
        "LoadCheckpoint first");
  }
  UPSKILL_RETURN_IF_ERROR(ValidateConfig());
  const size_t num_items = static_cast<size_t>(current.items().num_items());
  const size_t levels = static_cast<size_t>(config_.num_levels);
  if (static_cast<size_t>(previous.items().num_items()) != num_items ||
      level_counts_.size() != levels * num_items) {
    return Status::FailedPrecondition(
        "item catalog changed between refreshes; run TrainFullReplay");
  }
  if (current.schema().num_features() != model_.num_features()) {
    return Status::FailedPrecondition("feature schema does not match model");
  }
  if (current.num_users() < previous.num_users()) {
    return Status::FailedPrecondition("current dataset dropped users");
  }
  if (assignments_.size() != static_cast<size_t>(previous.num_users())) {
    return Status::FailedPrecondition(StringPrintf(
        "trained state covers %zu users, previous dataset has %d",
        assignments_.size(), previous.num_users()));
  }
  for (UserId u = 0; u < previous.num_users(); ++u) {
    if (previous.user_name(u) != current.user_name(u)) {
      return Status::FailedPrecondition(StringPrintf(
          "user %d renamed between datasets (\"%s\" vs \"%s\"); compaction "
          "only appends users",
          u, previous.user_name(u).c_str(), current.user_name(u).c_str()));
    }
    if (assignments_[static_cast<size_t>(u)].size() !=
        previous.sequence(u).size()) {
      return Status::FailedPrecondition(StringPrintf(
          "user %d has %zu assigned levels but %zu previous actions; the "
          "previous dataset is not the one this state was trained on",
          u, assignments_[static_cast<size_t>(u)].size(),
          previous.sequence(u).size()));
    }
  }

  obs::Span span("online/refresh");
  OnlineRefreshStats stats;
  assignments_.resize(static_cast<size_t>(current.num_users()));

  // E-step over the delta only: the log-prob cache refreshes just the
  // cells the last M-step dirtied, and only users whose action bytes
  // changed re-run the DP. Serial on purpose — the delta is the small
  // side, and a fixed visit order keeps the pass trivially deterministic.
  cache_.Update(model_, current.items(), pool);
  const std::vector<double>& item_log_probs = cache_.values();
  const bool use_transitions =
      config_.transitions == TransitionModel::kGlobal;
  const std::span<const double> log_initial =
      use_transitions ? std::span<const double>(transitions_.log_initial)
                      : std::span<const double>{};
  const double log_stay = use_transitions ? transitions_.log_stay : 0.0;
  const double log_up = use_transitions ? transitions_.log_up : 0.0;
  const ForgettingConfig& forgetting = config_.forgetting;
  const double log_down = std::log(forgetting.drop_probability);

  for (UserId u = 0; u < current.num_users(); ++u) {
    const size_t us = static_cast<size_t>(u);
    const std::span<const Action> seq = current.sequence(u);
    const bool is_new = u >= previous.num_users();
    if (!is_new && SameSequence(previous.sequence(u), seq)) {
      ++stats.clean_users;
      continue;
    }
    ++stats.dirty_users;
    if (is_new) {
      ++stats.new_users;
    } else {
      // Subtract the user's old contribution. Integer-valued cells make
      // the subtraction exact: the grid lands on the same bits a fresh
      // sweep without this user would produce.
      const std::span<const Action> old_seq = previous.sequence(u);
      const std::vector<int>& old_path = assignments_[us];
      for (size_t n = 0; n < old_seq.size(); ++n) {
        level_counts_[static_cast<size_t>(old_path[n] - 1) * num_items +
                      static_cast<size_t>(old_seq[n].item)] -= 1.0;
      }
      stats.actions_removed += old_seq.size();
    }
    // Re-solve the user's assignment DP against the current model —
    // exactly the staging AssignmentEngine::Assign uses, so the path is
    // bitwise the one a full assignment pass would give this user.
    if (seq.empty()) {
      assignments_[us].clear();
      continue;
    }
    scratch_.items.resize(seq.size());
    for (size_t n = 0; n < seq.size(); ++n) {
      scratch_.items[n] = seq[n].item;
    }
    if (forgetting.enabled && seq.size() > 1) {
      scratch_.allow_down.resize(seq.size() - 1);
      for (size_t n = 1; n < seq.size(); ++n) {
        scratch_.allow_down[n - 1] =
            (seq[n].time - seq[n - 1].time) > forgetting.gap_threshold;
      }
      SolveMonotonePathItemsWithForgetting(
          item_log_probs, scratch_.items, config_.num_levels, log_initial,
          log_stay, log_up,
          std::span<const uint8_t>(scratch_.allow_down.data(),
                                   seq.size() - 1),
          log_down, scratch_);
    } else {
      SolveMonotonePathItems(item_log_probs, scratch_.items,
                             config_.num_levels, log_initial, log_stay,
                             log_up, scratch_);
    }
    assignments_[us].assign(scratch_.levels.begin(), scratch_.levels.end());
    for (size_t n = 0; n < seq.size(); ++n) {
      level_counts_[static_cast<size_t>(assignments_[us][n] - 1) * num_items +
                    static_cast<size_t>(seq[n].item)] += 1.0;
    }
    stats.actions_added += seq.size();
  }

  // M-step — but only if anything moved: a refresh over identical data is
  // a strict no-op on the model. The flattened-parameter snapshot feeds
  // the model-health delta gauge; it reads the model and never writes it,
  // and is skipped entirely when metrics are off, so refresh outputs are
  // bitwise identical either way.
  std::vector<double> params_before;
  const bool track_delta = obs::MetricsEnabled() && stats.dirty_users > 0;
  if (track_delta) params_before = FlattenedParameters();
  if (stats.dirty_users > 0) {
    FitCellsFromCountGrid(current.items(), level_counts_, &model_, pool,
                          config_.parallel);
    if (use_transitions) {
      transitions_ = FitTransitionWeights(assignments_, config_.num_levels,
                                          config_.smoothing);
    }
  }
  if (track_delta) {
    const std::vector<double> params_after = FlattenedParameters();
    double sum_sq = 0.0;
    const size_t n = std::min(params_before.size(), params_after.size());
    for (size_t i = 0; i < n; ++i) {
      const double d = params_after[i] - params_before[i];
      sum_sq += d * d;
    }
    stats.param_delta_l2 = std::sqrt(sum_sq);
  }

  stats.refresh_seconds = span.StopSeconds();
  RefreshInstruments& instruments = RefreshInstruments::Get();
  instruments.refreshes.Increment();
  instruments.dirty_users.Increment(stats.dirty_users);
  instruments.clean_users.Increment(stats.clean_users);
  instruments.actions_added.Increment(stats.actions_added);
  instruments.refresh_seconds.Observe(stats.refresh_seconds);
  obs::ModelHealth::Global().NoteRefresh(stats.dirty_users,
                                         stats.param_delta_l2);
  return stats;
}

std::vector<double> OnlineTrainer::FlattenedParameters() const {
  std::vector<double> flat;
  for (int f = 0; f < model_.num_features(); ++f) {
    for (int s = 1; s <= model_.num_levels(); ++s) {
      const std::vector<double> params = model_.component(f, s).Parameters();
      flat.insert(flat.end(), params.begin(), params.end());
    }
  }
  return flat;
}

Status OnlineTrainer::SaveCheckpoint(const std::string& path) const {
  if (!trained_) {
    return Status::FailedPrecondition("nothing to checkpoint: not trained");
  }
  const size_t levels = static_cast<size_t>(config_.num_levels);
  const uint64_t num_items =
      static_cast<uint64_t>(level_counts_.size() / levels);

  ByteWriter writer;
  writer.Raw(kCheckpointMagic, sizeof(kCheckpointMagic));
  writer.U32(kCheckpointVersion);
  writer.U32(static_cast<uint32_t>(config_.num_levels));
  writer.U32(static_cast<uint32_t>(model_.num_features()));
  writer.U32(config_.transitions == TransitionModel::kGlobal ? 1u : 0u);
  SerializeSchema(model_.schema(), &writer);
  writer.U64(num_items);
  for (int f = 0; f < model_.num_features(); ++f) {
    for (int s = 1; s <= config_.num_levels; ++s) {
      writer.VecF64(model_.component(f, s).Parameters());
    }
  }
  writer.U64(static_cast<uint64_t>(assignments_.size()));
  for (const std::vector<int>& path : assignments_) {
    writer.U32(static_cast<uint32_t>(path.size()));
    writer.Raw(path.data(), path.size() * sizeof(int));
  }
  writer.U64(static_cast<uint64_t>(level_counts_.size()));
  writer.Raw(level_counts_.data(), level_counts_.size() * sizeof(double));
  writer.U8(config_.transitions == TransitionModel::kGlobal ? 1 : 0);
  if (config_.transitions == TransitionModel::kGlobal) {
    writer.VecF64(transitions_.log_initial);
    writer.F64(transitions_.log_stay);
    writer.F64(transitions_.log_up);
  }
  const uint32_t crc =
      Crc32(writer.buffer().data(), writer.buffer().size());
  writer.U32(crc);

  // Atomic publish: temp file, flush + fsync, rename over the target,
  // fsync the directory. A crash leaves either the old checkpoint or the
  // new one, never a torn file.
  const std::string temp = path + ".tmp";
  FILE* f = std::fopen(temp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot create " + temp);
  }
  const std::string& bytes = writer.buffer();
  if (std::fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size() ||
      std::fflush(f) != 0 || ::fsync(fileno(f)) != 0) {
    std::fclose(f);
    std::remove(temp.c_str());
    return Status::IoError("short write to " + temp);
  }
  if (std::fclose(f) != 0) {
    std::remove(temp.c_str());
    return Status::IoError("cannot close " + temp);
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    return Status::IoError("cannot rename " + temp + " to " + path);
  }
  return SyncParentDirectory(path);
}

Result<OnlineTrainer> OnlineTrainer::LoadCheckpoint(
    const std::string& path, const SkillModelConfig& config) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return Status::IoError("cannot open checkpoint " + path);
  }
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  if (bytes.size() < sizeof(kCheckpointMagic) + 4 + 4) {
    return Status::Corruption("checkpoint truncated: " + path);
  }
  if (std::memcmp(bytes.data(), kCheckpointMagic,
                  sizeof(kCheckpointMagic)) != 0) {
    return Status::Corruption("checkpoint bad magic: " + path);
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - 4, 4);
  if (Crc32(bytes.data(), bytes.size() - 4) != stored_crc) {
    return Status::Corruption("checkpoint crc mismatch: " + path);
  }

  ByteReader reader(bytes.data() + sizeof(kCheckpointMagic),
                    bytes.size() - sizeof(kCheckpointMagic) - 4);
  const auto corrupt = [&](const std::string& what) {
    return Status::Corruption("checkpoint " + what + ": " + path);
  };
  uint32_t version = 0, num_levels = 0, num_features = 0, has_global = 0;
  if (!reader.U32(&version) || !reader.U32(&num_levels) ||
      !reader.U32(&num_features) || !reader.U32(&has_global)) {
    return corrupt("truncated header");
  }
  if (version != kCheckpointVersion) {
    return corrupt(StringPrintf("unsupported version %u", version));
  }
  if (config.transitions == TransitionModel::kPerClass) {
    return Status::FailedPrecondition(
        "online training does not support TransitionModel::kPerClass");
  }
  if (static_cast<uint32_t>(config.num_levels) != num_levels) {
    return Status::FailedPrecondition(StringPrintf(
        "checkpoint has %u levels, config wants %d", num_levels,
        config.num_levels));
  }
  const bool want_global = config.transitions == TransitionModel::kGlobal;
  if (want_global != (has_global == 1)) {
    return Status::FailedPrecondition(
        "checkpoint transition model does not match config");
  }
  Result<FeatureSchema> schema = DeserializeSchema(&reader);
  if (!schema.ok()) return schema.status();
  if (static_cast<uint32_t>(schema.value().num_features()) != num_features) {
    return corrupt("schema/feature-count mismatch");
  }
  uint64_t num_items = 0;
  if (!reader.U64(&num_items)) return corrupt("truncated item count");

  OnlineTrainer trainer(config);
  Result<SkillModel> model = SkillModel::Create(schema.value(), config);
  if (!model.ok()) return model.status();
  trainer.model_ = std::move(model).value();
  for (uint32_t f = 0; f < num_features; ++f) {
    for (uint32_t s = 1; s <= num_levels; ++s) {
      std::vector<double> params;
      if (!reader.VecF64(&params)) return corrupt("truncated parameters");
      const Status set =
          trainer.model_
              .mutable_component(static_cast<int>(f), static_cast<int>(s))
              ->SetParameters(params);
      if (!set.ok()) {
        return corrupt(StringPrintf("component (%u, %u): %s", f, s,
                                    set.message().c_str()));
      }
    }
  }
  uint64_t num_users = 0;
  if (!reader.U64(&num_users)) return corrupt("truncated user count");
  trainer.assignments_.resize(num_users);
  for (uint64_t u = 0; u < num_users; ++u) {
    uint32_t length = 0;
    if (!reader.U32(&length)) return corrupt("truncated assignments");
    std::vector<int>& path = trainer.assignments_[u];
    path.resize(length);
    if (!reader.Raw(path.data(), static_cast<size_t>(length) * sizeof(int))) {
      return corrupt("truncated assignments");
    }
    for (const int level : path) {
      if (level < 1 || level > static_cast<int>(num_levels)) {
        return corrupt(StringPrintf("assignment level %d out of range",
                                    level));
      }
    }
  }
  uint64_t grid_size = 0;
  if (!reader.U64(&grid_size)) return corrupt("truncated grid");
  if (grid_size != static_cast<uint64_t>(num_levels) * num_items) {
    return corrupt("grid size does not match levels * items");
  }
  trainer.level_counts_.resize(static_cast<size_t>(grid_size));
  if (!reader.Doubles(trainer.level_counts_)) return corrupt("truncated grid");
  uint8_t stored_global = 0;
  if (!reader.U8(&stored_global)) return corrupt("truncated transitions");
  if ((stored_global == 1) != want_global) {
    return corrupt("transition flag disagrees with header");
  }
  if (want_global) {
    if (!reader.VecF64(&trainer.transitions_.log_initial) ||
        !reader.F64(&trainer.transitions_.log_stay) ||
        !reader.F64(&trainer.transitions_.log_up)) {
      return corrupt("truncated transitions");
    }
    if (trainer.transitions_.log_initial.size() !=
        static_cast<size_t>(num_levels)) {
      return corrupt("transition vector has wrong length");
    }
  }
  if (!reader.exhausted()) return corrupt("trailing bytes");
  trainer.trained_ = true;
  return trainer;
}

}  // namespace upskill
