#ifndef UPSKILL_CORE_ONLINE_TRAINER_H_
#define UPSKILL_CORE_ONLINE_TRAINER_H_

#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/dp.h"
#include "core/skill_model.h"
#include "core/trainer.h"
#include "data/dataset.h"

namespace upskill {

/// Outcome of one OnlineTrainer::Refresh pass.
struct OnlineRefreshStats {
  /// Users whose sequences changed (or appeared) since the previous
  /// dataset and were re-solved by the DP.
  size_t dirty_users = 0;
  /// Subset of dirty_users that did not exist in the previous dataset.
  size_t new_users = 0;
  /// Users whose sequences were byte-identical and kept their paths.
  size_t clean_users = 0;
  /// Actions removed from / added to the count grid.
  size_t actions_removed = 0;
  size_t actions_added = 0;
  /// L2 norm of the flattened model-parameter change this refresh made
  /// vs the previous fit (model-health telemetry; 0.0 when metrics are
  /// disabled or nothing was dirty).
  double param_delta_l2 = 0.0;
  double refresh_seconds = 0.0;
};

/// Online / mini-batch EM over a growing action log (the continuous-
/// learning half of the serving loop; see DESIGN.md, "Continuous
/// learning").
///
/// The trainer's update step is a pure function of the per-(level, item)
/// action-count grid (see FitCellsFromCountGrid), and that grid holds
/// exact integer sums in doubles — so it can be maintained incrementally
/// (subtract a user's old counts, add the new ones) with bitwise-exact
/// results: the incrementally maintained grid is bit-for-bit the grid a
/// full sweep over (dataset, assignments) would build, and therefore the
/// refit parameters are bit-for-bit what FitParameters would produce.
///
/// Two entry points:
///
///  - TrainFullReplay(dataset): the full-batch anchor. Delegates to
///    Trainer::Train (identical to the offline path by construction —
///    this is the determinism story: replaying base + compacted log
///    through TrainFullReplay is bitwise equal to an offline retrain on
///    the merged dataset) and adopts the result as the online state.
///
///  - Refresh(previous, current): one mini-batch EM step. Detects dirty
///    users by comparing action bytes between the two dataset versions
///    (compaction can interleave log records anywhere in a sequence, so
///    the comparison is per-user, not append-only), re-solves only their
///    assignment DPs against the current model, patches the count grid,
///    refits every (feature, level) cell from the patched grid, and
///    refits the transition component. Clean users keep their paths and
///    contribute nothing but their existing counts — the cost scales with
///    the delta, not the corpus.
///
/// Refresh is a coordinate-ascent step from the previous converged state,
/// not a full retrain; TrainFullReplay is the exactness anchor operators
/// fall back to (and the replay-equivalence tests pin). State round-trips
/// through CRC-protected checkpoints bitwise, so a resumed trainer
/// refreshes identically to one that never stopped.
///
/// TransitionModel::kPerClass is rejected (per-user class posteriors are
/// not maintained incrementally); kNone and kGlobal are supported.
class OnlineTrainer {
 public:
  explicit OnlineTrainer(SkillModelConfig config) : config_(config) {}

  /// Full-batch training over `dataset` via Trainer::Train; adopts the
  /// fitted model, assignments, and transition weights, and rebuilds the
  /// count grid from the final assignments (a serial sweep of exact
  /// integer sums — bitwise equal to any sharded build).
  Result<TrainResult> TrainFullReplay(const Dataset& dataset);

  /// One incremental EM step moving the state from `previous` to
  /// `current`. `previous` must be the dataset the current state was
  /// trained/refreshed on (user names must match on the shared prefix and
  /// the item catalog must be unchanged); `current` may append users
  /// and/or grow or reshuffle existing sequences (compaction merges by
  /// time). Requires a prior TrainFullReplay or LoadCheckpoint.
  Result<OnlineRefreshStats> Refresh(const Dataset& previous,
                                     const Dataset& current,
                                     ThreadPool* pool = nullptr);

  /// Serializes the full online state (config echo, schema, component
  /// parameters, assignments, count grid, transition weights) with a
  /// trailing CRC-32, atomically (temp file + rename). Same state, same
  /// bytes.
  Status SaveCheckpoint(const std::string& path) const;

  /// Restores a checkpoint written by SaveCheckpoint. `config` must agree
  /// with the checkpoint on num_levels and the transition model; the
  /// schema is restored from the checkpoint itself.
  static Result<OnlineTrainer> LoadCheckpoint(const std::string& path,
                                              const SkillModelConfig& config);

  bool trained() const { return trained_; }
  const SkillModel& model() const { return model_; }
  const SkillAssignments& assignments() const { return assignments_; }
  /// [(level-1) * num_items + item] exact action counts; valid once
  /// trained.
  std::span<const double> level_counts() const { return level_counts_; }
  /// Valid when config().transitions == TransitionModel::kGlobal.
  const TransitionWeights& transitions() const { return transitions_; }
  const SkillModelConfig& config() const { return config_; }

 private:
  Status ValidateConfig() const;
  /// All component parameters concatenated in (feature, level) order —
  /// the vector the refresh's param-delta L2 gauge is computed over.
  std::vector<double> FlattenedParameters() const;

  SkillModelConfig config_;
  bool trained_ = false;
  SkillModel model_;
  SkillAssignments assignments_;
  std::vector<double> level_counts_;
  TransitionWeights transitions_;
  // Incremental log P(i | s) cache + per-user DP scratch reused across
  // Refresh calls (allocation-free in the steady state).
  LogProbCache cache_;
  DpScratch scratch_;
};

}  // namespace upskill

#endif  // UPSKILL_CORE_ONLINE_TRAINER_H_
