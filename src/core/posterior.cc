#include "core/posterior.h"

#include <cmath>
#include <limits>

#include "common/math.h"
#include "common/string_util.h"

namespace upskill {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}  // namespace

double SequencePosterior::MeanLevel(size_t t) const {
  double mean = 0.0;
  for (int s = 1; s <= num_levels; ++s) {
    mean += static_cast<double>(s) * Probability(t, s);
  }
  return mean;
}

TransitionWeights UninformativeTransitions(int num_levels) {
  TransitionWeights weights;
  weights.log_initial.assign(static_cast<size_t>(num_levels),
                             -std::log(static_cast<double>(num_levels)));
  weights.log_stay = std::log(0.5);
  weights.log_up = std::log(0.5);
  return weights;
}

Result<SequencePosterior> ComputeSequencePosterior(
    const ItemTable& items, std::span<const Action> sequence,
    const SkillModel& model, const TransitionWeights& transitions) {
  if (sequence.empty()) {
    return Status::InvalidArgument("empty sequence");
  }
  const int S = model.num_levels();
  const size_t levels = static_cast<size_t>(S);
  if (transitions.log_initial.size() != levels) {
    return Status::InvalidArgument("transition weights level mismatch");
  }
  for (const Action& a : sequence) {
    if (a.item < 0 || a.item >= items.num_items()) {
      return Status::OutOfRange(StringPrintf("item %d", a.item));
    }
  }
  const size_t n = sequence.size();

  auto lp = [&](size_t t, size_t s) {
    return model.ItemLogProb(items, sequence[t].item,
                             static_cast<int>(s) + 1);
  };
  auto stay_cost = [&](size_t s) {
    return s + 1 < levels ? transitions.log_stay : 0.0;
  };

  std::vector<double> alpha(n * levels);
  std::vector<double> beta(n * levels);
  for (size_t s = 0; s < levels; ++s) {
    alpha[s] = transitions.log_initial[s] + lp(0, s);
  }
  for (size_t t = 1; t < n; ++t) {
    for (size_t s = 0; s < levels; ++s) {
      const double stay = alpha[(t - 1) * levels + s] + stay_cost(s);
      double incoming = stay;
      if (s > 0) {
        const double up =
            alpha[(t - 1) * levels + (s - 1)] + transitions.log_up;
        const double pair[] = {stay, up};
        incoming = LogSumExp(pair);
      }
      alpha[t * levels + s] = incoming + lp(t, s);
    }
  }
  for (size_t s = 0; s < levels; ++s) beta[(n - 1) * levels + s] = 0.0;
  for (size_t t = n - 1; t-- > 0;) {
    for (size_t s = 0; s < levels; ++s) {
      const double stay =
          stay_cost(s) + lp(t + 1, s) + beta[(t + 1) * levels + s];
      double outgoing = stay;
      if (s + 1 < levels) {
        const double up = transitions.log_up + lp(t + 1, s + 1) +
                          beta[(t + 1) * levels + (s + 1)];
        const double pair[] = {stay, up};
        outgoing = LogSumExp(pair);
      }
      beta[t * levels + s] = outgoing;
    }
  }

  SequencePosterior posterior;
  posterior.num_levels = S;
  posterior.log_marginal = LogSumExp(
      std::span<const double>(alpha).subspan((n - 1) * levels, levels));
  if (!std::isfinite(posterior.log_marginal)) {
    return Status::FailedPrecondition(
        "sequence impossible under the model (zero-probability item)");
  }
  posterior.gamma.resize(n * levels);
  for (size_t t = 0; t < n; ++t) {
    for (size_t s = 0; s < levels; ++s) {
      posterior.gamma[t * levels + s] = std::exp(
          alpha[t * levels + s] + beta[t * levels + s] -
          posterior.log_marginal);
    }
  }
  return posterior;
}

Result<std::vector<double>> ItemLevelPosterior(
    const ItemTable& items, const SkillModel& model, ItemId item,
    std::span<const double> prior) {
  const int S = model.num_levels();
  if (item < 0 || item >= items.num_items()) {
    return Status::OutOfRange(StringPrintf("item %d", item));
  }
  if (static_cast<int>(prior.size()) != S) {
    return Status::InvalidArgument("prior size mismatch");
  }
  std::vector<double> log_posterior(static_cast<size_t>(S));
  for (int s = 1; s <= S; ++s) {
    const double p = prior[static_cast<size_t>(s - 1)];
    if (p < 0.0) return Status::InvalidArgument("negative prior entry");
    log_posterior[static_cast<size_t>(s - 1)] =
        (p > 0.0 ? std::log(p) : kNegInf) +
        model.ItemLogProb(items, item, s);
  }
  const double log_norm = LogSumExp(log_posterior);
  std::vector<double> posterior(static_cast<size_t>(S));
  if (!std::isfinite(log_norm)) {
    // Impossible item: fall back to the prior's shape.
    double total = 0.0;
    for (double p : prior) total += p;
    if (total <= 0.0) return Status::InvalidArgument("prior sums to zero");
    for (int s = 0; s < S; ++s) {
      posterior[static_cast<size_t>(s)] =
          prior[static_cast<size_t>(s)] / total;
    }
    return posterior;
  }
  for (int s = 0; s < S; ++s) {
    posterior[static_cast<size_t>(s)] =
        std::exp(log_posterior[static_cast<size_t>(s)] - log_norm);
  }
  return posterior;
}

}  // namespace upskill
