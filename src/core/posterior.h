#ifndef UPSKILL_CORE_POSTERIOR_H_
#define UPSKILL_CORE_POSTERIOR_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "core/skill_model.h"
#include "core/trainer.h"
#include "data/dataset.h"

namespace upskill {

/// Marginal posterior of a user's latent skill trajectory under a trained
/// model: soft (per-action, per-level) probabilities rather than the
/// single Viterbi path the hard trainer returns. This is the inference
/// counterpart of the EM trainer's E-step, exposed for applications that
/// need uncertainty (e.g. abstaining from recommendations when the level
/// is ambiguous).
struct SequencePosterior {
  /// gamma[t * num_levels + (s - 1)] = P(level at action t is s | data).
  std::vector<double> gamma;
  /// log P(sequence | model, transitions).
  double log_marginal = 0.0;
  int num_levels = 0;

  double Probability(size_t t, int level) const {
    return gamma[t * static_cast<size_t>(num_levels) +
                 static_cast<size_t>(level - 1)];
  }
  /// Posterior mean level at action t, on the [1, S] scale.
  double MeanLevel(size_t t) const;
};

/// Runs the forward-backward algorithm over the monotone stay/up lattice
/// for one sequence. `transitions` supplies log pi / log stay / log up
/// (use FitTransitionWeights output, a trained EmTrainResult's
/// parameters, or uniform weights). Fails on an empty sequence or an
/// out-of-range item.
Result<SequencePosterior> ComputeSequencePosterior(
    const ItemTable& items, std::span<const Action> sequence,
    const SkillModel& model, const TransitionWeights& transitions);

/// Uniform transition weights (free start, stay/up equally likely) for
/// posterior queries when no progression component was learned.
TransitionWeights UninformativeTransitions(int num_levels);

/// Posterior P(s | i) over the level that generated a single item, under
/// `prior` (size S, non-negative, positive sum) — Equation 10 exposed
/// directly.
Result<std::vector<double>> ItemLevelPosterior(const ItemTable& items,
                                               const SkillModel& model,
                                               ItemId item,
                                               std::span<const double> prior);

}  // namespace upskill

#endif  // UPSKILL_CORE_POSTERIOR_H_
