#include "core/recommend.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace upskill {

Result<std::vector<UpskillRecommendation>> RecommendForUpskilling(
    const Dataset& dataset, const SkillModel& model,
    const SkillAssignments& assignments, std::span<const double> difficulty,
    UserId user, const UpskillRecommendationOptions& options) {
  if (user < 0 || user >= dataset.num_users()) {
    return Status::OutOfRange(StringPrintf("user %d", user));
  }
  if (assignments.size() != static_cast<size_t>(dataset.num_users())) {
    return Status::InvalidArgument(StringPrintf(
        "assignments cover %zu users, dataset has %d", assignments.size(),
        dataset.num_users()));
  }
  if (static_cast<int>(difficulty.size()) != dataset.items().num_items()) {
    return Status::InvalidArgument("difficulty vector size mismatch");
  }
  if (options.max_results < 1) {
    return Status::InvalidArgument("max_results must be >= 1");
  }
  if (!(options.stretch > 0.0)) {
    return Status::InvalidArgument("stretch must be positive");
  }
  const std::vector<int>& trajectory =
      assignments[static_cast<size_t>(user)];
  if (trajectory.empty()) {
    return Status::FailedPrecondition("user has no assigned actions");
  }
  const int current = trajectory.back();
  const int target = options.rank_by_next_level
                         ? std::min(current + 1, model.num_levels())
                         : current;

  std::vector<char> tried(static_cast<size_t>(dataset.items().num_items()),
                          0);
  if (options.exclude_tried) {
    for (const Action& a : dataset.sequence(user)) {
      tried[static_cast<size_t>(a.item)] = 1;
    }
  }

  std::vector<UpskillRecommendation> picks;
  for (ItemId i = 0; i < dataset.items().num_items(); ++i) {
    if (tried[static_cast<size_t>(i)]) continue;
    const double d = difficulty[static_cast<size_t>(i)];
    if (std::isnan(d)) continue;
    if (d <= static_cast<double>(current) ||
        d > static_cast<double>(current) + options.stretch) {
      continue;
    }
    picks.push_back(UpskillRecommendation{
        i, d, model.ItemLogProb(dataset.items(), i, target)});
  }
  const size_t take = std::min(picks.size(),
                               static_cast<size_t>(options.max_results));
  std::partial_sort(picks.begin(), picks.begin() + static_cast<ptrdiff_t>(take),
                    picks.end(),
                    [](const UpskillRecommendation& a,
                       const UpskillRecommendation& b) {
                      if (a.log_prob != b.log_prob) {
                        return a.log_prob > b.log_prob;
                      }
                      return a.item < b.item;
                    });
  picks.resize(take);
  return picks;
}

}  // namespace upskill
