#ifndef UPSKILL_CORE_RECOMMEND_H_
#define UPSKILL_CORE_RECOMMEND_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "core/skill_model.h"
#include "data/dataset.h"

namespace upskill {

/// Knobs of the difficulty-aware recommender (the application Figure 1 of
/// the paper motivates: surface items *slightly above* the user's current
/// capacity so they can grow into them).
struct UpskillRecommendationOptions {
  /// Items are eligible when their difficulty lies in
  /// (current_level, current_level + stretch].
  double stretch = 1.0;
  /// Maximum number of recommendations returned.
  int max_results = 10;
  /// Skip items already present in the user's history.
  bool exclude_tried = true;
  /// Rank eligible items by log P(i | s*) where s* is the user's *next*
  /// level (true) or current level (false). The next-level view prefers
  /// items typical of where the user is heading.
  bool rank_by_next_level = true;
};

/// One recommendation.
struct UpskillRecommendation {
  ItemId item = -1;
  double difficulty = 0.0;
  /// Ranking score: log-probability of the item under the ranking level's
  /// generative model.
  double log_prob = 0.0;
};

/// Recommends items for upskilling `user`: eligible items are those whose
/// `difficulty[i]` sits in the stretch window above the user's current
/// level (the last entry of their assignment), ranked by the model's
/// plausibility at the target level. `difficulty` must cover every item;
/// NaN entries are skipped. Fails when the user id is out of range or has
/// no actions.
Result<std::vector<UpskillRecommendation>> RecommendForUpskilling(
    const Dataset& dataset, const SkillModel& model,
    const SkillAssignments& assignments, std::span<const double> difficulty,
    UserId user, const UpskillRecommendationOptions& options = {});

}  // namespace upskill

#endif  // UPSKILL_CORE_RECOMMEND_H_
