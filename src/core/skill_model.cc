#include "core/skill_model.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>

#include "common/csv.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "dist/categorical.h"
#include "exec/backend.h"
#include "dist/gamma.h"
#include "dist/lognormal.h"
#include "dist/poisson.h"

namespace upskill {

bool AssignmentsAreMonotone(const SkillAssignments& assignments,
                            int num_levels) {
  for (const std::vector<int>& seq : assignments) {
    int previous = 1;
    for (size_t n = 0; n < seq.size(); ++n) {
      const int level = seq[n];
      if (level < 1 || level > num_levels) return false;
      if (n > 0 && (level < previous || level > previous + 1)) return false;
      previous = level;
    }
  }
  return true;
}

SkillModel::SkillModel(FeatureSchema schema, SkillModelConfig config)
    : schema_(std::move(schema)), config_(config) {}

Result<SkillModel> SkillModel::Create(const FeatureSchema& schema,
                                      const SkillModelConfig& config) {
  if (config.num_levels < 1) {
    return Status::InvalidArgument("num_levels must be >= 1");
  }
  if (schema.num_features() == 0) {
    return Status::InvalidArgument("schema has no features");
  }
  if (config.smoothing < 0.0) {
    return Status::InvalidArgument("smoothing must be non-negative");
  }
  SkillModel model(schema, config);
  model.components_.reserve(static_cast<size_t>(schema.num_features()) *
                            static_cast<size_t>(config.num_levels));
  for (int f = 0; f < schema.num_features(); ++f) {
    const FeatureSpec& spec = schema.feature(f);
    for (int s = 1; s <= config.num_levels; ++s) {
      switch (spec.distribution) {
        case DistributionKind::kCategorical:
          model.components_.push_back(
              std::make_unique<Categorical>(spec.cardinality, config.smoothing));
          break;
        case DistributionKind::kPoisson:
          model.components_.push_back(std::make_unique<Poisson>());
          break;
        case DistributionKind::kGamma:
          model.components_.push_back(std::make_unique<Gamma>());
          break;
        case DistributionKind::kLogNormal:
          model.components_.push_back(std::make_unique<LogNormal>());
          break;
      }
    }
  }
  return model;
}

SkillModel::SkillModel(const SkillModel& other)
    : schema_(other.schema_), config_(other.config_) {
  components_.reserve(other.components_.size());
  for (const auto& component : other.components_) {
    components_.push_back(component->Clone());
  }
}

SkillModel& SkillModel::operator=(const SkillModel& other) {
  if (this == &other) return *this;
  schema_ = other.schema_;
  config_ = other.config_;
  components_.clear();
  components_.reserve(other.components_.size());
  for (const auto& component : other.components_) {
    components_.push_back(component->Clone());
  }
  return *this;
}

const Distribution& SkillModel::component(int feature, int level) const {
  UPSKILL_CHECK(feature >= 0 && feature < num_features());
  UPSKILL_CHECK(level >= 1 && level <= num_levels());
  return *components_[GridIndex(feature, level)];
}

Distribution* SkillModel::mutable_component(int feature, int level) {
  UPSKILL_CHECK(feature >= 0 && feature < num_features());
  UPSKILL_CHECK(level >= 1 && level <= num_levels());
  return components_[GridIndex(feature, level)].get();
}

double SkillModel::ItemLogProb(const ItemTable& items, ItemId item,
                               int level) const {
  double total = 0.0;
  for (int f = 0; f < num_features(); ++f) {
    total += components_[GridIndex(f, level)]->LogProb(items.value(item, f));
  }
  return total;
}

std::vector<double> SkillModel::ItemLogProbCache(const ItemTable& items,
                                                 ThreadPool* pool) const {
  LogProbCache cache;
  cache.Update(*this, items, pool);
  return std::move(cache).TakeValues();
}

std::vector<double> SkillModel::ItemLogProbCache(
    const ItemTable& items, exec::Backend* backend) const {
  LogProbCache cache;
  cache.Update(*this, items, backend);
  return std::move(cache).TakeValues();
}

namespace {
// Items per parallel task when refreshing cache columns/totals; large
// enough to amortize dispatch, small enough to spread dirty cells over
// every worker.
constexpr size_t kCacheBlock = 2048;
}  // namespace

void LogProbCache::Update(const SkillModel& model, const ItemTable& items,
                          ThreadPool* pool) {
  exec::BackendChoice choice;
  Update(model, items, choice.Resolve(nullptr, pool));
}

void LogProbCache::Update(const SkillModel& model, const ItemTable& items,
                          exec::Backend* backend) {
  if (backend == nullptr) backend = exec::SerialBackend::Get();
  const int levels = model.num_levels();
  const int features = model.num_features();
  const size_t num_items = static_cast<size_t>(items.num_items());
  const size_t num_cells =
      static_cast<size_t>(features) * static_cast<size_t>(levels);
  const bool reshaped = num_items_ != items.num_items() ||
                        num_levels_ != levels || num_features_ != features;
  if (reshaped) {
    num_items_ = items.num_items();
    num_levels_ = levels;
    num_features_ = features;
    cell_params_.assign(num_cells, {});
    columns_.assign(num_cells * num_items, 0.0);
    totals_.assign(num_items * static_cast<size_t>(levels), 0.0);
  }

  // A cell is clean iff its parameter vector is bitwise unchanged.
  std::vector<size_t> dirty_cells;
  std::vector<char> level_dirty(static_cast<size_t>(levels), 0);
  for (int f = 0; f < features; ++f) {
    for (int s = 1; s <= levels; ++s) {
      const size_t cell = static_cast<size_t>(f) * levels + (s - 1);
      std::vector<double> params = model.component(f, s).Parameters();
      if (reshaped || params != cell_params_[cell]) {
        dirty_cells.push_back(cell);
        level_dirty[s - 1] = 1;
        cell_params_[cell] = std::move(params);
      }
    }
  }
  last_dirty_cells_ = static_cast<int>(dirty_cells.size());
  // After a reshape every item is dirty regardless of the old totals;
  // otherwise items start clean and the totals rebuild marks the ones
  // whose values actually moved.
  item_dirty_.assign(num_items, reshaped ? 1 : 0);
  if (dirty_cells.empty() || num_items == 0) return;

  // Log-support features (Gamma, LogNormal) pay for std::log over the
  // item column once per dirty feature, not once per dirty cell: all S
  // cells of a feature score the same column, so the logs are shared
  // through LogProbBatchWithLogs. log_offset[f] indexes the feature's
  // slice of log_scratch_ (SIZE_MAX: feature clean or not log-support).
  const size_t blocks = (num_items + kCacheBlock - 1) / kCacheBlock;
  std::vector<size_t> log_offset(static_cast<size_t>(features), SIZE_MAX);
  {
    size_t log_features = 0;
    for (const size_t cell : dirty_cells) {
      const int f = static_cast<int>(cell / levels);
      const DistributionKind kind = model.component(f, 1).kind();
      if ((kind == DistributionKind::kGamma ||
           kind == DistributionKind::kLogNormal) &&
          log_offset[static_cast<size_t>(f)] == SIZE_MAX) {
        log_offset[static_cast<size_t>(f)] = log_features++ * num_items;
      }
    }
    log_scratch_.resize(log_features * num_items);
    std::vector<int> features_with_logs;
    for (int f = 0; f < features; ++f) {
      if (log_offset[static_cast<size_t>(f)] != SIZE_MAX) {
        features_with_logs.push_back(f);
      }
    }
    // RunIndices on purpose (parallelism audit): (feature, block)
    // indexed, disjoint scratch slices, no cross-task reduction.
    backend->RunIndices(0, features_with_logs.size() * blocks, [&](size_t task) {
      const int f = features_with_logs[task / blocks];
      const size_t begin = (task % blocks) * kCacheBlock;
      const size_t count = std::min(num_items - begin, kCacheBlock);
      const std::span<const double> values =
          items.column(f).subspan(begin, count);
      double* logs =
          log_scratch_.data() + log_offset[static_cast<size_t>(f)] + begin;
      for (size_t i = 0; i < count; ++i) {
        logs[i] = values[i] > 0.0 ? std::log(values[i]) : 0.0;
      }
    });
  }

  // RunIndices on purpose (parallelism audit): the cache is indexed
  // by (cell, item-block) — not by user — so the exec-layer user shards
  // don't apply; every task writes a disjoint column slice and no floats
  // are reduced across tasks, so scheduling cannot affect the values.
  backend->RunIndices(0, dirty_cells.size() * blocks, [&](size_t task) {
    const size_t cell = dirty_cells[task / blocks];
    const size_t begin = (task % blocks) * kCacheBlock;
    const size_t count = std::min(num_items - begin, kCacheBlock);
    const int f = static_cast<int>(cell / levels);
    const int s = static_cast<int>(cell % levels) + 1;
    const std::span<const double> values =
        items.column(f).subspan(begin, count);
    const std::span<double> out(columns_.data() + cell * num_items + begin,
                                count);
    const size_t logs = log_offset[static_cast<size_t>(f)];
    if (logs != SIZE_MAX) {
      model.component(f, s).LogProbBatchWithLogs(
          values,
          std::span<const double>(log_scratch_.data() + logs + begin, count),
          out);
    } else {
      model.component(f, s).LogProbBatch(values, out);
    }
  });

  std::vector<int> dirty_levels;
  for (int s = 1; s <= levels; ++s) {
    if (level_dirty[s - 1]) dirty_levels.push_back(s);
  }
  // Totals sum features in ascending order from 0.0 so they stay bitwise
  // equal to ItemLogProb even for clean columns. Each item belongs to
  // exactly one block task (dirty levels run inside the task), so the
  // per-item dirty flags are written race-free; comparing the rebuilt
  // total against the stored one is what refines cell-level dirt down to
  // item granularity for the assignment step's dirty-user skipping.
  // RunIndices on purpose (parallelism audit): item-block indexed,
  // per-item serial feature sums — thread count cannot move a rounding.
  backend->RunIndices(0, blocks, [&](size_t block) {
    const size_t begin = block * kCacheBlock;
    const size_t end = std::min(num_items, begin + kCacheBlock);
    for (size_t item = begin; item < end; ++item) {
      for (const int s : dirty_levels) {
        double total = 0.0;
        for (int f = 0; f < features; ++f) {
          const size_t cell = static_cast<size_t>(f) * levels + (s - 1);
          total += columns_[cell * num_items + item];
        }
        double& stored = totals_[item * static_cast<size_t>(levels) + (s - 1)];
        // Bitwise comparison: NaN never occurs (log-probs are finite or
        // -inf), so total != stored exactly captures a changed value.
        if (total != stored) {
          stored = total;
          item_dirty_[item] = 1;
        }
      }
    }
  });
}

Status SkillModel::Save(const std::string& path) const {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"feature", "level", "kind", "parameters"});
  for (int f = 0; f < num_features(); ++f) {
    for (int s = 1; s <= num_levels(); ++s) {
      const Distribution& dist = component(f, s);
      std::string params;
      for (double p : dist.Parameters()) {
        if (!params.empty()) params += '|';
        params += StringPrintf("%.17g", p);
      }
      rows.push_back({StringPrintf("%d", f), StringPrintf("%d", s),
                      DistributionKindToString(dist.kind()), std::move(params)});
    }
  }
  return WriteCsvFile(path, rows);
}

Result<SkillModel> SkillModel::Load(const std::string& path,
                                    const FeatureSchema& schema,
                                    const SkillModelConfig& config) {
  Result<SkillModel> model = Create(schema, config);
  if (!model.ok()) return model.status();
  Result<std::vector<std::vector<std::string>>> rows = ReadCsvFile(path);
  if (!rows.ok()) return rows.status();
  size_t restored = 0;
  for (size_t r = 1; r < rows.value().size(); ++r) {
    const std::vector<std::string>& row = rows.value()[r];
    if (row.size() != 4) return Status::Corruption("bad model row");
    Result<long long> feature = ParseInt(row[0]);
    Result<long long> level = ParseInt(row[1]);
    if (!feature.ok()) return feature.status();
    if (!level.ok()) return level.status();
    if (feature.value() < 0 || feature.value() >= schema.num_features() ||
        level.value() < 1 || level.value() > config.num_levels) {
      return Status::Corruption("model row out of range");
    }
    Result<DistributionKind> kind = DistributionKindFromString(row[2]);
    if (!kind.ok()) return kind.status();
    Distribution* dist = model.value().mutable_component(
        static_cast<int>(feature.value()), static_cast<int>(level.value()));
    if (dist->kind() != kind.value()) {
      return Status::Corruption(StringPrintf(
          "model row %zu: kind %s does not match schema", r, row[2].c_str()));
    }
    std::vector<double> params;
    for (const std::string& field : Split(row[3], '|')) {
      Result<double> value = ParseDouble(field);
      if (!value.ok()) return value.status();
      params.push_back(value.value());
    }
    UPSKILL_RETURN_IF_ERROR(dist->SetParameters(params));
    ++restored;
  }
  const size_t expected = static_cast<size_t>(schema.num_features()) *
                          static_cast<size_t>(config.num_levels);
  if (restored != expected) {
    return Status::Corruption(StringPrintf(
        "model file restored %zu of %zu components", restored, expected));
  }
  return model;
}

}  // namespace upskill
