#ifndef UPSKILL_CORE_SKILL_MODEL_H_
#define UPSKILL_CORE_SKILL_MODEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "data/dataset.h"
#include "dist/distribution.h"

namespace upskill {

namespace exec {
class Backend;
}  // namespace exec

/// Which of the three parallelization axes from Section IV-C the trainer
/// uses (Table XIII / Figure 7 sweep them independently):
///  - `users`:    the assignment step runs one user sequence per task;
///  - `levels`:   the update step fans out over skill levels;
///  - `features`: the update step fans out over features (only available
///                in the multi-faceted model, as the paper notes).
struct ParallelOptions {
  int num_threads = 1;
  bool users = false;
  bool levels = false;
  bool features = false;

  bool any() const { return num_threads > 1 && (users || levels || features); }
};

/// Optional probabilistic progression component (the paper's base model
/// has one; Section VI-D excludes it "for simplicity and fair comparison",
/// and this library follows that default). kGlobal learns a single
/// level-up probability plus an initial-level distribution, scored inside
/// the assignment DP. kPerClass is the full progression-class component
/// of Yang et al.: each user belongs to one of `num_progression_classes`
/// latent classes, each with its own initial distribution and level-up
/// probability (fast vs. slow learners); the assignment step picks every
/// user's best (class, path) pair jointly.
enum class TransitionModel {
  kNone,
  kGlobal,
  kPerClass,
};

/// The forgetting extension sketched in Section VII (Ebbinghaus): after a
/// long break between consecutive actions, a user's skill may drop one
/// level. When enabled, the assignment DP gains a penalized down-edge at
/// positions whose time gap exceeds `gap_threshold`, relaxing strict
/// monotonicity exactly there.
struct ForgettingConfig {
  bool enabled = false;
  /// A gap strictly greater than this (in the dataset's time unit)
  /// activates the down-edge.
  int64_t gap_threshold = 0;
  /// Probability weight of the drop; the DP charges log(drop_probability)
  /// per down-step (and nothing extra for not dropping — the forgetting
  /// component is a penalty, not a full distribution).
  double drop_probability = 0.05;
};

/// Hyper-parameters of the progression model (Section IV).
struct SkillModelConfig {
  /// Number of skill levels S.
  int num_levels = 5;
  /// Additive-smoothing pseudo-count lambda for categorical components
  /// (Equation 6; paper uses 0.01 after Shin et al.).
  double smoothing = 0.01;
  /// Minimum sequence length N for a user to participate in
  /// initialization (Section IV-B; paper uses 50).
  int min_init_actions = 50;
  /// Training stops after this many alternation rounds.
  int max_iterations = 100;
  /// ... or when the relative log-likelihood improvement drops below this.
  double relative_tolerance = 1e-6;
  /// Log per-iteration progress at INFO level.
  bool verbose = false;
  ParallelOptions parallel;
  /// Progression component (see TransitionModel).
  TransitionModel transitions = TransitionModel::kNone;
  /// Starting level-up probability when transitions == kGlobal.
  double initial_level_up_probability = 0.1;
  /// Number of latent progression classes when transitions == kPerClass.
  int num_progression_classes = 2;
  /// Skill-decay extension (see ForgettingConfig).
  ForgettingConfig forgetting;
  /// Number of user-axis shards for the sharded execution core
  /// (src/exec): the dataset's user range is cut into this many
  /// contiguous, action-count-balanced runs, each with its own persistent
  /// workspace. 0 resolves automatically from the thread count. Fitted
  /// parameters, assignments, and objectives are bitwise identical for
  /// ANY value — sharding only changes scheduling, never reduction order
  /// (see DESIGN.md, "Sharded execution core").
  int num_shards = 0;
  /// Dirty-user skipping in the assignment step: when the transition
  /// weights are unchanged for an iteration, users none of whose items'
  /// cache rows changed keep their previous path without re-running the
  /// DP (results are provably identical either way). Disable to force a
  /// full DP pass every iteration (equivalence tests, benchmarks).
  bool incremental_assignment = true;
  /// Execution backend name resolved through exec::BackendRegistry
  /// ("serial", "pool", "numa", or a later-registered backend). Empty or
  /// "auto" picks "pool" when parallel.any() and "serial" otherwise.
  /// Backend choice only moves scheduling across threads and NUMA nodes;
  /// fitted parameters, assignments, objectives, eval reports, and
  /// snapshot bytes are bitwise identical for every backend (enforced by
  /// the tests/exec backend sweep).
  std::string backend;
};

/// Per-action skill levels Sigma: assignments[u][n] is the 1-based level of
/// user u's n-th action. Levels are 1-based throughout the public API to
/// match the paper's notation S = {1, ..., S}.
using SkillAssignments = std::vector<std::vector<int>>;

/// True when every sequence is monotone non-decreasing with unit steps and
/// levels lie in [1, S] (the constraint of Equation 1).
bool AssignmentsAreMonotone(const SkillAssignments& assignments,
                            int num_levels);

/// The multi-faceted progression model: a grid of per-(feature, level)
/// generative components theta_f(s), plus the item-level joint
/// log-likelihood log P(i | s) = sum_f log P_f(i_f | theta_f(s))
/// (Equation 2). Yang et al.'s ID-only baseline is this model with a
/// schema containing only the item-ID feature.
class SkillModel {
 public:
  SkillModel() = default;

  /// Builds a model whose components match `schema`: Categorical(lambda)
  /// for categorical features, Poisson for counts, Gamma or LogNormal for
  /// reals. All components start at their default (uniform/unit)
  /// parameters.
  static Result<SkillModel> Create(const FeatureSchema& schema,
                                   const SkillModelConfig& config);

  /// Deep-copying value semantics (components are cloned).
  SkillModel(const SkillModel& other);
  SkillModel& operator=(const SkillModel& other);
  SkillModel(SkillModel&&) = default;
  SkillModel& operator=(SkillModel&&) = default;

  int num_levels() const { return config_.num_levels; }
  int num_features() const { return schema_.num_features(); }
  const FeatureSchema& schema() const { return schema_; }
  const SkillModelConfig& config() const { return config_; }

  /// Component P_f(. | theta_f(s)); `level` is 1-based.
  const Distribution& component(int feature, int level) const;
  Distribution* mutable_component(int feature, int level);

  /// log P(i | s) for an item row in `items` (Equation 2); `level` is
  /// 1-based.
  double ItemLogProb(const ItemTable& items, ItemId item, int level) const;

  /// Precomputes log P(i | s) for every (item, level) pair; entry
  /// [item * S + (level-1)]. The assignment step reuses this across all
  /// occurrences of an item. Parallelizes over items when `pool` is given.
  std::vector<double> ItemLogProbCache(const ItemTable& items,
                                       ThreadPool* pool = nullptr) const;

  /// Backend form: parallelizes through `backend` (null = serial).
  std::vector<double> ItemLogProbCache(const ItemTable& items,
                                       exec::Backend* backend) const;

  /// Serializes all component parameters as CSV.
  Status Save(const std::string& path) const;

  /// Restores a model saved by Save(); `schema` must match the one the
  /// model was created with.
  static Result<SkillModel> Load(const std::string& path,
                                 const FeatureSchema& schema,
                                 const SkillModelConfig& config);

 private:
  SkillModel(FeatureSchema schema, SkillModelConfig config);

  size_t GridIndex(int feature, int level) const {
    return static_cast<size_t>(feature) *
               static_cast<size_t>(config_.num_levels) +
           static_cast<size_t>(level - 1);
  }

  FeatureSchema schema_;
  SkillModelConfig config_;
  // components_[f * S + (s-1)]
  std::vector<std::unique_ptr<Distribution>> components_;
};

/// Incremental per-(item, level) log-probability cache. Keeps one log-prob
/// column per (feature, level) component plus the item-major totals that the
/// assignment step consumes (same [item * S + (level-1)] layout as
/// SkillModel::ItemLogProbCache). Update() recomputes only the cells whose
/// parameter vectors changed since the previous call — a cell is clean iff
/// its Parameters() vector is bitwise unchanged — and rebuilds totals only
/// for the affected levels, summing features in ascending order so every
/// total stays bitwise equal to ItemLogProb.
class LogProbCache {
 public:
  LogProbCache() = default;

  /// Refreshes the cache against `model`'s current parameters. A shape
  /// change (item count, levels, or features) invalidates everything.
  void Update(const SkillModel& model, const ItemTable& items,
              ThreadPool* pool = nullptr);

  /// Backend form: the block loops below dispatch through `backend`
  /// (null = serial). The ThreadPool overload wraps and forwards here.
  void Update(const SkillModel& model, const ItemTable& items,
              exec::Backend* backend);

  /// Item-major totals, valid after Update(); entry [item * S + (level-1)].
  const std::vector<double>& values() const { return totals_; }

  /// Moves the totals out (for one-shot use); the cache must be treated as
  /// reshaped afterwards.
  std::vector<double> TakeValues() && { return std::move(totals_); }

  /// Number of (feature, level) cells recomputed by the last Update().
  int last_dirty_cells() const { return last_dirty_cells_; }

  /// Per-item dirty flags from the last Update(): `dirty_items()[i]` is
  /// non-zero iff any of item i's S totals changed bitwise (all-dirty
  /// after a reshape). The assignment step's dirty-user skipping relies
  /// on the converse being exact: a clean item's cache rows are bitwise
  /// identical to the previous iteration's, so any DP over clean items
  /// (and unchanged transition weights) provably reproduces its previous
  /// path.
  const std::vector<uint8_t>& dirty_items() const { return item_dirty_; }

 private:
  int num_items_ = -1;
  int num_levels_ = 0;
  int num_features_ = 0;
  // Parameter snapshot per cell [f * S + (s-1)], compared to detect dirt.
  std::vector<std::vector<double>> cell_params_;
  // Feature-major log-prob columns: [(f * S + (s-1)) * I + item].
  std::vector<double> columns_;
  // Scratch for per-feature log(value) columns, shared by every level of
  // the same feature within one Update (log-support kinds only): the
  // std::log pass is the dominant cost of the Gamma/LogNormal batches,
  // and the S cells of a feature score the same item column, so the
  // cache computes each dirty feature's logs once and feeds
  // LogProbBatchWithLogs instead of paying for them per cell.
  std::vector<double> log_scratch_;
  // Item-major totals: [item * S + (s-1)].
  std::vector<double> totals_;
  // Items whose totals changed in the last Update() (see dirty_items()).
  std::vector<uint8_t> item_dirty_;
  int last_dirty_cells_ = 0;
};

}  // namespace upskill

#endif  // UPSKILL_CORE_SKILL_MODEL_H_
