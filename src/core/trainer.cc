#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/dp.h"
#include "exec/backend.h"
#include "exec/backend_registry.h"
#include "exec/map_reduce.h"
#include "exec/shard.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace upskill {

std::vector<int> SegmentUniformly(size_t length, int num_levels) {
  std::vector<int> levels(length);
  if (length < static_cast<size_t>(num_levels)) {
    // Fewer actions than levels: "equal groups" would skip levels and
    // break the unit-step constraint (Equation 1); climb one level per
    // action instead.
    for (size_t n = 0; n < length; ++n) {
      levels[n] = 1 + static_cast<int>(n);
    }
    return levels;
  }
  for (size_t n = 0; n < length; ++n) {
    levels[n] = 1 + static_cast<int>((n * static_cast<size_t>(num_levels)) /
                                     length);
    if (levels[n] > num_levels) levels[n] = num_levels;
  }
  return levels;
}

SkillAssignments InitializeAssignments(const Dataset& dataset, int num_levels,
                                       int min_init_actions) {
  SkillAssignments assignments(static_cast<size_t>(dataset.num_users()));
  bool any = false;
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    const size_t len = dataset.sequence(u).size();
    if (static_cast<int>(len) >= min_init_actions) {
      assignments[static_cast<size_t>(u)] = SegmentUniformly(len, num_levels);
      any = true;
    }
  }
  if (!any) {
    // Nobody reaches the bar; fall back to segmenting everyone so the
    // initial fit still sees data at every level.
    for (UserId u = 0; u < dataset.num_users(); ++u) {
      assignments[static_cast<size_t>(u)] =
          SegmentUniformly(dataset.sequence(u).size(), num_levels);
    }
  }
  return assignments;
}

namespace {

// Item count below which the per-item column transforms in FitParameters
// (clamp + log) run inline: at ~5ns per item the work only outweighs a
// pool dispatch for catalogs of tens of thousands of items.
constexpr size_t kMinItemsForParallelTransform = 65536;

// Runs fit_cell over the (level, feature) grid with the axis fan-out
// selected by ParallelOptions: both axes flat, one axis with the other
// nested inside the task, or fully sequential. Mirrors the paper's
// separate "skill" and "feature" parallelization conditions.
// Backend::RunIndices on purpose (parallelism audit): cell-indexed, not
// user-indexed — each cell refits its own component (disjoint writes)
// from an already-merged count grid, so the exec-layer user shards don't
// apply and scheduling cannot affect the fitted parameters.
template <typename FitCell>
void DispatchCells(exec::Backend* backend, ParallelOptions parallel,
                   int num_levels, int num_features, const FitCell& fit_cell) {
  const bool concurrent = backend != nullptr && backend->concurrency() > 1;
  const bool parallel_levels = parallel.levels && concurrent;
  const bool parallel_features = parallel.features && concurrent;
  if (parallel_levels && parallel_features) {
    backend->RunIndices(0,
                        static_cast<size_t>(num_levels) *
                            static_cast<size_t>(num_features),
                        [&](size_t index) {
                          fit_cell(static_cast<int>(index) % num_features,
                                   1 + static_cast<int>(index) / num_features);
                        });
  } else if (parallel_levels) {
    backend->RunIndices(0, static_cast<size_t>(num_levels), [&](size_t s) {
      for (int f = 0; f < num_features; ++f) {
        fit_cell(f, static_cast<int>(s) + 1);
      }
    });
  } else if (parallel_features) {
    backend->RunIndices(0, static_cast<size_t>(num_features), [&](size_t f) {
      for (int s = 1; s <= num_levels; ++s) {
        fit_cell(static_cast<int>(f), s);
      }
    });
  } else {
    for (int s = 1; s <= num_levels; ++s) {
      for (int f = 0; f < num_features; ++f) fit_cell(f, s);
    }
  }
}

// Bitwise comparison of transition weights; any difference invalidates
// the dirty-user skip (a changed weight can move a path even when every
// emission row is unchanged). -inf entries compare equal; NaN never
// occurs in fitted weights.
bool SameWeights(const TransitionWeights& a, const TransitionWeights& b) {
  return a.log_stay == b.log_stay && a.log_up == b.log_up &&
         a.log_initial == b.log_initial;
}

bool SameClasses(const std::vector<ProgressionClassWeights>& a,
                 const std::vector<ProgressionClassWeights>& b) {
  if (a.size() != b.size()) return false;
  for (size_t c = 0; c < a.size(); ++c) {
    if (a[c].log_prior != b[c].log_prior ||
        !SameWeights(a[c].weights, b[c].weights)) {
      return false;
    }
  }
  return true;
}

// Registry instruments behind the TrainResult readouts. The per-phase
// seconds histograms and the skip/reassign counters observe every
// training run in the process; TrainResult's fields stay per-run (they
// read the same Span clocks, not the cumulative registry totals).
struct TrainInstruments {
  obs::Histogram& init_seconds;
  obs::Histogram& cache_seconds;
  obs::Histogram& assignment_seconds;
  obs::Histogram& update_seconds;
  obs::Counter& iterations;
  obs::Counter& skipped_users;
  obs::Counter& reassigned_users;

  static TrainInstruments& Get() {
    static TrainInstruments* instruments = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return new TrainInstruments{
          registry.GetHistogram("upskill_train_phase_seconds",
                                "phase=\"init\""),
          registry.GetHistogram("upskill_train_phase_seconds",
                                "phase=\"cache\""),
          registry.GetHistogram("upskill_train_phase_seconds",
                                "phase=\"assignment\""),
          registry.GetHistogram("upskill_train_phase_seconds",
                                "phase=\"update\""),
          registry.GetCounter("upskill_train_iterations_total"),
          registry.GetCounter("upskill_train_skipped_users_total"),
          registry.GetCounter("upskill_train_reassigned_users_total"),
      };
    }();
    return *instruments;
  }
};

}  // namespace

void FitCellsFromCountGrid(const ItemTable& items,
                           std::span<const double> level_counts,
                           SkillModel* model, exec::Backend* backend,
                           ParallelOptions parallel) {
  UPSKILL_CHECK(model != nullptr);
  const int num_levels = model->num_levels();
  const int num_features = model->num_features();
  const size_t num_items = static_cast<size_t>(items.num_items());
  UPSKILL_CHECK(level_counts.size() ==
                static_cast<size_t>(num_levels) * num_items);
  if (backend == nullptr) backend = exec::SerialBackend::Get();
  exec::Backend* update_backend =
      ((parallel.levels || parallel.features) && backend->concurrency() > 1)
          ? backend
          : exec::SerialBackend::Get();

  // Positive-support kinds take a log per observation in the flat
  // formulation; hoisting log(max(x, floor)) per *item* makes the whole
  // update O(|I|) logs instead of O(|A|). AddPositiveTransformedColumn
  // consumes the precomputed pair without re-deriving either.
  std::vector<SufficientStats> prototypes;
  prototypes.reserve(static_cast<size_t>(num_features));
  for (int f = 0; f < num_features; ++f) {
    prototypes.push_back(model->component(f, 1).MakeStats());
  }
  std::vector<std::vector<double>> clamped_cols(
      static_cast<size_t>(num_features));
  std::vector<std::vector<double>> log_cols(static_cast<size_t>(num_features));
  for (int f = 0; f < num_features; ++f) {
    const DistributionKind kind = prototypes[static_cast<size_t>(f)].kind();
    if (kind != DistributionKind::kGamma &&
        kind != DistributionKind::kLogNormal) {
      continue;
    }
    std::vector<double>& clamped = clamped_cols[static_cast<size_t>(f)];
    std::vector<double>& logs = log_cols[static_cast<size_t>(f)];
    clamped.resize(num_items);
    logs.resize(num_items);
    const double* column = items.column(f).data();
    // One log per item is light work; fan out only for large catalogs
    // where the column transform outweighs the dispatch. RunIndices on
    // purpose (parallelism audit): item-indexed with one independent
    // write per item — no reduction, no user axis.
    exec::Backend* column_backend = num_items >= kMinItemsForParallelTransform
                                        ? update_backend
                                        : exec::SerialBackend::Get();
    column_backend->RunIndices(0, num_items, [&](size_t item) {
      const double c = std::max(column[item], kPositiveObservationFloor);
      clamped[item] = c;
      logs[item] = std::log(c);
    });
  }

  // Every (feature, level) cell reduces its count row against the
  // feature column in fixed item order — a dense weighted accumulation
  // with no per-action work at all. Cells with no observations keep their
  // current parameters.
  auto fit_cell = [&](int feature, int level) {
    const size_t fs = static_cast<size_t>(feature);
    SufficientStats stats = prototypes[fs];
    const std::span<const double> weights(
        level_counts.data() + static_cast<size_t>(level - 1) * num_items,
        num_items);
    if (!clamped_cols[fs].empty()) {
      stats.AddPositiveTransformedColumn(clamped_cols[fs], log_cols[fs],
                                         weights);
    } else {
      stats.AddColumn(items.column(feature), weights);
    }
    if (!stats.empty()) {
      model->mutable_component(feature, level)->FitFromStats(stats);
    }
  };
  DispatchCells(backend, parallel, num_levels, num_features, fit_cell);
}

void FitCellsFromCountGrid(const ItemTable& items,
                           std::span<const double> level_counts,
                           SkillModel* model, ThreadPool* pool,
                           ParallelOptions parallel) {
  exec::BackendChoice choice;
  FitCellsFromCountGrid(items, level_counts, model,
                        choice.Resolve(nullptr, pool), parallel);
}

void FitParameters(const Dataset& dataset, const SkillAssignments& assignments,
                   SkillModel* model, ThreadPool* pool,
                   ParallelOptions parallel, exec::ExecContext* exec_context) {
  UPSKILL_CHECK(model != nullptr);
  const size_t levels_sz = static_cast<size_t>(model->num_levels());

  const ItemTable& items = dataset.items();
  const size_t num_items = static_cast<size_t>(items.num_items());

  exec::ExecContext local_context;
  exec::ExecContext& ctx =
      exec_context != nullptr ? *exec_context : local_context;
  // Backend resolution: a context-installed backend wins (Trainer/EM run
  // everything through one registry-built backend); otherwise the legacy
  // ThreadPool* argument is wrapped for the call's duration. The
  // accumulation pass fans out whenever the update step is parallel on
  // either axis.
  exec::BackendChoice choice;
  exec::Backend* backend = exec::AxisBackend(&ctx, true, pool, choice);
  exec::Backend* update_backend =
      ((parallel.levels || parallel.features) && backend->concurrency() > 1)
          ? backend
          : exec::SerialBackend::Get();

  // Hard assignments weight every action equally, so the only thing the
  // statistics need from the action stream is how many actions each
  // (level, item) pair received: the cell statistic for feature f at level
  // s is the count-weighted sum of f's per-item transforms. Pass 1 builds
  // that count grid in one sweep over the actions, sharded on the user
  // axis through the ExecContext (the caller's, so one training run keeps
  // a single plan and workspace set, or a call-local one). Per-shard grids
  // are safe because the counts are exact integer sums in doubles —
  // order-independent — so the merged grid (and everything derived from
  // it) is bitwise identical for any thread count and any shard count.
  // Shard 0 writes the final grid directly; other shards fill their
  // workspace grid, merged in fixed shard order afterwards. Fanning out
  // costs one zeroed plus one merged grid per extra shard — O(grid) each —
  // so it only pays when every shard's share of the action stream exceeds
  // the grid itself; otherwise a plain serial sweep runs.
  const size_t grid_size = levels_sz * num_items;
  size_t total_actions = 0;
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    if (!assignments[static_cast<size_t>(u)].empty()) {
      total_actions += dataset.sequence(u).size();
    }
  }
  ctx.EnsureUserShards(dataset, model->config().num_shards,
                       static_cast<const exec::Backend*>(update_backend));
  const int num_shards = ctx.num_shards();
  exec::Backend* count_backend =
      total_actions >= grid_size * static_cast<size_t>(num_shards)
          ? update_backend
          : exec::SerialBackend::Get();
  std::vector<double> level_counts(grid_size, 0.0);
  const auto accumulate_users = [&](double* counts, UserId begin, UserId end) {
    for (UserId user = begin; user < end; ++user) {
      const std::vector<int>& levels = assignments[static_cast<size_t>(user)];
      if (levels.empty()) continue;  // excluded (initialization)
      std::span<const Action> seq = dataset.sequence(user);
      UPSKILL_CHECK(levels.size() == seq.size());
      for (size_t n = 0; n < seq.size(); ++n) {
        counts[static_cast<size_t>(levels[n] - 1) * num_items +
               static_cast<size_t>(seq[n].item)] += 1.0;
      }
    }
  };
  if (count_backend->concurrency() <= 1) {
    accumulate_users(level_counts.data(), 0, dataset.num_users());
  } else {
    exec::MapShards(count_backend, num_shards, [&](int shard_index) {
      const exec::DatasetShard& shard =
          ctx.shards()[static_cast<size_t>(shard_index)];
      double* counts = level_counts.data();
      if (shard_index != 0) {
        exec::ShardWorkspace& ws = ctx.workspace(shard_index);
        ws.grid.assign(grid_size, 0.0);
        counts = ws.grid.data();
      }
      accumulate_users(counts, shard.user_begin(), shard.user_end());
    });
    // Merge the shard partials in fixed shard order, one level row per
    // task (RunIndices on purpose: level-indexed, disjoint rows, exact
    // integer sums — order-independent either way).
    update_backend->RunIndices(0, levels_sz, [&](size_t s) {
      double* row = level_counts.data() + s * num_items;
      for (int k = 1; k < num_shards; ++k) {
        const double* shard_row = ctx.workspace(k).grid.data() + s * num_items;
        for (size_t item = 0; item < num_items; ++item) {
          row[item] += shard_row[item];
        }
      }
    });
  }

  // Pass 2 lives in FitCellsFromCountGrid so the online trainer can refit
  // from an incrementally maintained grid through the exact same code.
  FitCellsFromCountGrid(items, level_counts, model, backend, parallel);
}

void FitParametersReference(const Dataset& dataset,
                            const SkillAssignments& assignments,
                            SkillModel* model, ThreadPool* pool,
                            ParallelOptions parallel) {
  UPSKILL_CHECK(model != nullptr);
  const int num_levels = model->num_levels();
  const int num_features = model->num_features();

  // Group item occurrences by assigned level (O(|A|), as in Section IV-C).
  std::vector<std::vector<ItemId>> by_level(
      static_cast<size_t>(num_levels));
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    const std::vector<int>& levels = assignments[static_cast<size_t>(u)];
    if (levels.empty()) continue;  // user excluded (initialization)
    std::span<const Action> seq = dataset.sequence(u);
    UPSKILL_CHECK(levels.size() == seq.size());
    for (size_t n = 0; n < seq.size(); ++n) {
      by_level[static_cast<size_t>(levels[n] - 1)].push_back(seq[n].item);
    }
  }

  const ItemTable& items = dataset.items();
  auto fit_cell = [&](int feature, int level) {
    const std::vector<ItemId>& members =
        by_level[static_cast<size_t>(level - 1)];
    if (members.empty()) return;  // keep current parameters
    std::vector<double> values;
    values.reserve(members.size());
    for (ItemId item : members) values.push_back(items.value(item, feature));
    model->mutable_component(feature, level)->Fit(values);
  };
  exec::BackendChoice choice;
  DispatchCells(choice.Resolve(nullptr, pool), parallel, num_levels,
                num_features, fit_cell);
}

AssignmentEngine::AssignmentEngine(const Dataset& dataset, int num_levels,
                                   int num_shards,
                                   exec::ExecContext* context)
    : dataset_(&dataset),
      num_levels_(num_levels),
      num_shards_request_(num_shards),
      assignments_(static_cast<size_t>(dataset.num_users())),
      user_ll_(static_cast<size_t>(dataset.num_users()), 0.0),
      user_classes_(static_cast<size_t>(dataset.num_users()), 0),
      context_(context) {
  if (context_ == nullptr) {
    owned_context_ = std::make_unique<exec::ExecContext>();
    context_ = owned_context_.get();
  }
}

void AssignmentEngine::EnsureInvertedIndex() {
  if (index_built_) return;
  const size_t num_items = static_cast<size_t>(dataset_->items().num_items());
  // Counting sort into CSR with a last-seen-user dedup: a user's actions
  // are scanned contiguously, so `last[item] == u` exactly detects repeat
  // selections within one sequence.
  std::vector<UserId> last(num_items, -1);
  item_user_offsets_.assign(num_items + 1, 0);
  for (UserId u = 0; u < dataset_->num_users(); ++u) {
    for (const Action& action : dataset_->sequence(u)) {
      const size_t item = static_cast<size_t>(action.item);
      if (last[item] == u) continue;
      last[item] = u;
      ++item_user_offsets_[item + 1];
    }
  }
  for (size_t item = 0; item < num_items; ++item) {
    item_user_offsets_[item + 1] += item_user_offsets_[item];
  }
  item_users_.resize(item_user_offsets_[num_items]);
  std::fill(last.begin(), last.end(), -1);
  std::vector<size_t> cursor(item_user_offsets_.begin(),
                             item_user_offsets_.end() - 1);
  for (UserId u = 0; u < dataset_->num_users(); ++u) {
    for (const Action& action : dataset_->sequence(u)) {
      const size_t item = static_cast<size_t>(action.item);
      if (last[item] == u) continue;
      last[item] = u;
      item_users_[cursor[item]++] = u;
    }
  }
  index_built_ = true;
}

template <typename SolveUser>
AssignmentStats AssignmentEngine::RunPass(
    exec::Backend* user_backend, const std::vector<uint8_t>* dirty_items,
    bool weights_changed, const SolveUser& solve_user) {
  const size_t num_users = static_cast<size_t>(dataset_->num_users());
  // Skipping is sound only when the previous pass exists, the transition
  // weights are bitwise unchanged, and the caller knows which cache rows
  // moved; then a user with no dirty item has a bitwise-identical DP
  // input, hence an identical optimal path.
  const bool incremental =
      have_previous_ && !weights_changed && dirty_items != nullptr;
  if (incremental) {
    EnsureInvertedIndex();
    user_dirty_.assign(num_users, 0);
    const std::vector<uint8_t>& dirty = *dirty_items;
    for (size_t item = 0; item < dirty.size(); ++item) {
      if (!dirty[item]) continue;
      for (size_t k = item_user_offsets_[item];
           k < item_user_offsets_[item + 1]; ++k) {
        user_dirty_[static_cast<size_t>(item_users_[k])] = 1;
      }
    }
  }

  // One MapShards task per balanced user shard; each task owns its
  // shard's persistent workspace (DP arena + counters), so the loop body
  // is lock-free and allocation-free in the steady state.
  exec::ExecContext& ctx = *context_;
  ctx.EnsureUserShards(*dataset_, num_shards_request_,
                       static_cast<const exec::Backend*>(user_backend));
  const int num_shards = ctx.num_shards();
  exec::MapShards(user_backend, num_shards, [&](int shard_index) {
    const exec::DatasetShard& shard =
        ctx.shards()[static_cast<size_t>(shard_index)];
    exec::ShardWorkspace& ws = ctx.workspace(shard_index);
    ws.skipped = 0;
    ws.reassigned = 0;
    ws.changed = false;
    for (UserId user = shard.user_begin(); user < shard.user_end(); ++user) {
      const size_t u = static_cast<size_t>(user);
      if (incremental && !user_dirty_[u]) {
        ++ws.skipped;
        continue;
      }
      const double ll = solve_user(ws.dp, u);
      ++ws.reassigned;
      std::vector<int>& current = assignments_[u];
      if (!have_previous_ || ws.dp.levels != current) {
        ws.changed = true;
        current.assign(ws.dp.levels.begin(), ws.dp.levels.end());
      }
      user_ll_[u] = ll;
    }
  });

  AssignmentStats stats;
  stats.changed = !have_previous_;
  stats.skipped_users = 0;
  stats.reassigned_users = 0;
  // Exact integer counters, gathered in fixed shard order.
  for (int k = 0; k < num_shards; ++k) {
    const exec::ShardWorkspace& ws = ctx.workspace(k);
    stats.skipped_users += ws.skipped;
    stats.reassigned_users += ws.reassigned;
    stats.changed = stats.changed || ws.changed;
  }
  // Per-user fixed-shape tree reduction: the objective is a pure function
  // of user_ll_ in index order — bitwise identical for any thread count
  // and any shard count. Shard partials never enter a float sum.
  stats.log_likelihood = exec::ReduceOrderedSum(user_ll_);
  have_previous_ = true;
  return stats;
}

AssignmentStats AssignmentEngine::Assign(
    const SkillModel& model, const std::vector<double>& item_log_probs,
    const TransitionWeights* transitions, ThreadPool* pool,
    ParallelOptions parallel, const std::vector<uint8_t>* dirty_items,
    bool weights_changed) {
  exec::BackendChoice choice;
  exec::Backend* user_backend =
      exec::AxisBackend(context_, parallel.users, pool, choice);
  const int num_levels = num_levels_;
  const ForgettingConfig& forgetting = model.config().forgetting;
  const double log_down = std::log(forgetting.drop_probability);
  const std::span<const double> log_initial =
      transitions == nullptr ? std::span<const double>{}
                             : std::span<const double>(transitions->log_initial);
  const double log_stay = transitions == nullptr ? 0.0 : transitions->log_stay;
  const double log_up = transitions == nullptr ? 0.0 : transitions->log_up;
  const Dataset& dataset = *dataset_;
  return RunPass(
      user_backend, dirty_items, weights_changed,
      [&](DpScratch& scratch, size_t u) {
        std::span<const Action> seq =
            dataset.sequence(static_cast<UserId>(u));
        scratch.items.resize(seq.size());
        for (size_t n = 0; n < seq.size(); ++n) {
          scratch.items[n] = seq[n].item;
        }
        if (forgetting.enabled && seq.size() > 1) {
          scratch.allow_down.resize(seq.size() - 1);
          for (size_t n = 1; n < seq.size(); ++n) {
            scratch.allow_down[n - 1] = (seq[n].time - seq[n - 1].time) >
                                        forgetting.gap_threshold;
          }
          return SolveMonotonePathItemsWithForgetting(
              item_log_probs, scratch.items, num_levels, log_initial,
              log_stay, log_up, scratch.allow_down, log_down, scratch);
        }
        return SolveMonotonePathItems(item_log_probs, scratch.items,
                                      num_levels, log_initial, log_stay,
                                      log_up, scratch);
      });
}

AssignmentStats AssignmentEngine::AssignWithClasses(
    const SkillModel& model, const std::vector<double>& item_log_probs,
    std::span<const ProgressionClassWeights> classes, ThreadPool* pool,
    ParallelOptions parallel, const std::vector<uint8_t>* dirty_items,
    bool weights_changed) {
  UPSKILL_CHECK(!classes.empty());
  (void)model;
  exec::BackendChoice choice;
  exec::Backend* user_backend =
      exec::AxisBackend(context_, parallel.users, pool, choice);
  const int num_levels = num_levels_;
  const Dataset& dataset = *dataset_;
  return RunPass(
      user_backend, dirty_items, weights_changed,
      [&](DpScratch& scratch, size_t u) {
        std::span<const Action> seq =
            dataset.sequence(static_cast<UserId>(u));
        scratch.items.resize(seq.size());
        for (size_t n = 0; n < seq.size(); ++n) {
          scratch.items[n] = seq[n].item;
        }
        double best_score = -std::numeric_limits<double>::infinity();
        int best_class = 0;
        bool any_best = false;
        for (size_t c = 0; c < classes.size(); ++c) {
          const double path_ll = SolveMonotonePathItems(
              item_log_probs, scratch.items, num_levels,
              classes[c].weights.log_initial, classes[c].weights.log_stay,
              classes[c].weights.log_up, scratch);
          const double score = path_ll + classes[c].log_prior;
          // Strict improvement: ties keep the earlier class, matching the
          // original implementation.
          if (score > best_score) {
            best_score = score;
            best_class = static_cast<int>(c);
            any_best = true;
            std::swap(scratch.levels, scratch.best_levels);
          }
        }
        std::swap(scratch.levels, scratch.best_levels);
        // All-(-inf) scores leave no winner; the original implementation
        // returned the default (empty) path in that pathological case.
        if (!any_best) scratch.levels.clear();
        user_classes_[u] = best_class;
        return seq.empty() ? 0.0 : best_score;
      });
}

SkillAssignments AssignSkills(const Dataset& dataset, const SkillModel& model,
                              ThreadPool* pool, ParallelOptions parallel,
                              double* total_log_likelihood,
                              const TransitionWeights* transitions,
                              const std::vector<double>* item_log_probs) {
  ThreadPool* user_pool = (parallel.users && pool != nullptr) ? pool : nullptr;
  // The per-(item, level) log-probability cache is shared across all
  // occurrences of an item; the trainer passes its incrementally
  // maintained cache, standalone callers get a fresh one.
  std::vector<double> computed;
  if (item_log_probs == nullptr) {
    computed = model.ItemLogProbCache(dataset.items(), user_pool);
    item_log_probs = &computed;
  }
  AssignmentEngine engine(dataset, model.num_levels(),
                          model.config().num_shards);
  const AssignmentStats stats =
      engine.Assign(model, *item_log_probs, transitions, pool, parallel);
  if (total_log_likelihood != nullptr) {
    *total_log_likelihood = stats.log_likelihood;
  }
  return std::move(engine).TakeAssignments();
}

SkillAssignments AssignSkillsWithClasses(
    const Dataset& dataset, const SkillModel& model,
    std::span<const ProgressionClassWeights> classes, ThreadPool* pool,
    ParallelOptions parallel, double* total_log_likelihood,
    std::vector<int>* user_classes,
    const std::vector<double>* item_log_probs) {
  ThreadPool* user_pool = (parallel.users && pool != nullptr) ? pool : nullptr;
  std::vector<double> computed;
  if (item_log_probs == nullptr) {
    computed = model.ItemLogProbCache(dataset.items(), user_pool);
    item_log_probs = &computed;
  }
  AssignmentEngine engine(dataset, model.num_levels(),
                          model.config().num_shards);
  const AssignmentStats stats = engine.AssignWithClasses(
      model, *item_log_probs, classes, pool, parallel);
  if (total_log_likelihood != nullptr) {
    *total_log_likelihood = stats.log_likelihood;
  }
  if (user_classes != nullptr) *user_classes = engine.user_classes();
  return std::move(engine).TakeAssignments();
}

TransitionWeights FitTransitionWeights(const SkillAssignments& assignments,
                                       int num_levels, double smoothing) {
  UPSKILL_CHECK(num_levels >= 1);
  TransitionWeights weights;
  std::vector<double> initial_counts(static_cast<size_t>(num_levels), 0.0);
  double ups = 0.0;
  double stays_below_top = 0.0;
  for (const std::vector<int>& seq : assignments) {
    if (seq.empty()) continue;
    initial_counts[static_cast<size_t>(seq.front() - 1)] += 1.0;
    for (size_t n = 1; n < seq.size(); ++n) {
      if (seq[n] > seq[n - 1]) {
        ups += 1.0;
      } else if (seq[n] == seq[n - 1] && seq[n] < num_levels) {
        // Down-steps (possible under the forgetting extension) belong to
        // neither bucket of the up/stay odds.
        stays_below_top += 1.0;
      }
    }
  }
  double initial_total = 0.0;
  for (double c : initial_counts) initial_total += c;
  weights.log_initial.resize(static_cast<size_t>(num_levels));
  const double denom =
      initial_total + smoothing * static_cast<double>(num_levels);
  for (int s = 0; s < num_levels; ++s) {
    const double p =
        denom > 0.0
            ? (initial_counts[static_cast<size_t>(s)] + smoothing) / denom
            : 1.0 / static_cast<double>(num_levels);
    weights.log_initial[static_cast<size_t>(s)] =
        p > 0.0 ? std::log(p) : -std::numeric_limits<double>::infinity();
  }
  // Smoothed level-up probability, clamped away from the {0, 1} endpoints
  // so the DP weights stay finite. No observed transitions (and zero
  // smoothing) falls back to an uninformative 0.5.
  const double transition_mass = ups + stays_below_top + 2.0 * smoothing;
  const double p_up =
      transition_mass > 0.0
          ? std::clamp((ups + smoothing) / transition_mass, 1e-4, 1.0 - 1e-4)
          : 0.5;
  weights.log_up = std::log(p_up);
  weights.log_stay = std::log(1.0 - p_up);
  return weights;
}

Result<TrainResult> Trainer::Train(const Dataset& dataset) const {
  if (dataset.num_actions() == 0) {
    return Status::InvalidArgument("cannot train on an empty dataset");
  }
  Result<SkillModel> created = SkillModel::Create(dataset.schema(), config_);
  if (!created.ok()) return created.status();

  TrainResult result;
  result.model = std::move(created).value();

  // Build the execution backend from the registry: an explicit
  // config_.backend name wins; "" / "auto" resolves to the thread pool
  // when parallelism is requested and to serial otherwise (the old
  // "create a pool iff parallel.any()" behavior). Backend choice only
  // moves scheduling, never results — the determinism sweep in
  // tests/exec enforces that bitwise.
  Result<std::shared_ptr<exec::Backend>> backend_result = exec::CreateBackend(
      config_.backend, config_.parallel.any() ? config_.parallel.num_threads : 1);
  if (!backend_result.ok()) return backend_result.status();
  std::shared_ptr<exec::Backend> backend = std::move(backend_result).value();

  // Optional progression components, refit each iteration.
  const bool use_transitions =
      config_.transitions == TransitionModel::kGlobal;
  const bool use_classes = config_.transitions == TransitionModel::kPerClass;
  if (use_classes && config_.num_progression_classes < 1) {
    return Status::InvalidArgument("num_progression_classes must be >= 1");
  }
  TransitionWeights transition_weights;
  std::vector<ProgressionClassWeights> classes;

  // One sharded-execution context for the whole run: the assignment
  // engine and the update step's count sweep share the same user-axis
  // shard plan and per-shard workspaces across all iterations, all
  // dispatched through the installed backend.
  exec::ExecContext exec_context;
  exec_context.SetBackend(backend);
  exec_context.EnsureUserShards(dataset, config_.num_shards);

  // Phase telemetry: every phase below runs under an obs::Span, which
  // yields the wall-clock seconds for TrainResult's per-run readouts,
  // feeds the cumulative phase histograms, and — when the global
  // TraceRecorder is enabled (train --trace-out) — emits one Chrome-trace
  // span per phase per iteration.
  TrainInstruments& instruments = TrainInstruments::Get();

  Stopwatch total_watch;
  // Initialization (Section IV-B): uniform segmentation of long sequences.
  {
    obs::Span span("train/init");
    const SkillAssignments init = InitializeAssignments(
        dataset, config_.num_levels, config_.min_init_actions);
    FitParameters(dataset, init, &result.model, nullptr, config_.parallel,
                  &exec_context);
    if (use_transitions) {
      transition_weights =
          FitTransitionWeights(init, config_.num_levels, config_.smoothing);
    }
    if (use_classes) {
      // Seed K classes around the initial fit with geometrically spread
      // level-up speeds, so fast and slow learners can separate.
      const TransitionWeights base =
          FitTransitionWeights(init, config_.num_levels, config_.smoothing);
      const int k = config_.num_progression_classes;
      classes.resize(static_cast<size_t>(k));
      for (int c = 0; c < k; ++c) {
        const double spread =
            std::pow(2.0, static_cast<double>(c) - (k - 1) / 2.0);
        const double p_up = std::clamp(
            std::exp(base.log_up) * spread, 1e-4, 1.0 - 1e-4);
        classes[static_cast<size_t>(c)].weights = base;
        classes[static_cast<size_t>(c)].weights.log_up = std::log(p_up);
        classes[static_cast<size_t>(c)].weights.log_stay =
            std::log(1.0 - p_up);
        classes[static_cast<size_t>(c)].log_prior =
            -std::log(static_cast<double>(k));
      }
    }
    result.init_seconds = span.StopSeconds();
    instruments.init_seconds.Observe(result.init_seconds);
  }

  // The item log-prob cache lives across iterations: only the
  // (feature, level) cells whose parameters changed in the last update
  // step are recomputed (LogProbCache dirty tracking). The assignment
  // engine carries the previous iteration's paths, per-user likelihoods
  // and per-shard DP arenas, and — fed the cache's per-item dirty flags —
  // skips the DP for users whose lattice is provably unchanged.
  LogProbCache log_prob_cache;
  AssignmentEngine engine(dataset, config_.num_levels, config_.num_shards,
                          &exec_context);
  exec::Backend* user_backend =
      (config_.parallel.users && backend->concurrency() > 1)
          ? backend.get()
          : exec::SerialBackend::Get();

  // Whether the transition weights fed to the assignment step changed
  // since the previous iteration (always true before the first pass; the
  // kNone model has no weights, so they never change).
  bool weights_changed = true;

  double previous_ll = -std::numeric_limits<double>::infinity();
  for (int iteration = 0; iteration < config_.max_iterations; ++iteration) {
    instruments.iterations.Increment();
    {
      obs::Span span("train/cache", -1, iteration);
      log_prob_cache.Update(result.model, dataset.items(), user_backend);
      const double seconds = span.StopSeconds();
      result.cache_seconds += seconds;
      instruments.cache_seconds.Observe(seconds);
    }

    obs::Span assign_span("train/assignment", -1, iteration);
    const std::vector<uint8_t>* dirty_items =
        config_.incremental_assignment ? &log_prob_cache.dirty_items()
                                       : nullptr;
    const AssignmentStats stats =
        use_classes
            ? engine.AssignWithClasses(result.model, log_prob_cache.values(),
                                       classes, nullptr, config_.parallel,
                                       dirty_items, weights_changed)
            : engine.Assign(result.model, log_prob_cache.values(),
                            use_transitions ? &transition_weights : nullptr,
                            nullptr, config_.parallel, dirty_items,
                            weights_changed);
    {
      const double seconds = assign_span.StopSeconds();
      result.assignment_seconds += seconds;
      instruments.assignment_seconds.Observe(seconds);
    }
    result.skipped_users += stats.skipped_users;
    result.reassigned_users += stats.reassigned_users;
    instruments.skipped_users.Increment(stats.skipped_users);
    instruments.reassigned_users.Increment(stats.reassigned_users);
    const double ll = stats.log_likelihood;
    weights_changed = false;

    const bool unchanged = iteration > 0 && !stats.changed;
    result.log_likelihood_trace.push_back(ll);
    result.iterations = iteration + 1;
    if (config_.verbose) {
      UPSKILL_LOG(Info) << "iteration " << iteration + 1
                        << " log-likelihood " << ll;
    }

    const bool small_gain =
        std::isfinite(previous_ll) &&
        ll - previous_ll <= config_.relative_tolerance * std::abs(previous_ll);
    if (unchanged || small_gain) {
      result.converged = true;
      result.final_log_likelihood = ll;
      break;
    }
    previous_ll = ll;

    obs::Span update_span("train/update", -1, iteration);
    const SkillAssignments& assignments = engine.assignments();
    FitParameters(dataset, assignments, &result.model, nullptr,
                  config_.parallel, &exec_context);
    if (use_transitions) {
      TransitionWeights next = FitTransitionWeights(
          assignments, config_.num_levels, config_.smoothing);
      weights_changed = !SameWeights(next, transition_weights);
      transition_weights = std::move(next);
    }
    if (use_classes) {
      // Refit each class from its current members (classes that lost all
      // members keep their previous weights).
      const std::vector<ProgressionClassWeights> previous_classes = classes;
      const std::vector<int>& user_classes = engine.user_classes();
      const int k = config_.num_progression_classes;
      std::vector<size_t> members(static_cast<size_t>(k), 0);
      for (int c = 0; c < k; ++c) {
        SkillAssignments subset(assignments.size());
        size_t count = 0;
        for (size_t u = 0; u < assignments.size(); ++u) {
          if (user_classes[u] == c) {
            subset[u] = assignments[u];
            ++count;
          }
        }
        members[static_cast<size_t>(c)] = count;
        if (count > 0) {
          classes[static_cast<size_t>(c)].weights = FitTransitionWeights(
              subset, config_.num_levels, config_.smoothing);
        }
      }
      const double total = static_cast<double>(dataset.num_users()) +
                           config_.smoothing * static_cast<double>(k);
      for (int c = 0; c < k; ++c) {
        classes[static_cast<size_t>(c)].log_prior = std::log(
            (static_cast<double>(members[static_cast<size_t>(c)]) +
             config_.smoothing + 1e-12) /
            (total + 1e-12));
      }
      weights_changed = !SameClasses(classes, previous_classes);
    }
    {
      const double seconds = update_span.StopSeconds();
      result.update_seconds += seconds;
      instruments.update_seconds.Observe(seconds);
    }
    result.final_log_likelihood = ll;
  }
  result.assignments = engine.assignments();
  if (use_classes) result.user_classes = engine.user_classes();

  if (use_transitions) {
    result.level_up_probability = std::exp(transition_weights.log_up);
    result.initial_distribution.resize(
        static_cast<size_t>(config_.num_levels));
    for (int s = 0; s < config_.num_levels; ++s) {
      result.initial_distribution[static_cast<size_t>(s)] =
          std::exp(transition_weights.log_initial[static_cast<size_t>(s)]);
    }
  }
  if (use_classes) result.progression_classes = std::move(classes);

  if (config_.verbose) {
    UPSKILL_LOG(Info) << "training finished in " << total_watch.ElapsedSeconds()
                      << "s (" << result.iterations << " iterations, "
                      << (result.converged ? "converged" : "iteration cap")
                      << ")";
  }
  return result;
}

}  // namespace upskill
