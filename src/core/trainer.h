#ifndef UPSKILL_CORE_TRAINER_H_
#define UPSKILL_CORE_TRAINER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/dp.h"
#include "core/skill_model.h"
#include "data/dataset.h"
#include "exec/workspace.h"

namespace upskill {

/// Log-space transition weights consumed by the assignment step when a
/// progression component is enabled.
struct TransitionWeights {
  /// log pi(s), one entry per level (may be empty: free start).
  std::vector<double> log_initial;
  /// log(1 - p_up); the top level's self-transition is always free.
  double log_stay = 0.0;
  /// log p_up.
  double log_up = 0.0;
};

/// One learned progression class (TransitionModel::kPerClass): its
/// transition weights plus the (log) fraction of users it claims.
struct ProgressionClassWeights {
  TransitionWeights weights;
  double log_prior = 0.0;
};

/// Output of Trainer::Train.
struct TrainResult {
  SkillModel model;
  SkillAssignments assignments;
  /// Total log-likelihood measured at each assignment step (Equation 3);
  /// non-decreasing by the coordinate-ascent argument of Section IV-B.
  std::vector<double> log_likelihood_trace;
  int iterations = 0;
  bool converged = false;
  double final_log_likelihood = 0.0;
  /// Wall-clock split, for the efficiency experiments (Section VI-F).
  /// `cache_seconds` is the per-iteration item log-prob cache refresh,
  /// which the paper folds into the assignment step; it is kept separate
  /// here so the incremental cache's effect is visible.
  double assignment_seconds = 0.0;
  double cache_seconds = 0.0;
  double update_seconds = 0.0;
  double init_seconds = 0.0;
  /// Dirty-user skipping totals across all assignment iterations:
  /// `skipped_users` counts user-iterations whose DP was skipped because
  /// no item in their sequence had a dirtied cache row (and the
  /// transition weights were unchanged); `reassigned_users` counts DPs
  /// actually solved. Their sum is num_users * iterations.
  size_t skipped_users = 0;
  size_t reassigned_users = 0;
  /// Learned progression component (meaningful when the config enables
  /// TransitionModel::kGlobal; otherwise left at defaults).
  std::vector<double> initial_distribution;
  double level_up_probability = 0.0;
  /// Learned classes and per-user class labels (kPerClass only).
  std::vector<ProgressionClassWeights> progression_classes;
  std::vector<int> user_classes;
};

/// Hard-assignment coordinate-ascent trainer for the progression model
/// (Section IV-B): initialize from uniformly segmented long sequences,
/// then alternate the DP assignment step and the per-(feature, level)
/// maximum-likelihood update step until the likelihood stops improving.
class Trainer {
 public:
  explicit Trainer(SkillModelConfig config) : config_(config) {}

  /// Runs the full training loop on `dataset`. Fails when the dataset is
  /// empty or the schema/config are invalid.
  Result<TrainResult> Train(const Dataset& dataset) const;

  const SkillModelConfig& config() const { return config_; }

 private:
  SkillModelConfig config_;
};

/// Uniform-segmentation levels for one sequence length: action n of len
/// gets level 1 + floor(n * S / len). Shared by the initializer and the
/// Uniform baseline.
std::vector<int> SegmentUniformly(size_t length, int num_levels);

/// Initialization assignments (Section IV-B): users with at least
/// `min_init_actions` actions get uniform segmentation; everyone else gets
/// an empty vector (excluded from the initial parameter fit). Falls back
/// to including all users when nobody qualifies.
SkillAssignments InitializeAssignments(const Dataset& dataset, int num_levels,
                                       int min_init_actions);

/// The update step (Equations 5-7): refits every component of `model` from
/// the actions assigned to its level. Users with empty assignment vectors
/// are skipped; levels with no assigned actions keep their current
/// parameters.
///
/// Implemented in two passes with no per-level value buffers: one sweep
/// over the action sequences builds a per-(level, item) action-count grid
/// (hard assignments weight every action equally, so the counts are the
/// only thing the statistics need from the stream), then every (feature,
/// level) cell reduces its count row against the feature's item column
/// into sufficient statistics (Distribution::MakeStats / FitFromStats) and
/// refits. The counts are exact integer sums — order-independent — and the
/// per-cell reduction runs in fixed item order, so the fitted parameters
/// are bitwise identical for any thread count (gamma/log-normal log-sums
/// are reassociated relative to a flat loop, but deterministically so).
/// Parallelizes the pass when `parallel` enables the level and/or feature
/// axis; the count sweep shards the user axis through `exec_context` (a
/// shared one from Trainer::Train, or a call-local one) when the dataset
/// is large enough, merging the exact per-shard count grids in fixed
/// shard order — bitwise identical for any thread and shard count.
void FitParameters(const Dataset& dataset, const SkillAssignments& assignments,
                   SkillModel* model, ThreadPool* pool = nullptr,
                   ParallelOptions parallel = {},
                   exec::ExecContext* exec_context = nullptr);

/// Pass 2 of FitParameters on its own: refits every (feature, level) cell
/// of `model` from an externally maintained per-(level, item) action-count
/// grid (`level_counts` is [(level-1) * num_items + item], size
/// num_levels * num_items). Because the grid holds exact integer sums, any
/// path that produces the same grid — one full sweep or incremental
/// subtract/add maintenance — refits to bitwise-identical parameters. This
/// is the contract the online trainer builds on.
void FitCellsFromCountGrid(const ItemTable& items,
                           std::span<const double> level_counts,
                           SkillModel* model, ThreadPool* pool = nullptr,
                           ParallelOptions parallel = {});

/// Backend form: dispatches the per-axis cell fan-out and the large-
/// catalog column transforms through `backend` (null = serial). The
/// ThreadPool overload above wraps its pool and forwards here.
void FitCellsFromCountGrid(const ItemTable& items,
                           std::span<const double> level_counts,
                           SkillModel* model, exec::Backend* backend,
                           ParallelOptions parallel);

/// Reference implementation of the update step: groups item occurrences
/// into per-level buckets, then copies each (feature, level) cell's values
/// into a buffer and calls Distribution::Fit. Kept as the equivalence
/// oracle for FitParameters and as the benchmark baseline; new code should
/// call FitParameters.
void FitParametersReference(const Dataset& dataset,
                            const SkillAssignments& assignments,
                            SkillModel* model, ThreadPool* pool = nullptr,
                            ParallelOptions parallel = {});

/// The assignment step (Equation 4): per-user DP against the item
/// log-probability cache. Returns the new assignments and, via
/// `total_log_likelihood`, the objective value of Equation 3 under them
/// (including transition terms when `transitions` is non-null).
/// Parallelizes over users per `parallel` using `pool`. When
/// `item_log_probs` is non-null it must be a [item * S + (level-1)] cache
/// (e.g. LogProbCache::values()) and is used as-is; otherwise the cache is
/// computed internally.
SkillAssignments AssignSkills(const Dataset& dataset, const SkillModel& model,
                              ThreadPool* pool = nullptr,
                              ParallelOptions parallel = {},
                              double* total_log_likelihood = nullptr,
                              const TransitionWeights* transitions = nullptr,
                              const std::vector<double>* item_log_probs =
                                  nullptr);

/// Maximum-likelihood refit of the global progression component from hard
/// assignments: pi from (smoothed) first-action level counts, p_up from
/// the fraction of below-top transitions that step up. Requires every
/// level in [1, num_levels].
TransitionWeights FitTransitionWeights(const SkillAssignments& assignments,
                                       int num_levels, double smoothing);

/// Outcome of one AssignmentEngine pass.
struct AssignmentStats {
  /// Objective value of Equation 3 under the new assignments (including
  /// transition terms when enabled); carried-forward users contribute
  /// their previous per-user log-likelihood.
  double log_likelihood = 0.0;
  /// Users whose DP was skipped (previous path carried forward).
  size_t skipped_users = 0;
  /// Users whose DP was solved this pass.
  size_t reassigned_users = 0;
  /// True when any user's levels differ from the previous pass (always
  /// true on the first pass).
  bool changed = true;
};

/// Fused, arena-backed assignment step with incremental reassignment.
/// Owns the state that makes repeated passes over one dataset cheap:
///  - an exec::ExecContext (borrowed from the caller or owned) whose
///    per-shard workspaces hold the DP arenas — zero steady-state
///    allocation; the user loop runs as exec::MapShards over the
///    context's balanced user shards;
///  - the persistent assignments + per-user log-likelihoods of the
///    previous pass, so users untouched by the last update step carry
///    their path forward without re-running the DP;
///  - an item -> users inverted index (built lazily on the first
///    incremental pass) that maps LogProbCache::dirty_items() to the set
///    of users that must be re-solved.
/// Results are bitwise identical to the one-shot AssignSkills* functions
/// for any thread count, any shard count, and any skipping pattern: the
/// objective is reduced per-user by exec::ReduceOrderedSum, never from
/// per-shard partials. The dataset must outlive the engine and keep its
/// sequences unchanged.
class AssignmentEngine {
 public:
  /// `num_shards` <= 0 resolves automatically from the pool of the first
  /// pass. `context` (optional) shares one ExecContext across drivers —
  /// e.g. Trainer::Train hands the same context to the engine and
  /// FitParameters so they reuse one shard plan and one workspace set.
  explicit AssignmentEngine(const Dataset& dataset, int num_levels,
                            int num_shards = 0,
                            exec::ExecContext* context = nullptr);

  /// One assignment pass (Equation 4), plain or with global transition
  /// weights (`transitions` may be null). `dirty_items` enables skipping:
  /// when non-null and `weights_changed` is false, users none of whose
  /// items are flagged keep their previous path. Pass null / true to
  /// force a full pass. Forgetting is honored per `model.config()`.
  AssignmentStats Assign(const SkillModel& model,
                         const std::vector<double>& item_log_probs,
                         const TransitionWeights* transitions,
                         ThreadPool* pool, ParallelOptions parallel,
                         const std::vector<uint8_t>* dirty_items = nullptr,
                         bool weights_changed = true);

  /// Per-class variant (one DP per class per user, best pair wins); the
  /// chosen class is carried forward for skipped users.
  AssignmentStats AssignWithClasses(
      const SkillModel& model, const std::vector<double>& item_log_probs,
      std::span<const ProgressionClassWeights> classes, ThreadPool* pool,
      ParallelOptions parallel,
      const std::vector<uint8_t>* dirty_items = nullptr,
      bool weights_changed = true);

  /// Assignments of the most recent pass.
  const SkillAssignments& assignments() const { return assignments_; }
  /// Per-user class labels of the most recent AssignWithClasses pass.
  const std::vector<int>& user_classes() const { return user_classes_; }
  /// Moves the assignments out (one-shot use); the engine must not be
  /// reused afterwards.
  SkillAssignments TakeAssignments() && { return std::move(assignments_); }

 private:
  template <typename SolveUser>
  AssignmentStats RunPass(exec::Backend* user_backend,
                          const std::vector<uint8_t>* dirty_items,
                          bool weights_changed, const SolveUser& solve_user);
  void EnsureInvertedIndex();

  const Dataset* dataset_;
  int num_levels_;
  int num_shards_request_;
  SkillAssignments assignments_;
  std::vector<double> user_ll_;
  std::vector<int> user_classes_;
  bool have_previous_ = false;
  // Sharded-execution state: borrowed from the caller or owned here.
  exec::ExecContext* context_;
  std::unique_ptr<exec::ExecContext> owned_context_;
  // CSR item -> users index (each user listed once per item it selects).
  bool index_built_ = false;
  std::vector<size_t> item_user_offsets_;
  std::vector<UserId> item_users_;
  std::vector<uint8_t> user_dirty_;
};

/// The per-class assignment step (Yang et al.'s progression classes):
/// for every user, solves one DP per class (transition weights + class
/// log-prior) and keeps the best-scoring pair. Outputs the chosen class
/// per user via `user_classes` (resized to num_users).
SkillAssignments AssignSkillsWithClasses(
    const Dataset& dataset, const SkillModel& model,
    std::span<const ProgressionClassWeights> classes,
    ThreadPool* pool = nullptr, ParallelOptions parallel = {},
    double* total_log_likelihood = nullptr,
    std::vector<int>* user_classes = nullptr,
    const std::vector<double>* item_log_probs = nullptr);

}  // namespace upskill

#endif  // UPSKILL_CORE_TRAINER_H_
