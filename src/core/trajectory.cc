#include "core/trajectory.h"

namespace upskill {

Result<TrajectorySummary> SummarizeTrajectories(
    const SkillAssignments& assignments, int num_levels) {
  if (num_levels < 1) {
    return Status::InvalidArgument("num_levels must be >= 1");
  }
  TrajectorySummary summary;
  summary.actions_per_level.assign(static_cast<size_t>(num_levels), 0);
  summary.users_ending_at_level.assign(static_cast<size_t>(num_levels), 0);
  summary.users_starting_at_level.assign(static_cast<size_t>(num_levels), 0);
  for (const std::vector<int>& seq : assignments) {
    if (seq.empty()) continue;
    for (size_t n = 0; n < seq.size(); ++n) {
      const int level = seq[n];
      if (level < 1 || level > num_levels) {
        return Status::InvalidArgument("level outside [1, num_levels]");
      }
      ++summary.actions_per_level[static_cast<size_t>(level - 1)];
      if (n > 0) {
        ++summary.transitions;
        if (seq[n] > seq[n - 1]) ++summary.level_ups;
        if (seq[n] < seq[n - 1]) ++summary.level_downs;
      }
    }
    ++summary.users_starting_at_level[static_cast<size_t>(seq.front() - 1)];
    ++summary.users_ending_at_level[static_cast<size_t>(seq.back() - 1)];
  }
  summary.actions_per_level_up =
      summary.level_ups == 0
          ? 0.0
          : static_cast<double>(summary.transitions) /
                static_cast<double>(summary.level_ups);
  return summary;
}

std::vector<int64_t> ActionsUntilLevel(const SkillAssignments& assignments,
                                       int level) {
  std::vector<int64_t> result;
  result.reserve(assignments.size());
  for (const std::vector<int>& seq : assignments) {
    int64_t count = -1;
    for (size_t n = 0; n < seq.size(); ++n) {
      if (seq[n] >= level) {
        count = static_cast<int64_t>(n);
        break;
      }
    }
    result.push_back(count);
  }
  return result;
}

}  // namespace upskill
