#ifndef UPSKILL_CORE_TRAJECTORY_H_
#define UPSKILL_CORE_TRAJECTORY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/skill_model.h"
#include "data/dataset.h"

namespace upskill {

/// Aggregate statistics of a set of skill trajectories — the quantities
/// the paper's qualitative analyses (Section VI-C) and the upskilling
/// use case read off the assignments.
struct TrajectorySummary {
  /// Actions observed at each level (index s-1).
  std::vector<size_t> actions_per_level;
  /// Users whose final level is s (index s-1).
  std::vector<size_t> users_ending_at_level;
  /// Users whose first level is s (index s-1).
  std::vector<size_t> users_starting_at_level;
  /// Total level-up transitions across all users.
  size_t level_ups = 0;
  /// Total level-down transitions (possible under the forgetting
  /// extension only).
  size_t level_downs = 0;
  /// Total consecutive-action pairs.
  size_t transitions = 0;
  /// transitions / level_ups; 0 when no user ever levels up.
  double actions_per_level_up = 0.0;
};

/// Computes the summary. Assignments must hold levels in [1, num_levels];
/// empty user vectors are skipped.
Result<TrajectorySummary> SummarizeTrajectories(
    const SkillAssignments& assignments, int num_levels);

/// Per-user time spent before first reaching `level`: the number of
/// actions taken strictly before the first action assigned a level
/// >= `level`. Users who never reach it get -1.
std::vector<int64_t> ActionsUntilLevel(const SkillAssignments& assignments,
                                       int level);

}  // namespace upskill

#endif  // UPSKILL_CORE_TRAJECTORY_H_
