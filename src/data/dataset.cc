#include "data/dataset.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"

namespace upskill {

ItemTable::ItemTable(FeatureSchema schema) : schema_(std::move(schema)) {
  columns_.resize(static_cast<size_t>(schema_.num_features()));
}

Result<ItemId> ItemTable::AddItem(std::span<const double> values,
                                  std::string name) {
  if (static_cast<int>(values.size()) != schema_.num_features()) {
    return Status::InvalidArgument(
        StringPrintf("item has %zu values, schema has %d features",
                     values.size(), schema_.num_features()));
  }
  const ItemId id = num_items_;
  for (int f = 0; f < schema_.num_features(); ++f) {
    double value = values[static_cast<size_t>(f)];
    if (f == schema_.id_feature() && value == -1.0) {
      value = static_cast<double>(id);
    }
    UPSKILL_RETURN_IF_ERROR(schema_.ValidateValue(f, value));
    columns_[static_cast<size_t>(f)].push_back(value);
  }
  names_.push_back(std::move(name));
  ++num_items_;
  return id;
}

Status ItemTable::SetMetadata(const std::string& key,
                              std::vector<double> values) {
  if (key.empty()) return Status::InvalidArgument("empty metadata key");
  if (static_cast<int>(values.size()) != num_items_) {
    return Status::InvalidArgument(
        StringPrintf("metadata %s has %zu values for %d items", key.c_str(),
                     values.size(), num_items_));
  }
  metadata_[key] = std::move(values);
  return Status::OK();
}

Result<std::span<const double>> ItemTable::Metadata(
    const std::string& key) const {
  const auto it = metadata_.find(key);
  if (it == metadata_.end()) {
    return Status::NotFound("no metadata column " + key);
  }
  return std::span<const double>(it->second);
}

Dataset::Dataset(ItemTable items) : items_(std::move(items)) {}

Dataset Dataset::FromMappedSequences(
    ItemTable items, std::vector<std::string> user_names,
    std::vector<std::span<const Action>> views,
    std::shared_ptr<const void> storage) {
  UPSKILL_CHECK(storage != nullptr);
  UPSKILL_CHECK(user_names.size() == views.size());
  Dataset dataset(std::move(items));
  dataset.user_names_ = std::move(user_names);
  dataset.views_ = std::move(views);
  dataset.storage_ = std::move(storage);
  for (const std::span<const Action>& view : dataset.views_) {
    dataset.num_actions_ += view.size();
  }
  return dataset;
}

UserId Dataset::AddUser(std::string name) {
  UPSKILL_CHECK(!mapped());
  sequences_.emplace_back();
  user_names_.push_back(std::move(name));
  return static_cast<UserId>(sequences_.size() - 1);
}

Status Dataset::AddAction(UserId user, int64_t time, ItemId item,
                          double rating) {
  if (mapped()) {
    return Status::FailedPrecondition(
        "mapped datasets are immutable; compact into a new store instead");
  }
  if (user < 0 || user >= num_users()) {
    return Status::OutOfRange(StringPrintf("user %d", user));
  }
  if (item < 0 || item >= items_.num_items()) {
    return Status::OutOfRange(StringPrintf("item %d", item));
  }
  std::vector<Action>& seq = sequences_[static_cast<size_t>(user)];
  if (!seq.empty() && seq.back().time > time) {
    return Status::FailedPrecondition(StringPrintf(
        "action at time %lld precedes the sequence tail at %lld; use "
        "SortSequences() for out-of-order loads",
        static_cast<long long>(time), static_cast<long long>(seq.back().time)));
  }
  seq.push_back(Action{time, item, rating});
  ++num_actions_;
  return Status::OK();
}

void Dataset::SortSequences() {
  UPSKILL_CHECK(!mapped());
  for (auto& seq : sequences_) {
    std::stable_sort(seq.begin(), seq.end(),
                     [](const Action& a, const Action& b) {
                       return a.time < b.time;
                     });
  }
}

int Dataset::CountUsedItems() const {
  std::vector<char> used(static_cast<size_t>(items_.num_items()), 0);
  ForEachAction([&used](UserId, const Action& a) {
    used[static_cast<size_t>(a.item)] = 1;
  });
  int count = 0;
  for (char u : used) count += u;
  return count;
}

int64_t Dataset::MinActionTime() const {
  bool any = false;
  int64_t min_time = 0;
  ForEachAction([&](UserId, const Action& a) {
    if (!any || a.time < min_time) {
      min_time = a.time;
      any = true;
    }
  });
  return min_time;
}

}  // namespace upskill
