#ifndef UPSKILL_DATA_DATASET_H_
#define UPSKILL_DATA_DATASET_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/schema.h"

namespace upskill {

using UserId = int32_t;
using ItemId = int32_t;

/// One action (t, u, i): user `u` (implicit in the owning sequence)
/// selected item `item` at time `time`. `rating` is the optional explicit
/// feedback used only by the rating-prediction task (NaN when absent).
struct Action {
  int64_t time = 0;
  ItemId item = -1;
  double rating = std::numeric_limits<double>::quiet_NaN();

  bool has_rating() const { return !std::isnan(rating); }
};

/// Column-major table of item feature values plus optional display names
/// and metadata columns. Metadata (e.g. a film's release time) is carried
/// alongside the items but is *not* part of the generative model.
class ItemTable {
 public:
  ItemTable() = default;
  explicit ItemTable(FeatureSchema schema);

  const FeatureSchema& schema() const { return schema_; }
  int num_items() const { return num_items_; }

  /// Appends an item. `values` has one entry per schema feature; a value of
  /// -1 in the ID-feature slot is replaced by the new item's index. Values
  /// are validated against the schema.
  Result<ItemId> AddItem(std::span<const double> values,
                         std::string name = "");

  /// Value of feature `f` for item `item`.
  double value(ItemId item, int f) const {
    return columns_[static_cast<size_t>(f)][static_cast<size_t>(item)];
  }

  /// Whole column for feature `f` (one entry per item).
  std::span<const double> column(int f) const {
    return columns_[static_cast<size_t>(f)];
  }

  /// Display name ("" when the item was added without one).
  const std::string& name(ItemId item) const {
    return names_[static_cast<size_t>(item)];
  }

  /// Attaches a named metadata column (one value per current item).
  Status SetMetadata(const std::string& key, std::vector<double> values);

  /// Reads a metadata column.
  Result<std::span<const double>> Metadata(const std::string& key) const;

  bool HasMetadata(const std::string& key) const {
    return metadata_.count(key) > 0;
  }
  const std::map<std::string, std::vector<double>>& metadata() const {
    return metadata_;
  }

 private:
  FeatureSchema schema_;
  int num_items_ = 0;
  std::vector<std::vector<double>> columns_;  // columns_[f][item]
  std::vector<std::string> names_;
  std::map<std::string, std::vector<double>> metadata_;
};

/// A set of per-user action sequences over a shared item table
/// (A = union of A_u, Section III). Sequences are kept in chronological
/// order; AddAction enforces non-decreasing times per user, and
/// SortSequences() re-establishes the invariant after bulk edits.
///
/// Two storage modes share one read API (`sequence()` returns a span
/// either way, which is what lets every consumer — trainer, exec shards,
/// eval, serve — run unchanged on either):
///  - owned (the default): sequences live in per-user vectors, built by
///    AddUser/AddAction;
///  - mapped: sequences are borrowed views into external storage (the
///    memory-mapped columnar store, src/store/), kept alive by a shared
///    handle. Mapped datasets are immutable — the mutating entry points
///    reject them — so a multi-GB store is readable without ever copying
///    an action into RAM.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(ItemTable items);

  /// Builds a mapped (immutable, zero-copy) dataset: `views[u]` is user
  /// u's chronological sequence, pointing into memory owned by `storage`
  /// (e.g. a store::MappedFile), which is kept alive for the dataset's
  /// lifetime — including through copies.
  static Dataset FromMappedSequences(
      ItemTable items, std::vector<std::string> user_names,
      std::vector<std::span<const Action>> views,
      std::shared_ptr<const void> storage);

  const ItemTable& items() const { return items_; }
  ItemTable& mutable_items() { return items_; }
  const FeatureSchema& schema() const { return items_.schema(); }

  /// True for datasets whose sequences borrow external (mapped) storage.
  bool mapped() const { return storage_ != nullptr; }

  /// Adds a user and returns their id. Rejects mapped datasets (checked).
  UserId AddUser(std::string name = "");

  /// Appends an action to `user`'s sequence. Fails when the item is out of
  /// range, the time would break chronological order, or the dataset is
  /// mapped.
  Status AddAction(UserId user, int64_t time, ItemId item,
                   double rating = std::numeric_limits<double>::quiet_NaN());

  /// Stable-sorts every sequence by time (for bulk loaders). No-op
  /// requirement: must not be called on mapped datasets (checked).
  void SortSequences();

  int num_users() const {
    return static_cast<int>(mapped() ? views_.size() : sequences_.size());
  }
  size_t num_actions() const { return num_actions_; }

  std::span<const Action> sequence(UserId user) const {
    return mapped() ? views_[static_cast<size_t>(user)]
                    : std::span<const Action>(
                          sequences_[static_cast<size_t>(user)]);
  }
  const std::string& user_name(UserId user) const {
    return user_names_[static_cast<size_t>(user)];
  }

  /// Number of distinct items appearing in at least one action.
  int CountUsedItems() const;

  /// Earliest action time across all users; 0 for an empty dataset.
  int64_t MinActionTime() const;

  /// Invokes `fn(user, action)` for every action in user order then
  /// sequence order.
  template <typename Fn>
  void ForEachAction(Fn&& fn) const {
    for (UserId u = 0; u < num_users(); ++u) {
      for (const Action& a : sequence(u)) {
        fn(u, a);
      }
    }
  }

 private:
  ItemTable items_;
  // Owned mode.
  std::vector<std::vector<Action>> sequences_;
  // Mapped mode: borrowed views plus the handle keeping them alive.
  // `storage_ != nullptr` is the mode discriminant; copies share it.
  std::vector<std::span<const Action>> views_;
  std::shared_ptr<const void> storage_;
  std::vector<std::string> user_names_;
  size_t num_actions_ = 0;
};

}  // namespace upskill

#endif  // UPSKILL_DATA_DATASET_H_
