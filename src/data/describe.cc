#include "data/describe.h"

#include <algorithm>
#include <unordered_map>

#include "common/stats.h"
#include "common/string_util.h"

namespace upskill {

namespace {

FeatureSummary SummarizeFeature(const Dataset& dataset, int feature,
                                bool weight_by_actions, int top_k) {
  const FeatureSpec& spec = dataset.schema().feature(feature);
  FeatureSummary summary;
  summary.name = spec.name;
  summary.type = spec.type;

  const auto visit = [&](auto&& fn) {
    if (weight_by_actions) {
      dataset.ForEachAction([&](UserId, const Action& a) {
        fn(dataset.items().value(a.item, feature));
      });
    } else {
      for (ItemId i = 0; i < dataset.items().num_items(); ++i) {
        fn(dataset.items().value(i, feature));
      }
    }
  };

  if (spec.type == FeatureType::kCategorical) {
    std::unordered_map<int, size_t> counts;
    visit([&counts](double v) { ++counts[static_cast<int>(v)]; });
    summary.distinct_values = counts.size();
    std::vector<std::pair<int, size_t>> sorted(counts.begin(), counts.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    const size_t take =
        std::min(sorted.size(), static_cast<size_t>(std::max(0, top_k)));
    summary.top_categories.assign(sorted.begin(),
                                  sorted.begin() + static_cast<long>(take));
    return summary;
  }

  RunningStats stats;
  visit([&stats](double v) { stats.Add(v); });
  summary.mean = stats.mean();
  summary.stddev = stats.stddev();
  summary.min = stats.min();
  summary.max = stats.max();
  return summary;
}

}  // namespace

DatasetDescription DescribeDataset(const Dataset& dataset,
                                   bool weight_by_actions, int top_k) {
  DatasetDescription description;
  description.stats = ComputeDatasetStats(dataset);
  for (int f = 0; f < dataset.schema().num_features(); ++f) {
    description.features.push_back(
        SummarizeFeature(dataset, f, weight_by_actions, top_k));
  }
  return description;
}

std::string FormatDescription(const DatasetDescription& description,
                              const FeatureSchema& schema) {
  std::string out;
  out += StringPrintf("users: %d, items: %d (%d selected), actions: %zu\n",
                      description.stats.num_users,
                      description.stats.num_table_items,
                      description.stats.num_used_items,
                      description.stats.num_actions);
  for (size_t f = 0; f < description.features.size(); ++f) {
    const FeatureSummary& summary = description.features[f];
    if (summary.type == FeatureType::kCategorical) {
      out += StringPrintf("  %-24s categorical, %zu distinct;",
                          summary.name.c_str(), summary.distinct_values);
      for (const auto& [value, count] : summary.top_categories) {
        const FeatureSpec& spec = schema.feature(static_cast<int>(f));
        const std::string label =
            static_cast<size_t>(value) < spec.labels.size()
                ? spec.labels[static_cast<size_t>(value)]
                : StringPrintf("%d", value);
        out += StringPrintf(" %s:%zu", label.c_str(), count);
      }
      out += "\n";
    } else {
      out += StringPrintf(
          "  %-24s %s, mean %.3f, sd %.3f, range [%g, %g]\n",
          summary.name.c_str(),
          summary.type == FeatureType::kCount ? "count" : "real",
          summary.mean, summary.stddev, summary.min, summary.max);
    }
  }
  return out;
}

}  // namespace upskill
