#ifndef UPSKILL_DATA_DESCRIBE_H_
#define UPSKILL_DATA_DESCRIBE_H_

#include <string>
#include <utility>
#include <vector>

#include "data/dataset.h"
#include "data/statistics.h"

namespace upskill {

/// Descriptive summary of one item feature.
struct FeatureSummary {
  std::string name;
  FeatureType type = FeatureType::kCategorical;
  /// Numeric features (count/real): moments over the described population.
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Categorical features: number of values actually observed, and the
  /// most frequent (value, count) pairs, descending.
  size_t distinct_values = 0;
  std::vector<std::pair<int, size_t>> top_categories;
};

/// Full dataset description: Table-I-style counts plus per-feature
/// summaries.
struct DatasetDescription {
  DatasetStats stats;
  std::vector<FeatureSummary> features;
};

/// Summarizes `dataset`. With `weight_by_actions` (default), each item
/// contributes once per selection — the population the skill model
/// actually fits; otherwise each item contributes once. `top_k` bounds
/// the per-feature category list.
DatasetDescription DescribeDataset(const Dataset& dataset,
                                   bool weight_by_actions = true,
                                   int top_k = 5);

/// Renders a description as a human-readable multi-line string (used by
/// the CLI's `stats` command).
std::string FormatDescription(const DatasetDescription& description,
                              const FeatureSchema& schema);

}  // namespace upskill

#endif  // UPSKILL_DATA_DESCRIBE_H_
