#ifndef UPSKILL_DATA_FEATURE_H_
#define UPSKILL_DATA_FEATURE_H_

#include <string>
#include <vector>

#include "dist/distribution.h"

namespace upskill {

/// Storage type of an item feature. Every feature value is carried as a
/// double: categorical values are vocabulary indices, counts are
/// non-negative integers, reals are arbitrary positive values.
enum class FeatureType {
  kCategorical,
  kCount,
  kReal,
};

/// Returns "categorical" / "count" / "real".
const char* FeatureTypeToString(FeatureType type);

/// Description of one multi-faceted item feature (Section III): its name,
/// storage type, the generative component that models it in the skill
/// model, and — for categorical features — the value vocabulary.
struct FeatureSpec {
  std::string name;
  FeatureType type = FeatureType::kCategorical;
  /// Which P_f(. | theta_f(s)) family models this feature.
  DistributionKind distribution = DistributionKind::kCategorical;
  /// Number of distinct values (categorical only).
  int cardinality = 0;
  /// Optional human-readable labels for categorical values; either empty
  /// or exactly `cardinality` entries.
  std::vector<std::string> labels;
};

}  // namespace upskill

#endif  // UPSKILL_DATA_FEATURE_H_
