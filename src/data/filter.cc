#include "data/filter.h"

#include <algorithm>
#include <unordered_set>

#include "common/string_util.h"

namespace upskill {

namespace {

// Rebuilds the schema with the ID feature resized to `new_num_items`.
Result<FeatureSchema> RebuildSchema(const FeatureSchema& schema,
                                    int new_num_items) {
  FeatureSchema out;
  for (int f = 0; f < schema.num_features(); ++f) {
    const FeatureSpec& spec = schema.feature(f);
    Result<int> added = [&]() -> Result<int> {
      // A filter can drop every item; keep the schema valid with a
      // cardinality-1 ID vocabulary (no item rows will reference it).
      if (f == schema.id_feature()) {
        return out.AddIdFeature(std::max(1, new_num_items));
      }
      switch (spec.type) {
        case FeatureType::kCategorical:
          return out.AddCategorical(spec.name, spec.cardinality, spec.labels);
        case FeatureType::kCount:
          return out.AddCount(spec.name);
        case FeatureType::kReal:
          return out.AddReal(spec.name, spec.distribution);
      }
      return Status::Internal("unhandled feature type");
    }();
    if (!added.ok()) return added.status();
  }
  return out;
}

// Distinct items in a sequence.
int CountUniqueItems(std::span<const Action> seq) {
  std::unordered_set<ItemId> items;
  for (const Action& a : seq) items.insert(a.item);
  return static_cast<int>(items.size());
}

}  // namespace

Result<FilterResult> CompactDataset(const Dataset& dataset,
                                    const std::vector<char>& keep_user,
                                    const std::vector<char>& keep_item,
                                    bool drop_empty_users) {
  if (static_cast<int>(keep_user.size()) != dataset.num_users()) {
    return Status::InvalidArgument("keep_user size mismatch");
  }
  if (static_cast<int>(keep_item.size()) != dataset.items().num_items()) {
    return Status::InvalidArgument("keep_item size mismatch");
  }

  const ItemTable& items = dataset.items();
  int new_num_items = 0;
  for (char k : keep_item) new_num_items += k;

  Result<FeatureSchema> schema = RebuildSchema(items.schema(), new_num_items);
  if (!schema.ok()) return schema.status();

  // Rebuild the item table in original order.
  ItemTable new_items(std::move(schema).value());
  std::vector<ItemId> item_map(static_cast<size_t>(items.num_items()), -1);
  const int num_features = items.schema().num_features();
  std::vector<double> row(static_cast<size_t>(num_features));
  for (ItemId i = 0; i < items.num_items(); ++i) {
    if (!keep_item[static_cast<size_t>(i)]) continue;
    for (int f = 0; f < num_features; ++f) {
      row[static_cast<size_t>(f)] =
          (f == items.schema().id_feature()) ? -1.0 : items.value(i, f);
    }
    Result<ItemId> added = new_items.AddItem(row, items.name(i));
    if (!added.ok()) return added.status();
    item_map[static_cast<size_t>(i)] = added.value();
  }
  // Carry metadata columns through the compaction.
  for (const auto& [key, column] : items.metadata()) {
    std::vector<double> compacted;
    compacted.reserve(static_cast<size_t>(new_num_items));
    for (ItemId i = 0; i < items.num_items(); ++i) {
      if (keep_item[static_cast<size_t>(i)]) {
        compacted.push_back(column[static_cast<size_t>(i)]);
      }
    }
    UPSKILL_RETURN_IF_ERROR(new_items.SetMetadata(key, std::move(compacted)));
  }

  Dataset out(std::move(new_items));
  std::vector<UserId> user_map(static_cast<size_t>(dataset.num_users()), -1);
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    if (!keep_user[static_cast<size_t>(u)]) continue;
    // Collect the surviving actions first so empty users can be skipped.
    std::vector<Action> kept;
    for (const Action& a : dataset.sequence(u)) {
      const ItemId mapped = item_map[static_cast<size_t>(a.item)];
      if (mapped < 0) continue;
      kept.push_back(Action{a.time, mapped, a.rating});
    }
    if (kept.empty() && drop_empty_users) continue;
    const UserId new_user = out.AddUser(dataset.user_name(u));
    user_map[static_cast<size_t>(u)] = new_user;
    for (const Action& a : kept) {
      UPSKILL_RETURN_IF_ERROR(out.AddAction(new_user, a.time, a.item, a.rating));
    }
  }

  FilterResult result;
  result.dataset = std::move(out);
  result.user_map = std::move(user_map);
  result.item_map = std::move(item_map);
  return result;
}

Result<FilterResult> FilterByActivity(const Dataset& dataset,
                                      int min_unique_items_per_user,
                                      int min_unique_users_per_item,
                                      int rounds) {
  if (rounds < 1) return Status::InvalidArgument("rounds must be >= 1");

  // Composition of per-round maps, so the final maps refer to the input.
  FilterResult current;
  const Dataset* view = &dataset;
  std::vector<UserId> total_user_map(static_cast<size_t>(dataset.num_users()));
  std::vector<ItemId> total_item_map(
      static_cast<size_t>(dataset.items().num_items()));
  for (size_t i = 0; i < total_user_map.size(); ++i) {
    total_user_map[i] = static_cast<UserId>(i);
  }
  for (size_t i = 0; i < total_item_map.size(); ++i) {
    total_item_map[i] = static_cast<ItemId>(i);
  }

  for (int round = 0; round < rounds; ++round) {
    // Pass 1: users with enough unique items.
    std::vector<char> keep_user(static_cast<size_t>(view->num_users()), 1);
    for (UserId u = 0; u < view->num_users(); ++u) {
      if (CountUniqueItems(view->sequence(u)) < min_unique_items_per_user) {
        keep_user[static_cast<size_t>(u)] = 0;
      }
    }
    // Pass 2: items with enough unique users, counted over kept users.
    std::vector<std::unordered_set<UserId>> users_per_item(
        static_cast<size_t>(view->items().num_items()));
    for (UserId u = 0; u < view->num_users(); ++u) {
      if (!keep_user[static_cast<size_t>(u)]) continue;
      for (const Action& a : view->sequence(u)) {
        users_per_item[static_cast<size_t>(a.item)].insert(u);
      }
    }
    std::vector<char> keep_item(static_cast<size_t>(view->items().num_items()),
                                1);
    bool changed = false;
    for (size_t i = 0; i < keep_item.size(); ++i) {
      if (static_cast<int>(users_per_item[i].size()) <
          min_unique_users_per_item) {
        keep_item[i] = 0;
      }
    }
    for (char k : keep_user) changed = changed || !k;
    for (char k : keep_item) changed = changed || !k;

    Result<FilterResult> pass =
        CompactDataset(*view, keep_user, keep_item, /*drop_empty_users=*/true);
    if (!pass.ok()) return pass.status();

    // Compose maps.
    for (auto& mapped : total_user_map) {
      if (mapped >= 0) mapped = pass.value().user_map[static_cast<size_t>(mapped)];
    }
    for (auto& mapped : total_item_map) {
      if (mapped >= 0) mapped = pass.value().item_map[static_cast<size_t>(mapped)];
    }
    current = std::move(pass).value();
    view = &current.dataset;
    if (!changed) break;  // fixpoint reached
  }

  FilterResult result;
  result.dataset = std::move(current.dataset);
  result.user_map = std::move(total_user_map);
  result.item_map = std::move(total_item_map);
  return result;
}

Result<FilterResult> FilterOldItems(const Dataset& dataset,
                                    const std::string& release_time_key) {
  Result<std::span<const double>> release =
      dataset.items().Metadata(release_time_key);
  if (!release.ok()) return release.status();
  const int64_t cutoff = dataset.MinActionTime();
  std::vector<char> keep_item(
      static_cast<size_t>(dataset.items().num_items()), 1);
  for (ItemId i = 0; i < dataset.items().num_items(); ++i) {
    if (release.value()[static_cast<size_t>(i)] >
        static_cast<double>(cutoff)) {
      keep_item[static_cast<size_t>(i)] = 0;
    }
  }
  const std::vector<char> keep_user(static_cast<size_t>(dataset.num_users()),
                                    1);
  return CompactDataset(dataset, keep_user, keep_item,
                        /*drop_empty_users=*/true);
}

}  // namespace upskill
