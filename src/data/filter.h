#ifndef UPSKILL_DATA_FILTER_H_
#define UPSKILL_DATA_FILTER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace upskill {

/// Output of a filtering pass: the compacted dataset plus the old-to-new id
/// mappings (-1 marks a dropped user/item). Item compaction rebuilds the
/// ID feature's cardinality so trained models stay consistent.
struct FilterResult {
  Dataset dataset;
  std::vector<UserId> user_map;
  std::vector<ItemId> item_map;
};

/// The paper's activity filter (Section VI-B): drop users whose sequences
/// contain fewer than `min_unique_items_per_user` distinct items, then drop
/// items selected by fewer than `min_unique_users_per_item` distinct users
/// (either threshold can be 0 to disable that half). `rounds` > 1 repeats
/// the two passes, since removing items can push users back under the
/// threshold.
Result<FilterResult> FilterByActivity(const Dataset& dataset,
                                      int min_unique_items_per_user,
                                      int min_unique_users_per_item,
                                      int rounds = 1);

/// The film-domain lastness preprocessing (Section VI-C): keep only items
/// whose `release_time_key` metadata is <= the earliest action time in the
/// dataset, so that every remaining item could have been selected at any
/// time. Users left with empty sequences are dropped.
Result<FilterResult> FilterOldItems(const Dataset& dataset,
                                    const std::string& release_time_key);

/// Rebuilds a dataset keeping only flagged users/items (building block for
/// the filters above; exposed for custom pipelines). `keep_user` /
/// `keep_item` must match the dataset's user/item counts. Actions referring
/// to dropped items are removed; kept users may end up with empty
/// sequences unless `drop_empty_users` is set.
Result<FilterResult> CompactDataset(const Dataset& dataset,
                                    const std::vector<char>& keep_user,
                                    const std::vector<char>& keep_item,
                                    bool drop_empty_users = true);

}  // namespace upskill

#endif  // UPSKILL_DATA_FILTER_H_
