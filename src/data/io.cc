#include "data/io.h"

#include <cmath>
#include <filesystem>

#include "common/csv.h"
#include "common/string_util.h"

namespace upskill {

namespace {

std::string FormatValue(double v) { return StringPrintf("%.17g", v); }

Status SaveSchema(const FeatureSchema& schema, const std::string& path) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"name", "type", "distribution", "cardinality", "is_id",
                  "labels"});
  for (int f = 0; f < schema.num_features(); ++f) {
    const FeatureSpec& spec = schema.feature(f);
    std::string labels;
    for (size_t i = 0; i < spec.labels.size(); ++i) {
      if (i > 0) labels += '|';
      labels += spec.labels[i];
    }
    rows.push_back({spec.name, FeatureTypeToString(spec.type),
                    DistributionKindToString(spec.distribution),
                    StringPrintf("%d", spec.cardinality),
                    f == schema.id_feature() ? "1" : "0", labels});
  }
  return WriteCsvFile(path, rows);
}

// Every loader below streams its file through a CsvScanner — one bounded
// line buffer, no whole-file materialization — so loading scales to event
// logs larger than RAM, and every parse error cites file:line (byte N).

// Reads and discards the header row; a headerless file is Corruption.
Result<bool> SkipHeader(CsvScanner* scanner, std::vector<std::string>* row,
                        const char* what) {
  Result<bool> header = scanner->Next(row);
  if (!header.ok()) return header.status();
  if (!header.value()) {
    return Status::Corruption(scanner->path() + " is empty; expected a " +
                              std::string(what) + " header");
  }
  return true;
}

Result<FeatureSchema> LoadSchema(const std::string& path) {
  Result<CsvScanner> opened = CsvScanner::Open(path);
  if (!opened.ok()) return opened.status();
  CsvScanner scanner = std::move(opened).value();
  std::vector<std::string> row;
  UPSKILL_RETURN_IF_ERROR(SkipHeader(&scanner, &row, "schema").status());
  FeatureSchema schema;
  while (true) {
    Result<bool> next = scanner.Next(&row);
    if (!next.ok()) return next.status();
    if (!next.value()) break;
    if (row.size() != 6) {
      return scanner.CorruptionAt(
          StringPrintf("schema row has %zu fields, want 6", row.size()));
    }
    const std::string& name = row[0];
    const std::string& type = row[1];
    Result<DistributionKind> dist = DistributionKindFromString(row[2]);
    if (!dist.ok()) return scanner.CorruptionAt(dist.status().message());
    Result<long long> cardinality = ParseInt(row[3]);
    if (!cardinality.ok()) {
      return scanner.CorruptionAt("bad cardinality \"" + row[3] + "\"");
    }
    const bool is_id = row[4] == "1";
    Result<int> added = [&]() -> Result<int> {
      if (is_id) return schema.AddIdFeature(static_cast<int>(cardinality.value()));
      if (type == "categorical") {
        std::vector<std::string> labels;
        if (!row[5].empty()) labels = Split(row[5], '|');
        return schema.AddCategorical(name,
                                     static_cast<int>(cardinality.value()),
                                     std::move(labels));
      }
      if (type == "count") return schema.AddCount(name);
      if (type == "real") return schema.AddReal(name, dist.value());
      return Status::Corruption("unknown feature type " + type);
    }();
    if (!added.ok()) return scanner.CorruptionAt(added.status().message());
  }
  return schema;
}

Status SaveItems(const ItemTable& items, const std::string& path) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header = {"name"};
  for (int f = 0; f < items.schema().num_features(); ++f) {
    header.push_back(items.schema().feature(f).name);
  }
  for (const auto& [key, _] : items.metadata()) {
    header.push_back("meta:" + key);
  }
  rows.push_back(std::move(header));
  for (ItemId i = 0; i < items.num_items(); ++i) {
    std::vector<std::string> row = {items.name(i)};
    for (int f = 0; f < items.schema().num_features(); ++f) {
      row.push_back(FormatValue(items.value(i, f)));
    }
    for (const auto& [_, column] : items.metadata()) {
      row.push_back(FormatValue(column[static_cast<size_t>(i)]));
    }
    rows.push_back(std::move(row));
  }
  return WriteCsvFile(path, rows);
}

Result<ItemTable> LoadItems(const FeatureSchema& schema,
                            const std::string& path) {
  Result<CsvScanner> opened = CsvScanner::Open(path);
  if (!opened.ok()) return opened.status();
  CsvScanner scanner = std::move(opened).value();
  std::vector<std::string> header;
  UPSKILL_RETURN_IF_ERROR(SkipHeader(&scanner, &header, "items").status());
  const int num_features = schema.num_features();
  const size_t base_columns = 1 + static_cast<size_t>(num_features);
  std::vector<std::string> metadata_keys;
  for (size_t c = base_columns; c < header.size(); ++c) {
    if (!StartsWith(header[c], "meta:")) {
      return scanner.CorruptionAt("unexpected items column " + header[c]);
    }
    metadata_keys.push_back(header[c].substr(5));
  }

  ItemTable items(schema);
  std::vector<std::vector<double>> metadata(metadata_keys.size());
  std::vector<double> values(static_cast<size_t>(num_features));
  std::vector<std::string> row;
  while (true) {
    Result<bool> next = scanner.Next(&row);
    if (!next.ok()) return next.status();
    if (!next.value()) break;
    if (row.size() != base_columns + metadata_keys.size()) {
      return scanner.CorruptionAt(
          StringPrintf("items row has %zu fields, want %zu", row.size(),
                       base_columns + metadata_keys.size()));
    }
    for (int f = 0; f < num_features; ++f) {
      Result<double> value = ParseDouble(row[1 + static_cast<size_t>(f)]);
      if (!value.ok()) {
        return scanner.CorruptionAt(
            "bad value \"" + row[1 + static_cast<size_t>(f)] + "\" for " +
            schema.feature(f).name);
      }
      values[static_cast<size_t>(f)] = value.value();
    }
    Result<ItemId> added = items.AddItem(values, row[0]);
    if (!added.ok()) return scanner.CorruptionAt(added.status().message());
    for (size_t m = 0; m < metadata_keys.size(); ++m) {
      Result<double> value = ParseDouble(row[base_columns + m]);
      if (!value.ok()) {
        return scanner.CorruptionAt("bad metadata value \"" +
                                    row[base_columns + m] + "\"");
      }
      metadata[m].push_back(value.value());
    }
  }
  for (size_t m = 0; m < metadata_keys.size(); ++m) {
    UPSKILL_RETURN_IF_ERROR(
        items.SetMetadata(metadata_keys[m], std::move(metadata[m])));
  }
  return items;
}

}  // namespace

Status SaveDataset(const Dataset& dataset, const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) return Status::IoError("cannot create " + directory);

  UPSKILL_RETURN_IF_ERROR(
      SaveSchema(dataset.schema(), directory + "/schema.csv"));
  UPSKILL_RETURN_IF_ERROR(SaveItems(dataset.items(), directory + "/items.csv"));

  std::vector<std::vector<std::string>> users;
  users.push_back({"user", "name"});
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    users.push_back({StringPrintf("%d", u), dataset.user_name(u)});
  }
  UPSKILL_RETURN_IF_ERROR(WriteCsvFile(directory + "/users.csv", users));

  std::vector<std::vector<std::string>> actions;
  actions.push_back({"user", "time", "item", "rating"});
  dataset.ForEachAction([&actions](UserId u, const Action& a) {
    actions.push_back({StringPrintf("%d", u),
                       StringPrintf("%lld", static_cast<long long>(a.time)),
                       StringPrintf("%d", a.item),
                       a.has_rating() ? StringPrintf("%.17g", a.rating) : ""});
  });
  return WriteCsvFile(directory + "/actions.csv", actions);
}

Result<Dataset> LoadDataset(const std::string& directory) {
  Result<FeatureSchema> schema = LoadSchema(directory + "/schema.csv");
  if (!schema.ok()) return schema.status();
  Result<ItemTable> items =
      LoadItems(schema.value(), directory + "/items.csv");
  if (!items.ok()) return items.status();
  Dataset dataset(std::move(items).value());

  {
    Result<CsvScanner> opened = CsvScanner::Open(directory + "/users.csv");
    if (!opened.ok()) return opened.status();
    CsvScanner scanner = std::move(opened).value();
    std::vector<std::string> row;
    UPSKILL_RETURN_IF_ERROR(SkipHeader(&scanner, &row, "users").status());
    while (true) {
      Result<bool> next = scanner.Next(&row);
      if (!next.ok()) return next.status();
      if (!next.value()) break;
      if (row.size() != 2) {
        return scanner.CorruptionAt(
            StringPrintf("users row has %zu fields, want 2", row.size()));
      }
      dataset.AddUser(row[1]);
    }
  }

  // The actions file is the one that grows without bound; it streams
  // through the same bounded buffer, one action appended per row.
  Result<CsvScanner> opened = CsvScanner::Open(directory + "/actions.csv");
  if (!opened.ok()) return opened.status();
  CsvScanner scanner = std::move(opened).value();
  std::vector<std::string> row;
  UPSKILL_RETURN_IF_ERROR(SkipHeader(&scanner, &row, "actions").status());
  while (true) {
    Result<bool> next = scanner.Next(&row);
    if (!next.ok()) return next.status();
    if (!next.value()) break;
    if (row.size() != 4) {
      return scanner.CorruptionAt(
          StringPrintf("actions row has %zu fields, want 4", row.size()));
    }
    Result<long long> user = ParseInt(row[0]);
    Result<long long> time = ParseInt(row[1]);
    Result<long long> item = ParseInt(row[2]);
    if (!user.ok()) {
      return scanner.CorruptionAt("bad user \"" + row[0] + "\"");
    }
    if (!time.ok()) {
      return scanner.CorruptionAt("bad time \"" + row[1] + "\"");
    }
    if (!item.ok()) {
      return scanner.CorruptionAt("bad item \"" + row[2] + "\"");
    }
    double rating = std::numeric_limits<double>::quiet_NaN();
    if (!row[3].empty()) {
      Result<double> parsed = ParseDouble(row[3]);
      if (!parsed.ok()) {
        return scanner.CorruptionAt("bad rating \"" + row[3] + "\"");
      }
      rating = parsed.value();
    }
    const Status added = dataset.AddAction(
        static_cast<UserId>(user.value()), time.value(),
        static_cast<ItemId>(item.value()), rating);
    if (!added.ok()) return scanner.CorruptionAt(added.message());
  }
  return dataset;
}

}  // namespace upskill
