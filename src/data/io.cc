#include "data/io.h"

#include <cmath>
#include <filesystem>

#include "common/csv.h"
#include "common/string_util.h"

namespace upskill {

namespace {

std::string FormatValue(double v) { return StringPrintf("%.17g", v); }

Status SaveSchema(const FeatureSchema& schema, const std::string& path) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"name", "type", "distribution", "cardinality", "is_id",
                  "labels"});
  for (int f = 0; f < schema.num_features(); ++f) {
    const FeatureSpec& spec = schema.feature(f);
    std::string labels;
    for (size_t i = 0; i < spec.labels.size(); ++i) {
      if (i > 0) labels += '|';
      labels += spec.labels[i];
    }
    rows.push_back({spec.name, FeatureTypeToString(spec.type),
                    DistributionKindToString(spec.distribution),
                    StringPrintf("%d", spec.cardinality),
                    f == schema.id_feature() ? "1" : "0", labels});
  }
  return WriteCsvFile(path, rows);
}

Result<FeatureSchema> LoadSchema(const std::string& path) {
  Result<std::vector<std::vector<std::string>>> rows = ReadCsvFile(path);
  if (!rows.ok()) return rows.status();
  FeatureSchema schema;
  for (size_t r = 1; r < rows.value().size(); ++r) {
    const std::vector<std::string>& row = rows.value()[r];
    if (row.size() != 6) {
      return Status::Corruption(
          StringPrintf("schema row %zu has %zu fields", r, row.size()));
    }
    const std::string& name = row[0];
    const std::string& type = row[1];
    Result<DistributionKind> dist = DistributionKindFromString(row[2]);
    if (!dist.ok()) return dist.status();
    Result<long long> cardinality = ParseInt(row[3]);
    if (!cardinality.ok()) return cardinality.status();
    const bool is_id = row[4] == "1";
    Result<int> added = [&]() -> Result<int> {
      if (is_id) return schema.AddIdFeature(static_cast<int>(cardinality.value()));
      if (type == "categorical") {
        std::vector<std::string> labels;
        if (!row[5].empty()) labels = Split(row[5], '|');
        return schema.AddCategorical(name,
                                     static_cast<int>(cardinality.value()),
                                     std::move(labels));
      }
      if (type == "count") return schema.AddCount(name);
      if (type == "real") return schema.AddReal(name, dist.value());
      return Status::Corruption("unknown feature type " + type);
    }();
    if (!added.ok()) return added.status();
  }
  return schema;
}

Status SaveItems(const ItemTable& items, const std::string& path) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header = {"name"};
  for (int f = 0; f < items.schema().num_features(); ++f) {
    header.push_back(items.schema().feature(f).name);
  }
  for (const auto& [key, _] : items.metadata()) {
    header.push_back("meta:" + key);
  }
  rows.push_back(std::move(header));
  for (ItemId i = 0; i < items.num_items(); ++i) {
    std::vector<std::string> row = {items.name(i)};
    for (int f = 0; f < items.schema().num_features(); ++f) {
      row.push_back(FormatValue(items.value(i, f)));
    }
    for (const auto& [_, column] : items.metadata()) {
      row.push_back(FormatValue(column[static_cast<size_t>(i)]));
    }
    rows.push_back(std::move(row));
  }
  return WriteCsvFile(path, rows);
}

Result<ItemTable> LoadItems(const FeatureSchema& schema,
                            const std::string& path) {
  Result<std::vector<std::vector<std::string>>> rows = ReadCsvFile(path);
  if (!rows.ok()) return rows.status();
  if (rows.value().empty()) return Status::Corruption("items.csv is empty");
  const std::vector<std::string>& header = rows.value()[0];
  const int num_features = schema.num_features();
  const size_t base_columns = 1 + static_cast<size_t>(num_features);
  std::vector<std::string> metadata_keys;
  for (size_t c = base_columns; c < header.size(); ++c) {
    if (!StartsWith(header[c], "meta:")) {
      return Status::Corruption("unexpected items column " + header[c]);
    }
    metadata_keys.push_back(header[c].substr(5));
  }

  ItemTable items(schema);
  std::vector<std::vector<double>> metadata(metadata_keys.size());
  std::vector<double> values(static_cast<size_t>(num_features));
  for (size_t r = 1; r < rows.value().size(); ++r) {
    const std::vector<std::string>& row = rows.value()[r];
    if (row.size() != base_columns + metadata_keys.size()) {
      return Status::Corruption(
          StringPrintf("items row %zu has %zu fields", r, row.size()));
    }
    for (int f = 0; f < num_features; ++f) {
      Result<double> value = ParseDouble(row[1 + static_cast<size_t>(f)]);
      if (!value.ok()) return value.status();
      values[static_cast<size_t>(f)] = value.value();
    }
    Result<ItemId> added = items.AddItem(values, row[0]);
    if (!added.ok()) return added.status();
    for (size_t m = 0; m < metadata_keys.size(); ++m) {
      Result<double> value = ParseDouble(row[base_columns + m]);
      if (!value.ok()) return value.status();
      metadata[m].push_back(value.value());
    }
  }
  for (size_t m = 0; m < metadata_keys.size(); ++m) {
    UPSKILL_RETURN_IF_ERROR(
        items.SetMetadata(metadata_keys[m], std::move(metadata[m])));
  }
  return items;
}

}  // namespace

Status SaveDataset(const Dataset& dataset, const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) return Status::IoError("cannot create " + directory);

  UPSKILL_RETURN_IF_ERROR(
      SaveSchema(dataset.schema(), directory + "/schema.csv"));
  UPSKILL_RETURN_IF_ERROR(SaveItems(dataset.items(), directory + "/items.csv"));

  std::vector<std::vector<std::string>> users;
  users.push_back({"user", "name"});
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    users.push_back({StringPrintf("%d", u), dataset.user_name(u)});
  }
  UPSKILL_RETURN_IF_ERROR(WriteCsvFile(directory + "/users.csv", users));

  std::vector<std::vector<std::string>> actions;
  actions.push_back({"user", "time", "item", "rating"});
  dataset.ForEachAction([&actions](UserId u, const Action& a) {
    actions.push_back({StringPrintf("%d", u),
                       StringPrintf("%lld", static_cast<long long>(a.time)),
                       StringPrintf("%d", a.item),
                       a.has_rating() ? StringPrintf("%.17g", a.rating) : ""});
  });
  return WriteCsvFile(directory + "/actions.csv", actions);
}

Result<Dataset> LoadDataset(const std::string& directory) {
  Result<FeatureSchema> schema = LoadSchema(directory + "/schema.csv");
  if (!schema.ok()) return schema.status();
  Result<ItemTable> items =
      LoadItems(schema.value(), directory + "/items.csv");
  if (!items.ok()) return items.status();
  Dataset dataset(std::move(items).value());

  Result<std::vector<std::vector<std::string>>> users =
      ReadCsvFile(directory + "/users.csv");
  if (!users.ok()) return users.status();
  for (size_t r = 1; r < users.value().size(); ++r) {
    const std::vector<std::string>& row = users.value()[r];
    if (row.size() != 2) return Status::Corruption("bad users row");
    dataset.AddUser(row[1]);
  }

  Result<std::vector<std::vector<std::string>>> actions =
      ReadCsvFile(directory + "/actions.csv");
  if (!actions.ok()) return actions.status();
  for (size_t r = 1; r < actions.value().size(); ++r) {
    const std::vector<std::string>& row = actions.value()[r];
    if (row.size() != 4) return Status::Corruption("bad actions row");
    Result<long long> user = ParseInt(row[0]);
    Result<long long> time = ParseInt(row[1]);
    Result<long long> item = ParseInt(row[2]);
    if (!user.ok()) return user.status();
    if (!time.ok()) return time.status();
    if (!item.ok()) return item.status();
    double rating = std::numeric_limits<double>::quiet_NaN();
    if (!row[3].empty()) {
      Result<double> parsed = ParseDouble(row[3]);
      if (!parsed.ok()) return parsed.status();
      rating = parsed.value();
    }
    UPSKILL_RETURN_IF_ERROR(dataset.AddAction(
        static_cast<UserId>(user.value()), time.value(),
        static_cast<ItemId>(item.value()), rating));
  }
  return dataset;
}

}  // namespace upskill
