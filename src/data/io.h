#ifndef UPSKILL_DATA_IO_H_
#define UPSKILL_DATA_IO_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace upskill {

/// Persists `dataset` under `directory` (created if missing) as four CSV
/// files: schema.csv, items.csv (features + "meta:" columns), users.csv,
/// actions.csv. Categorical label text must not contain '|' (labels are
/// stored pipe-joined).
Status SaveDataset(const Dataset& dataset, const std::string& directory);

/// Loads a dataset previously written by SaveDataset.
Result<Dataset> LoadDataset(const std::string& directory);

}  // namespace upskill

#endif  // UPSKILL_DATA_IO_H_
