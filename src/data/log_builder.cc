#include "data/log_builder.h"

#include <algorithm>

#include "common/csv.h"
#include "common/string_util.h"

namespace upskill {

Status ActionLogBuilder::CheckDeclarable(const std::string& name) const {
  if (items_started_) {
    return Status::FailedPrecondition(
        "declare all features before adding items");
  }
  if (name.empty()) return Status::InvalidArgument("empty feature name");
  for (const FeatureSpec& spec : declared_) {
    if (spec.name == name) {
      return Status::InvalidArgument("duplicate feature name: " + name);
    }
  }
  if (name == kItemIdFeatureName) {
    return Status::InvalidArgument(
        "the item-ID feature is added automatically");
  }
  return Status::OK();
}

Status ActionLogBuilder::DeclareCategorical(std::string name, int cardinality,
                                            std::vector<std::string> labels) {
  UPSKILL_RETURN_IF_ERROR(CheckDeclarable(name));
  if (cardinality <= 0) {
    return Status::InvalidArgument("cardinality must be positive");
  }
  if (!labels.empty() && static_cast<int>(labels.size()) != cardinality) {
    return Status::InvalidArgument("label count does not match cardinality");
  }
  FeatureSpec spec;
  spec.name = std::move(name);
  spec.type = FeatureType::kCategorical;
  spec.distribution = DistributionKind::kCategorical;
  spec.cardinality = cardinality;
  spec.labels = std::move(labels);
  declared_.push_back(std::move(spec));
  return Status::OK();
}

Status ActionLogBuilder::DeclareCount(std::string name) {
  UPSKILL_RETURN_IF_ERROR(CheckDeclarable(name));
  FeatureSpec spec;
  spec.name = std::move(name);
  spec.type = FeatureType::kCount;
  spec.distribution = DistributionKind::kPoisson;
  declared_.push_back(std::move(spec));
  return Status::OK();
}

Status ActionLogBuilder::DeclareReal(std::string name,
                                     DistributionKind kind) {
  UPSKILL_RETURN_IF_ERROR(CheckDeclarable(name));
  if (kind != DistributionKind::kGamma &&
      kind != DistributionKind::kLogNormal) {
    return Status::InvalidArgument(
        "real features use a gamma or log-normal component");
  }
  FeatureSpec spec;
  spec.name = std::move(name);
  spec.type = FeatureType::kReal;
  spec.distribution = kind;
  declared_.push_back(std::move(spec));
  return Status::OK();
}

Result<ItemId> ActionLogBuilder::AddItem(const std::string& key,
                                         std::span<const double> values) {
  if (key.empty()) return Status::InvalidArgument("empty item key");
  if (values.size() != declared_.size()) {
    return Status::InvalidArgument(
        StringPrintf("item %s: %zu values for %zu declared features",
                     key.c_str(), values.size(), declared_.size()));
  }
  if (item_ids_.count(key) > 0) {
    return Status::InvalidArgument("item already registered: " + key);
  }
  items_started_ = true;
  const ItemId id = static_cast<ItemId>(item_rows_.size());
  item_ids_.emplace(key, id);
  item_rows_.emplace_back(values.begin(), values.end());
  item_keys_.push_back(key);
  return id;
}

Status ActionLogBuilder::AddEvent(const std::string& user_key, int64_t time,
                                  const std::string& item_key,
                                  double rating) {
  if (user_key.empty()) return Status::InvalidArgument("empty user key");
  const auto item_it = item_ids_.find(item_key);
  ItemId item;
  if (item_it != item_ids_.end()) {
    item = item_it->second;
  } else if (declared_.empty()) {
    // Pure ID log: auto-register.
    Result<ItemId> added = AddItem(item_key, {});
    if (!added.ok()) return added.status();
    item = added.value();
  } else {
    return Status::NotFound("unregistered item: " + item_key);
  }

  UserId user;
  const auto user_it = user_ids_.find(user_key);
  if (user_it != user_ids_.end()) {
    user = user_it->second;
  } else {
    user = static_cast<UserId>(user_events_.size());
    user_ids_.emplace(user_key, user);
    user_keys_.push_back(user_key);
    user_events_.emplace_back();
  }
  user_events_[static_cast<size_t>(user)].push_back(
      Event{time, item, rating, num_events_});
  ++num_events_;
  return Status::OK();
}

Result<Dataset> ActionLogBuilder::Build() && {
  if (num_events_ == 0) {
    return Status::FailedPrecondition("no events recorded");
  }
  FeatureSchema schema;
  Result<int> id = schema.AddIdFeature(num_items());
  if (!id.ok()) return id.status();
  for (const FeatureSpec& spec : declared_) {
    Result<int> added = [&]() -> Result<int> {
      switch (spec.type) {
        case FeatureType::kCategorical:
          return schema.AddCategorical(spec.name, spec.cardinality,
                                       spec.labels);
        case FeatureType::kCount:
          return schema.AddCount(spec.name);
        case FeatureType::kReal:
          return schema.AddReal(spec.name, spec.distribution);
      }
      return Status::Internal("unhandled feature type");
    }();
    if (!added.ok()) return added.status();
  }

  ItemTable items(std::move(schema));
  std::vector<double> row(declared_.size() + 1);
  for (size_t i = 0; i < item_rows_.size(); ++i) {
    row[0] = -1.0;  // auto-fill the ID slot
    std::copy(item_rows_[i].begin(), item_rows_[i].end(), row.begin() + 1);
    Result<ItemId> added = items.AddItem(row, item_keys_[i]);
    if (!added.ok()) return added.status();
  }

  Dataset dataset(std::move(items));
  for (size_t u = 0; u < user_events_.size(); ++u) {
    dataset.AddUser(user_keys_[u]);
    std::vector<Event>& events = user_events_[u];
    std::sort(events.begin(), events.end(),
              [](const Event& a, const Event& b) {
                if (a.time != b.time) return a.time < b.time;
                return a.arrival < b.arrival;
              });
    for (const Event& event : events) {
      UPSKILL_RETURN_IF_ERROR(dataset.AddAction(static_cast<UserId>(u),
                                                event.time, event.item,
                                                event.rating));
    }
  }
  return dataset;
}

Result<Dataset> LoadActionLogCsv(const std::string& path) {
  Result<std::vector<std::vector<std::string>>> rows = ReadCsvFile(path);
  if (!rows.ok()) return rows.status();
  ActionLogBuilder builder;
  for (size_t r = 0; r < rows.value().size(); ++r) {
    const std::vector<std::string>& row = rows.value()[r];
    if (row.size() != 3 && row.size() != 4) {
      return Status::Corruption(
          StringPrintf("row %zu: expected user,time,item[,rating]", r));
    }
    const Result<long long> time = ParseInt(row[1]);
    if (!time.ok()) {
      // Tolerate a single header row.
      if (r == 0) continue;
      return time.status();
    }
    double rating = std::numeric_limits<double>::quiet_NaN();
    if (row.size() == 4 && !row[3].empty()) {
      Result<double> parsed = ParseDouble(row[3]);
      if (!parsed.ok()) return parsed.status();
      rating = parsed.value();
    }
    UPSKILL_RETURN_IF_ERROR(
        builder.AddEvent(row[0], time.value(), row[2], rating));
  }
  return std::move(builder).Build();
}

}  // namespace upskill
