#ifndef UPSKILL_DATA_LOG_BUILDER_H_
#define UPSKILL_DATA_LOG_BUILDER_H_

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace upskill {

/// Builds a Dataset from raw, possibly unordered event logs keyed by
/// string identifiers — the shape real applications have (web logs,
/// review dumps), as opposed to the library's integer-indexed CSV
/// format. Usage:
///
///   ActionLogBuilder builder;
///   builder.DeclareCount("steps");                 // item features
///   builder.DeclareReal("abv");
///   builder.AddItem("recipe-42", {4.0, 5.5});      // register items
///   builder.AddEvent("alice", 17023, "recipe-42"); // then events
///   Result<Dataset> dataset = std::move(builder).Build();
///
/// The produced schema has the item-ID feature first, then the declared
/// features in declaration order. Users and items get dense ids in
/// first-seen order; events are sorted chronologically per user (stable
/// for ties).
class ActionLogBuilder {
 public:
  ActionLogBuilder() = default;

  /// Feature declarations; must all happen before the first AddItem.
  Status DeclareCategorical(std::string name, int cardinality,
                            std::vector<std::string> labels = {});
  Status DeclareCount(std::string name);
  Status DeclareReal(std::string name,
                     DistributionKind kind = DistributionKind::kGamma);

  /// Registers an item under `key` with one value per declared feature.
  /// Re-registering a key fails.
  Result<ItemId> AddItem(const std::string& key,
                         std::span<const double> values);

  /// Records one event. The item must have been registered, except when
  /// no features were declared (pure ID logs) — then unseen items are
  /// auto-registered.
  Status AddEvent(const std::string& user_key, int64_t time,
                  const std::string& item_key,
                  double rating = std::numeric_limits<double>::quiet_NaN());

  size_t num_events() const { return num_events_; }
  int num_items() const { return static_cast<int>(item_rows_.size()); }
  int num_users() const { return static_cast<int>(user_events_.size()); }

  /// Consumes the builder and produces the dataset. Fails when no events
  /// were recorded.
  Result<Dataset> Build() &&;

 private:
  struct Event {
    int64_t time;
    ItemId item;
    double rating;
    size_t arrival;  // stable tiebreaker
  };

  bool items_started_ = false;
  std::vector<FeatureSpec> declared_;
  std::unordered_map<std::string, ItemId> item_ids_;
  std::vector<std::vector<double>> item_rows_;  // declared features only
  std::vector<std::string> item_keys_;
  std::unordered_map<std::string, UserId> user_ids_;
  std::vector<std::string> user_keys_;
  std::vector<std::vector<Event>> user_events_;
  size_t num_events_ = 0;

  Status CheckDeclarable(const std::string& name) const;
};

/// Convenience loader for a bare "user,time,item[,rating]" CSV event log
/// (header optional): items carry no features beyond their ID.
Result<Dataset> LoadActionLogCsv(const std::string& path);

}  // namespace upskill

#endif  // UPSKILL_DATA_LOG_BUILDER_H_
