#include "data/sample.h"

#include <algorithm>
#include <numeric>

namespace upskill {

Result<FilterResult> SampleUsers(const Dataset& dataset, double fraction,
                                 Rng& rng) {
  if (!(fraction >= 0.0 && fraction <= 1.0)) {
    return Status::InvalidArgument("fraction must be in [0, 1]");
  }
  std::vector<char> keep_user(static_cast<size_t>(dataset.num_users()), 0);
  for (size_t u = 0; u < keep_user.size(); ++u) {
    keep_user[u] = rng.NextBernoulli(fraction) ? 1 : 0;
  }
  const std::vector<char> keep_item(
      static_cast<size_t>(dataset.items().num_items()), 1);
  return CompactDataset(dataset, keep_user, keep_item,
                        /*drop_empty_users=*/false);
}

Result<FilterResult> SampleUsersExactly(const Dataset& dataset, int num_users,
                                        Rng& rng) {
  if (num_users < 0) {
    return Status::InvalidArgument("num_users must be non-negative");
  }
  std::vector<UserId> order(static_cast<size_t>(dataset.num_users()));
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);
  std::vector<char> keep_user(static_cast<size_t>(dataset.num_users()), 0);
  const size_t take = std::min(order.size(), static_cast<size_t>(num_users));
  for (size_t i = 0; i < take; ++i) {
    keep_user[static_cast<size_t>(order[i])] = 1;
  }
  const std::vector<char> keep_item(
      static_cast<size_t>(dataset.items().num_items()), 1);
  return CompactDataset(dataset, keep_user, keep_item,
                        /*drop_empty_users=*/false);
}

Result<Dataset> TruncateSequences(const Dataset& dataset,
                                  size_t max_actions) {
  Dataset out(dataset.items());
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    out.AddUser(dataset.user_name(u));
    std::span<const Action> seq = dataset.sequence(u);
    const size_t take = std::min(seq.size(), max_actions);
    for (size_t n = 0; n < take; ++n) {
      UPSKILL_RETURN_IF_ERROR(
          out.AddAction(u, seq[n].time, seq[n].item, seq[n].rating));
    }
  }
  return out;
}

}  // namespace upskill
