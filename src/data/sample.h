#ifndef UPSKILL_DATA_SAMPLE_H_
#define UPSKILL_DATA_SAMPLE_H_

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"
#include "data/filter.h"

namespace upskill {

/// Keeps each user independently with probability `fraction` (items are
/// untouched; items left without any action remain in the table). Useful
/// for scaling experiments up and down without re-generating data.
Result<FilterResult> SampleUsers(const Dataset& dataset, double fraction,
                                 Rng& rng);

/// Keeps exactly `num_users` uniformly random users (all of them when the
/// dataset has fewer).
Result<FilterResult> SampleUsersExactly(const Dataset& dataset, int num_users,
                                        Rng& rng);

/// Truncates every sequence to its first `max_actions` actions (a
/// "shorter history" view; useful for learning-curve experiments).
Result<Dataset> TruncateSequences(const Dataset& dataset, size_t max_actions);

}  // namespace upskill

#endif  // UPSKILL_DATA_SAMPLE_H_
