#include "data/schema.h"

#include <cmath>

#include "common/string_util.h"

namespace upskill {

Status FeatureSchema::CheckNewName(const std::string& name) const {
  if (name.empty()) return Status::InvalidArgument("empty feature name");
  for (const FeatureSpec& spec : features_) {
    if (spec.name == name) {
      return Status::InvalidArgument("duplicate feature name: " + name);
    }
  }
  return Status::OK();
}

Result<int> FeatureSchema::AddCategorical(std::string name, int cardinality,
                                          std::vector<std::string> labels) {
  UPSKILL_RETURN_IF_ERROR(CheckNewName(name));
  if (cardinality <= 0) {
    return Status::InvalidArgument("cardinality must be positive for " + name);
  }
  if (!labels.empty() && static_cast<int>(labels.size()) != cardinality) {
    return Status::InvalidArgument(
        StringPrintf("feature %s: %zu labels for cardinality %d", name.c_str(),
                     labels.size(), cardinality));
  }
  FeatureSpec spec;
  spec.name = std::move(name);
  spec.type = FeatureType::kCategorical;
  spec.distribution = DistributionKind::kCategorical;
  spec.cardinality = cardinality;
  spec.labels = std::move(labels);
  features_.push_back(std::move(spec));
  return num_features() - 1;
}

Result<int> FeatureSchema::AddCount(std::string name) {
  UPSKILL_RETURN_IF_ERROR(CheckNewName(name));
  FeatureSpec spec;
  spec.name = std::move(name);
  spec.type = FeatureType::kCount;
  spec.distribution = DistributionKind::kPoisson;
  features_.push_back(std::move(spec));
  return num_features() - 1;
}

Result<int> FeatureSchema::AddReal(std::string name,
                                   DistributionKind distribution) {
  UPSKILL_RETURN_IF_ERROR(CheckNewName(name));
  if (distribution != DistributionKind::kGamma &&
      distribution != DistributionKind::kLogNormal) {
    return Status::InvalidArgument(
        "real features must use a gamma or log-normal component");
  }
  FeatureSpec spec;
  spec.name = std::move(name);
  spec.type = FeatureType::kReal;
  spec.distribution = distribution;
  features_.push_back(std::move(spec));
  return num_features() - 1;
}

Result<int> FeatureSchema::AddIdFeature(int num_items) {
  if (id_feature_ >= 0) {
    return Status::FailedPrecondition("schema already has an ID feature");
  }
  Result<int> index = AddCategorical(kItemIdFeatureName, num_items);
  if (!index.ok()) return index;
  id_feature_ = index.value();
  return index;
}

Result<int> FeatureSchema::FeatureIndex(const std::string& name) const {
  for (int f = 0; f < num_features(); ++f) {
    if (features_[static_cast<size_t>(f)].name == name) return f;
  }
  return Status::NotFound("no feature named " + name);
}

Status FeatureSchema::ValidateValue(int f, double value) const {
  if (f < 0 || f >= num_features()) {
    return Status::OutOfRange(StringPrintf("feature index %d", f));
  }
  const FeatureSpec& spec = features_[static_cast<size_t>(f)];
  switch (spec.type) {
    case FeatureType::kCategorical: {
      const double rounded = std::floor(value);
      if (rounded != value || value < 0.0 ||
          value >= static_cast<double>(spec.cardinality)) {
        return Status::InvalidArgument(
            StringPrintf("feature %s: %g is not a category in [0, %d)",
                         spec.name.c_str(), value, spec.cardinality));
      }
      return Status::OK();
    }
    case FeatureType::kCount: {
      if (std::floor(value) != value || value < 0.0) {
        return Status::InvalidArgument(StringPrintf(
            "feature %s: %g is not a non-negative count", spec.name.c_str(),
            value));
      }
      return Status::OK();
    }
    case FeatureType::kReal: {
      if (!(value > 0.0) || !std::isfinite(value)) {
        return Status::InvalidArgument(StringPrintf(
            "feature %s: %g is not a positive real", spec.name.c_str(),
            value));
      }
      return Status::OK();
    }
  }
  return Status::Internal("unhandled feature type");
}

FeatureSchema FeatureSchema::WithoutIdFeature() const {
  FeatureSchema out;
  for (int f = 0; f < num_features(); ++f) {
    if (f == id_feature_) continue;
    out.features_.push_back(features_[static_cast<size_t>(f)]);
  }
  return out;
}

const char* FeatureTypeToString(FeatureType type) {
  switch (type) {
    case FeatureType::kCategorical:
      return "categorical";
    case FeatureType::kCount:
      return "count";
    case FeatureType::kReal:
      return "real";
  }
  return "unknown";
}

}  // namespace upskill
