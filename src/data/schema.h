#ifndef UPSKILL_DATA_SCHEMA_H_
#define UPSKILL_DATA_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/feature.h"

namespace upskill {

/// Ordered collection of item features. One feature may be designated the
/// *item-ID feature* (a categorical over the item universe whose value for
/// item i is i itself); the ID-only baseline of Yang et al. and the item
/// prediction task (Section VI-E) both rely on it.
class FeatureSchema {
 public:
  FeatureSchema() = default;

  /// Adds a categorical feature with `cardinality` values. `labels` may be
  /// empty or have exactly `cardinality` entries. Returns the feature index.
  Result<int> AddCategorical(std::string name, int cardinality,
                             std::vector<std::string> labels = {});

  /// Adds a count feature modeled by a Poisson component.
  Result<int> AddCount(std::string name);

  /// Adds a positive real-valued feature modeled by `distribution`
  /// (kGamma or kLogNormal).
  Result<int> AddReal(std::string name,
                      DistributionKind distribution = DistributionKind::kGamma);

  /// Adds the item-ID feature: a categorical over `num_items` values.
  /// At most one ID feature may exist.
  Result<int> AddIdFeature(int num_items);

  int num_features() const { return static_cast<int>(features_.size()); }
  const FeatureSpec& feature(int f) const { return features_[static_cast<size_t>(f)]; }

  /// Index of the ID feature, or -1 when none was added.
  int id_feature() const { return id_feature_; }

  /// Index of the feature named `name`.
  Result<int> FeatureIndex(const std::string& name) const;

  /// Validates that `value` is in-domain for feature `f` (integral and in
  /// range for categorical, non-negative integral for counts, positive for
  /// reals).
  Status ValidateValue(int f, double value) const;

  /// Schema without the ID feature (used to budget-compare feature sets).
  /// Indices of remaining features shift down accordingly.
  FeatureSchema WithoutIdFeature() const;

 private:
  Status CheckNewName(const std::string& name) const;

  std::vector<FeatureSpec> features_;
  int id_feature_ = -1;
};

/// Canonical name given to the feature added by AddIdFeature.
inline constexpr const char* kItemIdFeatureName = "item_id";

}  // namespace upskill

#endif  // UPSKILL_DATA_SCHEMA_H_
