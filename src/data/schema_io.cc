#include "data/schema_io.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "data/feature.h"

namespace upskill {

void SerializeSchema(const FeatureSchema& schema, ByteWriter* out) {
  out->I32(schema.num_features());
  out->I32(schema.id_feature());
  for (int f = 0; f < schema.num_features(); ++f) {
    const FeatureSpec& spec = schema.feature(f);
    out->Str(spec.name);
    out->U8(static_cast<uint8_t>(spec.type));
    out->U8(static_cast<uint8_t>(spec.distribution));
    out->I32(spec.cardinality);
    out->U32(static_cast<uint32_t>(spec.labels.size()));
    for (const std::string& label : spec.labels) out->Str(label);
  }
}

Result<FeatureSchema> DeserializeSchema(ByteReader* in) {
  int32_t num_features = 0;
  int32_t id_feature = 0;
  if (!in->I32(&num_features) || !in->I32(&id_feature) || num_features < 0) {
    return Status::Corruption("schema header");
  }
  FeatureSchema schema;
  for (int32_t f = 0; f < num_features; ++f) {
    std::string name;
    uint8_t type = 0;
    uint8_t distribution = 0;
    int32_t cardinality = 0;
    uint32_t num_labels = 0;
    if (!in->Str(&name) || !in->U8(&type) || !in->U8(&distribution) ||
        !in->I32(&cardinality) || !in->U32(&num_labels)) {
      return Status::Corruption(StringPrintf("schema feature %d", f));
    }
    std::vector<std::string> labels(num_labels);
    for (std::string& label : labels) {
      if (!in->Str(&label)) {
        return Status::Corruption(
            StringPrintf("schema labels of feature %d", f));
      }
    }
    Result<int> added = [&]() -> Result<int> {
      if (f == id_feature) return schema.AddIdFeature(cardinality);
      switch (static_cast<FeatureType>(type)) {
        case FeatureType::kCategorical:
          return schema.AddCategorical(std::move(name), cardinality,
                                       std::move(labels));
        case FeatureType::kCount:
          return schema.AddCount(std::move(name));
        case FeatureType::kReal:
          return schema.AddReal(std::move(name),
                                static_cast<DistributionKind>(distribution));
      }
      return Status::Corruption("schema feature type");
    }();
    if (!added.ok()) return added.status();
  }
  return schema;
}

}  // namespace upskill
