#ifndef UPSKILL_DATA_SCHEMA_IO_H_
#define UPSKILL_DATA_SCHEMA_IO_H_

#include "common/bytes.h"
#include "common/status.h"
#include "data/schema.h"

namespace upskill {

/// Binary schema serialization shared by the serve snapshot format and the
/// columnar store. The encoding is self-delimiting, so a schema can be
/// embedded inside a larger payload.
void SerializeSchema(const FeatureSchema& schema, ByteWriter* out);

/// Inverse of SerializeSchema. Returns Corruption when the bytes are
/// truncated or describe an impossible schema.
Result<FeatureSchema> DeserializeSchema(ByteReader* in);

}  // namespace upskill

#endif  // UPSKILL_DATA_SCHEMA_IO_H_
