#include "data/split.h"

#include <algorithm>

namespace upskill {

namespace {

// Copies dataset structure (users + item table) with empty sequences.
Dataset CloneShell(const Dataset& dataset) {
  Dataset out(dataset.items());
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    out.AddUser(dataset.user_name(u));
  }
  return out;
}

}  // namespace

Result<ActionSplit> MakeHoldoutSplit(const Dataset& dataset,
                                     HoldoutPosition position, Rng& rng,
                                     size_t min_sequence_length) {
  if (min_sequence_length < 2) {
    return Status::InvalidArgument(
        "min_sequence_length must be >= 2 so train sequences stay non-empty");
  }
  ActionSplit split;
  split.train = CloneShell(dataset);
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    std::span<const Action> seq = dataset.sequence(u);
    size_t held_out = seq.size();  // sentinel: keep everything
    if (seq.size() >= min_sequence_length) {
      held_out = (position == HoldoutPosition::kLast)
                     ? seq.size() - 1
                     : static_cast<size_t>(
                           rng.NextInt(static_cast<int64_t>(seq.size())));
    }
    for (size_t n = 0; n < seq.size(); ++n) {
      if (n == held_out) {
        split.test.push_back(HeldOutAction{u, seq[n], n});
        continue;
      }
      UPSKILL_RETURN_IF_ERROR(
          split.train.AddAction(u, seq[n].time, seq[n].item, seq[n].rating));
    }
  }
  return split;
}

Result<ActionSplit> SplitActionsRandomly(const Dataset& dataset,
                                         double test_fraction, Rng& rng) {
  if (!(test_fraction >= 0.0 && test_fraction < 1.0)) {
    return Status::InvalidArgument("test_fraction must be in [0, 1)");
  }
  ActionSplit split;
  split.train = CloneShell(dataset);
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    std::span<const Action> seq = dataset.sequence(u);
    // Decide the test subset first so we can protect the last train action.
    std::vector<char> to_test(seq.size(), 0);
    size_t train_count = seq.size();
    for (size_t n = 0; n < seq.size(); ++n) {
      if (train_count > 1 && rng.NextBernoulli(test_fraction)) {
        to_test[n] = 1;
        --train_count;
      }
    }
    for (size_t n = 0; n < seq.size(); ++n) {
      if (to_test[n]) {
        split.test.push_back(HeldOutAction{u, seq[n], n});
      } else {
        UPSKILL_RETURN_IF_ERROR(
            split.train.AddAction(u, seq[n].time, seq[n].item, seq[n].rating));
      }
    }
  }
  return split;
}

Result<ActionSplit> SplitActionsByTime(const Dataset& dataset,
                                       int64_t cutoff) {
  ActionSplit split;
  split.train = CloneShell(dataset);
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    std::span<const Action> seq = dataset.sequence(u);
    for (size_t n = 0; n < seq.size(); ++n) {
      // The user's first action anchors training even past the cutoff.
      const bool train = seq[n].time <= cutoff || n == 0;
      if (train) {
        UPSKILL_RETURN_IF_ERROR(
            split.train.AddAction(u, seq[n].time, seq[n].item, seq[n].rating));
      } else {
        split.test.push_back(HeldOutAction{u, seq[n], n});
      }
    }
  }
  return split;
}

Result<ActionSplit> SplitActionsByTimeQuantile(const Dataset& dataset,
                                               double quantile) {
  if (!(quantile > 0.0 && quantile < 1.0)) {
    return Status::InvalidArgument("quantile must be in (0, 1)");
  }
  if (dataset.num_actions() == 0) {
    return Status::InvalidArgument("empty dataset");
  }
  std::vector<int64_t> times;
  times.reserve(dataset.num_actions());
  dataset.ForEachAction(
      [&times](UserId, const Action& a) { times.push_back(a.time); });
  std::sort(times.begin(), times.end());
  const size_t index = std::min(
      times.size() - 1,
      static_cast<size_t>(quantile * static_cast<double>(times.size())));
  return SplitActionsByTime(dataset, times[index]);
}

}  // namespace upskill
