#ifndef UPSKILL_DATA_SPLIT_H_
#define UPSKILL_DATA_SPLIT_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"

namespace upskill {

/// A test action detached from a training sequence.
struct HeldOutAction {
  UserId user = -1;
  Action action;
  /// Index the action held in the user's original sequence.
  size_t position = 0;
};

/// Train dataset (same users and item table as the source; some sequences
/// shortened) plus the detached test actions.
struct ActionSplit {
  Dataset train;
  std::vector<HeldOutAction> test;
};

/// Which action the item-prediction task holds out per user (Section VI-E).
enum class HoldoutPosition { kRandom, kLast };

/// Holds out exactly one action from every user with at least
/// `min_sequence_length` actions (users below the bar contribute all
/// actions to train and none to test).
Result<ActionSplit> MakeHoldoutSplit(const Dataset& dataset,
                                     HoldoutPosition position, Rng& rng,
                                     size_t min_sequence_length = 2);

/// The 90/10-style random split used for skill-count selection
/// (Section VI-B): each action lands in test with probability
/// `test_fraction`, except that a user's final remaining train action is
/// never taken (nearest-action inference needs a non-empty train sequence).
Result<ActionSplit> SplitActionsRandomly(const Dataset& dataset,
                                         double test_fraction, Rng& rng);

/// Temporal split (forecast-style evaluation, beyond the paper's two
/// protocols): every action with time <= `cutoff` trains; later actions
/// test. Users whose entire history is after the cutoff keep their first
/// action in train (nearest-action inference needs an anchor).
Result<ActionSplit> SplitActionsByTime(const Dataset& dataset,
                                       int64_t cutoff);

/// Picks the cutoff as the `quantile` (in (0, 1)) of all action times,
/// then splits. Approximately `1 - quantile` of actions become test.
Result<ActionSplit> SplitActionsByTimeQuantile(const Dataset& dataset,
                                               double quantile);

}  // namespace upskill

#endif  // UPSKILL_DATA_SPLIT_H_
