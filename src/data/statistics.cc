#include "data/statistics.h"

#include <algorithm>

#include "common/string_util.h"

namespace upskill {

DatasetStats ComputeDatasetStats(const Dataset& dataset) {
  DatasetStats stats;
  stats.num_users = dataset.num_users();
  stats.num_table_items = dataset.items().num_items();
  stats.num_used_items = dataset.CountUsedItems();
  stats.num_actions = dataset.num_actions();

  size_t rated = 0;
  dataset.ForEachAction([&rated](UserId, const Action& a) {
    if (a.has_rating()) ++rated;
  });
  stats.rating_coverage =
      stats.num_actions == 0
          ? 0.0
          : static_cast<double>(rated) / static_cast<double>(stats.num_actions);

  if (dataset.num_users() > 0) {
    size_t min_len = dataset.sequence(0).size();
    size_t max_len = min_len;
    for (UserId u = 1; u < dataset.num_users(); ++u) {
      const size_t len = dataset.sequence(u).size();
      min_len = std::min(min_len, len);
      max_len = std::max(max_len, len);
    }
    stats.min_sequence_length = min_len;
    stats.max_sequence_length = max_len;
    stats.mean_sequence_length = static_cast<double>(stats.num_actions) /
                                 static_cast<double>(stats.num_users);
  }
  return stats;
}

std::string FormatStatsRow(const std::string& name,
                           const DatasetStats& stats) {
  return StringPrintf("%-12s %10d %10d %12zu", name.c_str(), stats.num_users,
                      stats.num_used_items, stats.num_actions);
}

}  // namespace upskill
