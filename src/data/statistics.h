#ifndef UPSKILL_DATA_STATISTICS_H_
#define UPSKILL_DATA_STATISTICS_H_

#include <cstddef>
#include <string>

#include "data/dataset.h"

namespace upskill {

/// Descriptive statistics in the shape of the paper's Table I.
struct DatasetStats {
  int num_users = 0;
  /// Distinct items appearing in at least one action (the paper counts
  /// items post-filtering, i.e. items actually selected).
  int num_used_items = 0;
  /// Total items in the item table (>= num_used_items).
  int num_table_items = 0;
  size_t num_actions = 0;
  double mean_sequence_length = 0.0;
  size_t min_sequence_length = 0;
  size_t max_sequence_length = 0;
  /// Fraction of actions carrying an explicit rating.
  double rating_coverage = 0.0;
};

/// Computes statistics over `dataset`.
DatasetStats ComputeDatasetStats(const Dataset& dataset);

/// One formatted Table-I-style row: "name  #users  #items  #actions".
std::string FormatStatsRow(const std::string& name, const DatasetStats& stats);

}  // namespace upskill

#endif  // UPSKILL_DATA_STATISTICS_H_
