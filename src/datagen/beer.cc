#include "datagen/beer.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/string_util.h"

namespace upskill {
namespace datagen {

namespace {

// Style vocabulary with acquired-taste tiers. Tier-1 and tier-5 entries
// reuse the style names the paper reports in Table III so the reproduced
// table reads like the original.
constexpr BeerStyle kStyles[] = {
    // Tier 1: what novices reach for.
    {"Pale Lager", 1},
    {"Premium Lager", 1},
    {"American Dark Lager", 1},
    {"Malt Liquor", 1},
    {"Vienna", 1},
    // Tier 2.
    {"Wheat Ale", 2},
    {"Amber Ale", 2},
    {"German Hefeweizen", 2},
    {"Premium Bitter/ESB", 2},
    {"Porter", 2},
    // Tier 3.
    {"Pilsener", 3},
    {"Brown Ale", 3},
    {"Irish Stout", 3},
    {"Koelsch", 3},
    {"Bitter", 3},
    // Tier 4.
    {"India Pale Ale (IPA)", 4},
    {"Saison", 4},
    {"Black IPA", 4},
    {"Belgian Ale", 4},
    {"Dubbel", 4},
    // Tier 5: the connoisseur shelf.
    {"Imperial/Double IPA", 5},
    {"Imperial Stout", 5},
    {"Sour Ale/Wild Ale", 5},
    {"American Strong Ale", 5},
    {"Barley Wine", 5},
    {"Belgian Strong Ale", 5},
    {"Spice/Herb/Vegetable", 5},
};
constexpr int kNumStyles = static_cast<int>(std::size(kStyles));

// ABV climbs with the tier (paper means: 5.85 at s=1, 7.46 at s=5).
double AbvMean(int tier) { return 4.6 + 0.8 * tier; }

// A user at `level` samples styles with weight decaying in the distance
// between the style tier and their level, skewed so higher levels retain
// access to lower tiers (skilled users drink lagers too) but not vice
// versa.
double StyleWeight(int tier, int level) {
  if (tier == level) return 1.6;  // the palate users are growing into
  if (tier < level) return std::pow(0.55, level - tier) + 0.05;
  return 0.04 * std::pow(0.45, tier - level - 1);
}

}  // namespace

std::span<const BeerStyle> BeerStyles() {
  return std::span<const BeerStyle>(kStyles, kNumStyles);
}

Result<GeneratedData> GenerateBeer(const BeerConfig& config) {
  if (config.num_levels != 5) {
    return Status::InvalidArgument(
        "beer generator is calibrated for 5 levels (style tiers)");
  }
  if (config.num_users < 1 || config.num_beers < kNumStyles) {
    return Status::InvalidArgument(
        StringPrintf("need >= 1 user and >= %d beers", kNumStyles));
  }
  Rng rng(config.seed);
  const int S = config.num_levels;

  std::vector<std::string> style_labels;
  style_labels.reserve(static_cast<size_t>(kNumStyles));
  for (const BeerStyle& style : kStyles) style_labels.push_back(style.name);

  FeatureSchema schema;
  Result<int> id = schema.AddIdFeature(config.num_beers);
  if (!id.ok()) return id.status();
  Result<int> f_brewer = schema.AddCategorical("brewer", config.num_brewers);
  if (!f_brewer.ok()) return f_brewer.status();
  Result<int> f_style =
      schema.AddCategorical("style", kNumStyles, std::move(style_labels));
  if (!f_style.ok()) return f_style.status();
  Result<int> f_abv = schema.AddReal("abv", DistributionKind::kGamma);
  if (!f_abv.ok()) return f_abv.status();

  // Beers: style round-robin-ish (each style well populated), difficulty =
  // style tier, ABV ~ Gamma around the tier mean. A per-beer quality term
  // feeds the rating model.
  ItemTable items(std::move(schema));
  GroundTruth truth;
  std::vector<std::vector<ItemId>> beers_by_tier(static_cast<size_t>(S));
  std::vector<double> quality(static_cast<size_t>(config.num_beers));
  for (int b = 0; b < config.num_beers; ++b) {
    const int style = static_cast<int>(rng.NextInt(kNumStyles));
    const int tier = kStyles[style].tier;
    const double abv = rng.NextGamma(30.0, AbvMean(tier) / 30.0);
    const double values[] = {-1.0,
                             static_cast<double>(rng.NextInt(config.num_brewers)),
                             static_cast<double>(style), abv};
    Result<ItemId> added = items.AddItem(
        values, StringPrintf("%s #%d", kStyles[style].name, b));
    if (!added.ok()) return added.status();
    truth.difficulty.push_back(static_cast<double>(tier));
    beers_by_tier[static_cast<size_t>(tier - 1)].push_back(added.value());
    quality[static_cast<size_t>(b)] = rng.NextGaussian() * 0.4;
  }

  Dataset dataset(std::move(items));
  truth.skill.resize(static_cast<size_t>(config.num_users));
  std::vector<double> tier_weights(static_cast<size_t>(S));
  for (int u = 0; u < config.num_users; ++u) {
    const UserId user = dataset.AddUser(StringPrintf("taster-%04d", u));
    const double user_bias = rng.NextGaussian() * 0.3;
    const int64_t length =
        std::max<int64_t>(1, rng.NextPoisson(config.mean_sequence_length));
    int level = 1 + static_cast<int>(rng.NextInt(2));  // starts low
    std::vector<int>& levels = truth.skill[static_cast<size_t>(user)];
    levels.reserve(static_cast<size_t>(length));
    for (int64_t n = 0; n < length; ++n) {
      for (int t = 1; t <= S; ++t) {
        tier_weights[static_cast<size_t>(t - 1)] =
            beers_by_tier[static_cast<size_t>(t - 1)].empty()
                ? 0.0
                : StyleWeight(t, level);
      }
      const int tier = 1 + rng.NextCategorical(tier_weights);
      const std::vector<ItemId>& pool =
          beers_by_tier[static_cast<size_t>(tier - 1)];
      const ItemId beer = pool[static_cast<size_t>(
          rng.NextInt(static_cast<int64_t>(pool.size())))];

      // Rating: global mean + user bias + beer quality + match term.
      // Beers above the user's level rate poorly (can't appreciate them
      // yet); the match peak moves with skill, which is what U+I+S+D can
      // exploit and U+I cannot.
      const double overreach =
          std::max(0.0, truth.difficulty[static_cast<size_t>(beer)] -
                            static_cast<double>(level));
      const double appreciation =
          0.08 * std::min<double>(level,
                                  truth.difficulty[static_cast<size_t>(beer)]);
      double rating = 3.1 + user_bias + quality[static_cast<size_t>(beer)] -
                      0.65 * overreach + appreciation +
                      rng.NextGaussian() * config.rating_noise;
      rating = std::clamp(rating, 0.0, 5.0);
      UPSKILL_RETURN_IF_ERROR(dataset.AddAction(user, n, beer, rating));
      levels.push_back(level);
      if (tier >= level && level < S &&
          rng.NextBernoulli(config.level_up_probability)) {
        ++level;
      }
    }
  }

  GeneratedData data;
  data.dataset = std::move(dataset);
  data.truth = std::move(truth);
  return data;
}

}  // namespace datagen
}  // namespace upskill
