#ifndef UPSKILL_DATAGEN_BEER_H_
#define UPSKILL_DATAGEN_BEER_H_

#include <span>

#include "common/status.h"
#include "datagen/types.h"

namespace upskill {
namespace datagen {

/// Simulated RateBeer-style review data (substitute for the McAuley &
/// Leskovec RateBeer dump; see DESIGN.md). Beers carry the paper's
/// feature mix (Section VI-A): item ID, brewer and style (categorical) and
/// alcohol-by-volume (gamma). Styles span acquired-taste tiers from
/// sessionable lagers (tier 1) to imperial/sour styles (tier 5); ABV rises
/// with the tier (Fig. 6), and a user's style palette drifts upward with
/// their appreciation skill (Table III).
///
/// Every action carries a rating in [0, 5] composed of a user bias, a beer
/// quality term, and a skill/difficulty match term — the signal the
/// Table XII FFM experiment feeds on.
struct BeerConfig {
  int num_levels = 5;  // the paper follows prior work with S = 5
  int num_users = 600;
  int num_beers = 2000;
  int num_brewers = 160;
  double mean_sequence_length = 150.0;  // RateBeer sequences are long
  double level_up_probability = 0.028;
  double rating_noise = 0.35;
  uint64_t seed = 2011;
};

Result<GeneratedData> GenerateBeer(const BeerConfig& config);

/// The style vocabulary used by the generator (exposed for tests and for
/// labelling Table III). Tiers are 1 (novice-friendly) through 5
/// (acquired taste).
struct BeerStyle {
  const char* name;
  int tier;
};
std::span<const BeerStyle> BeerStyles();

}  // namespace datagen
}  // namespace upskill

#endif  // UPSKILL_DATAGEN_BEER_H_
