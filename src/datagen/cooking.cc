#include "datagen/cooking.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/string_util.h"

namespace upskill {
namespace datagen {

namespace {

// Cooking-time classes, as on the source website ("about 30 minutes").
const char* const kTimeClasses[] = {"~10min", "~30min", "~60min",
                                    "~90min", "~120min", "120min+"};
constexpr int kNumTimeClasses = static_cast<int>(std::size(kTimeClasses));

// Cost classes ("about JPY 500" etc.).
const char* const kCostClasses[] = {"~300yen", "~500yen", "~1000yen",
                                    "~2000yen", "2000yen+"};
constexpr int kNumCostClasses = static_cast<int>(std::size(kCostClasses));

// Distribution of recipe selection over recipe difficulty for a user at
// `level`: peak at the user's level, geometric decay below, near zero
// above (within skill capacity, Section V's assumption).
std::vector<double> SelectionWeights(int level, int num_levels) {
  std::vector<double> weights(static_cast<size_t>(num_levels), 0.0);
  for (int d = 1; d <= num_levels; ++d) {
    double w;
    if (d <= level) {
      w = std::pow(0.3, level - d);  // easier recipes still get cooked
    } else {
      w = 0.01 * std::pow(0.4, d - level - 1);  // rare overreach
    }
    weights[static_cast<size_t>(d - 1)] = w;
  }
  return weights;
}

// Time-class index distribution given recipe difficulty: harder recipes
// take longer (Fig. 5a).
int SampleTimeClass(Rng& rng, int difficulty, int num_levels) {
  const double center = (static_cast<double>(difficulty) - 0.5) /
                        num_levels * kNumTimeClasses;
  std::vector<double> weights(static_cast<size_t>(kNumTimeClasses));
  for (int c = 0; c < kNumTimeClasses; ++c) {
    const double d = (c + 0.5) - center;
    weights[static_cast<size_t>(c)] = std::exp(-2.5 * d * d);
  }
  return rng.NextCategorical(weights);
}

int SampleCostClass(Rng& rng, int difficulty, int num_levels) {
  const double center = (static_cast<double>(difficulty) - 0.5) /
                        num_levels * kNumCostClasses;
  std::vector<double> weights(static_cast<size_t>(kNumCostClasses));
  for (int c = 0; c < kNumCostClasses; ++c) {
    const double d = (c + 0.5) - center;
    weights[static_cast<size_t>(c)] = std::exp(-1.5 * d * d);
  }
  return rng.NextCategorical(weights);
}

}  // namespace

Result<GeneratedData> GenerateCooking(const CookingConfig& config) {
  if (config.num_levels < 2) {
    return Status::InvalidArgument("cooking generator needs num_levels >= 2");
  }
  if (config.novice_mimics_level > config.num_levels) {
    return Status::InvalidArgument("novice_mimics_level out of range");
  }
  if (config.num_recipes < 1 || config.num_users < 1) {
    return Status::InvalidArgument("need at least one recipe and one user");
  }
  Rng rng(config.seed);
  const int S = config.num_levels;

  std::vector<std::string> time_labels(kTimeClasses,
                                       kTimeClasses + kNumTimeClasses);
  std::vector<std::string> cost_labels(kCostClasses,
                                       kCostClasses + kNumCostClasses);

  FeatureSchema schema;
  Result<int> id = schema.AddIdFeature(config.num_recipes);
  if (!id.ok()) return id.status();
  Result<int> f_cat = schema.AddCategorical("category", config.num_categories);
  if (!f_cat.ok()) return f_cat.status();
  Result<int> f_time = schema.AddCategorical("time_class", kNumTimeClasses,
                                             std::move(time_labels));
  if (!f_time.ok()) return f_time.status();
  Result<int> f_cost = schema.AddCategorical("cost_class", kNumCostClasses,
                                             std::move(cost_labels));
  if (!f_cost.ok()) return f_cost.status();
  Result<int> f_ing =
      schema.AddCategorical("main_ingredient", config.num_ingredients);
  if (!f_ing.ok()) return f_ing.status();
  Result<int> f_ni = schema.AddCount("num_ingredients");
  if (!f_ni.ok()) return f_ni.status();
  Result<int> f_ns = schema.AddCount("num_steps");
  if (!f_ns.ok()) return f_ns.status();

  // Recipes: difficulty uniform over levels; features conditioned on it.
  ItemTable items(std::move(schema));
  GroundTruth truth;
  std::vector<std::vector<ItemId>> recipes_by_difficulty(
      static_cast<size_t>(S));
  // Real recipe sites have power-law popularity; a log-normal weight per
  // recipe reproduces that (and keeps popular recipes visible at every
  // skill level, as on the source website).
  std::vector<std::vector<double>> popularity_by_difficulty(
      static_cast<size_t>(S));
  for (int r = 0; r < config.num_recipes; ++r) {
    const int difficulty = 1 + static_cast<int>(rng.NextInt(S));
    // Harder recipes drift toward the later ingredient ids (specialty
    // ingredients) and need more parts and steps (Fig. 5b).
    const double ingredient_center =
        (static_cast<double>(difficulty) - 0.5) / S * config.num_ingredients;
    std::vector<double> ingredient_weights(
        static_cast<size_t>(config.num_ingredients));
    for (int c = 0; c < config.num_ingredients; ++c) {
      const double d = (c + 0.5) - ingredient_center;
      ingredient_weights[static_cast<size_t>(c)] =
          std::exp(-0.5 * (d / 3.5) * (d / 3.5));
    }
    const double values[] = {
        -1.0,
        static_cast<double>(rng.NextInt(config.num_categories)),
        static_cast<double>(SampleTimeClass(rng, difficulty, S)),
        static_cast<double>(SampleCostClass(rng, difficulty, S)),
        static_cast<double>(rng.NextCategorical(ingredient_weights)),
        static_cast<double>(
            std::max<int64_t>(1, rng.NextPoisson(2.0 + 2.5 * difficulty))),
        static_cast<double>(
            std::max<int64_t>(1, rng.NextPoisson(1.0 + 3.0 * difficulty))),
    };
    Result<ItemId> added =
        items.AddItem(values, StringPrintf("recipe-%05d", r));
    if (!added.ok()) return added.status();
    truth.difficulty.push_back(static_cast<double>(difficulty));
    recipes_by_difficulty[static_cast<size_t>(difficulty - 1)].push_back(
        added.value());
    popularity_by_difficulty[static_cast<size_t>(difficulty - 1)].push_back(
        rng.NextLogNormal(0.0, 2.8));
  }

  // Selection profiles, with the planted novice violation.
  std::vector<std::vector<double>> profile(static_cast<size_t>(S));
  for (int s = 1; s <= S; ++s) {
    profile[static_cast<size_t>(s - 1)] = SelectionWeights(s, S);
  }
  if (config.novice_mimics_level >= 1) {
    // The planted assumption violation (Section VI-C): novices cannot
    // judge difficulty, so their selections follow the *mid-level*
    // difficulty profile. They remain distinguishable from genuine
    // mid-level users through WHICH recipes they pick — novices chase the
    // famous ones (popularity-squared weighting below) — so the effective
    // number of behavioral levels stays S while the learned time/step
    // distributions for level 1 resemble the mid level (Fig. 5).
    profile[0] = SelectionWeights(config.novice_mimics_level, S);
  }
  // Popularity-squared weights for novice picks within a difficulty pool.
  std::vector<std::vector<double>> novice_popularity(static_cast<size_t>(S));
  for (int d = 0; d < S; ++d) {
    novice_popularity[static_cast<size_t>(d)] =
        popularity_by_difficulty[static_cast<size_t>(d)];
    for (double& w : novice_popularity[static_cast<size_t>(d)]) w *= w;
  }

  Dataset dataset(std::move(items));
  truth.skill.resize(static_cast<size_t>(config.num_users));
  for (int u = 0; u < config.num_users; ++u) {
    const UserId user = dataset.AddUser(StringPrintf("cook-%05d", u));
    const int64_t length =
        std::max<int64_t>(1, rng.NextPoisson(config.mean_sequence_length));
    // Initial level uniform over the scale: the population covers every
    // level, as in the paper's synthetic protocol (Section VI-A 3b).
    int level = 1 + static_cast<int>(rng.NextInt(S));
    std::vector<int>& levels = truth.skill[static_cast<size_t>(user)];
    levels.reserve(static_cast<size_t>(length));
    for (int64_t n = 0; n < length; ++n) {
      int d = 1 + rng.NextCategorical(profile[static_cast<size_t>(level - 1)]);
      // Small test configurations can leave a difficulty pool empty; walk
      // down (then up) to the nearest non-empty one.
      while (d > 1 && recipes_by_difficulty[static_cast<size_t>(d - 1)].empty()) {
        --d;
      }
      while (recipes_by_difficulty[static_cast<size_t>(d - 1)].empty() &&
             d < S) {
        ++d;
      }
      const std::vector<ItemId>& pool =
          recipes_by_difficulty[static_cast<size_t>(d - 1)];
      const bool novice = level == 1 && config.novice_mimics_level >= 1;
      const ItemId recipe = pool[static_cast<size_t>(rng.NextCategorical(
          novice ? novice_popularity[static_cast<size_t>(d - 1)]
                 : popularity_by_difficulty[static_cast<size_t>(d - 1)]))];
      UPSKILL_RETURN_IF_ERROR(dataset.AddAction(user, n, recipe));
      levels.push_back(level);
      // Cooking at (or above) the current level can improve skill.
      if (d >= level && level < S &&
          rng.NextBernoulli(config.level_up_probability)) {
        ++level;
      }
    }
  }

  GeneratedData data;
  data.dataset = std::move(dataset);
  data.truth = std::move(truth);
  return data;
}

}  // namespace datagen
}  // namespace upskill
