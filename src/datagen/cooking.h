#ifndef UPSKILL_DATAGEN_COOKING_H_
#define UPSKILL_DATAGEN_COOKING_H_

#include "common/status.h"
#include "datagen/types.h"

namespace upskill {
namespace datagen {

/// Simulated Rakuten-Recipe-style cooking data (substitute for the NII IDR
/// Rakuten dataset; see DESIGN.md). Recipes carry the paper's feature mix
/// (Section VI-A): item ID, category, cooking-time class, cost class and
/// main ingredient (categorical), plus ingredient and step counts
/// (Poisson). Each recipe has a latent difficulty in [1, S]; feature
/// values grow with it.
///
/// The generator plants the paper's observed assumption violation
/// (Fig. 5): users at the *lowest* level select recipes the way mid-level
/// users do (they cannot yet judge difficulty), while everyone else mostly
/// stays within capacity. Training on this data should therefore learn
/// level-1 distributions resembling the mid-level ones.
struct CookingConfig {
  int num_levels = 5;  // the paper's Fig. 3 picks S = 5
  int num_users = 1500;
  int num_recipes = 8000;
  int num_categories = 24;
  int num_ingredients = 60;
  double mean_sequence_length = 20.0;
  double level_up_probability = 0.06;
  /// Skill level whose selection profile beginners copy (the planted
  /// violation; 0 disables it and beginners behave like everyone else).
  int novice_mimics_level = 3;
  uint64_t seed = 1203;
};

Result<GeneratedData> GenerateCooking(const CookingConfig& config);

}  // namespace datagen
}  // namespace upskill

#endif  // UPSKILL_DATAGEN_COOKING_H_
