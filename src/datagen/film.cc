#include "datagen/film.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/string_util.h"

namespace upskill {
namespace datagen {

namespace {

// Named roster planted with high popularity so the reproduced Tables IV/V
// surface recognizable titles. `classic` in [0, 1]: 0 = light
// blockbuster, 1 = canonical classic.
struct NamedMovie {
  const char* title;
  int year;
  double classic;
  double popularity;
};

constexpr NamedMovie kRoster[] = {
    // Pre-2000 blockbusters (Table IVa / Va material).
    {"Star Wars: Episode IV - A New Hope", 1977, 0.15, 14.0},
    {"Star Wars: Episode V - The Empire Strikes Back", 1980, 0.15, 13.0},
    {"Star Wars: Episode VI - Return of the Jedi", 1983, 0.12, 12.5},
    {"Indiana Jones and the Raiders of the Lost Ark", 1981, 0.15, 12.0},
    {"Back to the Future", 1985, 0.12, 11.5},
    {"The Princess Bride", 1987, 0.2, 10.0},
    {"Pulp Fiction", 1994, 0.25, 14.5},
    {"Batman", 1989, 0.08, 11.0},
    {"Dances with Wolves", 1990, 0.2, 10.5},
    {"The Shawshank Redemption", 1994, 0.3, 12.0},
    {"True Lies", 1994, 0.05, 10.5},
    {"Jurassic Park", 1993, 0.08, 12.5},
    {"The Silence of the Lambs", 1991, 0.3, 11.0},
    {"Fargo", 1996, 0.35, 10.0},
    {"The Godfather", 1972, 0.6, 12.0},
    // Canonical classics (Table Vb material).
    {"Rear Window", 1954, 0.95, 9.0},
    {"The Sound of Music", 1965, 0.9, 8.5},
    {"The Graduate", 1967, 0.9, 8.5},
    {"It's a Wonderful Life", 1946, 0.95, 8.5},
    {"The Birds", 1963, 0.92, 8.0},
    {"Gone with the Wind", 1939, 0.95, 8.5},
    {"Psycho", 1960, 0.93, 9.0},
    {"Casablanca", 1942, 1.0, 9.5},
    {"Vertigo", 1958, 0.95, 9.0},
    {"Citizen Kane", 1941, 1.0, 9.5},
    // Post-2000 releases: the lastness bait removed by preprocessing
    // (Table IVb material).
    {"The Dark Knight", 2008, 0.2, 15.0},
    {"Iron Man", 2008, 0.08, 13.5},
    {"Avatar", 2009, 0.05, 13.0},
    {"V for Vendetta", 2006, 0.2, 11.5},
    {"Batman Begins", 2005, 0.12, 12.0},
    {"WALL-E", 2008, 0.25, 12.0},
    {"Juno", 2007, 0.3, 11.0},
    {"Little Miss Sunshine", 2006, 0.35, 10.5},
    {"Inception", 2010, 0.2, 13.5},
    {"Casino Royale", 2006, 0.1, 11.5},
};
constexpr int kRosterSize = static_cast<int>(std::size(kRoster));

constexpr int kEraStart = 2000;   // first action year
constexpr int kEraEnd = 2015;     // last action year
constexpr int kOldestRelease = 1935;

}  // namespace

Result<GeneratedData> GenerateFilm(const FilmConfig& config) {
  if (config.num_levels < 2) {
    return Status::InvalidArgument("film generator needs num_levels >= 2");
  }
  if (config.num_users < 1 || config.num_filler_movies < 0) {
    return Status::InvalidArgument("bad film generator sizes");
  }
  if (!(config.recency_weight >= 0.0 && config.recency_weight <= 1.0)) {
    return Status::InvalidArgument("recency_weight must be in [0, 1]");
  }
  Rng rng(config.seed);
  const int S = config.num_levels;
  const int num_movies = kRosterSize + config.num_filler_movies;

  FeatureSchema schema;
  Result<int> id = schema.AddIdFeature(num_movies);
  if (!id.ok()) return id.status();
  Result<int> f_genre = schema.AddCategorical("genre", config.num_genres);
  if (!f_genre.ok()) return f_genre.status();
  Result<int> f_director =
      schema.AddCategorical("director", config.num_directors);
  if (!f_director.ok()) return f_director.status();
  Result<int> f_actor = schema.AddCategorical("lead_actor", config.num_actors);
  if (!f_actor.ok()) return f_actor.status();

  ItemTable items(std::move(schema));
  GroundTruth truth;
  std::vector<double> release(static_cast<size_t>(num_movies));
  std::vector<double> classic(static_cast<size_t>(num_movies));
  std::vector<double> popularity(static_cast<size_t>(num_movies));

  auto add_movie = [&](const std::string& title, int year, double classic_score,
                       double pop) -> Status {
    // Credits correlate with era and classic-ness: directors/actors are
    // binned so that classics share a credit pool, giving the categorical
    // features real signal.
    const double era_unit =
        std::clamp((year - kOldestRelease) /
                       static_cast<double>(kEraEnd - kOldestRelease),
                   0.0, 1.0);
    const int director =
        std::min(config.num_directors - 1,
                 static_cast<int>(era_unit * config.num_directors * 0.7 +
                                  rng.NextInt(config.num_directors) * 0.3));
    const int actor =
        std::min(config.num_actors - 1,
                 static_cast<int>(era_unit * config.num_actors * 0.7 +
                                  rng.NextInt(config.num_actors) * 0.3));
    // Genres: lower ids = action/adventure-ish (light), higher =
    // drama/noir-ish (classic).
    const double genre_center = classic_score * (config.num_genres - 1);
    std::vector<double> genre_weights(static_cast<size_t>(config.num_genres));
    for (int g = 0; g < config.num_genres; ++g) {
      const double d = g - genre_center;
      genre_weights[static_cast<size_t>(g)] = std::exp(-0.08 * d * d);
    }
    const double values[] = {-1.0,
                             static_cast<double>(rng.NextCategorical(genre_weights)),
                             static_cast<double>(director),
                             static_cast<double>(actor)};
    Result<ItemId> added = items.AddItem(values, title);
    if (!added.ok()) return added.status();
    const size_t i = static_cast<size_t>(added.value());
    release[i] = year;
    classic[i] = classic_score;
    popularity[i] = pop;
    truth.difficulty.push_back(1.0 + classic_score * (S - 1));
    return Status::OK();
  };

  for (const NamedMovie& movie : kRoster) {
    UPSKILL_RETURN_IF_ERROR(
        add_movie(movie.title, movie.year, movie.classic, movie.popularity));
  }
  for (int m = 0; m < config.num_filler_movies; ++m) {
    const int year = kOldestRelease +
                     static_cast<int>(rng.NextInt(kEraEnd - kOldestRelease));
    // Older filler skews classic, newer skews light.
    const double age_unit = 1.0 - (year - kOldestRelease) /
                                      static_cast<double>(kEraEnd -
                                                          kOldestRelease);
    const double classic_score =
        std::clamp(0.7 * age_unit + 0.3 * rng.NextDouble(), 0.0, 1.0);
    const double pop = rng.NextLogNormal(0.0, 0.8);
    UPSKILL_RETURN_IF_ERROR(add_movie(StringPrintf("Movie #%04d", m), year,
                                      classic_score, pop));
  }

  Dataset dataset(std::move(items));
  UPSKILL_RETURN_IF_ERROR(dataset.mutable_items().SetMetadata(
      kFilmReleaseTimeKey, release));

  // Precompute the taste force per (level, movie).
  std::vector<std::vector<double>> taste(static_cast<size_t>(S));
  for (int s = 1; s <= S; ++s) {
    std::vector<double>& row = taste[static_cast<size_t>(s - 1)];
    row.resize(static_cast<size_t>(num_movies));
    const double alignment = S > 1
                                 ? (static_cast<double>(s - 1) / (S - 1)) * 2.0 - 1.0
                                 : 0.0;
    for (int m = 0; m < num_movies; ++m) {
      const double polarity = classic[static_cast<size_t>(m)] * 2.0 - 1.0;
      row[static_cast<size_t>(m)] = std::exp(1.8 * alignment * polarity);
    }
  }

  truth.skill.resize(static_cast<size_t>(config.num_users));
  std::vector<double> weights(static_cast<size_t>(num_movies));
  for (int u = 0; u < config.num_users; ++u) {
    const UserId user = dataset.AddUser(StringPrintf("viewer-%04d", u));
    const int64_t length =
        std::max<int64_t>(1, rng.NextPoisson(config.mean_sequence_length));
    int level = 1 + static_cast<int>(rng.NextInt(2));
    std::vector<int>& levels = truth.skill[static_cast<size_t>(user)];
    levels.reserve(static_cast<size_t>(length));
    for (int64_t n = 0; n < length; ++n) {
      // Action times sweep the era so release-year drift aligns with
      // sequence position (the lastness confounder).
      const double when =
          kEraStart + (kEraEnd - kEraStart) *
                          (static_cast<double>(n) + rng.NextDouble()) /
                          static_cast<double>(length);
      const std::vector<double>& taste_row =
          taste[static_cast<size_t>(level - 1)];
      for (int m = 0; m < num_movies; ++m) {
        const size_t i = static_cast<size_t>(m);
        double recency = 0.0;
        if (release[i] <= when) {
          recency = std::exp(-config.recency_decay * (when - release[i]));
        }
        weights[i] = popularity[i] *
                     (config.recency_weight * recency +
                      (1.0 - config.recency_weight) * taste_row[i] * 0.05);
      }
      const ItemId movie = static_cast<ItemId>(rng.NextCategorical(weights));
      UPSKILL_RETURN_IF_ERROR(
          dataset.AddAction(user, static_cast<int64_t>(when * 365.25), movie));
      levels.push_back(level);
      if (level < S && rng.NextBernoulli(config.level_up_probability)) {
        ++level;
      }
    }
  }

  // Release metadata must be comparable with action times: convert years
  // to the same day-resolution axis used above.
  {
    std::vector<double> release_days(release.size());
    for (size_t i = 0; i < release.size(); ++i) {
      release_days[i] = release[i] * 365.25;
    }
    UPSKILL_RETURN_IF_ERROR(dataset.mutable_items().SetMetadata(
        kFilmReleaseTimeKey, std::move(release_days)));
  }

  GeneratedData data;
  data.dataset = std::move(dataset);
  data.truth = std::move(truth);
  return data;
}

}  // namespace datagen
}  // namespace upskill
