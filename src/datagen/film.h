#ifndef UPSKILL_DATAGEN_FILM_H_
#define UPSKILL_DATAGEN_FILM_H_

#include "common/status.h"
#include "datagen/types.h"

namespace upskill {
namespace datagen {

/// Simulated MovieLens-style film data (substitute for MovieLens plus the
/// crawled credits; see DESIGN.md). Movies carry the paper's features
/// (Section VI-A): item ID, genre, director and lead actor (all
/// categorical), plus a non-model "release_time" metadata column.
///
/// Two selection forces are planted:
///  - **Lastness** (Section VI-C): users strongly prefer recently released
///    movies, so release year drifts upward along every sequence. Without
///    preprocessing, a progression model mistakes this drift for skill
///    (Table IV). `FilterOldItems(dataset, kFilmReleaseTimeKey)` removes
///    movies released after the earliest action, after which the true
///    taste signal dominates (Table V).
///  - **Taste maturation**: low skill favors light blockbusters, high
///    skill favors classics. A roster of well-known titles (Star Wars,
///    Casablanca, Citizen Kane, The Dark Knight, ...) is planted with high
///    popularity so the reproduced Tables IV/V read like the paper's.
struct FilmConfig {
  int num_levels = 5;
  int num_users = 1200;
  /// Synthetic filler movies in addition to the named roster.
  int num_filler_movies = 1400;
  int num_genres = 18;
  int num_directors = 240;
  int num_actors = 400;
  double mean_sequence_length = 80.0;
  double level_up_probability = 0.03;
  /// Decay (per year) of the recency preference; larger = stronger
  /// lastness effect.
  double recency_decay = 0.35;
  /// Mixing weight of the recency force against the taste force, in
  /// [0, 1].
  double recency_weight = 0.75;
  uint64_t seed = 1995;
};

/// Metadata key holding each movie's release time (same unit as action
/// times: years).
inline constexpr const char* kFilmReleaseTimeKey = "release_time";

Result<GeneratedData> GenerateFilm(const FilmConfig& config);

}  // namespace datagen
}  // namespace upskill

#endif  // UPSKILL_DATAGEN_FILM_H_
