#include "datagen/language.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/string_util.h"

namespace upskill {
namespace datagen {

namespace {

// Correction-rule vocabulary. The first block is dominated by beginners
// (capitalization, basic punctuation, missing pronouns), the second by
// advanced learners (articles, brackets/annotator comments, prepositions),
// and the tail is skill-neutral noise. Labels follow Table II's
// "before -> after" style with "eps" for an empty side.
struct RuleSpec {
  const char* label;
  // Unnormalized selection weight per skill tier: {beginner, mid, advanced}.
  double weight[3];
};

constexpr RuleSpec kRules[] = {
    // Beginner-dominated.
    {"i -> I", {9.0, 4.0, 1.0}},
    {"eps -> I", {6.0, 3.0, 1.0}},
    {"english -> English", {5.0, 2.0, 0.7}},
    {"eps -> a", {5.0, 3.0, 1.5}},
    {"eps -> .", {5.0, 2.5, 1.0}},
    {"eps -> my", {3.5, 2.0, 0.8}},
    {". -> eps", {3.5, 2.0, 0.9}},
    {"eps -> English", {3.0, 1.5, 0.6}},
    {", -> eps", {3.0, 2.0, 1.0}},
    {"i -> eps", {3.0, 1.5, 0.6}},
    // Advanced-dominated.
    {"eps -> the", {1.5, 3.5, 8.0}},
    {"eps -> (", {0.5, 1.5, 5.0}},
    {"eps -> )", {0.5, 1.5, 5.0}},
    {"the -> eps", {1.0, 2.5, 5.0}},
    {"eps -> of", {0.8, 2.0, 4.5}},
    {"of -> eps", {0.6, 1.5, 3.0}},
    {"eps -> [", {0.3, 1.0, 2.5}},
    {"eps -> ]", {0.3, 1.0, 2.5}},
    {"a -> the", {0.8, 1.8, 3.5}},
    {"eps -> /", {0.3, 0.8, 2.0}},
    // Skill-neutral noise rules.
    {"is -> was", {2.0, 2.0, 2.0}},
    {"go -> went", {2.0, 2.0, 2.0}},
    {"eps -> ,", {2.5, 2.5, 2.5}},
    {"very -> really", {1.5, 1.5, 1.5}},
    {"eps -> to", {2.0, 2.0, 2.0}},
    {"in -> on", {1.8, 1.8, 1.8}},
    {"on -> in", {1.8, 1.8, 1.8}},
    {"this -> that", {1.2, 1.2, 1.2}},
    {"eps -> so", {1.0, 1.0, 1.0}},
    {"because -> since", {0.8, 0.8, 0.8}},
};

constexpr int kNumRules = static_cast<int>(std::size(kRules));

// Maps a 1-based level in [1, S] to a tier in {0, 1, 2}.
int TierForLevel(int level, int num_levels) {
  if (num_levels == 1) return 1;
  const double t = static_cast<double>(level - 1) /
                   static_cast<double>(num_levels - 1);
  if (t < 1.0 / 3.0) return 0;
  if (t < 2.0 / 3.0) return 1;
  return 2;
}

// Fig. 4b: corrections per corrector falls with skill (paper means 5.06,
// 4.85, 2.64 for S = 3).
double CorrectionsMean(int tier) {
  constexpr double kMeans[3] = {5.0, 4.8, 2.6};
  return kMeans[tier];
}

// Percentage of sentences corrected, also falling with skill.
double PctCorrectedMean(int tier) {
  constexpr double kMeans[3] = {62.0, 45.0, 24.0};
  return kMeans[tier];
}

}  // namespace

Result<GeneratedData> GenerateLanguage(const LanguageConfig& config) {
  if (config.num_levels < 2) {
    return Status::InvalidArgument("language generator needs num_levels >= 2");
  }
  if (config.num_users < 1) {
    return Status::InvalidArgument("num_users must be positive");
  }
  Rng rng(config.seed);

  std::vector<std::string> rule_labels;
  rule_labels.reserve(static_cast<size_t>(kNumRules));
  for (const RuleSpec& rule : kRules) rule_labels.push_back(rule.label);

  FeatureSchema schema;
  Result<int> f0 = schema.AddCount("sentence_count");
  if (!f0.ok()) return f0.status();
  Result<int> f1 =
      schema.AddReal("corrections_per_corrector", DistributionKind::kGamma);
  if (!f1.ok()) return f1.status();
  Result<int> f2 = schema.AddReal("pct_corrected", DistributionKind::kGamma);
  if (!f2.ok()) return f2.status();
  Result<int> f3 = schema.AddCategorical("correction_rule", kNumRules,
                                         std::move(rule_labels));
  if (!f3.ok()) return f3.status();

  Dataset dataset((ItemTable(std::move(schema))));
  GroundTruth truth;
  truth.skill.resize(static_cast<size_t>(config.num_users));

  std::vector<double> rule_weights(static_cast<size_t>(kNumRules));
  for (int u = 0; u < config.num_users; ++u) {
    const UserId user = dataset.AddUser(StringPrintf("learner-%05d", u));
    const bool dedicated = rng.NextBernoulli(config.dedicated_user_fraction);
    const int64_t length = std::max<int64_t>(
        1, rng.NextPoisson(dedicated ? config.dedicated_mean_articles
                                     : config.casual_mean_articles));
    int level = 1;  // learners start at the bottom in this domain
    std::vector<int>& levels = truth.skill[static_cast<size_t>(user)];
    levels.reserve(static_cast<size_t>(length));
    for (int64_t n = 0; n < length; ++n) {
      const int tier = TierForLevel(level, config.num_levels);
      // Each action writes a brand-new article (item occurs once).
      const double sentences =
          static_cast<double>(std::max<int64_t>(1, rng.NextPoisson(11.0)));
      const double corrections =
          rng.NextGamma(3.0, CorrectionsMean(tier) / 3.0);
      const double pct = rng.NextGamma(6.0, PctCorrectedMean(tier) / 6.0);
      for (int r = 0; r < kNumRules; ++r) {
        rule_weights[static_cast<size_t>(r)] = kRules[r].weight[tier];
      }
      const double rule =
          static_cast<double>(rng.NextCategorical(rule_weights));
      const double values[] = {sentences, corrections, pct, rule};
      Result<ItemId> item = dataset.mutable_items().AddItem(
          values, StringPrintf("article-%d-%lld", u,
                               static_cast<long long>(n)));
      if (!item.ok()) return item.status();
      // Item difficulty tracks the author's level: harder articles are the
      // ones only skilled writers produce.
      truth.difficulty.push_back(static_cast<double>(level));
      UPSKILL_RETURN_IF_ERROR(dataset.AddAction(user, n, item.value()));
      levels.push_back(level);
      if (level < config.num_levels &&
          rng.NextBernoulli(config.level_up_probability)) {
        ++level;
      }
    }
  }

  GeneratedData data;
  data.dataset = std::move(dataset);
  data.truth = std::move(truth);
  return data;
}

}  // namespace datagen
}  // namespace upskill
