#ifndef UPSKILL_DATAGEN_LANGUAGE_H_
#define UPSKILL_DATAGEN_LANGUAGE_H_

#include "common/status.h"
#include "datagen/types.h"

namespace upskill {
namespace datagen {

/// Simulated Lang-8-style language-learning data (substitute for the NAIST
/// Lang-8 corpus; see DESIGN.md). Every action posts a *new* article, so
/// each item occurs exactly once and the schema has no item-ID feature —
/// the property that motivates the paper's multi-faceted model for this
/// domain. Articles carry four features:
///   - sentence count (Poisson, level-independent — the paper found no
///     trend, Fig. 4a);
///   - mean corrections per corrector (gamma, decreasing with skill,
///     Fig. 4b);
///   - percentage of corrected sentences (gamma, decreasing with skill);
///   - dominant correction rule (categorical; capitalization/punctuation
///     rules dominate low skill, article/bracket rules high skill —
///     Table II).
struct LanguageConfig {
  int num_levels = 3;  // the paper selects S = 3 for this domain
  int num_users = 4000;
  /// Most users post a handful of articles; a heavy tail posts many
  /// (mirrors Lang-8's mean of ~4.8 actions/user with some power users).
  double casual_mean_articles = 4.0;
  double dedicated_mean_articles = 70.0;
  double dedicated_user_fraction = 0.08;
  /// Per-action probability of improving one level.
  double level_up_probability = 0.05;
  uint64_t seed = 81;
};

/// Index of rule labels in the generated "correction_rule" vocabulary is
/// stable; labels include the rules the paper lists in Table II (e.g.
/// "i -> I", "eps -> the").
Result<GeneratedData> GenerateLanguage(const LanguageConfig& config);

}  // namespace datagen
}  // namespace upskill

#endif  // UPSKILL_DATAGEN_LANGUAGE_H_
