#include "datagen/synthetic.h"

#include <cmath>

#include "common/rng.h"
#include "common/string_util.h"

namespace upskill {
namespace datagen {

namespace {

// Level-conditioned feature distributions (Section VI-A step 1).

// Categorical: the favored value is (s-1) mod C with the bulk of the
// mass; remaining mass spreads uniformly, so neighbouring levels overlap
// but remain separable.
std::vector<double> CategoricalWeights(int level, int cardinality) {
  std::vector<double> weights(static_cast<size_t>(cardinality),
                              0.4 / (cardinality - 1));
  weights[static_cast<size_t>((level - 1) % cardinality)] = 0.6;
  return weights;
}

// Gamma: fixed shape, level-increasing mean.
constexpr double kGammaShape = 6.0;
double GammaMean(int level) { return 1.5 + 2.0 * level; }

// Poisson: level-increasing rate.
double PoissonRate(int level) { return 2.0 + 2.0 * level; }

}  // namespace

Result<GeneratedData> GenerateSynthetic(const SyntheticConfig& config) {
  if (config.num_levels < 1) {
    return Status::InvalidArgument("num_levels must be >= 1");
  }
  if (config.num_items % config.num_levels != 0) {
    return Status::InvalidArgument(
        "num_items must be a multiple of num_levels (equal pools)");
  }
  if (config.categorical_cardinality < 2) {
    return Status::InvalidArgument("categorical cardinality must be >= 2");
  }
  if (!(config.at_level_probability >= 0.0 &&
        config.at_level_probability <= 1.0) ||
      !(config.level_up_probability >= 0.0 &&
        config.level_up_probability <= 1.0)) {
    return Status::InvalidArgument("probabilities must be in [0, 1]");
  }

  Rng rng(config.seed);
  const int S = config.num_levels;
  const int per_level = config.num_items / S;

  // Schema: item ID + one categorical + one gamma + one Poisson feature.
  FeatureSchema schema;
  Result<int> id = schema.AddIdFeature(config.num_items);
  if (!id.ok()) return id.status();
  Result<int> cat =
      schema.AddCategorical("category", config.categorical_cardinality);
  if (!cat.ok()) return cat.status();
  Result<int> real = schema.AddReal("intensity", DistributionKind::kGamma);
  if (!real.ok()) return real.status();
  Result<int> count = schema.AddCount("complexity");
  if (!count.ok()) return count.status();

  // Step 2: the same number of items per level; difficulty = level.
  ItemTable items(std::move(schema));
  GroundTruth truth;
  truth.difficulty.reserve(static_cast<size_t>(config.num_items));
  for (int s = 1; s <= S; ++s) {
    const std::vector<double> weights =
        CategoricalWeights(s, config.categorical_cardinality);
    for (int n = 0; n < per_level; ++n) {
      const double category = static_cast<double>(rng.NextCategorical(weights));
      const double intensity =
          rng.NextGamma(kGammaShape, GammaMean(s) / kGammaShape);
      // Poisson counts may be 0; the schema allows that.
      const double complexity =
          static_cast<double>(rng.NextPoisson(PoissonRate(s)));
      const double values[] = {-1.0, category, intensity, complexity};
      Result<ItemId> added = items.AddItem(values);
      if (!added.ok()) return added.status();
      truth.difficulty.push_back(static_cast<double>(s));
    }
  }

  // Step 3: user sequences with monotone latent skill.
  Dataset dataset(std::move(items));
  truth.skill.resize(static_cast<size_t>(config.num_users));
  for (int u = 0; u < config.num_users; ++u) {
    const UserId user = dataset.AddUser(StringPrintf("user-%05d", u));
    // (a) Sequence length ~ Poisson(mean), at least 1.
    const int64_t length =
        std::max<int64_t>(1, rng.NextPoisson(config.mean_sequence_length));
    // (b) Initial level uniform over S.
    int level = 1 + static_cast<int>(rng.NextInt(S));
    // Learner speed class (heterogeneous speeds are an extension knob).
    const bool fast = config.fast_user_fraction > 0.0 &&
                      rng.NextBernoulli(config.fast_user_fraction);
    if (config.fast_user_fraction > 0.0) {
      truth.user_class.push_back(fast ? 1 : 0);
    }
    const double level_up_probability =
        fast ? std::min(1.0, config.level_up_probability *
                                 config.fast_multiplier)
             : config.level_up_probability;
    std::vector<int>& levels = truth.skill[static_cast<size_t>(user)];
    levels.reserve(static_cast<size_t>(length));
    int64_t now = 0;
    for (int64_t n = 0; n < length; ++n) {
      // Forgetting extension: an occasional long break degrades skill.
      if (n > 0) {
        if (config.break_probability > 0.0 &&
            rng.NextBernoulli(config.break_probability)) {
          now += config.break_gap;
          if (level > 1 && rng.NextBernoulli(config.forget_probability)) {
            --level;
          }
        } else {
          now += 1;
        }
      }
      // (c) At-level pool with probability p, else a uniformly chosen
      // easier pool (level 1 users only have the at-level pool).
      int pool_level = level;
      const bool at_level =
          level == 1 || rng.NextBernoulli(config.at_level_probability);
      if (!at_level) {
        pool_level = 1 + static_cast<int>(rng.NextInt(level - 1));
      }
      const ItemId item = static_cast<ItemId>(
          static_cast<int64_t>(pool_level - 1) * per_level +
          rng.NextInt(per_level));
      UPSKILL_RETURN_IF_ERROR(dataset.AddAction(user, now, item));
      levels.push_back(level);
      // (d) Level up only after an at-level selection.
      if (pool_level == level && level < S &&
          rng.NextBernoulli(level_up_probability)) {
        ++level;
      }
    }
  }

  GeneratedData data;
  data.dataset = std::move(dataset);
  data.truth = std::move(truth);
  return data;
}

}  // namespace datagen
}  // namespace upskill
