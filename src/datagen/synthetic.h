#ifndef UPSKILL_DATAGEN_SYNTHETIC_H_
#define UPSKILL_DATAGEN_SYNTHETIC_H_

#include "common/status.h"
#include "datagen/types.h"

namespace upskill {
namespace datagen {

/// Parameters of the paper's synthetic generator (Section VI-A, steps
/// 1-3). Defaults reproduce the "Synthetic" dataset: 10,000 users, 50,000
/// items (10,000 per level), sequence lengths ~ Poisson(50), at-level
/// selection probability 0.5, level-up probability 0.1. Setting num_items
/// to 10,000 reproduces "Synthetic_dense" (Section VI-D, data sparsity).
struct SyntheticConfig {
  int num_levels = 5;
  int num_users = 10000;
  /// Total items; must be a multiple of num_levels (equal pools).
  int num_items = 50000;
  /// Cardinality of the non-ID categorical feature.
  int categorical_cardinality = 10;
  double mean_sequence_length = 50.0;
  /// Probability of drawing the next item from the at-level pool
  /// (otherwise an easier pool is used).
  double at_level_probability = 0.5;
  /// Probability the user levels up after an at-level selection.
  double level_up_probability = 0.1;
  /// Heterogeneous learner speeds (off by default): this fraction of
  /// users levels up `fast_multiplier` times more readily. Ground truth
  /// records each user's class (0 = regular, 1 = fast) so the
  /// progression-class component (TransitionModel::kPerClass) can be
  /// validated.
  double fast_user_fraction = 0.0;
  double fast_multiplier = 4.0;
  /// Forgetting extension (off by default, matching the paper's setup):
  /// with `break_probability` per step the user goes on a long break of
  /// `break_gap` time units, after which their skill drops one level with
  /// `forget_probability` (Ebbinghaus-style decay, Section VII).
  double break_probability = 0.0;
  int64_t break_gap = 1000;
  double forget_probability = 0.8;
  uint64_t seed = 20200407;  // ICDE 2020 start date
};

/// Generates the dataset. Items carry four features: the item ID, a
/// categorical whose favored value cycles with the level, a gamma with
/// level-increasing mean, and a Poisson with level-increasing mean. Each
/// item's true difficulty equals the level whose distributions produced
/// it.
Result<GeneratedData> GenerateSynthetic(const SyntheticConfig& config);

}  // namespace datagen
}  // namespace upskill

#endif  // UPSKILL_DATAGEN_SYNTHETIC_H_
