#ifndef UPSKILL_DATAGEN_TYPES_H_
#define UPSKILL_DATAGEN_TYPES_H_

#include <vector>

#include "core/skill_model.h"
#include "data/dataset.h"

namespace upskill {
namespace datagen {

/// Latent state used to generate a dataset, kept alongside it so
/// experiments can score recovered skill/difficulty against the truth
/// (Section VI-D) and tests can verify that generators plant the intended
/// structure.
struct GroundTruth {
  /// True skill level of each action, aligned with the dataset sequences.
  SkillAssignments skill;
  /// True difficulty per item, on the same [1, S] scale.
  std::vector<double> difficulty;
  /// Latent per-user progression class, when the generator distinguishes
  /// learner speeds (0 = default/slow; empty when homogeneous).
  std::vector<int> user_class;
};

/// A generated dataset plus its latent ground truth.
struct GeneratedData {
  Dataset dataset;
  GroundTruth truth;
};

}  // namespace datagen
}  // namespace upskill

#endif  // UPSKILL_DATAGEN_TYPES_H_
