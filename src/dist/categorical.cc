#include "dist/categorical.h"

#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/string_util.h"
#include "simd/kernels.h"

namespace upskill {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}  // namespace

Categorical::Categorical(int cardinality, double smoothing)
    : cardinality_(cardinality), smoothing_(smoothing) {
  UPSKILL_CHECK(cardinality_ > 0);
  UPSKILL_CHECK(smoothing_ >= 0.0);
  probs_.assign(static_cast<size_t>(cardinality_),
                1.0 / static_cast<double>(cardinality_));
  RecomputeLogProbs();
}

double Categorical::LogProb(double x) const {
  const int c = static_cast<int>(x);
  if (c < 0 || c >= cardinality_ || static_cast<double>(c) != x) {
    return kNegInf;
  }
  return log_probs_[static_cast<size_t>(c)];
}

void Categorical::LogProbBatch(std::span<const double> xs,
                               std::span<double> out) const {
  UPSKILL_CHECK(xs.size() == out.size());
  // The per-category log table already exists, so the batch is exactly
  // the kernel's gather shape: integral in-range lanes load
  // log_probs_[c], everything else is -inf. Indices at or above the
  // cardinality are invalid here, not an overflow to patch.
  simd::LookupLogProbBatch(xs, log_probs_, out,
                           /*any_table_overflow=*/nullptr);
}

void Categorical::Fit(std::span<const double> values) {
  if (values.empty()) return;
  std::vector<double> counts(static_cast<size_t>(cardinality_), 0.0);
  double total = 0.0;
  for (double v : values) {
    const int c = static_cast<int>(v);
    UPSKILL_CHECK(c >= 0 && c < cardinality_);
    counts[static_cast<size_t>(c)] += 1.0;
    total += 1.0;
  }
  const double denom = smoothing_ * static_cast<double>(cardinality_) + total;
  UPSKILL_CHECK(denom > 0.0);
  for (int c = 0; c < cardinality_; ++c) {
    probs_[static_cast<size_t>(c)] =
        (smoothing_ + counts[static_cast<size_t>(c)]) / denom;
  }
  RecomputeLogProbs();
}

void Categorical::FitWeighted(std::span<const double> values,
                              std::span<const double> weights) {
  UPSKILL_CHECK(values.size() == weights.size());
  std::vector<double> counts(static_cast<size_t>(cardinality_), 0.0);
  double total = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    const double w = weights[i];
    UPSKILL_CHECK(w >= 0.0);
    if (w == 0.0) continue;
    const int c = static_cast<int>(values[i]);
    UPSKILL_CHECK(c >= 0 && c < cardinality_);
    counts[static_cast<size_t>(c)] += w;
    total += w;
  }
  if (total <= 0.0) return;
  const double denom = smoothing_ * static_cast<double>(cardinality_) + total;
  for (int c = 0; c < cardinality_; ++c) {
    probs_[static_cast<size_t>(c)] =
        (smoothing_ + counts[static_cast<size_t>(c)]) / denom;
  }
  RecomputeLogProbs();
}

SufficientStats Categorical::MakeStats() const {
  return SufficientStats(DistributionKind::kCategorical, cardinality_);
}

void Categorical::FitFromStats(const SufficientStats& stats) {
  UPSKILL_CHECK(stats.kind() == DistributionKind::kCategorical);
  const std::span<const double> counts = stats.category_counts();
  UPSKILL_CHECK(static_cast<int>(counts.size()) == cardinality_);
  if (stats.empty()) return;  // keep current parameters
  const double denom =
      smoothing_ * static_cast<double>(cardinality_) + stats.count();
  UPSKILL_CHECK(denom > 0.0);
  log_probs_.resize(probs_.size());
  // Hard-assignment statistics are small integer counts, so most cells
  // share a handful of distinct count values; memoizing the normalized
  // probability and its log per distinct small count turns the dominant
  // O(cardinality) division-and-log loop into table lookups. The memo
  // evaluates exactly the expressions of the direct path on the same
  // inputs, so the result is bitwise identical.
  constexpr int kMemoSize = 64;
  double memo_p[kMemoSize];
  double memo_log[kMemoSize];
  bool have[kMemoSize] = {};
  for (int c = 0; c < cardinality_; ++c) {
    const double cnt = counts[static_cast<size_t>(c)];
    double p;
    double log_p;
    const int k = static_cast<int>(cnt);
    if (k >= 0 && k < kMemoSize && static_cast<double>(k) == cnt) {
      if (!have[k]) {
        have[k] = true;
        memo_p[k] = (smoothing_ + cnt) / denom;
        memo_log[k] = memo_p[k] > 0.0 ? std::log(memo_p[k]) : kNegInf;
      }
      p = memo_p[k];
      log_p = memo_log[k];
    } else {
      p = (smoothing_ + cnt) / denom;
      log_p = p > 0.0 ? std::log(p) : kNegInf;
    }
    probs_[static_cast<size_t>(c)] = p;
    log_probs_[static_cast<size_t>(c)] = log_p;
  }
}

double Categorical::Sample(Rng& rng) const {
  return static_cast<double>(rng.NextCategorical(probs_));
}

double Categorical::Mean() const {
  double mean = 0.0;
  for (int c = 0; c < cardinality_; ++c) {
    mean += static_cast<double>(c) * probs_[static_cast<size_t>(c)];
  }
  return mean;
}

std::unique_ptr<Distribution> Categorical::Clone() const {
  return std::make_unique<Categorical>(*this);
}

std::vector<double> Categorical::Parameters() const { return probs_; }

Status Categorical::SetParameters(std::span<const double> params) {
  return SetProbabilities(params);
}

Status Categorical::SetProbabilities(std::span<const double> probs) {
  if (static_cast<int>(probs.size()) != cardinality_) {
    return Status::InvalidArgument(StringPrintf(
        "categorical expects %d probabilities, got %zu", cardinality_,
        probs.size()));
  }
  double total = 0.0;
  for (double p : probs) {
    if (p < 0.0) return Status::InvalidArgument("negative probability");
    total += p;
  }
  if (std::abs(total - 1.0) > 1e-6) {
    return Status::InvalidArgument(
        StringPrintf("probabilities sum to %f, expected 1", total));
  }
  probs_.assign(probs.begin(), probs.end());
  RecomputeLogProbs();
  return Status::OK();
}

double Categorical::Probability(int c) const {
  if (c < 0 || c >= cardinality_) return 0.0;
  return probs_[static_cast<size_t>(c)];
}

std::string Categorical::DebugString() const {
  return StringPrintf("Categorical(C=%d, lambda=%g)", cardinality_,
                      smoothing_);
}

void Categorical::RecomputeLogProbs() {
  log_probs_.resize(probs_.size());
  for (size_t c = 0; c < probs_.size(); ++c) {
    log_probs_[c] = probs_[c] > 0.0 ? std::log(probs_[c]) : kNegInf;
  }
}

}  // namespace upskill
