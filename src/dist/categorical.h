#ifndef UPSKILL_DIST_CATEGORICAL_H_
#define UPSKILL_DIST_CATEGORICAL_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dist/distribution.h"

namespace upskill {

/// Categorical distribution over {0, ..., cardinality-1} with additive
/// (Laplace) smoothing. The smoothed MLE is Equation 6 of the paper:
///
///   theta_c = (lambda + n_c) / (lambda * C + n)
///
/// with pseudo-count lambda (paper default 0.01, following Shin et al.).
class Categorical : public Distribution {
 public:
  /// Creates a uniform categorical over `cardinality` values.
  /// `smoothing` is the additive pseudo-count lambda used by Fit().
  Categorical(int cardinality, double smoothing);

  DistributionKind kind() const override {
    return DistributionKind::kCategorical;
  }
  double LogProb(double x) const override;
  void LogProbBatch(std::span<const double> xs,
                    std::span<double> out) const override;
  void Fit(std::span<const double> values) override;
  void FitWeighted(std::span<const double> values,
                   std::span<const double> weights) override;
  SufficientStats MakeStats() const override;
  void FitFromStats(const SufficientStats& stats) override;
  double Sample(Rng& rng) const override;
  double Mean() const override;
  std::unique_ptr<Distribution> Clone() const override;
  std::vector<double> Parameters() const override;
  Status SetParameters(std::span<const double> params) override;
  std::string DebugString() const override;

  int cardinality() const { return cardinality_; }
  double smoothing() const { return smoothing_; }

  /// Probability of category `c` (0 for out-of-range categories).
  double Probability(int c) const;

  /// Directly sets the probability vector (must be non-negative and sum to
  /// ~1); used by data generators and tests.
  Status SetProbabilities(std::span<const double> probs);

 private:
  int cardinality_;
  double smoothing_;
  std::vector<double> probs_;
  std::vector<double> log_probs_;

  void RecomputeLogProbs();
};

}  // namespace upskill

#endif  // UPSKILL_DIST_CATEGORICAL_H_
