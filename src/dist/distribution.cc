#include "dist/distribution.h"

namespace upskill {

const char* DistributionKindToString(DistributionKind kind) {
  switch (kind) {
    case DistributionKind::kCategorical:
      return "categorical";
    case DistributionKind::kPoisson:
      return "poisson";
    case DistributionKind::kGamma:
      return "gamma";
    case DistributionKind::kLogNormal:
      return "lognormal";
  }
  return "unknown";
}

Result<DistributionKind> DistributionKindFromString(const std::string& name) {
  if (name == "categorical") return DistributionKind::kCategorical;
  if (name == "poisson") return DistributionKind::kPoisson;
  if (name == "gamma") return DistributionKind::kGamma;
  if (name == "lognormal") return DistributionKind::kLogNormal;
  return Status::InvalidArgument("unknown distribution kind: " + name);
}

}  // namespace upskill
