#include "dist/distribution.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace upskill {

const char* DistributionKindToString(DistributionKind kind) {
  switch (kind) {
    case DistributionKind::kCategorical:
      return "categorical";
    case DistributionKind::kPoisson:
      return "poisson";
    case DistributionKind::kGamma:
      return "gamma";
    case DistributionKind::kLogNormal:
      return "lognormal";
  }
  return "unknown";
}

Result<DistributionKind> DistributionKindFromString(const std::string& name) {
  if (name == "categorical") return DistributionKind::kCategorical;
  if (name == "poisson") return DistributionKind::kPoisson;
  if (name == "gamma") return DistributionKind::kGamma;
  if (name == "lognormal") return DistributionKind::kLogNormal;
  return Status::InvalidArgument("unknown distribution kind: " + name);
}

SufficientStats::SufficientStats(DistributionKind kind, int cardinality)
    : kind_(kind) {
  if (kind_ == DistributionKind::kCategorical) {
    UPSKILL_CHECK(cardinality > 0);
    counts_.assign(static_cast<size_t>(cardinality), 0.0);
  }
}

void SufficientStats::Clear() {
  count_ = 0.0;
  sum_ = 0.0;
  sum_log_ = 0.0;
  sum_log_sq_ = 0.0;
  std::fill(counts_.begin(), counts_.end(), 0.0);
}

void SufficientStats::AddColumn(std::span<const double> xs,
                                std::span<const double> weights) {
  UPSKILL_CHECK(xs.size() == weights.size());
  switch (kind_) {
    case DistributionKind::kCategorical: {
      double* counts = counts_.data();
      const size_t cardinality = counts_.size();
      for (size_t i = 0; i < xs.size(); ++i) {
        const double w = weights[i];
        UPSKILL_CHECK(w >= 0.0);
        if (w == 0.0) continue;
        const size_t c = static_cast<size_t>(static_cast<int>(xs[i]));
        UPSKILL_CHECK(c < cardinality);
        counts[c] += w;
        count_ += w;
      }
      break;
    }
    case DistributionKind::kPoisson: {
      for (size_t i = 0; i < xs.size(); ++i) {
        const double w = weights[i];
        UPSKILL_CHECK(w >= 0.0);
        if (w == 0.0) continue;
        UPSKILL_CHECK(xs[i] >= 0.0);
        sum_ += w * xs[i];
        count_ += w;
      }
      break;
    }
    case DistributionKind::kGamma: {
      for (size_t i = 0; i < xs.size(); ++i) {
        const double w = weights[i];
        UPSKILL_CHECK(w >= 0.0);
        if (w == 0.0) continue;
        const double clamped = std::max(xs[i], kPositiveObservationFloor);
        sum_ += w * clamped;
        sum_log_ += w * std::log(clamped);
        count_ += w;
      }
      break;
    }
    case DistributionKind::kLogNormal: {
      for (size_t i = 0; i < xs.size(); ++i) {
        const double w = weights[i];
        UPSKILL_CHECK(w >= 0.0);
        if (w == 0.0) continue;
        const double log_x =
            std::log(std::max(xs[i], kPositiveObservationFloor));
        sum_log_ += w * log_x;
        sum_log_sq_ += w * log_x * log_x;
        count_ += w;
      }
      break;
    }
  }
}

void SufficientStats::AddPositiveTransformedColumn(
    std::span<const double> clamped, std::span<const double> log_clamped,
    std::span<const double> weights) {
  UPSKILL_CHECK(clamped.size() == weights.size());
  UPSKILL_CHECK(log_clamped.size() == weights.size());
  if (kind_ == DistributionKind::kGamma) {
    for (size_t i = 0; i < clamped.size(); ++i) {
      const double w = weights[i];
      sum_ += w * clamped[i];
      sum_log_ += w * log_clamped[i];
      count_ += w;
    }
  } else {
    UPSKILL_CHECK(kind_ == DistributionKind::kLogNormal);
    for (size_t i = 0; i < clamped.size(); ++i) {
      const double w = weights[i];
      const double log_x = log_clamped[i];
      sum_log_ += w * log_x;
      sum_log_sq_ += w * log_x * log_x;
      count_ += w;
    }
  }
}

void SufficientStats::Merge(const SufficientStats& other) {
  UPSKILL_CHECK(kind_ == other.kind_);
  UPSKILL_CHECK(counts_.size() == other.counts_.size());
  count_ += other.count_;
  sum_ += other.sum_;
  sum_log_ += other.sum_log_;
  sum_log_sq_ += other.sum_log_sq_;
  for (size_t c = 0; c < counts_.size(); ++c) counts_[c] += other.counts_[c];
}

void Distribution::LogProbBatch(std::span<const double> xs,
                                std::span<double> out) const {
  UPSKILL_CHECK(xs.size() == out.size());
  for (size_t i = 0; i < xs.size(); ++i) out[i] = LogProb(xs[i]);
}

void Distribution::LogProbBatchWithLogs(std::span<const double> xs,
                                        std::span<const double> log_xs,
                                        std::span<double> out) const {
  UPSKILL_CHECK(xs.size() == log_xs.size());
  LogProbBatch(xs, out);
}

SufficientStats Distribution::MakeStats() const {
  return SufficientStats(kind());
}

}  // namespace upskill
