#ifndef UPSKILL_DIST_DISTRIBUTION_H_
#define UPSKILL_DIST_DISTRIBUTION_H_

#include <algorithm>
#include <cmath>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"

namespace upskill {

/// Kinds of per-feature generative components supported by the skill model
/// (Section IV-A): categorical for discrete attributes, Poisson for counts,
/// gamma and log-normal for positive real-valued attributes.
enum class DistributionKind {
  kCategorical,
  kPoisson,
  kGamma,
  kLogNormal,
};

/// Short stable name used in serialized models ("categorical", ...).
const char* DistributionKindToString(DistributionKind kind);

/// Parses the serialized name back into a kind.
Result<DistributionKind> DistributionKindFromString(const std::string& name);

/// Floor applied to observations of positive-support distributions (gamma,
/// log-normal) before taking logs, so degenerate inputs cannot poison a
/// fit. Shared between the Fit implementations and SufficientStats::Add so
/// both paths clamp identically.
inline constexpr double kPositiveObservationFloor = 1e-10;

/// Accumulated sufficient statistics for one component's maximum-likelihood
/// update (Equations 5-7). Every kind's MLE consumes only a fixed-size
/// summary of its observations, so the update step can stream over actions
/// once instead of materializing per-(feature, level) value buffers:
///
///   categorical: per-category weighted counts
///   Poisson:     (n, Σ w·x)
///   gamma:       (n, Σ w·x, Σ w·log x)   — its Newton solve only needs
///                the mean and mean-log, so the iterations are unchanged
///   log-normal:  (n, Σ w·log x, Σ w·log² x)
///
/// `n` is the total weight (the observation count for unit weights).
/// Zero-weight observations are skipped entirely. Accumulators for the
/// same kind (and cardinality) merge associatively; merge order only
/// matters at the level of floating-point rounding, and not at all for
/// the integer-valued sums (categorical counts, Poisson counts).
class SufficientStats {
 public:
  SufficientStats() = default;
  /// Empty accumulator for `kind`; `cardinality` sizes the histogram and
  /// is required for (and only used by) categorical.
  explicit SufficientStats(DistributionKind kind, int cardinality = 0);

  DistributionKind kind() const { return kind_; }
  /// Total accumulated weight.
  double count() const { return count_; }
  bool empty() const { return count_ <= 0.0; }

  /// Forgets all accumulated observations (keeps kind and cardinality).
  void Clear();

  /// Accumulates one observation with non-negative weight. The per-kind
  /// transformation (clamping, logs, truncation to a category index)
  /// mirrors the corresponding Fit/FitWeighted exactly. Inline: this is
  /// the update step's innermost call (once per action per feature), and
  /// unit-weight calls must fold the weight checks away.
  void Add(double x, double weight = 1.0) {
    UPSKILL_CHECK(weight >= 0.0);
    if (weight == 0.0) return;
    switch (kind_) {
      case DistributionKind::kCategorical: {
        const size_t c = static_cast<size_t>(static_cast<int>(x));
        UPSKILL_CHECK(c < counts_.size());
        counts_[c] += weight;
        break;
      }
      case DistributionKind::kPoisson: {
        UPSKILL_CHECK(x >= 0.0);
        sum_ += weight * x;
        break;
      }
      case DistributionKind::kGamma: {
        const double clamped = std::max(x, kPositiveObservationFloor);
        sum_ += weight * clamped;
        sum_log_ += weight * std::log(clamped);
        break;
      }
      case DistributionKind::kLogNormal: {
        const double log_x =
            std::log(std::max(x, kPositiveObservationFloor));
        sum_log_ += weight * log_x;
        sum_log_sq_ += weight * log_x * log_x;
        break;
      }
    }
    count_ += weight;
  }

  /// Bulk weighted accumulation over a dense column: element-by-element
  /// identical (same operations, same order) to calling Add(xs[i],
  /// weights[i]) for every i, with the kind dispatch hoisted out of the
  /// loop. Spans must have equal length; zero-weight elements contribute
  /// nothing.
  void AddColumn(std::span<const double> xs, std::span<const double> weights);

  /// Bulk weighted accumulation for the positive-support kinds (gamma,
  /// log-normal) when the clamped observations and their logs are already
  /// computed — the update step hoists both per *item*, turning O(|A|)
  /// logs into O(|I|). Element i must satisfy
  /// `clamped[i] == max(x_i, kPositiveObservationFloor)` and
  /// `log_clamped[i] == log(clamped[i])`; the accumulated sums then equal
  /// AddColumn(xs, weights) term by term (the loop is branchless, so zero
  /// weights contribute exact ±0.0 terms instead of being skipped).
  void AddPositiveTransformedColumn(std::span<const double> clamped,
                                    std::span<const double> log_clamped,
                                    std::span<const double> weights);

  /// Adds another accumulator of the same kind into this one.
  void Merge(const SufficientStats& other);

  double sum() const { return sum_; }
  double sum_log() const { return sum_log_; }
  double sum_log_sq() const { return sum_log_sq_; }
  std::span<const double> category_counts() const { return counts_; }

 private:
  DistributionKind kind_ = DistributionKind::kPoisson;
  double count_ = 0.0;
  double sum_ = 0.0;
  double sum_log_ = 0.0;
  double sum_log_sq_ = 0.0;
  std::vector<double> counts_;  // categorical only
};

/// A univariate probability distribution P_f(x | theta_f(s)) for one item
/// feature at one skill level. Implementations are value-semantic via
/// Clone(); observations are passed as doubles (categorical values are
/// non-negative integer indices stored exactly in a double).
class Distribution {
 public:
  virtual ~Distribution() = default;

  virtual DistributionKind kind() const = 0;

  /// Log density / log mass at `x`. Out-of-support observations yield
  /// -infinity rather than an error, matching the likelihood semantics of
  /// Equation 3.
  virtual double LogProb(double x) const = 0;

  /// Batched log density: out[i] = LogProb(xs[i]), bitwise identical, with
  /// the parameter-only subexpressions hoisted out of the loop. Spans must
  /// have equal length. Overridden per kind with a tight non-virtual inner
  /// loop; callers hoist the single virtual dispatch per column.
  virtual void LogProbBatch(std::span<const double> xs,
                            std::span<double> out) const;

  /// LogProbBatch with the element logs precomputed: log_xs[i] must equal
  /// std::log(xs[i]) for every xs[i] > 0 (other entries are ignored).
  /// Densities on log-transformed support (Gamma, LogNormal) override
  /// this to skip the std::log call — the dominant cost of their batch —
  /// so callers scoring the SAME column under many (level, feature)
  /// parameter sets (SkillModel's log-prob cache: S levels per feature)
  /// pay for the logs once. The default ignores `log_xs` and delegates to
  /// LogProbBatch; results are bitwise identical either way.
  virtual void LogProbBatchWithLogs(std::span<const double> xs,
                                    std::span<const double> log_xs,
                                    std::span<double> out) const;

  /// Maximum-likelihood re-fit from the given observations (the update
  /// step, Equations 5-7). Implementations must tolerate an empty span by
  /// keeping their current parameters, because a skill level can receive
  /// zero assigned actions in an iteration.
  virtual void Fit(std::span<const double> values) = 0;

  /// Weighted maximum-likelihood re-fit: observation i carries
  /// non-negative weight `weights[i]` (the E-step responsibilities of the
  /// EM trainer). Keeps current parameters when the total weight is
  /// (numerically) zero. Spans must have equal length.
  virtual void FitWeighted(std::span<const double> values,
                           std::span<const double> weights) = 0;

  /// Empty sufficient-statistics accumulator matching this distribution
  /// (categorical pre-sizes its histogram to the cardinality).
  virtual SufficientStats MakeStats() const;

  /// Maximum-likelihood re-fit from accumulated statistics; equivalent to
  /// Fit (FitWeighted for weighted accumulation) over the same
  /// observations. Keeps current parameters when `stats` is empty.
  virtual void FitFromStats(const SufficientStats& stats) = 0;

  /// Draws one observation.
  virtual double Sample(Rng& rng) const = 0;

  /// Expected value under the current parameters.
  virtual double Mean() const = 0;

  /// Deep copy.
  virtual std::unique_ptr<Distribution> Clone() const = 0;

  /// Flat parameter vector (layout is implementation-defined but stable,
  /// and accepted by SetParameters).
  virtual std::vector<double> Parameters() const = 0;

  /// Restores parameters produced by Parameters().
  virtual Status SetParameters(std::span<const double> params) = 0;

  /// Human-readable one-line summary, e.g. "Poisson(lambda=4.20)".
  virtual std::string DebugString() const = 0;
};

}  // namespace upskill

#endif  // UPSKILL_DIST_DISTRIBUTION_H_
