#ifndef UPSKILL_DIST_DISTRIBUTION_H_
#define UPSKILL_DIST_DISTRIBUTION_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace upskill {

/// Kinds of per-feature generative components supported by the skill model
/// (Section IV-A): categorical for discrete attributes, Poisson for counts,
/// gamma and log-normal for positive real-valued attributes.
enum class DistributionKind {
  kCategorical,
  kPoisson,
  kGamma,
  kLogNormal,
};

/// Short stable name used in serialized models ("categorical", ...).
const char* DistributionKindToString(DistributionKind kind);

/// Parses the serialized name back into a kind.
Result<DistributionKind> DistributionKindFromString(const std::string& name);

/// A univariate probability distribution P_f(x | theta_f(s)) for one item
/// feature at one skill level. Implementations are value-semantic via
/// Clone(); observations are passed as doubles (categorical values are
/// non-negative integer indices stored exactly in a double).
class Distribution {
 public:
  virtual ~Distribution() = default;

  virtual DistributionKind kind() const = 0;

  /// Log density / log mass at `x`. Out-of-support observations yield
  /// -infinity rather than an error, matching the likelihood semantics of
  /// Equation 3.
  virtual double LogProb(double x) const = 0;

  /// Maximum-likelihood re-fit from the given observations (the update
  /// step, Equations 5-7). Implementations must tolerate an empty span by
  /// keeping their current parameters, because a skill level can receive
  /// zero assigned actions in an iteration.
  virtual void Fit(std::span<const double> values) = 0;

  /// Weighted maximum-likelihood re-fit: observation i carries
  /// non-negative weight `weights[i]` (the E-step responsibilities of the
  /// EM trainer). Keeps current parameters when the total weight is
  /// (numerically) zero. Spans must have equal length.
  virtual void FitWeighted(std::span<const double> values,
                           std::span<const double> weights) = 0;

  /// Draws one observation.
  virtual double Sample(Rng& rng) const = 0;

  /// Expected value under the current parameters.
  virtual double Mean() const = 0;

  /// Deep copy.
  virtual std::unique_ptr<Distribution> Clone() const = 0;

  /// Flat parameter vector (layout is implementation-defined but stable,
  /// and accepted by SetParameters).
  virtual std::vector<double> Parameters() const = 0;

  /// Restores parameters produced by Parameters().
  virtual Status SetParameters(std::span<const double> params) = 0;

  /// Human-readable one-line summary, e.g. "Poisson(lambda=4.20)".
  virtual std::string DebugString() const = 0;
};

}  // namespace upskill

#endif  // UPSKILL_DIST_DISTRIBUTION_H_
