#include "dist/gamma.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/math.h"
#include "common/string_util.h"
#include "simd/kernels.h"

namespace upskill {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
// Stack chunk for the scalar-log pass feeding the vector kernel.
constexpr size_t kLogChunk = 256;
// Clamp for non-positive observations, shared with SufficientStats::Add.
constexpr double kEpsilon = kPositiveObservationFloor;
constexpr double kMinShape = 1e-4;
constexpr double kMaxShape = 1e6;
constexpr int kMaxNewtonIters = 50;
}  // namespace

Gamma::Gamma(double shape, double scale) : shape_(shape), scale_(scale) {
  UPSKILL_CHECK(shape_ > 0.0);
  UPSKILL_CHECK(scale_ > 0.0);
}

double Gamma::LogProb(double x) const {
  if (x <= 0.0) return kNegInf;
  return (shape_ - 1.0) * std::log(x) - x / scale_ - LogGamma(shape_) -
         shape_ * std::log(scale_);
}

void Gamma::LogProbBatch(std::span<const double> xs,
                         std::span<double> out) const {
  UPSKILL_CHECK(xs.size() == out.size());
  // Chunked scalar-log pass feeding the vector kernel: std::log stays
  // scalar (a vectorized log could not be bitwise identical to libm), the
  // surrounding arithmetic vectorizes. Lanes with x <= 0 never read their
  // log slot.
  std::array<double, kLogChunk> log_buf;
  for (size_t begin = 0; begin < xs.size(); begin += kLogChunk) {
    const size_t count = std::min(kLogChunk, xs.size() - begin);
    for (size_t i = 0; i < count; ++i) {
      const double x = xs[begin + i];
      log_buf[i] = x > 0.0 ? std::log(x) : 0.0;
    }
    LogProbBatchWithLogs(xs.subspan(begin, count),
                         std::span<const double>(log_buf.data(), count),
                         out.subspan(begin, count));
  }
}

void Gamma::LogProbBatchWithLogs(std::span<const double> xs,
                                 std::span<const double> log_xs,
                                 std::span<double> out) const {
  UPSKILL_CHECK(xs.size() == out.size());
  UPSKILL_CHECK(xs.size() == log_xs.size());
  simd::GammaLogProbBatch(xs, log_xs, shape_ - 1.0, scale_, LogGamma(shape_),
                          shape_ * std::log(scale_), out);
}

namespace {

// MLE shape from the moment statistics: solves
// log(k) - psi(k) = log(mean) - mean(log x) by Newton from Minka's
// closed-form start.
double SolveShape(double mean, double mean_log) {
  // s >= 0 by Jensen; s == 0 means all observations are (numerically)
  // identical, where the MLE degenerates to a point mass. Keep a sharp but
  // finite fit in that case.
  const double s = std::log(mean) - mean_log;
  if (s < 1e-9) return kMaxShape;
  double shape =
      (3.0 - s + std::sqrt((s - 3.0) * (s - 3.0) + 24.0 * s)) / (12.0 * s);
  for (int iter = 0; iter < kMaxNewtonIters; ++iter) {
    const double f = std::log(shape) - Digamma(shape) - s;
    const double df = 1.0 / shape - Trigamma(shape);
    const double next = shape - f / df;
    if (!(next > 0.0) || !std::isfinite(next)) break;
    const bool converged = std::abs(next - shape) <= 1e-10 * shape;
    shape = next;
    if (converged) break;
  }
  return shape;
}

}  // namespace

void Gamma::Fit(std::span<const double> values) {
  if (values.empty()) return;
  double sum = 0.0;
  double sum_log = 0.0;
  for (double v : values) {
    const double x = std::max(v, kEpsilon);
    sum += x;
    sum_log += std::log(x);
  }
  const double n = static_cast<double>(values.size());
  shape_ = std::clamp(SolveShape(sum / n, sum_log / n), kMinShape, kMaxShape);
  scale_ = std::max((sum / n) / shape_, kEpsilon);
}

void Gamma::FitWeighted(std::span<const double> values,
                        std::span<const double> weights) {
  UPSKILL_CHECK(values.size() == weights.size());
  double sum = 0.0;
  double sum_log = 0.0;
  double total = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    const double w = weights[i];
    UPSKILL_CHECK(w >= 0.0);
    if (w == 0.0) continue;
    const double x = std::max(values[i], kEpsilon);
    sum += w * x;
    sum_log += w * std::log(x);
    total += w;
  }
  if (total <= 0.0) return;
  shape_ = std::clamp(SolveShape(sum / total, sum_log / total), kMinShape,
                      kMaxShape);
  scale_ = std::max((sum / total) / shape_, kEpsilon);
}

void Gamma::FitFromStats(const SufficientStats& stats) {
  UPSKILL_CHECK(stats.kind() == DistributionKind::kGamma);
  if (stats.empty()) return;  // keep current parameters
  const double n = stats.count();
  shape_ = std::clamp(SolveShape(stats.sum() / n, stats.sum_log() / n),
                      kMinShape, kMaxShape);
  scale_ = std::max((stats.sum() / n) / shape_, kEpsilon);
}

double Gamma::Sample(Rng& rng) const { return rng.NextGamma(shape_, scale_); }

std::unique_ptr<Distribution> Gamma::Clone() const {
  return std::make_unique<Gamma>(*this);
}

std::vector<double> Gamma::Parameters() const { return {shape_, scale_}; }

Status Gamma::SetParameters(std::span<const double> params) {
  if (params.size() != 2) {
    return Status::InvalidArgument("gamma expects 2 parameters");
  }
  if (params[0] <= 0.0 || params[1] <= 0.0) {
    return Status::InvalidArgument("gamma parameters must be positive");
  }
  shape_ = params[0];
  scale_ = params[1];
  return Status::OK();
}

std::string Gamma::DebugString() const {
  return StringPrintf("Gamma(k=%.4f, theta=%.4f)", shape_, scale_);
}

}  // namespace upskill
