#ifndef UPSKILL_DIST_GAMMA_H_
#define UPSKILL_DIST_GAMMA_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dist/distribution.h"

namespace upskill {

/// Gamma distribution (shape k, scale theta) for positive real-valued item
/// features (e.g. alcohol-by-volume). The paper notes the gamma MLE has no
/// closed form (Section IV-B); Fit() uses Minka's closed-form
/// initialization followed by Newton iterations on
///
///   f(k) = log(k) - psi(k) - (log(mean) - mean(log x))
///
/// which converges in a handful of steps. Non-positive observations are
/// clamped to a tiny epsilon before taking logs, so degenerate inputs
/// cannot poison the fit.
class Gamma : public Distribution {
 public:
  Gamma(double shape = 1.0, double scale = 1.0);

  DistributionKind kind() const override { return DistributionKind::kGamma; }
  double LogProb(double x) const override;
  void LogProbBatch(std::span<const double> xs,
                    std::span<double> out) const override;
  void LogProbBatchWithLogs(std::span<const double> xs,
                            std::span<const double> log_xs,
                            std::span<double> out) const override;
  void Fit(std::span<const double> values) override;
  void FitWeighted(std::span<const double> values,
                   std::span<const double> weights) override;
  void FitFromStats(const SufficientStats& stats) override;
  double Sample(Rng& rng) const override;
  double Mean() const override { return shape_ * scale_; }
  std::unique_ptr<Distribution> Clone() const override;
  std::vector<double> Parameters() const override;
  Status SetParameters(std::span<const double> params) override;
  std::string DebugString() const override;

  double shape() const { return shape_; }
  double scale() const { return scale_; }

 private:
  double shape_;
  double scale_;
};

}  // namespace upskill

#endif  // UPSKILL_DIST_GAMMA_H_
