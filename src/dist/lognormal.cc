#include "dist/lognormal.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "simd/kernels.h"

namespace upskill {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
// Stack chunk for the scalar-log pass feeding the vector kernel.
constexpr size_t kLogChunk = 256;
// Shared with SufficientStats::Add so both paths clamp identically.
constexpr double kEpsilon = kPositiveObservationFloor;
constexpr double kMinSigma = 1e-4;
}  // namespace

LogNormal::LogNormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  UPSKILL_CHECK(sigma_ > 0.0);
}

double LogNormal::LogProb(double x) const {
  if (x <= 0.0) return kNegInf;
  const double z = (std::log(x) - mu_) / sigma_;
  return -0.5 * z * z - std::log(x) - std::log(sigma_) -
         0.5 * std::log(2.0 * M_PI);
}

void LogNormal::LogProbBatch(std::span<const double> xs,
                             std::span<double> out) const {
  UPSKILL_CHECK(xs.size() == out.size());
  // Chunked scalar-log pass feeding the vector kernel (std::log cannot be
  // vectorized bitwise-identically); x <= 0 lanes never read their slot.
  std::array<double, kLogChunk> log_buf;
  for (size_t begin = 0; begin < xs.size(); begin += kLogChunk) {
    const size_t count = std::min(kLogChunk, xs.size() - begin);
    for (size_t i = 0; i < count; ++i) {
      const double x = xs[begin + i];
      log_buf[i] = x > 0.0 ? std::log(x) : 0.0;
    }
    LogProbBatchWithLogs(xs.subspan(begin, count),
                         std::span<const double>(log_buf.data(), count),
                         out.subspan(begin, count));
  }
}

void LogNormal::LogProbBatchWithLogs(std::span<const double> xs,
                                     std::span<const double> log_xs,
                                     std::span<double> out) const {
  UPSKILL_CHECK(xs.size() == out.size());
  UPSKILL_CHECK(xs.size() == log_xs.size());
  simd::LogNormalLogProbBatch(xs, log_xs, mu_, sigma_, std::log(sigma_),
                              0.5 * std::log(2.0 * M_PI), out);
}

void LogNormal::Fit(std::span<const double> values) {
  if (values.empty()) return;
  RunningStats stats;
  for (double v : values) stats.Add(std::log(std::max(v, kEpsilon)));
  mu_ = stats.mean();
  sigma_ = std::max(kMinSigma, stats.stddev());
}

void LogNormal::FitWeighted(std::span<const double> values,
                            std::span<const double> weights) {
  UPSKILL_CHECK(values.size() == weights.size());
  double total = 0.0;
  double mean = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    UPSKILL_CHECK(weights[i] >= 0.0);
    total += weights[i];
    mean += weights[i] * std::log(std::max(values[i], kEpsilon));
  }
  if (total <= 0.0) return;
  mean /= total;
  double variance = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    const double d = std::log(std::max(values[i], kEpsilon)) - mean;
    variance += weights[i] * d * d;
  }
  variance /= total;
  mu_ = mean;
  sigma_ = std::max(kMinSigma, std::sqrt(variance));
}

void LogNormal::FitFromStats(const SufficientStats& stats) {
  UPSKILL_CHECK(stats.kind() == DistributionKind::kLogNormal);
  if (stats.empty()) return;  // keep current parameters
  const double n = stats.count();
  const double mean = stats.sum_log() / n;
  // Moment form of the variance; clamp the (catastrophic-cancellation)
  // negative tail to zero before the sigma floor takes over.
  const double variance =
      std::max(0.0, stats.sum_log_sq() / n - mean * mean);
  mu_ = mean;
  sigma_ = std::max(kMinSigma, std::sqrt(variance));
}

double LogNormal::Sample(Rng& rng) const {
  return rng.NextLogNormal(mu_, sigma_);
}

double LogNormal::Mean() const {
  return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

std::unique_ptr<Distribution> LogNormal::Clone() const {
  return std::make_unique<LogNormal>(*this);
}

std::vector<double> LogNormal::Parameters() const { return {mu_, sigma_}; }

Status LogNormal::SetParameters(std::span<const double> params) {
  if (params.size() != 2) {
    return Status::InvalidArgument("lognormal expects 2 parameters");
  }
  if (params[1] <= 0.0) {
    return Status::InvalidArgument("lognormal sigma must be positive");
  }
  mu_ = params[0];
  sigma_ = params[1];
  return Status::OK();
}

std::string LogNormal::DebugString() const {
  return StringPrintf("LogNormal(mu=%.4f, sigma=%.4f)", mu_, sigma_);
}

}  // namespace upskill
