#ifndef UPSKILL_DIST_LOGNORMAL_H_
#define UPSKILL_DIST_LOGNORMAL_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dist/distribution.h"

namespace upskill {

/// Log-normal distribution, the paper's alternative to gamma for positive
/// real-valued features (Section IV-A). Fit() is the exact MLE: mean and
/// variance of log-observations. A variance floor keeps the density proper
/// when a level's observations are all identical.
class LogNormal : public Distribution {
 public:
  LogNormal(double mu = 0.0, double sigma = 1.0);

  DistributionKind kind() const override {
    return DistributionKind::kLogNormal;
  }
  double LogProb(double x) const override;
  void LogProbBatch(std::span<const double> xs,
                    std::span<double> out) const override;
  void LogProbBatchWithLogs(std::span<const double> xs,
                            std::span<const double> log_xs,
                            std::span<double> out) const override;
  void Fit(std::span<const double> values) override;
  void FitWeighted(std::span<const double> values,
                   std::span<const double> weights) override;
  void FitFromStats(const SufficientStats& stats) override;
  double Sample(Rng& rng) const override;
  double Mean() const override;
  std::unique_ptr<Distribution> Clone() const override;
  std::vector<double> Parameters() const override;
  Status SetParameters(std::span<const double> params) override;
  std::string DebugString() const override;

  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

 private:
  double mu_;
  double sigma_;
};

}  // namespace upskill

#endif  // UPSKILL_DIST_LOGNORMAL_H_
