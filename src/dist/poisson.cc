#include "dist/poisson.h"

#include <array>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/math.h"
#include "common/string_util.h"
#include "simd/kernels.h"

namespace upskill {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
// Smallest rate retained after fitting, so that observing a positive count
// under an (almost) all-zero level stays finitely unlikely instead of
// impossible.
constexpr double kMinRate = 1e-8;
// Per-call count table for the batched gather kernel: covers every count
// the datasets realistically produce; the rare k >= kCountTable lanes are
// recomputed in a scalar fixup pass. Below kMinBatchForTable elements the
// table would cost more than it saves, so the plain loop runs instead.
constexpr size_t kCountTable = 128;
constexpr size_t kMinBatchForTable = 64;
}  // namespace

Poisson::Poisson(double rate) : rate_(rate) { UPSKILL_CHECK(rate_ > 0.0); }

double Poisson::LogProb(double x) const {
  const long long k = static_cast<long long>(x);
  if (k < 0 || static_cast<double>(k) != x) return kNegInf;
  return static_cast<double>(k) * std::log(rate_) - rate_ - LogFactorial(k);
}

void Poisson::LogProbBatch(std::span<const double> xs,
                           std::span<double> out) const {
  UPSKILL_CHECK(xs.size() == out.size());
  const double log_rate = std::log(rate_);
  const double rate = rate_;
  if (xs.size() < kMinBatchForTable || !simd::VectorEnabled()) {
    for (size_t i = 0; i < xs.size(); ++i) {
      const double x = xs[i];
      const long long k = static_cast<long long>(x);
      out[i] = (k < 0 || static_cast<double>(k) != x)
                   ? kNegInf
                   : static_cast<double>(k) * log_rate - rate -
                         LogFactorial(k);
    }
    return;
  }
  // Precompute the per-count values with the exact scalar expression, so
  // the gathered results are bitwise identical to the loop above, then
  // let the kernel turn the per-element mass evaluation into a table
  // lookup. Counts beyond the table (flagged by the kernel) are rare
  // enough to recompute in a scalar fixup pass.
  std::array<double, kCountTable> table;
  for (size_t k = 0; k < kCountTable; ++k) {
    table[k] = static_cast<double>(k) * log_rate - rate -
               LogFactorial(static_cast<long long>(k));
  }
  bool overflow = false;
  simd::LookupLogProbBatch(xs, table, out, &overflow);
  if (overflow) {
    for (size_t i = 0; i < xs.size(); ++i) {
      const double x = xs[i];
      if (!(x >= static_cast<double>(kCountTable))) continue;
      const long long k = static_cast<long long>(x);
      if (k < 0 || static_cast<double>(k) != x) continue;
      out[i] = static_cast<double>(k) * log_rate - rate - LogFactorial(k);
    }
  }
}

void Poisson::Fit(std::span<const double> values) {
  if (values.empty()) return;
  double sum = 0.0;
  for (double v : values) {
    UPSKILL_CHECK(v >= 0.0);
    sum += v;
  }
  rate_ = std::max(kMinRate, sum / static_cast<double>(values.size()));
}

void Poisson::FitWeighted(std::span<const double> values,
                          std::span<const double> weights) {
  UPSKILL_CHECK(values.size() == weights.size());
  double weighted_sum = 0.0;
  double total = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    UPSKILL_CHECK(weights[i] >= 0.0);
    UPSKILL_CHECK(values[i] >= 0.0);
    weighted_sum += weights[i] * values[i];
    total += weights[i];
  }
  if (total <= 0.0) return;
  rate_ = std::max(kMinRate, weighted_sum / total);
}

void Poisson::FitFromStats(const SufficientStats& stats) {
  UPSKILL_CHECK(stats.kind() == DistributionKind::kPoisson);
  if (stats.empty()) return;  // keep current parameters
  rate_ = std::max(kMinRate, stats.sum() / stats.count());
}

double Poisson::Sample(Rng& rng) const {
  return static_cast<double>(rng.NextPoisson(rate_));
}

std::unique_ptr<Distribution> Poisson::Clone() const {
  return std::make_unique<Poisson>(*this);
}

std::vector<double> Poisson::Parameters() const { return {rate_}; }

Status Poisson::SetParameters(std::span<const double> params) {
  if (params.size() != 1) {
    return Status::InvalidArgument("poisson expects 1 parameter");
  }
  if (params[0] <= 0.0) {
    return Status::InvalidArgument("poisson rate must be positive");
  }
  rate_ = params[0];
  return Status::OK();
}

std::string Poisson::DebugString() const {
  return StringPrintf("Poisson(lambda=%.4f)", rate_);
}

}  // namespace upskill
