#ifndef UPSKILL_DIST_POISSON_H_
#define UPSKILL_DIST_POISSON_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dist/distribution.h"

namespace upskill {

/// Poisson distribution for count-valued item features (e.g. the number of
/// steps in a recipe). The MLE is the sample mean (Equation 7). A small
/// floor keeps the rate strictly positive so LogProb stays finite after
/// fitting an all-zero level.
class Poisson : public Distribution {
 public:
  explicit Poisson(double rate = 1.0);

  DistributionKind kind() const override { return DistributionKind::kPoisson; }
  double LogProb(double x) const override;
  void LogProbBatch(std::span<const double> xs,
                    std::span<double> out) const override;
  void Fit(std::span<const double> values) override;
  void FitWeighted(std::span<const double> values,
                   std::span<const double> weights) override;
  void FitFromStats(const SufficientStats& stats) override;
  double Sample(Rng& rng) const override;
  double Mean() const override { return rate_; }
  std::unique_ptr<Distribution> Clone() const override;
  std::vector<double> Parameters() const override;
  Status SetParameters(std::span<const double> params) override;
  std::string DebugString() const override;

  double rate() const { return rate_; }

 private:
  double rate_;
};

}  // namespace upskill

#endif  // UPSKILL_DIST_POISSON_H_
