#include "eval/bootstrap.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace upskill {
namespace eval {

Result<ConfidenceInterval> BootstrapConfidenceInterval(
    std::span<const double> x, std::span<const double> y,
    const PairedStatistic& statistic, int num_resamples, double alpha,
    Rng& rng) {
  if (x.size() != y.size()) return Status::InvalidArgument("size mismatch");
  if (x.empty()) return Status::InvalidArgument("empty sample");
  if (num_resamples < 2) {
    return Status::InvalidArgument("need at least 2 resamples");
  }
  if (!(alpha > 0.0 && alpha < 1.0)) {
    return Status::InvalidArgument("alpha must be in (0, 1)");
  }

  const size_t n = x.size();
  std::vector<double> rx(n);
  std::vector<double> ry(n);
  std::vector<double> estimates;
  estimates.reserve(static_cast<size_t>(num_resamples));
  for (int b = 0; b < num_resamples; ++b) {
    for (size_t i = 0; i < n; ++i) {
      const size_t j =
          static_cast<size_t>(rng.NextInt(static_cast<int64_t>(n)));
      rx[i] = x[j];
      ry[i] = y[j];
    }
    estimates.push_back(statistic(rx, ry));
  }
  std::sort(estimates.begin(), estimates.end());

  const auto quantile = [&estimates](double q) {
    const double pos = q * static_cast<double>(estimates.size() - 1);
    const size_t lo = static_cast<size_t>(std::floor(pos));
    const size_t hi = std::min(lo + 1, estimates.size() - 1);
    const double frac = pos - std::floor(pos);
    return estimates[lo] * (1.0 - frac) + estimates[hi] * frac;
  };

  ConfidenceInterval ci;
  ci.lower = quantile(alpha / 2.0);
  ci.upper = quantile(1.0 - alpha / 2.0);
  ci.point = statistic(x, y);
  return ci;
}

}  // namespace eval
}  // namespace upskill
