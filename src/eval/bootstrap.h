#ifndef UPSKILL_EVAL_BOOTSTRAP_H_
#define UPSKILL_EVAL_BOOTSTRAP_H_

#include <functional>
#include <span>

#include "common/rng.h"
#include "common/status.h"

namespace upskill {
namespace eval {

/// A two-sided percentile confidence interval.
struct ConfidenceInterval {
  double lower = 0.0;
  double upper = 0.0;
  double point = 0.0;
};

/// Statistic over paired samples (e.g. Pearson's r).
using PairedStatistic = std::function<double(std::span<const double>,
                                             std::span<const double>)>;

/// Percentile bootstrap CI for `statistic` over paired data: resample
/// (x_i, y_i) pairs with replacement `num_resamples` times and take the
/// alpha/2 and 1-alpha/2 quantiles. The paper reports 95% CIs of
/// Pearson's r this way (Section VI-D); use alpha = 0.05.
Result<ConfidenceInterval> BootstrapConfidenceInterval(
    std::span<const double> x, std::span<const double> y,
    const PairedStatistic& statistic, int num_resamples, double alpha,
    Rng& rng);

}  // namespace eval
}  // namespace upskill

#endif  // UPSKILL_EVAL_BOOTSTRAP_H_
