#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace upskill {
namespace eval {

std::vector<double> AverageRanks(std::span<const double> values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&values](size_t a, size_t b) {
    return values[a] < values[b];
  });
  std::vector<double> ranks(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Positions i..j share the value; assign the mean 1-based rank.
    const double rank = 0.5 * (static_cast<double>(i) + static_cast<double>(j)) + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = rank;
    i = j + 1;
  }
  return ranks;
}

double PearsonCorrelation(std::span<const double> x,
                          std::span<const double> y) {
  UPSKILL_CHECK(x.size() == y.size());
  const size_t n = x.size();
  if (n == 0) return 0.0;
  double mean_x = 0.0;
  double mean_y = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mean_x += x[i];
    mean_y += y[i];
  }
  mean_x /= static_cast<double>(n);
  mean_y /= static_cast<double>(n);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double SpearmanCorrelation(std::span<const double> x,
                           std::span<const double> y) {
  UPSKILL_CHECK(x.size() == y.size());
  const std::vector<double> rx = AverageRanks(x);
  const std::vector<double> ry = AverageRanks(y);
  return PearsonCorrelation(rx, ry);
}

namespace {

// Counts inversions in `values` by bottom-up merge sort. O(n log n).
uint64_t CountInversions(std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<double> buffer(n);
  uint64_t swaps = 0;
  for (size_t width = 1; width < n; width *= 2) {
    for (size_t left = 0; left < n; left += 2 * width) {
      const size_t mid = std::min(left + width, n);
      const size_t right = std::min(left + 2 * width, n);
      size_t i = left;
      size_t j = mid;
      size_t out = left;
      while (i < mid && j < right) {
        if (values[j] < values[i]) {
          swaps += mid - i;  // values[i..mid) all exceed values[j]
          buffer[out++] = values[j++];
        } else {
          buffer[out++] = values[i++];
        }
      }
      while (i < mid) buffer[out++] = values[i++];
      while (j < right) buffer[out++] = values[j++];
      std::copy(buffer.begin() + static_cast<ptrdiff_t>(left),
                buffer.begin() + static_cast<ptrdiff_t>(right),
                values.begin() + static_cast<ptrdiff_t>(left));
    }
  }
  return swaps;
}

// Sum over runs of equal keys of t*(t-1)/2.
uint64_t TiePairs(std::span<const double> sorted_keys) {
  uint64_t pairs = 0;
  size_t i = 0;
  while (i < sorted_keys.size()) {
    size_t j = i;
    while (j + 1 < sorted_keys.size() &&
           sorted_keys[j + 1] == sorted_keys[i]) {
      ++j;
    }
    const uint64_t t = j - i + 1;
    pairs += t * (t - 1) / 2;
    i = j + 1;
  }
  return pairs;
}

}  // namespace

double KendallTauB(std::span<const double> x, std::span<const double> y) {
  UPSKILL_CHECK(x.size() == y.size());
  const size_t n = x.size();
  if (n < 2) return 0.0;

  // Sort jointly by (x, y).
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (x[a] != x[b]) return x[a] < x[b];
    return y[a] < y[b];
  });

  // Ties in x, and joint ties in (x, y), from the sorted order.
  uint64_t n1 = 0;  // pairs tied in x
  uint64_t n3 = 0;  // pairs tied in both
  {
    size_t i = 0;
    while (i < n) {
      size_t j = i;
      uint64_t joint_run = 1;
      while (j + 1 < n && x[order[j + 1]] == x[order[i]]) {
        ++j;
        if (y[order[j]] == y[order[j - 1]]) {
          ++joint_run;
        } else {
          n3 += joint_run * (joint_run - 1) / 2;
          joint_run = 1;
        }
      }
      n3 += joint_run * (joint_run - 1) / 2;
      const uint64_t t = j - i + 1;
      n1 += t * (t - 1) / 2;
      i = j + 1;
    }
  }

  // Discordant pairs = inversions of y in x-order; ties in y from the
  // sorted y sequence.
  std::vector<double> y_in_x_order(n);
  for (size_t i = 0; i < n; ++i) y_in_x_order[i] = y[order[i]];
  std::vector<double> y_sorted = y_in_x_order;
  std::sort(y_sorted.begin(), y_sorted.end());
  const uint64_t n2 = TiePairs(y_sorted);
  const uint64_t swaps = CountInversions(y_in_x_order);

  const uint64_t n0 = static_cast<uint64_t>(n) * (n - 1) / 2;
  const double numerator = static_cast<double>(n0) - static_cast<double>(n1) -
                           static_cast<double>(n2) + static_cast<double>(n3) -
                           2.0 * static_cast<double>(swaps);
  const double denom_x = static_cast<double>(n0) - static_cast<double>(n1);
  const double denom_y = static_cast<double>(n0) - static_cast<double>(n2);
  if (denom_x <= 0.0 || denom_y <= 0.0) return 0.0;
  return numerator / std::sqrt(denom_x * denom_y);
}

double Rmse(std::span<const double> predicted, std::span<const double> actual) {
  UPSKILL_CHECK(predicted.size() == actual.size());
  if (predicted.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    const double d = predicted[i] - actual[i];
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(predicted.size()));
}

double MeanAbsoluteError(std::span<const double> predicted,
                         std::span<const double> actual) {
  UPSKILL_CHECK(predicted.size() == actual.size());
  if (predicted.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    sum += std::abs(predicted[i] - actual[i]);
  }
  return sum / static_cast<double>(predicted.size());
}

Result<CorrelationReport> ComputeCorrelationReport(
    std::span<const double> estimated, std::span<const double> truth) {
  if (estimated.size() != truth.size()) {
    return Status::InvalidArgument("size mismatch");
  }
  if (estimated.empty()) return Status::InvalidArgument("empty input");
  CorrelationReport report;
  report.pearson = PearsonCorrelation(estimated, truth);
  report.spearman = SpearmanCorrelation(estimated, truth);
  report.kendall = KendallTauB(estimated, truth);
  report.rmse = Rmse(estimated, truth);
  return report;
}

}  // namespace eval
}  // namespace upskill
