#ifndef UPSKILL_EVAL_METRICS_H_
#define UPSKILL_EVAL_METRICS_H_

#include <span>
#include <vector>

#include "common/status.h"

namespace upskill {
namespace eval {

/// Average ranks (1-based, ties get the mean of their rank range), the
/// rank transform behind Spearman's rho.
std::vector<double> AverageRanks(std::span<const double> values);

/// Pearson's r. Returns 0 when either input is constant.
double PearsonCorrelation(std::span<const double> x,
                          std::span<const double> y);

/// Spearman's rho: Pearson on average ranks.
double SpearmanCorrelation(std::span<const double> x,
                           std::span<const double> y);

/// Kendall's tau-b with tie corrections, computed in O(n log n) by
/// Knight's algorithm (merge-sort inversion counting). Returns 0 when
/// either input is constant.
double KendallTauB(std::span<const double> x, std::span<const double> y);

/// Root mean squared error. Returns 0 for empty input.
double Rmse(std::span<const double> predicted,
            std::span<const double> actual);

/// Mean absolute error. Returns 0 for empty input.
double MeanAbsoluteError(std::span<const double> predicted,
                         std::span<const double> actual);

/// The four-column row used by Tables VI-IX.
struct CorrelationReport {
  double pearson = 0.0;
  double spearman = 0.0;
  double kendall = 0.0;
  double rmse = 0.0;
};

/// Computes all four agreement measures between estimates and ground
/// truth. Requires equal, non-zero sizes.
Result<CorrelationReport> ComputeCorrelationReport(
    std::span<const double> estimated, std::span<const double> truth);

}  // namespace eval
}  // namespace upskill

#endif  // UPSKILL_EVAL_METRICS_H_
