#include "eval/ranking.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace upskill {
namespace eval {

namespace {

// log2-discounted gain of a 1-based rank.
double Discount(int rank) { return 1.0 / std::log2(rank + 1.0); }

}  // namespace

double PrecisionAtK(std::span<const int> relevant_ranks, int k) {
  UPSKILL_CHECK(k >= 1);
  int hits = 0;
  for (int rank : relevant_ranks) {
    UPSKILL_CHECK(rank >= 1);
    if (rank <= k) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double RecallAtK(std::span<const int> relevant_ranks, int k) {
  UPSKILL_CHECK(k >= 1);
  if (relevant_ranks.empty()) return 0.0;
  int hits = 0;
  for (int rank : relevant_ranks) {
    UPSKILL_CHECK(rank >= 1);
    if (rank <= k) ++hits;
  }
  return static_cast<double>(hits) /
         static_cast<double>(relevant_ranks.size());
}

double NdcgAtK(std::span<const int> relevant_ranks, int k) {
  UPSKILL_CHECK(k >= 1);
  if (relevant_ranks.empty()) return 0.0;
  double dcg = 0.0;
  for (int rank : relevant_ranks) {
    UPSKILL_CHECK(rank >= 1);
    if (rank <= k) dcg += Discount(rank);
  }
  double ideal = 0.0;
  const int ideal_hits =
      std::min(k, static_cast<int>(relevant_ranks.size()));
  for (int rank = 1; rank <= ideal_hits; ++rank) ideal += Discount(rank);
  return ideal > 0.0 ? dcg / ideal : 0.0;
}

double AveragePrecision(std::span<const int> relevant_ranks) {
  if (relevant_ranks.empty()) return 0.0;
  std::vector<int> sorted(relevant_ranks.begin(), relevant_ranks.end());
  std::sort(sorted.begin(), sorted.end());
  double total = 0.0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    UPSKILL_CHECK(sorted[i] >= 1);
    // Precision at this relevant item's rank: (i+1) relevant items are at
    // or above rank sorted[i].
    total += static_cast<double>(i + 1) / static_cast<double>(sorted[i]);
  }
  return total / static_cast<double>(sorted.size());
}

Result<SingleRelevantAggregate> AggregateSingleRelevant(
    std::span<const int> ranks, int k) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  SingleRelevantAggregate aggregate;
  aggregate.num_cases = ranks.size();
  if (ranks.empty()) return aggregate;
  double hits = 0.0;
  double rr = 0.0;
  double ndcg = 0.0;
  for (int rank : ranks) {
    if (rank < 1) return Status::InvalidArgument("ranks are 1-based");
    if (rank <= k) {
      hits += 1.0;
      ndcg += Discount(rank);  // ideal DCG for one relevant item is 1
    }
    rr += 1.0 / static_cast<double>(rank);
  }
  const double n = static_cast<double>(ranks.size());
  aggregate.accuracy_at_k = hits / n;
  aggregate.recall_at_k = aggregate.accuracy_at_k;
  aggregate.mean_reciprocal_rank = rr / n;
  aggregate.ndcg_at_k = ndcg / n;
  return aggregate;
}

}  // namespace eval
}  // namespace upskill
