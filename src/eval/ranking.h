#ifndef UPSKILL_EVAL_RANKING_H_
#define UPSKILL_EVAL_RANKING_H_

#include <span>
#include <vector>

#include "common/status.h"

namespace upskill {
namespace eval {

/// Ranking-quality metrics beyond the paper's Acc@10 / RR, for
/// applications that adopt the library as a recommender component. All
/// take the 1-based rank(s) of relevant items within a ranking of
/// `num_items` candidates.

/// Precision@k: fraction of the top k occupied by relevant items.
double PrecisionAtK(std::span<const int> relevant_ranks, int k);

/// Recall@k: fraction of relevant items ranked within the top k.
double RecallAtK(std::span<const int> relevant_ranks, int k);

/// Binary-relevance nDCG@k: DCG of the relevant ranks against the ideal
/// DCG of placing all |relevant| items first. Returns 0 for empty input.
double NdcgAtK(std::span<const int> relevant_ranks, int k);

/// Mean average precision for a single query: mean over relevant items of
/// precision at their rank. Requires sorted or unsorted 1-based ranks.
double AveragePrecision(std::span<const int> relevant_ranks);

/// Aggregates a per-case metric over many single-relevant-item cases (the
/// protocol of Tables X/XI, where each test case has exactly one correct
/// item). Returns the mean of `metric(rank)` over cases.
struct SingleRelevantAggregate {
  double accuracy_at_k = 0.0;
  double recall_at_k = 0.0;  // == accuracy for single-relevant cases
  double mean_reciprocal_rank = 0.0;
  double ndcg_at_k = 0.0;
  size_t num_cases = 0;
};
Result<SingleRelevantAggregate> AggregateSingleRelevant(
    std::span<const int> ranks, int k);

}  // namespace eval
}  // namespace upskill

#endif  // UPSKILL_EVAL_RANKING_H_
