#include "eval/significance.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "eval/metrics.h"

namespace upskill {
namespace eval {

double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double BonferroniCorrect(double p_value, int num_comparisons) {
  if (num_comparisons < 1) return p_value;
  return std::min(1.0, p_value * static_cast<double>(num_comparisons));
}

Result<WilcoxonResult> WilcoxonSignedRank(std::span<const double> a,
                                          std::span<const double> b) {
  if (a.size() != b.size()) return Status::InvalidArgument("size mismatch");

  std::vector<double> abs_diff;
  std::vector<int> sign;
  abs_diff.reserve(a.size());
  sign.reserve(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    if (d == 0.0) continue;
    abs_diff.push_back(std::abs(d));
    sign.push_back(d > 0.0 ? 1 : -1);
  }
  const size_t n = abs_diff.size();
  if (n == 0) {
    return Status::FailedPrecondition("all paired differences are zero");
  }

  const std::vector<double> ranks = AverageRanks(abs_diff);
  double w_plus = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (sign[i] > 0) w_plus += ranks[i];
  }

  const double dn = static_cast<double>(n);
  const double mean = dn * (dn + 1.0) / 4.0;
  double variance = dn * (dn + 1.0) * (2.0 * dn + 1.0) / 24.0;

  // Tie correction: subtract sum(t^3 - t) / 48 over groups of tied
  // absolute differences.
  {
    std::vector<double> sorted = abs_diff;
    std::sort(sorted.begin(), sorted.end());
    size_t i = 0;
    double correction = 0.0;
    while (i < sorted.size()) {
      size_t j = i;
      while (j + 1 < sorted.size() && sorted[j + 1] == sorted[i]) ++j;
      const double t = static_cast<double>(j - i + 1);
      correction += t * t * t - t;
      i = j + 1;
    }
    variance -= correction / 48.0;
  }

  WilcoxonResult result;
  result.w_plus = w_plus;
  result.n_effective = n;
  if (variance <= 0.0) {
    // Every difference identical in magnitude and sign structure; treat
    // the statistic as fully degenerate.
    result.z = 0.0;
    result.p_value = 1.0;
    return result;
  }
  // Continuity correction toward the mean.
  const double numerator = w_plus - mean;
  const double cc = numerator > 0.0 ? -0.5 : (numerator < 0.0 ? 0.5 : 0.0);
  result.z = (numerator + cc) / std::sqrt(variance);
  result.p_value = 2.0 * (1.0 - NormalCdf(std::abs(result.z)));
  result.p_value = std::min(1.0, std::max(0.0, result.p_value));
  return result;
}

Result<PairedBootstrapResult> PairedBootstrapTest(std::span<const double> a,
                                                  std::span<const double> b,
                                                  int num_resamples,
                                                  Rng& rng) {
  if (a.size() != b.size()) return Status::InvalidArgument("size mismatch");
  if (a.size() < 2) return Status::InvalidArgument("need at least 2 pairs");
  if (num_resamples < 1) {
    return Status::InvalidArgument("need at least 1 resample");
  }
  const size_t n = a.size();
  std::vector<double> differences(n);
  double observed = 0.0;
  for (size_t i = 0; i < n; ++i) {
    differences[i] = a[i] - b[i];
    observed += differences[i];
  }
  observed /= static_cast<double>(n);
  // Center under the null of zero mean difference.
  for (double& d : differences) d -= observed;

  int at_least_as_extreme = 0;
  for (int resample = 0; resample < num_resamples; ++resample) {
    double mean = 0.0;
    for (size_t i = 0; i < n; ++i) {
      mean += differences[static_cast<size_t>(
          rng.NextInt(static_cast<int64_t>(n)))];
    }
    mean /= static_cast<double>(n);
    if (std::abs(mean) >= std::abs(observed)) ++at_least_as_extreme;
  }

  PairedBootstrapResult result;
  result.mean_difference = observed;
  result.num_resamples = num_resamples;
  // Add-one smoothing keeps p strictly positive (standard practice).
  result.p_value = (static_cast<double>(at_least_as_extreme) + 1.0) /
                   (static_cast<double>(num_resamples) + 1.0);
  return result;
}

}  // namespace eval
}  // namespace upskill
