#ifndef UPSKILL_EVAL_SIGNIFICANCE_H_
#define UPSKILL_EVAL_SIGNIFICANCE_H_

#include <span>

#include "common/rng.h"
#include "common/status.h"

namespace upskill {
namespace eval {

/// Result of a two-sided Wilcoxon signed-rank test (normal approximation
/// with tie and zero corrections), the test the paper applies to paired
/// squared errors (Section VI-D).
struct WilcoxonResult {
  /// Sum of positive-difference ranks.
  double w_plus = 0.0;
  /// Standardized statistic.
  double z = 0.0;
  /// Two-sided p-value.
  double p_value = 1.0;
  /// Pairs remaining after zero differences are dropped.
  size_t n_effective = 0;
};

/// Tests whether paired samples `a` and `b` differ. Differences equal to
/// zero are dropped (Wilcoxon's convention); tied absolute differences get
/// average ranks and the variance correction. Requires equal sizes and at
/// least one non-zero difference.
Result<WilcoxonResult> WilcoxonSignedRank(std::span<const double> a,
                                          std::span<const double> b);

/// Bonferroni correction: min(1, p * num_comparisons).
double BonferroniCorrect(double p_value, int num_comparisons);

/// Standard normal CDF.
double NormalCdf(double z);

/// Result of a paired bootstrap test on mean difference.
struct PairedBootstrapResult {
  /// Observed mean(a) - mean(b).
  double mean_difference = 0.0;
  /// Two-sided p-value: the fraction of sign-flipped resampled mean
  /// differences at least as extreme as the observed one.
  double p_value = 1.0;
  int num_resamples = 0;
};

/// Distribution-free alternative to the Wilcoxon test: resamples the
/// paired differences with replacement under the null of zero mean
/// (centering) and counts how often the resampled |mean| reaches the
/// observed |mean|. Requires equal sizes and at least 2 pairs.
Result<PairedBootstrapResult> PairedBootstrapTest(std::span<const double> a,
                                                  std::span<const double> b,
                                                  int num_resamples, Rng& rng);

}  // namespace eval
}  // namespace upskill

#endif  // UPSKILL_EVAL_SIGNIFICANCE_H_
