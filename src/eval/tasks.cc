#include "eval/tasks.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/inference.h"
#include "exec/backend.h"
#include "exec/map_reduce.h"
#include "exec/shard.h"

namespace upskill {
namespace eval {

Result<ItemPredictionReport> EvaluateItemPrediction(
    const Dataset& train, const SkillAssignments& assignments,
    const SkillModel& model, const std::vector<HeldOutAction>& test, int k,
    ThreadPool* pool) {
  exec::BackendChoice choice;
  return EvaluateItemPrediction(train, assignments, model, test, k,
                                choice.Resolve(nullptr, pool));
}

Result<ItemPredictionReport> EvaluateItemPrediction(
    const Dataset& train, const SkillAssignments& assignments,
    const SkillModel& model, const std::vector<HeldOutAction>& test, int k,
    exec::Backend* backend) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (backend == nullptr) backend = exec::SerialBackend::Get();
  ItemPredictionReport report;
  report.reciprocal_ranks.assign(test.size(), 0.0);
  // Test cases are independent and uniform-cost, so an equal-count plan
  // over the case index space is right. Per-shard state is limited to
  // things whose aggregation is exact (hit counts) or order-fixed
  // (first error in shard order); the reciprocal ranks land per-case.
  const exec::ShardPlan plan = exec::ShardPlan::Contiguous(
      test.size(),
      exec::ResolveShardCount(0, static_cast<const exec::Backend*>(backend),
                              test.size()));
  const int num_shards = plan.num_shards();
  std::vector<size_t> shard_hits(static_cast<size_t>(num_shards), 0);
  std::vector<Status> shard_errors(static_cast<size_t>(num_shards),
                                   Status::OK());
  exec::MapShards(backend, num_shards, [&](int shard) {
    const exec::IndexRange range = plan.range(shard);
    for (size_t i = range.begin; i < range.end; ++i) {
      const HeldOutAction& held = test[i];
      const int level =
          NearestActionLevel(train.sequence(held.user),
                             assignments[static_cast<size_t>(held.user)],
                             held.action.time);
      Result<int> rank = ItemRankAtLevel(model, level, held.action.item);
      if (!rank.ok()) {
        shard_errors[static_cast<size_t>(shard)] = rank.status();
        return;
      }
      if (rank.value() <= k) ++shard_hits[static_cast<size_t>(shard)];
      report.reciprocal_ranks[i] = 1.0 / static_cast<double>(rank.value());
    }
  });
  size_t hits = 0;
  for (int shard = 0; shard < num_shards; ++shard) {
    if (!shard_errors[static_cast<size_t>(shard)].ok()) {
      return shard_errors[static_cast<size_t>(shard)];
    }
    hits += shard_hits[static_cast<size_t>(shard)];
  }
  report.num_cases = test.size();
  if (!test.empty()) {
    report.accuracy_at_k =
        static_cast<double>(hits) / static_cast<double>(test.size());
    // Fixed per-case tree over the index order: thread-count-invariant.
    report.mean_reciprocal_rank =
        exec::ReduceOrderedSum(report.reciprocal_ranks) /
        static_cast<double>(test.size());
  }
  return report;
}

double RandomGuessAccuracyAtK(int num_items, int k) {
  if (num_items <= 0) return 0.0;
  return std::min(1.0, static_cast<double>(k) / num_items);
}

double RandomGuessMeanReciprocalRank(int num_items) {
  // E[1/rank] for a uniformly random rank = H_n / n.
  if (num_items <= 0) return 0.0;
  double harmonic = 0.0;
  for (int i = 1; i <= num_items; ++i) harmonic += 1.0 / i;
  return harmonic / num_items;
}

namespace {

// Difficulty lookup with a midpoint fallback for NaN (never-selected
// items under the assignment-based estimator).
double DifficultyOrMidpoint(std::span<const double> difficulty, ItemId item,
                            int num_levels) {
  const double value = difficulty[static_cast<size_t>(item)];
  if (std::isnan(value)) return 0.5 * (1.0 + num_levels);
  return value;
}

}  // namespace

Result<RatingPredictionReport> EvaluateRatingPrediction(
    const Dataset& train, const SkillAssignments& assignments,
    const SkillModel& model, std::span<const double> difficulty,
    const std::vector<HeldOutAction>& test, const RatingTaskOptions& options,
    Rng& rng) {
  if (static_cast<int>(difficulty.size()) != train.items().num_items()) {
    return Status::InvalidArgument("difficulty vector size mismatch");
  }
  Result<ffm::RatingFeatureBuilder> builder = ffm::RatingFeatureBuilder::Create(
      train.num_users(), train.items().num_items(), model.num_levels(),
      options.features);
  if (!builder.ok()) return builder.status();

  // Assemble training examples from rated training actions.
  std::vector<ffm::Example> train_examples;
  double min_target = std::numeric_limits<double>::infinity();
  double max_target = -std::numeric_limits<double>::infinity();
  for (UserId u = 0; u < train.num_users(); ++u) {
    std::span<const Action> seq = train.sequence(u);
    const std::vector<int>& levels = assignments[static_cast<size_t>(u)];
    for (size_t n = 0; n < seq.size(); ++n) {
      if (!seq[n].has_rating()) continue;
      Result<ffm::Instance> instance = builder.value().Build(
          u, seq[n].item, levels[n],
          DifficultyOrMidpoint(difficulty, seq[n].item, model.num_levels()));
      if (!instance.ok()) return instance.status();
      train_examples.push_back(
          ffm::Example{std::move(instance).value(), seq[n].rating});
      min_target = std::min(min_target, seq[n].rating);
      max_target = std::max(max_target, seq[n].rating);
    }
  }
  if (train_examples.empty()) {
    return Status::FailedPrecondition("no rated training actions");
  }

  Result<ffm::FfmModel> model_result = ffm::FfmModel::Create(
      builder.value().num_fields(), builder.value().num_features(),
      options.ffm);
  if (!model_result.ok()) return model_result.status();
  ffm::FfmModel ffm_model = std::move(model_result).value();

  RatingPredictionReport report;
  report.num_train = train_examples.size();
  ffm_model.Train(std::move(train_examples), rng);

  // Score rated held-out actions.
  double squared_sum = 0.0;
  for (const HeldOutAction& held : test) {
    if (!held.action.has_rating()) continue;
    const int level =
        NearestActionLevel(train.sequence(held.user),
                           assignments[static_cast<size_t>(held.user)],
                           held.action.time);
    Result<ffm::Instance> instance = builder.value().Build(
        held.user, held.action.item, level,
        DifficultyOrMidpoint(difficulty, held.action.item,
                             model.num_levels()));
    if (!instance.ok()) return instance.status();
    const double predicted = std::clamp(
        ffm_model.Predict(instance.value()), min_target, max_target);
    const double error = predicted - held.action.rating;
    squared_sum += error * error;
    report.squared_errors.push_back(error * error);
    ++report.num_test;
  }
  if (report.num_test == 0) {
    return Status::FailedPrecondition("no rated held-out actions");
  }
  report.rmse =
      std::sqrt(squared_sum / static_cast<double>(report.num_test));
  return report;
}

}  // namespace eval
}  // namespace upskill
