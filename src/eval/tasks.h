#ifndef UPSKILL_EVAL_TASKS_H_
#define UPSKILL_EVAL_TASKS_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "core/skill_model.h"
#include "data/dataset.h"
#include "data/split.h"
#include "ffm/feature_builder.h"
#include "ffm/ffm.h"

namespace upskill {
namespace eval {

/// Aggregate item-prediction quality (Tables X and XI).
struct ItemPredictionReport {
  /// Fraction of test cases where the true item ranked in the top k.
  double accuracy_at_k = 0.0;
  /// Mean reciprocal rank.
  double mean_reciprocal_rank = 0.0;
  size_t num_cases = 0;
  /// Per-case reciprocal ranks, for paired significance tests.
  std::vector<double> reciprocal_ranks;
};

/// The item prediction protocol of Section VI-E: for each held-out action,
/// infer the user's level from the chronologically nearest training
/// action, rank all items by the ID-feature probability at that level, and
/// score the true item's rank. When `pool` is given the test cases run
/// sharded (exec::ShardPlan over the case index space); metrics are
/// reduced per-case in index order, so the report is bitwise identical
/// for any thread count, and a failing case reports the same
/// (shard-order-first) error either way.
Result<ItemPredictionReport> EvaluateItemPrediction(
    const Dataset& train, const SkillAssignments& assignments,
    const SkillModel& model, const std::vector<HeldOutAction>& test,
    int k = 10, ThreadPool* pool = nullptr);

/// Backend form: shards the test cases through `backend` (null = serial).
/// The ThreadPool overload wraps and forwards here; the report is bitwise
/// identical for every backend.
Result<ItemPredictionReport> EvaluateItemPrediction(
    const Dataset& train, const SkillAssignments& assignments,
    const SkillModel& model, const std::vector<HeldOutAction>& test, int k,
    exec::Backend* backend);

/// Expected Acc@k and mean RR of ranking items uniformly at random (the
/// sanity floor quoted in Section VI-E).
double RandomGuessAccuracyAtK(int num_items, int k);
double RandomGuessMeanReciprocalRank(int num_items);

/// Configuration for one Table-XII column.
struct RatingTaskOptions {
  ffm::RatingFeatureConfig features;
  ffm::FfmConfig ffm;
};

/// Rating-prediction quality (Table XII).
struct RatingPredictionReport {
  double rmse = 0.0;
  size_t num_train = 0;
  size_t num_test = 0;
  /// Per-case squared errors, for paired significance tests.
  std::vector<double> squared_errors;
};

/// The rating prediction protocol of Section VI-E: train an FFM on the
/// rated training actions (skill level from `assignments`, difficulty from
/// `difficulty`, both optional per `options.features`) and report RMSE on
/// the rated held-out actions, whose levels come from nearest-action
/// inference. `difficulty` must cover every item (NaN entries fall back to
/// the scale midpoint). Predictions are clipped to [min, max] target seen
/// in training.
Result<RatingPredictionReport> EvaluateRatingPrediction(
    const Dataset& train, const SkillAssignments& assignments,
    const SkillModel& model, std::span<const double> difficulty,
    const std::vector<HeldOutAction>& test, const RatingTaskOptions& options,
    Rng& rng);

}  // namespace eval
}  // namespace upskill

#endif  // UPSKILL_EVAL_TASKS_H_
