#include "exec/backend.h"

#include <algorithm>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace upskill {
namespace exec {

void Backend::Run(int num_shards, const std::function<void(int shard)>& body) {
  // Degenerate plans (an empty mapped store, a default-constructed
  // ShardPlan) must not reach any implementation.
  if (num_shards <= 0) return;
  const bool tracing = obs::TraceRecorder::Global().enabled();
  const bool metrics = obs::MetricsEnabled();
  if (!tracing && !metrics) {
    RunShards(num_shards, body);
    return;
  }
  // Instrumented dispatch: one span per shard (visible as "exec/shard"
  // rows in the Chrome trace) and, from the same clock reads, the
  // slowest-shard/mean ratio plus a per-backend latency histogram. Each
  // shard writes only its own slot, so the timing array needs no
  // synchronization beyond the backend's completion latch. Scheduling is
  // unchanged: the body runs exactly as in the uninstrumented path, so
  // outputs cannot differ.
  std::vector<double> shard_seconds(static_cast<size_t>(num_shards), 0.0);
  RunShards(num_shards, [&](int shard) {
    obs::Span span("exec/shard", shard);
    body(shard);
    shard_seconds[static_cast<size_t>(shard)] = span.StopSeconds();
  });
  if (metrics) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    obs::Histogram& latency = registry.GetHistogram(
        "upskill_exec_shard_seconds",
        std::string("backend=\"") + name() + "\"");
    double slowest = 0.0;
    double total = 0.0;
    for (double seconds : shard_seconds) {
      latency.Observe(seconds);
      slowest = seconds > slowest ? seconds : slowest;
      total += seconds;
    }
    const double mean = total / static_cast<double>(num_shards);
    registry.GetGauge("upskill_exec_shard_imbalance_ratio")
        .Set(mean > 0.0 ? slowest / mean : 1.0);
  }
}

void Backend::RunIndices(size_t begin, size_t end,
                         const std::function<void(size_t index)>& body) {
  if (begin >= end) return;
  RunIndexLoop(begin, end, body);
}

void Backend::RunIndexLoop(size_t begin, size_t end,
                           const std::function<void(size_t index)>& body) {
  const size_t count = end - begin;
  const size_t slots = static_cast<size_t>(concurrency());
  if (slots <= 1 || count <= 1) {
    for (size_t i = begin; i < end; ++i) body(i);
    return;
  }
  // Several chunks per slot, mirroring ParallelForChunked's
  // oversubscription, so skewed per-index costs cannot serialize the
  // tail behind one slow chunk.
  const size_t chunks = std::min(count, slots * 8);
  RunShards(static_cast<int>(chunks), [&](int chunk) {
    const size_t lo = begin + count * static_cast<size_t>(chunk) / chunks;
    const size_t hi = begin + count * (static_cast<size_t>(chunk) + 1) / chunks;
    for (size_t i = lo; i < hi; ++i) body(i);
  });
}

SerialBackend* SerialBackend::Get() {
  static SerialBackend instance;
  return &instance;
}

void SerialBackend::RunShards(int num_shards,
                              const std::function<void(int shard)>& body) {
  for (int shard = 0; shard < num_shards; ++shard) body(shard);
}

void SerialBackend::RunIndexLoop(size_t begin, size_t end,
                                 const std::function<void(size_t index)>& body) {
  for (size_t i = begin; i < end; ++i) body(i);
}

ThreadPoolBackend::ThreadPoolBackend(int num_threads)
    : owned_(std::make_unique<ThreadPool>(std::max(1, num_threads))),
      pool_(owned_.get()) {}

void ThreadPoolBackend::RunShards(int num_shards,
                                  const std::function<void(int shard)>& body) {
  // ParallelFor's chunk size collapses to one index per chunk whenever
  // num_shards <= 8 * threads (the common case by construction of
  // ResolveShardCount), so shards are claimed one at a time off the
  // atomic counter — dynamic balancing with a per-call completion latch.
  ParallelFor(pool_, 0, static_cast<size_t>(num_shards),
              [&body](size_t shard) { body(static_cast<int>(shard)); });
}

void ThreadPoolBackend::RunIndexLoop(
    size_t begin, size_t end, const std::function<void(size_t index)>& body) {
  ParallelFor(pool_, begin, end, body);
}

Backend* BackendChoice::Resolve(Backend* backend, ThreadPool* pool) {
  if (backend != nullptr) return backend;
  if (pool == nullptr) return SerialBackend::Get();
  adapter_.emplace(pool);
  return &*adapter_;
}

}  // namespace exec
}  // namespace upskill
