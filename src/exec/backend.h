#ifndef UPSKILL_EXEC_BACKEND_H_
#define UPSKILL_EXEC_BACKEND_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "common/thread_pool.h"

namespace upskill {
namespace exec {

/// Abstract execution engine behind exec::MapShards. A backend owns the
/// *scheduling* of shard bodies and nothing else: every caller already
/// reduces per-element (ReduceOrderedSum) or with exact integer counts
/// merged in fixed shard order, so which thread runs which shard — the
/// only thing a backend controls — can never change results. That is
/// the determinism contract: outputs are bitwise identical across
/// backends, enforced by the backend sweep in tests/exec.
class Backend {
 public:
  virtual ~Backend() = default;

  /// Runs body(shard) exactly once for every shard in [0, num_shards).
  /// Non-virtual on purpose: the entry point guards degenerate counts
  /// (num_shards <= 0 returns without dispatching, so a degenerate
  /// ShardPlan over an empty mapped store cannot reach any
  /// implementation) and owns the obs instrumentation — per-shard
  /// "exec/shard" spans, the slowest/mean imbalance gauge, and the
  /// per-backend upskill_exec_shard_seconds histogram — so every
  /// implementation inherits both.
  void Run(int num_shards, const std::function<void(int shard)>& body);

  /// Runs body(i) exactly once for every i in [begin, end): the
  /// index-loop shape of the audited cell/item/block ParallelFor sites
  /// in core/trainer.cc and core/skill_model.cc. Chunking is
  /// implementation-defined; an empty range returns without
  /// dispatching. Not instrumented (the migrated sites never were).
  void RunIndices(size_t begin, size_t end,
                  const std::function<void(size_t index)>& body);

  /// Stable identifier ("serial", "pool", "numa", ...); labels metrics
  /// and names the factory in the BackendRegistry.
  virtual const char* name() const = 0;

  /// Maximum concurrent execution slots, counting the calling thread;
  /// always >= 1. ResolveShardCount sizes automatic shard counts from
  /// this, mirroring ParallelMaxSlots on the ThreadPool path.
  virtual int concurrency() const = 0;

  /// NUMA nodes the backend schedules across (1 for single-node and
  /// topology-blind backends).
  virtual int num_nodes() const { return 1; }

  /// Cumulative cross-node shard steals (0 for backends without
  /// node-sticky scheduling).
  virtual uint64_t steal_count() const { return 0; }

 protected:
  /// Scheduling core: dispatch body over [0, num_shards). Only called
  /// with num_shards >= 1.
  virtual void RunShards(int num_shards,
                         const std::function<void(int shard)>& body) = 0;

  /// Index-loop core; the default splits the range into contiguous
  /// chunks (several per slot, so skewed per-index costs cannot
  /// serialize the tail) and dispatches them through RunShards.
  /// ThreadPoolBackend overrides this to the existing ParallelFor
  /// machinery. Only called with a non-empty range.
  virtual void RunIndexLoop(size_t begin, size_t end,
                            const std::function<void(size_t index)>& body);
};

/// Inline, pool-free execution: body runs on the calling thread in
/// shard order. Replaces the `pool == nullptr` special case everywhere.
class SerialBackend : public Backend {
 public:
  /// Shared process-wide instance (stateless; safe from any thread).
  static SerialBackend* Get();

  const char* name() const override { return "serial"; }
  int concurrency() const override { return 1; }

 protected:
  void RunShards(int num_shards,
                 const std::function<void(int shard)>& body) override;
  void RunIndexLoop(size_t begin, size_t end,
                    const std::function<void(size_t index)>& body) override;
};

/// Wraps the existing ThreadPool / ParallelForChunked machinery
/// unchanged. Either owns its pool (registry-constructed) or borrows a
/// caller's (the stack-lifetime adapter behind the ThreadPool*-taking
/// compatibility overloads). A null borrowed pool degenerates to inline
/// execution, exactly like ParallelFor with a null pool.
class ThreadPoolBackend : public Backend {
 public:
  /// Borrows `pool`, which must outlive the backend; null is allowed.
  explicit ThreadPoolBackend(ThreadPool* pool) : pool_(pool) {}
  /// Owns a new pool with max(1, num_threads) workers.
  explicit ThreadPoolBackend(int num_threads);

  const char* name() const override { return "pool"; }
  int concurrency() const override { return ParallelMaxSlots(pool_); }
  ThreadPool* pool() const { return pool_; }

 protected:
  void RunShards(int num_shards,
                 const std::function<void(int shard)>& body) override;
  void RunIndexLoop(size_t begin, size_t end,
                    const std::function<void(size_t index)>& body) override;

 private:
  std::unique_ptr<ThreadPool> owned_;
  ThreadPool* pool_ = nullptr;
};

/// Scoped resolver for call sites migrating from ThreadPool* plumbing:
/// an explicit backend wins; otherwise a non-null pool is wrapped in a
/// borrowing ThreadPoolBackend stored inside this object (valid for its
/// scope); otherwise the shared SerialBackend. Keeps the pre-backend
/// overloads working with their exact old scheduling.
class BackendChoice {
 public:
  Backend* Resolve(Backend* backend, ThreadPool* pool);

 private:
  std::optional<ThreadPoolBackend> adapter_;
};

}  // namespace exec
}  // namespace upskill

#endif  // UPSKILL_EXEC_BACKEND_H_
