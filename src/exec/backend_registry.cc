#include "exec/backend_registry.h"

#include <algorithm>
#include <utility>

#include "exec/numa.h"

namespace upskill {
namespace exec {

BackendRegistry::BackendRegistry() {
  factories_["serial"] =
      [](const BackendSpec&) -> Result<std::shared_ptr<Backend>> {
    // The shared stateless singleton; the no-op deleter keeps ownership
    // semantics uniform with the pooled backends.
    return std::shared_ptr<Backend>(SerialBackend::Get(), [](Backend*) {});
  };
  factories_["pool"] =
      [](const BackendSpec& spec) -> Result<std::shared_ptr<Backend>> {
    return std::shared_ptr<Backend>(
        std::make_shared<ThreadPoolBackend>(std::max(1, spec.num_threads)));
  };
  factories_["numa"] =
      [](const BackendSpec& spec) -> Result<std::shared_ptr<Backend>> {
    return std::shared_ptr<Backend>(
        std::make_shared<NumaBackend>(std::max(1, spec.num_threads)));
  };
}

BackendRegistry& BackendRegistry::Global() {
  static BackendRegistry registry;
  return registry;
}

void BackendRegistry::Register(const std::string& name, Factory factory) {
  std::lock_guard<std::mutex> lock(mutex_);
  factories_[name] = std::move(factory);
}

Result<std::shared_ptr<Backend>> BackendRegistry::Create(
    const BackendSpec& spec) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = factories_.find(spec.name);
    if (it == factories_.end()) {
      std::string known;
      for (const auto& [name, unused] : factories_) {
        if (!known.empty()) known += ", ";
        known += name;
      }
      return Status::InvalidArgument("unknown backend '" + spec.name +
                                     "' (registered: " + known + ")");
    }
    factory = it->second;
  }
  // Run the factory outside the lock: it may spawn threads or register
  // further backends.
  return factory(spec);
}

std::vector<std::string> BackendRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, unused] : factories_) names.push_back(name);
  return names;
}

Result<std::shared_ptr<Backend>> CreateBackend(const std::string& name,
                                               int num_threads) {
  BackendSpec spec;
  spec.name = (name.empty() || name == "auto")
                  ? (num_threads > 1 ? "pool" : "serial")
                  : name;
  spec.num_threads = num_threads;
  return BackendRegistry::Global().Create(spec);
}

}  // namespace exec
}  // namespace upskill
