#ifndef UPSKILL_EXEC_BACKEND_REGISTRY_H_
#define UPSKILL_EXEC_BACKEND_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/backend.h"

namespace upskill {
namespace exec {

/// Everything a factory needs to build a backend.
struct BackendSpec {
  /// Registered backend name. CreateBackend resolves "" and "auto" to
  /// "pool" when num_threads > 1 and "serial" otherwise.
  std::string name;
  /// Worker budget for pooled backends (clamped to >= 1; serial ignores
  /// it).
  int num_threads = 1;
};

/// name -> factory registry behind `--backend` and
/// SkillModelConfig::backend. The builtins ("serial", "pool", "numa")
/// are always present; a GPU (or any other) backend slots in through
/// Register without touching a single caller.
class BackendRegistry {
 public:
  using Factory =
      std::function<Result<std::shared_ptr<Backend>>(const BackendSpec&)>;

  static BackendRegistry& Global();

  /// Registers (or replaces) the factory under `name`.
  void Register(const std::string& name, Factory factory);

  /// Builds a backend from `spec`; an unknown name fails with
  /// InvalidArgument listing the registered names.
  Result<std::shared_ptr<Backend>> Create(const BackendSpec& spec) const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

 private:
  BackendRegistry();

  mutable std::mutex mutex_;
  std::map<std::string, Factory> factories_;
};

/// Convenience wrapper: resolves "" / "auto" per BackendSpec's contract
/// and creates through the global registry.
Result<std::shared_ptr<Backend>> CreateBackend(const std::string& name,
                                               int num_threads);

}  // namespace exec
}  // namespace upskill

#endif  // UPSKILL_EXEC_BACKEND_REGISTRY_H_
