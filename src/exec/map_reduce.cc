#include "exec/map_reduce.h"

#include "exec/backend.h"

namespace upskill {
namespace exec {

void MapShards(Backend* backend, int num_shards,
               const std::function<void(int shard)>& body) {
  (backend != nullptr ? backend : SerialBackend::Get())->Run(num_shards, body);
}

void MapShards(ThreadPool* pool, int num_shards,
               const std::function<void(int shard)>& body) {
  if (pool == nullptr) {
    SerialBackend::Get()->Run(num_shards, body);
    return;
  }
  ThreadPoolBackend adapter(pool);
  adapter.Run(num_shards, body);
}

namespace {

double SumRange(const double* values, size_t count) {
  if (count <= kReduceLeafElements) {
    double total = 0.0;
    for (size_t i = 0; i < count; ++i) total += values[i];
    return total;
  }
  const size_t half = count / 2;
  return SumRange(values, half) + SumRange(values + half, count - half);
}

}  // namespace

double ReduceOrderedSum(std::span<const double> values) {
  return SumRange(values.data(), values.size());
}

}  // namespace exec
}  // namespace upskill
