#include "exec/map_reduce.h"

namespace upskill {
namespace exec {

void MapShards(ThreadPool* pool, int num_shards,
               const std::function<void(int shard)>& body) {
  if (num_shards <= 0) return;
  // ParallelFor's chunk size collapses to one index per chunk whenever
  // num_shards <= 8 * threads (the common case by construction of
  // ResolveShardCount), so shards are claimed one at a time off the
  // atomic counter — dynamic balancing with a per-call completion latch.
  ParallelFor(pool, 0, static_cast<size_t>(num_shards),
              [&body](size_t shard) { body(static_cast<int>(shard)); });
}

namespace {

double SumRange(const double* values, size_t count) {
  if (count <= kReduceLeafElements) {
    double total = 0.0;
    for (size_t i = 0; i < count; ++i) total += values[i];
    return total;
  }
  const size_t half = count / 2;
  return SumRange(values, half) + SumRange(values + half, count - half);
}

}  // namespace

double ReduceOrderedSum(std::span<const double> values) {
  return SumRange(values.data(), values.size());
}

}  // namespace exec
}  // namespace upskill
