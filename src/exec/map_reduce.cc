#include "exec/map_reduce.h"

#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace upskill {
namespace exec {

namespace {

obs::Gauge& ShardImbalanceGauge() {
  static obs::Gauge& gauge = obs::MetricsRegistry::Global().GetGauge(
      "upskill_exec_shard_imbalance_ratio");
  return gauge;
}

}  // namespace

void MapShards(ThreadPool* pool, int num_shards,
               const std::function<void(int shard)>& body) {
  if (num_shards <= 0) return;
  // ParallelFor's chunk size collapses to one index per chunk whenever
  // num_shards <= 8 * threads (the common case by construction of
  // ResolveShardCount), so shards are claimed one at a time off the
  // atomic counter — dynamic balancing with a per-call completion latch.
  const bool tracing = obs::TraceRecorder::Global().enabled();
  const bool metrics = obs::MetricsEnabled();
  if (!tracing && !metrics) {
    ParallelFor(pool, 0, static_cast<size_t>(num_shards),
                [&body](size_t shard) { body(static_cast<int>(shard)); });
    return;
  }
  // Instrumented dispatch: one span per shard (visible as "exec/shard"
  // rows in the Chrome trace) and, from the same clock reads, the
  // slowest-shard/mean ratio — the single number that says whether the
  // balanced partitioner is doing its job. Each shard writes only its own
  // slot, so the timing array needs no synchronization beyond the loop's
  // completion latch. Scheduling is unchanged: the body runs exactly as
  // in the uninstrumented path, so outputs cannot differ.
  std::vector<double> shard_seconds(static_cast<size_t>(num_shards), 0.0);
  ParallelFor(pool, 0, static_cast<size_t>(num_shards), [&](size_t shard) {
    obs::Span span("exec/shard", static_cast<int>(shard));
    body(static_cast<int>(shard));
    shard_seconds[shard] = span.StopSeconds();
  });
  if (metrics) {
    double slowest = 0.0;
    double total = 0.0;
    for (double seconds : shard_seconds) {
      slowest = seconds > slowest ? seconds : slowest;
      total += seconds;
    }
    const double mean = total / static_cast<double>(num_shards);
    ShardImbalanceGauge().Set(mean > 0.0 ? slowest / mean : 1.0);
  }
}

namespace {

double SumRange(const double* values, size_t count) {
  if (count <= kReduceLeafElements) {
    double total = 0.0;
    for (size_t i = 0; i < count; ++i) total += values[i];
    return total;
  }
  const size_t half = count / 2;
  return SumRange(values, half) + SumRange(values + half, count - half);
}

}  // namespace

double ReduceOrderedSum(std::span<const double> values) {
  return SumRange(values.data(), values.size());
}

}  // namespace exec
}  // namespace upskill
