#ifndef UPSKILL_EXEC_MAP_REDUCE_H_
#define UPSKILL_EXEC_MAP_REDUCE_H_

#include <cstddef>
#include <functional>
#include <span>

#include "common/thread_pool.h"

namespace upskill {
namespace exec {

class Backend;

/// Runs `body(shard)` once for every shard index in [0, num_shards),
/// scheduled by `backend` (inline through the shared SerialBackend when
/// null). Each shard index is visited exactly once, so per-shard state
/// (a ShardWorkspace) is safe without locking; which *slot* runs which
/// shard is nondeterministic, which is exactly why results must never
/// depend on it — reduce per-element (ReduceOrderedSum) or with exact
/// order-independent sums. This is a thin forward to Backend::Run,
/// which owns the num_shards <= 0 guard and the obs instrumentation.
void MapShards(Backend* backend, int num_shards,
               const std::function<void(int shard)>& body);

/// ThreadPool compatibility form: wraps `pool` in a scoped
/// ThreadPoolBackend (the SerialBackend when null), preserving the
/// pre-backend call sites and their exact scheduling.
void MapShards(ThreadPool* pool, int num_shards,
               const std::function<void(int shard)>& body);

/// Elements folded serially (left to right) at each leaf of the ordered
/// reductions below. Sums over fewer than this many elements are bitwise
/// equal to a plain serial accumulation.
inline constexpr size_t kReduceLeafElements = 16;

/// Deterministic fixed-shape pairwise tree sum. The split points depend
/// only on values.size(), so the result is a pure function of the element
/// values in index order: bitwise identical for any thread count and any
/// shard count that produced them, unlike a reduction over per-thread or
/// per-shard partials (whose boundaries move with the configuration).
/// This is the one reduction shape every float accumulation in the
/// training/eval stack funnels through.
double ReduceOrderedSum(std::span<const double> values);

/// Generic fixed-order tree reduction: folds items[1..n) into items[0]
/// with `fold(into, from)`, pairing sub-ranges by the same fixed shape as
/// ReduceOrderedSum. For associative-but-inexact combines (SufficientStats
/// over float weights, partial grids) this pins the rounding pattern to
/// the element count alone. No-op on empty spans.
template <typename T, typename Fold>
void ReduceOrdered(std::span<T> items, Fold&& fold) {
  if (items.empty()) return;
  // Recursive lambda over [begin, end): folds everything into items[begin].
  const auto reduce = [&items, &fold](const auto& self, size_t begin,
                                      size_t end) -> void {
    const size_t count = end - begin;
    if (count <= kReduceLeafElements) {
      for (size_t i = begin + 1; i < end; ++i) fold(items[begin], items[i]);
      return;
    }
    const size_t mid = begin + count / 2;
    self(self, begin, mid);
    self(self, mid, end);
    fold(items[begin], items[mid]);
  };
  reduce(reduce, 0, items.size());
}

}  // namespace exec
}  // namespace upskill

#endif  // UPSKILL_EXEC_MAP_REDUCE_H_
