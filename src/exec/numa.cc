#include "exec/numa.h"

#include <pthread.h>
#include <sched.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <memory>

#include "obs/metrics.h"

namespace upskill {
namespace exec {

namespace {

// A cpulist range wider than this is treated as malformed (protects
// against a corrupt sysfs file allocating gigabytes of ids).
constexpr long kMaxCpusPerRange = 4096;

// Run currently executing on this thread, if any: a nested Run on the
// same backend must execute inline instead of deadlocking on run_mutex_
// or on its own completion latch.
thread_local const NumaBackend* tls_running_backend = nullptr;

}  // namespace

std::vector<int> ParseCpuList(const std::string& text) {
  std::vector<int> cpus;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    std::string piece = text.substr(pos, comma - pos);
    pos = comma + 1;
    // Trim surrounding whitespace (the sysfs file ends in a newline).
    const size_t first = piece.find_first_not_of(" \t\r\n");
    if (first == std::string::npos) continue;
    const size_t last = piece.find_last_not_of(" \t\r\n");
    piece = piece.substr(first, last - first + 1);

    char* end = nullptr;
    const long lo = std::strtol(piece.c_str(), &end, 10);
    if (end == piece.c_str() || lo < 0) continue;
    long hi = lo;
    if (*end == '-') {
      const char* hi_begin = end + 1;
      hi = std::strtol(hi_begin, &end, 10);
      if (end == hi_begin) continue;
    }
    if (*end != '\0' || hi < lo || hi - lo > kMaxCpusPerRange) continue;
    for (long cpu = lo; cpu <= hi; ++cpu) cpus.push_back(static_cast<int>(cpu));
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

NumaTopology NumaTopology::SingleNode() {
  NumaTopology topology;
  topology.node_cpus.push_back({});
  return topology;
}

NumaTopology NumaTopology::FromSysfs(const std::string& root) {
  NumaTopology topology;
  // Node ids are contiguous from 0 on every kernel this targets; a gap
  // (possible with offlined memory nodes) just truncates the list, which
  // degrades to fewer nodes — never to a broken backend.
  for (int node = 0; node < 1024; ++node) {
    std::ifstream in(root + "/node" + std::to_string(node) + "/cpulist");
    if (!in.good()) break;
    std::string line;
    std::getline(in, line);
    topology.node_cpus.push_back(ParseCpuList(line));
  }
  if (topology.node_cpus.empty()) return SingleNode();
  return topology;
}

NumaTopology NumaTopology::Detect() {
  const char* force = std::getenv("UPSKILL_FORCE_SINGLE_NODE");
  if (force != nullptr && force[0] == '1') return SingleNode();
  return FromSysfs("/sys/devices/system/node");
}

// Per-Run scheduling state, stack-allocated in RunShards. Workers may
// still be inside ExecuteAs (draining already-empty cursors) after the
// last shard completes, so the caller waits for active_workers to drop
// to zero before letting the frame die.
struct NumaBackend::RunState {
  const std::function<void(int)>* body = nullptr;
  int num_shards = 0;
  int num_nodes = 1;
  // Node n's home shards are [bounds[n], bounds[n + 1]).
  std::vector<int> bounds;
  // Per-node claim cursor: offset into the node's home range.
  std::unique_ptr<std::atomic<int>[]> cursors;
  // Shards executed by each node's workers (for the imbalance gauge).
  std::unique_ptr<std::atomic<int>[]> executed;
  std::atomic<uint64_t> steals{0};
  std::atomic<int> completed{0};
  std::atomic<int> active_workers{0};
};

NumaBackend::NumaBackend(int num_threads, NumaTopology topology)
    : nodes_(std::move(topology.node_cpus)) {
  if (nodes_.empty()) nodes_.push_back({});
  const int worker_count = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(worker_count));
  const int node_count = static_cast<int>(nodes_.size());
  for (int i = 0; i < worker_count; ++i) {
    const int node = i % node_count;
    workers_.emplace_back([this, node] { WorkerLoop(node); });
  }
}

NumaBackend::~NumaBackend() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

int NumaBackend::HomeNode(int shard, int num_shards) const {
  const int node_count = static_cast<int>(nodes_.size());
  if (num_shards <= 0 || node_count <= 1) return 0;
  // bounds[n] = num_shards * n / node_count; find the range holding
  // `shard` (node counts are tiny, so a linear walk is fine).
  int node = 0;
  while (node + 1 < node_count &&
         static_cast<int64_t>(num_shards) * (node + 1) / node_count <= shard) {
    ++node;
  }
  return node;
}

void NumaBackend::WorkerLoop(int node) {
  if (!nodes_[static_cast<size_t>(node)].empty()) {
    cpu_set_t set;
    CPU_ZERO(&set);
    bool any = false;
    for (const int cpu : nodes_[static_cast<size_t>(node)]) {
      if (cpu >= 0 && cpu < CPU_SETSIZE) {
        CPU_SET(cpu, &set);
        any = true;
      }
    }
    if (any) {
      // Best effort: a sandbox or a shrunken cpuset rejecting the mask
      // leaves the worker unpinned, never broken.
      (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
    }
  }
  uint64_t seen = 0;
  while (true) {
    RunState* state = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock,
                    [&] { return shutting_down_ || generation_ != seen; });
      if (shutting_down_) return;
      seen = generation_;
      state = state_;
      // A run can complete and be torn down between the notify and this
      // wake-up; state_ is nulled under the same mutex, so a stale
      // generation bump is just a missed (already finished) run.
      if (state == nullptr) continue;
      state->active_workers.fetch_add(1, std::memory_order_relaxed);
    }
    ExecuteAs(node, *state);
    if (state->active_workers.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
  }
}

void NumaBackend::ExecuteAs(int node, RunState& state) {
  const NumaBackend* previous = tls_running_backend;
  tls_running_backend = this;
  const auto drain = [&](int victim) {
    const int lo = state.bounds[static_cast<size_t>(victim)];
    const int size = state.bounds[static_cast<size_t>(victim) + 1] - lo;
    while (true) {
      const int offset =
          state.cursors[victim].fetch_add(1, std::memory_order_relaxed);
      if (offset >= size) break;
      if (victim != node) {
        state.steals.fetch_add(1, std::memory_order_relaxed);
      }
      state.executed[node].fetch_add(1, std::memory_order_relaxed);
      (*state.body)(lo + offset);
      if (state.completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          state.num_shards) {
        std::lock_guard<std::mutex> lock(mutex_);
        done_cv_.notify_all();
      }
    }
  };
  // Home shards first (node-sticky: keeps each shard's first-touched
  // workspace pages local), then steal from the other nodes.
  drain(node);
  for (int off = 1; off < state.num_nodes; ++off) {
    drain((node + off) % state.num_nodes);
  }
  tls_running_backend = previous;
}

void NumaBackend::RunShards(int num_shards,
                            const std::function<void(int shard)>& body) {
  // Nested dispatch from inside a shard body runs inline: blocking a
  // worker on its own pool's completion latch would deadlock.
  if (workers_.empty() || tls_running_backend == this) {
    for (int shard = 0; shard < num_shards; ++shard) body(shard);
    return;
  }
  std::lock_guard<std::mutex> run_lock(run_mutex_);
  const int node_count = static_cast<int>(nodes_.size());
  RunState state;
  state.body = &body;
  state.num_shards = num_shards;
  state.num_nodes = node_count;
  state.bounds.resize(static_cast<size_t>(node_count) + 1);
  for (int n = 0; n <= node_count; ++n) {
    state.bounds[static_cast<size_t>(n)] = static_cast<int>(
        static_cast<int64_t>(num_shards) * n / node_count);
  }
  state.cursors.reset(new std::atomic<int>[node_count]);
  state.executed.reset(new std::atomic<int>[node_count]);
  for (int n = 0; n < node_count; ++n) {
    state.cursors[n].store(0, std::memory_order_relaxed);
    state.executed[n].store(0, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    state_ = &state;
    ++generation_;
  }
  work_cv_.notify_all();
  // The caller participates as a node-0 drainer, exactly like the
  // ThreadPool's caller-as-slot-0 convention.
  ExecuteAs(0, state);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return state.completed.load(std::memory_order_acquire) ==
                 state.num_shards &&
             state.active_workers.load(std::memory_order_acquire) == 0;
    });
    // Null the slot under the mutex so a worker waking late sees no run
    // and goes back to sleep; RunState is safe to destroy after this.
    state_ = nullptr;
  }
  const uint64_t run_steals = state.steals.load(std::memory_order_relaxed);
  steals_.fetch_add(run_steals, std::memory_order_relaxed);
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    if (run_steals > 0) {
      registry.GetCounter("upskill_exec_steal_total").Increment(run_steals);
    }
    int busiest = 0;
    for (int n = 0; n < node_count; ++n) {
      busiest =
          std::max(busiest, state.executed[n].load(std::memory_order_relaxed));
    }
    const double mean =
        static_cast<double>(num_shards) / static_cast<double>(node_count);
    registry.GetGauge("upskill_exec_node_imbalance_ratio")
        .Set(mean > 0.0 ? static_cast<double>(busiest) / mean : 1.0);
  }
}

}  // namespace exec
}  // namespace upskill
