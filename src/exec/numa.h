#ifndef UPSKILL_EXEC_NUMA_H_
#define UPSKILL_EXEC_NUMA_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/backend.h"

namespace upskill {
namespace exec {

/// Parses the kernel cpulist format ("0-3,8,10-11") into sorted,
/// deduplicated cpu ids. Malformed pieces are skipped, never fatal.
/// Used by NumaTopology; exposed for tests.
std::vector<int> ParseCpuList(const std::string& text);

/// Physical NUMA layout: one cpu set per node, discovered by reading
/// /sys/devices/system/node/node<k>/cpulist directly — no libnuma.
/// Anything that fails (no sysfs, unparseable files, a single-node
/// machine, or UPSKILL_FORCE_SINGLE_NODE=1) degrades to one node with an
/// empty cpu set, which means "don't pin": NumaBackend always works.
struct NumaTopology {
  /// node_cpus[n] = cpu ids of node n. An empty cpu set disables
  /// pinning for that node's workers.
  std::vector<std::vector<int>> node_cpus;

  int num_nodes() const {
    return node_cpus.empty() ? 1 : static_cast<int>(node_cpus.size());
  }

  /// The fallback topology: one node, no pinning.
  static NumaTopology SingleNode();
  /// Reads `root`/node<k>/cpulist for k = 0, 1, ... until the first
  /// missing node directory (testable with a synthetic tree).
  static NumaTopology FromSysfs(const std::string& root);
  /// FromSysfs("/sys/devices/system/node"), unless
  /// UPSKILL_FORCE_SINGLE_NODE=1 forces the fallback.
  static NumaTopology Detect();
};

/// NUMA-aware pool. Worker threads are distributed round-robin over the
/// topology's nodes and pinned to their node's cpu set with
/// pthread_setaffinity_np (failures are ignored, so sandboxes and
/// shrunken cpusets degrade to an unpinned pool). Each Run maps shards
/// to home nodes by contiguous range — the same map for the same
/// (shards, nodes) pair, so a shard's persistent ShardWorkspace arenas
/// are grown, and therefore first-touch page-placed, by workers pinned
/// to its home node — and workers drain their own node's shards before
/// stealing from the others (counted in steal_count() and the
/// upskill_exec_steal_total metric). Every shard still runs exactly
/// once; only scheduling is topology-aware, so outputs are bitwise
/// identical to the serial and pool backends.
class NumaBackend : public Backend {
 public:
  /// Spawns max(1, num_threads) workers over `topology`.
  explicit NumaBackend(int num_threads,
                       NumaTopology topology = NumaTopology::Detect());
  ~NumaBackend() override;

  NumaBackend(const NumaBackend&) = delete;
  NumaBackend& operator=(const NumaBackend&) = delete;

  const char* name() const override { return "numa"; }
  int concurrency() const override {
    return static_cast<int>(workers_.size()) + 1;
  }
  int num_nodes() const override { return static_cast<int>(nodes_.size()); }
  uint64_t steal_count() const override {
    return steals_.load(std::memory_order_relaxed);
  }

  /// Home node of `shard` under this backend's node count: contiguous
  /// ranges, every node non-empty when num_shards >= num_nodes.
  /// Exposed for tests and for workspace-placement assertions.
  int HomeNode(int shard, int num_shards) const;

 protected:
  void RunShards(int num_shards,
                 const std::function<void(int shard)>& body) override;

 private:
  struct RunState;

  void WorkerLoop(int node);
  /// Drains `node`'s home shards, then steals from the other nodes in
  /// round-robin order.
  void ExecuteAs(int node, RunState& state);

  std::vector<std::vector<int>> nodes_;  // cpu ids per node
  std::vector<std::thread> workers_;
  std::atomic<uint64_t> steals_{0};

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t generation_ = 0;
  RunState* state_ = nullptr;
  bool shutting_down_ = false;
  /// Serializes Run calls from different external threads (there is one
  /// RunState slot). Nested Runs from inside a body execute inline.
  std::mutex run_mutex_;
};

}  // namespace exec
}  // namespace upskill

#endif  // UPSKILL_EXEC_NUMA_H_
