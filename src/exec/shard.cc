#include "exec/shard.h"

#include <algorithm>

#include "common/logging.h"
#include "exec/backend.h"

namespace upskill {
namespace exec {

ShardPlan ShardPlan::Contiguous(size_t count, int num_shards) {
  const size_t shards = static_cast<size_t>(std::max(1, num_shards));
  std::vector<size_t> bounds(shards + 1, 0);
  for (size_t k = 1; k <= shards; ++k) {
    bounds[k] = (count * k) / shards;
  }
  bounds[shards] = count;
  return ShardPlan(std::move(bounds));
}

ShardPlan ShardPlan::Balanced(std::span<const size_t> weights,
                              int num_shards) {
  const size_t shards = static_cast<size_t>(std::max(1, num_shards));
  const size_t count = weights.size();
  size_t total = 0;
  for (const size_t w : weights) total += w;
  if (total == 0) return Contiguous(count, num_shards);

  // Shard k ends at the first index whose inclusive prefix weight reaches
  // k+1 ideal shares. One forward scan; cut points are a pure function of
  // (weights, shards).
  std::vector<size_t> bounds(shards + 1, 0);
  size_t prefix = 0;
  size_t index = 0;
  for (size_t k = 1; k < shards; ++k) {
    // Overflow-safe form of prefix >= total * k / shards.
    const size_t target = (total * k + shards - 1) / shards;
    while (index < count && prefix < target) {
      prefix += weights[index];
      ++index;
    }
    bounds[k] = index;
  }
  bounds[shards] = count;
  return ShardPlan(std::move(bounds));
}

int ResolveShardCountForSlots(int requested, int slots, size_t count) {
  if (requested > 0) return requested;
  const size_t automatic = static_cast<size_t>(std::max(1, slots)) *
                           static_cast<size_t>(kDefaultShardsPerSlot);
  return static_cast<int>(std::max<size_t>(1, std::min(automatic, count)));
}

int ResolveShardCount(int requested, const ThreadPool* pool, size_t count) {
  return ResolveShardCountForSlots(requested, ParallelMaxSlots(pool), count);
}

int ResolveShardCount(int requested, const Backend* backend, size_t count) {
  return ResolveShardCountForSlots(
      requested, backend != nullptr ? backend->concurrency() : 1, count);
}

DatasetShard::DatasetShard(const Dataset& dataset, IndexRange users)
    : dataset_(&dataset), users_(users) {
  UPSKILL_CHECK(users.end <= static_cast<size_t>(dataset.num_users()));
  for (size_t u = users.begin; u < users.end; ++u) {
    num_actions_ += dataset.sequence(static_cast<UserId>(u)).size();
  }
}

ShardPlan PlanDatasetShards(const Dataset& dataset, int num_shards,
                            PartitionStrategy strategy) {
  const size_t num_users = static_cast<size_t>(dataset.num_users());
  if (strategy == PartitionStrategy::kContiguous) {
    return ShardPlan::Contiguous(num_users, num_shards);
  }
  std::vector<size_t> weights(num_users);
  for (size_t u = 0; u < num_users; ++u) {
    weights[u] = dataset.sequence(static_cast<UserId>(u)).size();
  }
  return ShardPlan::Balanced(weights, num_shards);
}

std::vector<DatasetShard> MakeDatasetShards(const Dataset& dataset,
                                            const ShardPlan& plan) {
  std::vector<DatasetShard> shards;
  shards.reserve(static_cast<size_t>(plan.num_shards()));
  for (int k = 0; k < plan.num_shards(); ++k) {
    shards.emplace_back(dataset, plan.range(k));
  }
  return shards;
}

}  // namespace exec
}  // namespace upskill
