#ifndef UPSKILL_EXEC_SHARD_H_
#define UPSKILL_EXEC_SHARD_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "data/dataset.h"

namespace upskill {
namespace exec {

/// Half-open index range [begin, end).
struct IndexRange {
  size_t begin = 0;
  size_t end = 0;

  size_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }
};

/// How a ShardPlan cuts an index space into contiguous runs.
enum class PartitionStrategy {
  /// Equal element counts per shard (±1). Right for index spaces whose
  /// per-element cost is uniform (batch requests, ranking levels, test
  /// cases).
  kContiguous,
  /// Contiguous runs balanced by a per-element weight (e.g. per-user
  /// action counts), so one long-sequence user cannot serialize a shard's
  /// tail. Cut points depend only on the weights and the shard count —
  /// never on thread count or scheduling — so the plan is deterministic.
  kBalanced,
};

/// A partition of [0, total) into `num_shards` contiguous half-open
/// ranges. Shards may be empty (more shards than elements, or zero-weight
/// prefixes); ranges always cover the space exactly once in order.
class ShardPlan {
 public:
  /// Zero shards over zero elements.
  ShardPlan() = default;

  /// Equal-count partition of [0, count).
  static ShardPlan Contiguous(size_t count, int num_shards);

  /// Weight-balanced partition of [0, weights.size()): shard k ends at
  /// the first index whose prefix weight reaches k+1 shares of the total.
  /// Zero-weight elements attach to whichever shard the cut lands them
  /// in; an all-zero weight vector degenerates to Contiguous.
  static ShardPlan Balanced(std::span<const size_t> weights, int num_shards);

  int num_shards() const {
    return bounds_.empty() ? 0 : static_cast<int>(bounds_.size()) - 1;
  }
  size_t total() const { return bounds_.empty() ? 0 : bounds_.back(); }

  IndexRange range(int shard) const {
    return IndexRange{bounds_[static_cast<size_t>(shard)],
                      bounds_[static_cast<size_t>(shard) + 1]};
  }

 private:
  explicit ShardPlan(std::vector<size_t> bounds) : bounds_(std::move(bounds)) {}

  // num_shards + 1 monotone boundaries; bounds_[0] == 0.
  std::vector<size_t> bounds_;
};

/// Shards-per-slot oversubscription used when the shard count is left to
/// the runtime: enough shards that dynamic scheduling can rebalance a
/// skewed tail, few enough that per-shard workspaces stay cheap.
inline constexpr int kDefaultShardsPerSlot = 4;

class Backend;

/// Resolves a shard-count request: `requested > 0` is honored as-is
/// (empty shards are harmless), otherwise kDefaultShardsPerSlot shards
/// per execution slot, clamped to `count` (minimum 1). The resolved
/// count never affects results — every consumer in this repository
/// reduces at element granularity or with exact sums — only scheduling.
int ResolveShardCountForSlots(int requested, int slots, size_t count);

/// Slot count from ParallelMaxSlots(pool) (a null pool has one slot:
/// the caller).
int ResolveShardCount(int requested, const ThreadPool* pool, size_t count);

/// Slot count from the backend's concurrency() (a null backend is
/// serial: one slot).
int ResolveShardCount(int requested, const Backend* backend, size_t count);

/// Immutable zero-copy view over a contiguous run of a Dataset's users:
/// the sequence spans stay owned by the Dataset, the ItemTable is shared.
/// The Dataset must outlive the shard and keep its sequences unchanged.
class DatasetShard {
 public:
  DatasetShard() = default;
  DatasetShard(const Dataset& dataset, IndexRange users);

  const Dataset& dataset() const { return *dataset_; }
  const ItemTable& items() const { return dataset_->items(); }

  /// Global user-id bounds of this shard.
  UserId user_begin() const { return static_cast<UserId>(users_.begin); }
  UserId user_end() const { return static_cast<UserId>(users_.end); }
  size_t num_users() const { return users_.size(); }
  /// Total actions across the shard's users (computed at construction).
  size_t num_actions() const { return num_actions_; }

  /// Sequence of a *global* user id; must lie in [user_begin, user_end).
  std::span<const Action> sequence(UserId user) const {
    return dataset_->sequence(user);
  }

 private:
  const Dataset* dataset_ = nullptr;
  IndexRange users_;
  size_t num_actions_ = 0;
};

/// Plans the user axis of `dataset`: kBalanced weighs users by sequence
/// length, kContiguous splits by user count.
ShardPlan PlanDatasetShards(const Dataset& dataset, int num_shards,
                            PartitionStrategy strategy =
                                PartitionStrategy::kBalanced);

/// Materializes one DatasetShard view per plan range.
std::vector<DatasetShard> MakeDatasetShards(const Dataset& dataset,
                                            const ShardPlan& plan);

}  // namespace exec
}  // namespace upskill

#endif  // UPSKILL_EXEC_SHARD_H_
