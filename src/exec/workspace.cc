#include "exec/workspace.h"

namespace upskill {
namespace exec {

void ExecContext::SetBackend(std::shared_ptr<Backend> backend) {
  if (backend_.get() == backend.get()) {
    backend_ = std::move(backend);
    return;
  }
  backend_ = std::move(backend);
  // Workspace arenas were grown — and, under a NUMA backend, first-touch
  // page-placed — by the previous backend's workers. A different backend
  // (serve hot-swap after a --backend change, a registry rebuild) must
  // start from fresh workspaces so placement follows the new topology.
  workspaces_.clear();
  dataset_ = nullptr;
  built_users_ = -1;
  built_shards_ = 0;
  plan_ = ShardPlan();
  shards_.clear();
}

void ExecContext::EnsureUserShardsForSlots(const Dataset& dataset,
                                           int requested_shards, int slots,
                                           PartitionStrategy strategy) {
  const int num_users = dataset.num_users();
  const bool same_dataset =
      dataset_ == &dataset && built_users_ == num_users &&
      built_strategy_ == strategy && built_shards_ > 0;
  // An auto request (<= 0) sticks to whatever plan already exists for this
  // dataset: a driver whose phases run under different pools (assignment
  // vs. update axes) must not rebuild the plan every call, and since the
  // shard count never affects results, any existing plan is as good.
  if (same_dataset && requested_shards <= 0) return;
  const int resolved = ResolveShardCountForSlots(
      requested_shards, slots, static_cast<size_t>(num_users));
  if (same_dataset && built_shards_ == resolved) return;
  dataset_ = &dataset;
  built_users_ = num_users;
  built_shards_ = resolved;
  built_strategy_ = strategy;
  plan_ = PlanDatasetShards(dataset, resolved, strategy);
  shards_ = MakeDatasetShards(dataset, plan_);
  while (workspaces_.size() < static_cast<size_t>(resolved)) {
    workspaces_.emplace_back();
  }
}

void ExecContext::EnsureUserShards(const Dataset& dataset,
                                   int requested_shards,
                                   const ThreadPool* pool,
                                   PartitionStrategy strategy) {
  EnsureUserShardsForSlots(dataset, requested_shards, ParallelMaxSlots(pool),
                           strategy);
}

void ExecContext::EnsureUserShards(const Dataset& dataset,
                                   int requested_shards,
                                   const Backend* ensure_backend,
                                   PartitionStrategy strategy) {
  EnsureUserShardsForSlots(
      dataset, requested_shards,
      ensure_backend != nullptr ? ensure_backend->concurrency() : 1, strategy);
}

void ExecContext::EnsureUserShards(const Dataset& dataset,
                                   int requested_shards,
                                   PartitionStrategy strategy) {
  EnsureUserShards(dataset, requested_shards, backend_.get(), strategy);
}

Backend* AxisBackend(const ExecContext* context, bool axis_enabled,
                     ThreadPool* pool, BackendChoice& choice) {
  Backend* installed = context != nullptr ? context->backend() : nullptr;
  if (installed != nullptr) {
    return (axis_enabled && installed->concurrency() > 1)
               ? installed
               : SerialBackend::Get();
  }
  return choice.Resolve(nullptr, axis_enabled ? pool : nullptr);
}

}  // namespace exec
}  // namespace upskill
