#include "exec/workspace.h"

namespace upskill {
namespace exec {

void ExecContext::EnsureUserShards(const Dataset& dataset,
                                   int requested_shards,
                                   const ThreadPool* pool,
                                   PartitionStrategy strategy) {
  const int num_users = dataset.num_users();
  const bool same_dataset =
      dataset_ == &dataset && built_users_ == num_users &&
      built_strategy_ == strategy && built_shards_ > 0;
  // An auto request (<= 0) sticks to whatever plan already exists for this
  // dataset: a driver whose phases run under different pools (assignment
  // vs. update axes) must not rebuild the plan every call, and since the
  // shard count never affects results, any existing plan is as good.
  if (same_dataset && requested_shards <= 0) return;
  const int resolved = ResolveShardCount(requested_shards, pool,
                                         static_cast<size_t>(num_users));
  if (same_dataset && built_shards_ == resolved) return;
  dataset_ = &dataset;
  built_users_ = num_users;
  built_shards_ = resolved;
  built_strategy_ = strategy;
  plan_ = PlanDatasetShards(dataset, resolved, strategy);
  shards_ = MakeDatasetShards(dataset, plan_);
  while (workspaces_.size() < static_cast<size_t>(resolved)) {
    workspaces_.emplace_back();
  }
}

}  // namespace exec
}  // namespace upskill
