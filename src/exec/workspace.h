#ifndef UPSKILL_EXEC_WORKSPACE_H_
#define UPSKILL_EXEC_WORKSPACE_H_

#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "core/dp.h"
#include "exec/backend.h"
#include "exec/shard.h"

namespace upskill {
namespace exec {

/// Per-shard scratch owned across iterations. One workspace is bound to
/// one shard index for the lifetime of an ExecContext, so buffers grown
/// for a shard's longest sequence are reused on every subsequent pass —
/// what used to be per-call (or per-thread-slot) scratch in the trainer,
/// EM, and readout loops. Workspaces are only ever touched by the single
/// MapShards task running their shard, never concurrently.
struct ShardWorkspace {
  /// Assignment-step / readout DP arena (core/dp.h).
  DpScratch dp;
  /// Update-step (level, item) count-grid partial; sized lazily by
  /// FitParameters, zeroed per pass. Sums are exact integer counts in
  /// doubles, so merging partials in fixed shard order is bitwise
  /// shard-count-invariant.
  std::vector<double> grid;
  /// EM forward/backward arenas (n x S per user, resized per sequence).
  std::vector<double> alpha;
  std::vector<double> beta;
  /// Assignment-pass outcome counters, gathered in shard order.
  size_t skipped = 0;
  size_t reassigned = 0;
  bool changed = false;
};

/// The sharded-execution state one driver (a Trainer run, an EM run, a
/// standalone assignment pass) carries across iterations: the user-axis
/// ShardPlan, the DatasetShard views, and one ShardWorkspace per shard.
/// EnsureUserShards is idempotent for an unchanged (dataset, shard count,
/// strategy) triple, so calling it at the top of every pass costs nothing
/// in the steady state while keeping workspaces (and their grown arenas)
/// alive between passes.
class ExecContext {
 public:
  ExecContext() = default;
  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  /// Installs the execution backend this context's passes dispatch
  /// through (shared so serve hot-swap and trainers can co-own it; null
  /// resets to serial resolution). Switching to a *different* backend
  /// instance drops all per-shard workspaces and the built plan:
  /// arenas were sized — and, under NumaBackend, first-touch page-placed
  /// — by the old backend's workers, so reusing them under a new
  /// topology would silently keep every page on the wrong node.
  /// Re-installing the same instance keeps everything (workspace
  /// addresses stay stable across passes, as before).
  void SetBackend(std::shared_ptr<Backend> backend);

  /// The installed backend, or null when this context still resolves
  /// through explicit ThreadPool* arguments.
  Backend* backend() const { return backend_.get(); }

  /// (Re)builds the plan/shards/workspaces for `dataset`'s user axis.
  /// `requested_shards <= 0` resolves against the pool via
  /// ResolveShardCount — but reuses ANY existing plan for the same
  /// (dataset, user count, strategy) first, so drivers whose phases run
  /// under different pools never thrash the plan. An explicit request
  /// rebuilds when it differs from the built count. Workspaces are kept
  /// (grow-only) so arenas persist across rebuilds.
  void EnsureUserShards(const Dataset& dataset, int requested_shards,
                        const ThreadPool* pool,
                        PartitionStrategy strategy =
                            PartitionStrategy::kBalanced);

  /// Same, resolving automatic shard counts against `ensure_backend`'s
  /// concurrency (null = serial).
  void EnsureUserShards(const Dataset& dataset, int requested_shards,
                        const Backend* ensure_backend,
                        PartitionStrategy strategy =
                            PartitionStrategy::kBalanced);

  /// Same, resolving against the installed backend (serial when unset).
  void EnsureUserShards(const Dataset& dataset, int requested_shards,
                        PartitionStrategy strategy =
                            PartitionStrategy::kBalanced);

  const ShardPlan& plan() const { return plan_; }
  std::span<const DatasetShard> shards() const { return shards_; }
  int num_shards() const { return plan_.num_shards(); }

  ShardWorkspace& workspace(int shard) {
    return workspaces_[static_cast<size_t>(shard)];
  }

 private:
  void EnsureUserShardsForSlots(const Dataset& dataset, int requested_shards,
                                int slots, PartitionStrategy strategy);

  std::shared_ptr<Backend> backend_;
  const Dataset* dataset_ = nullptr;
  int built_users_ = -1;
  int built_shards_ = 0;
  PartitionStrategy built_strategy_ = PartitionStrategy::kBalanced;
  ShardPlan plan_;
  std::vector<DatasetShard> shards_;
  // deque: stable addresses while growing, no moves of live arenas.
  std::deque<ShardWorkspace> workspaces_;
};

/// Per-axis backend gating for drivers migrating off ThreadPool*: when
/// `context` carries an installed backend, an enabled axis runs on it
/// (serial if its concurrency is 1 — the old `threads > 1` gate);
/// otherwise falls back to wrapping `pool` through `choice`, preserving
/// the legacy `axis_enabled && pool` behavior. `choice` must outlive
/// every use of the returned pointer.
Backend* AxisBackend(const ExecContext* context, bool axis_enabled,
                     ThreadPool* pool, BackendChoice& choice);

}  // namespace exec
}  // namespace upskill

#endif  // UPSKILL_EXEC_WORKSPACE_H_
