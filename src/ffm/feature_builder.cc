#include "ffm/feature_builder.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace upskill {
namespace ffm {

Result<RatingFeatureBuilder> RatingFeatureBuilder::Create(
    int num_users, int num_items, int num_levels,
    const RatingFeatureConfig& config) {
  if (num_users < 1 || num_items < 1 || num_levels < 1) {
    return Status::InvalidArgument("counts must be positive");
  }
  if (config.include_difficulty && config.difficulty_buckets < 1) {
    return Status::InvalidArgument("difficulty_buckets must be positive");
  }
  RatingFeatureBuilder builder;
  builder.config_ = config;
  builder.num_users_ = num_users;
  builder.num_items_ = num_items;
  builder.num_levels_ = num_levels;
  builder.item_offset_ = num_users;
  int next_offset = num_users + num_items;
  int next_field = 2;
  if (config.include_skill) {
    builder.skill_field_ = next_field++;
    builder.skill_offset_ = next_offset;
    next_offset += num_levels;
  }
  if (config.include_difficulty) {
    builder.difficulty_field_ = next_field++;
    builder.difficulty_offset_ = next_offset;
    next_offset += config.difficulty_buckets;
  }
  builder.num_fields_ = next_field;
  builder.num_features_ = next_offset;
  return builder;
}

Result<Instance> RatingFeatureBuilder::Build(UserId user, ItemId item,
                                             int skill_level,
                                             double difficulty) const {
  if (user < 0 || user >= num_users_) {
    return Status::OutOfRange(StringPrintf("user %d", user));
  }
  if (item < 0 || item >= num_items_) {
    return Status::OutOfRange(StringPrintf("item %d", item));
  }
  Instance instance;
  instance.reserve(4);
  instance.push_back(Feature{0, user, 1.0});
  instance.push_back(Feature{1, item_offset_ + item, 1.0});
  if (config_.include_skill) {
    if (skill_level < 1 || skill_level > num_levels_) {
      return Status::OutOfRange(StringPrintf("skill level %d", skill_level));
    }
    instance.push_back(
        Feature{skill_field_, skill_offset_ + skill_level - 1, 1.0});
  }
  if (config_.include_difficulty) {
    const double clamped = std::clamp(
        difficulty, 1.0, static_cast<double>(num_levels_));
    // Map [1, S] onto [0, buckets-1].
    const double unit =
        num_levels_ > 1 ? (clamped - 1.0) / (num_levels_ - 1.0) : 0.0;
    const int bucket = std::min(
        config_.difficulty_buckets - 1,
        static_cast<int>(unit * config_.difficulty_buckets));
    instance.push_back(
        Feature{difficulty_field_, difficulty_offset_ + bucket, 1.0});
  }
  return instance;
}

}  // namespace ffm
}  // namespace upskill
