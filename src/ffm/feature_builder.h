#ifndef UPSKILL_FFM_FEATURE_BUILDER_H_
#define UPSKILL_FFM_FEATURE_BUILDER_H_

#include "common/status.h"
#include "data/dataset.h"
#include "ffm/ffm.h"

namespace upskill {
namespace ffm {

/// Which side information the rating model consumes, matching the four
/// columns of Table XII: U+I (neither), U+I+S, U+I+D, U+I+S+D.
struct RatingFeatureConfig {
  bool include_skill = false;
  bool include_difficulty = false;
  /// Difficulty in [1, S] is one-hot discretized into this many buckets.
  int difficulty_buckets = 10;
};

/// Maps (user, item, skill level, difficulty) tuples to sparse FFM
/// instances. Field layout: 0 = user, 1 = item, 2 = skill level (when
/// enabled), then difficulty bucket. Feature indices are disjoint across
/// fields.
class RatingFeatureBuilder {
 public:
  /// `num_levels` is the skill-model S; difficulty values are expected in
  /// [1, num_levels].
  static Result<RatingFeatureBuilder> Create(int num_users, int num_items,
                                             int num_levels,
                                             const RatingFeatureConfig& config);

  /// Builds one instance. `skill_level` is 1-based; `difficulty` is
  /// clamped into [1, num_levels]. The skill/difficulty arguments are
  /// ignored when the corresponding config flag is off.
  Result<Instance> Build(UserId user, ItemId item, int skill_level,
                         double difficulty) const;

  int num_fields() const { return num_fields_; }
  int num_features() const { return num_features_; }
  const RatingFeatureConfig& config() const { return config_; }

 private:
  RatingFeatureBuilder() = default;

  RatingFeatureConfig config_;
  int num_users_ = 0;
  int num_items_ = 0;
  int num_levels_ = 0;
  int num_fields_ = 0;
  int num_features_ = 0;
  int item_offset_ = 0;
  int skill_offset_ = -1;
  int difficulty_offset_ = -1;
  int skill_field_ = -1;
  int difficulty_field_ = -1;
};

}  // namespace ffm
}  // namespace upskill

#endif  // UPSKILL_FFM_FEATURE_BUILDER_H_
