#include "ffm/ffm.h"

#include <cmath>
#include <fstream>

#include "common/logging.h"
#include "eval/metrics.h"

namespace upskill {
namespace ffm {

FfmModel::FfmModel(int num_fields, int num_features, const FfmConfig& config)
    : num_fields_(num_fields), num_features_(num_features), config_(config) {}

Result<FfmModel> FfmModel::Create(int num_fields, int num_features,
                                  const FfmConfig& config) {
  if (num_fields < 1) return Status::InvalidArgument("num_fields must be >= 1");
  if (num_features < 1) {
    return Status::InvalidArgument("num_features must be >= 1");
  }
  if (config.num_latent < 1) {
    return Status::InvalidArgument("num_latent must be >= 1");
  }
  if (config.learning_rate <= 0.0) {
    return Status::InvalidArgument("learning_rate must be positive");
  }
  FfmModel model(num_fields, num_features, config);
  const size_t latent_size = static_cast<size_t>(num_features) *
                             static_cast<size_t>(num_fields) *
                             static_cast<size_t>(config.num_latent);
  model.linear_.assign(static_cast<size_t>(num_features), 0.0);
  model.linear_grad_sum_.assign(static_cast<size_t>(num_features), 1.0);
  model.latent_.resize(latent_size);
  model.latent_grad_sum_.assign(latent_size, 1.0);
  Rng rng(config.seed);
  const double scale =
      config.init_scale / std::sqrt(static_cast<double>(config.num_latent));
  for (double& w : model.latent_) w = rng.NextDouble() * scale;
  return model;
}

double FfmModel::Predict(const Instance& instance) const {
  double result = bias_;
  for (const Feature& f : instance) {
    UPSKILL_CHECK(f.index >= 0 && f.index < num_features_);
    UPSKILL_CHECK(f.field >= 0 && f.field < num_fields_);
    result += linear_[static_cast<size_t>(f.index)] * f.value;
  }
  const int k = config_.num_latent;
  for (size_t a = 0; a < instance.size(); ++a) {
    for (size_t b = a + 1; b < instance.size(); ++b) {
      const Feature& fa = instance[a];
      const Feature& fb = instance[b];
      const size_t va = LatentBase(fa.index, fb.field);
      const size_t vb = LatentBase(fb.index, fa.field);
      double dot = 0.0;
      for (int d = 0; d < k; ++d) {
        dot += latent_[va + static_cast<size_t>(d)] *
               latent_[vb + static_cast<size_t>(d)];
      }
      result += dot * fa.value * fb.value;
    }
  }
  return result;
}

double FfmModel::TrainEpoch(std::span<const Example> examples) {
  const int k = config_.num_latent;
  const double eta = config_.learning_rate;
  const double reg = config_.regularization;
  double loss_sum = 0.0;

  for (const Example& example : examples) {
    const Instance& instance = example.features;
    const double prediction = Predict(instance);
    const double error = prediction - example.target;  // d(loss)/d(pred) / 2
    loss_sum += error * error;

    // Bias.
    {
      const double g = error;
      bias_grad_sum_ += g * g;
      bias_ -= eta / std::sqrt(bias_grad_sum_) * g;
    }
    // Linear terms.
    for (const Feature& f : instance) {
      const double g = error * f.value + reg * linear_[static_cast<size_t>(f.index)];
      double& gsum = linear_grad_sum_[static_cast<size_t>(f.index)];
      gsum += g * g;
      linear_[static_cast<size_t>(f.index)] -= eta / std::sqrt(gsum) * g;
    }
    // Pairwise interactions.
    for (size_t a = 0; a < instance.size(); ++a) {
      for (size_t b = a + 1; b < instance.size(); ++b) {
        const Feature& fa = instance[a];
        const Feature& fb = instance[b];
        const size_t va = LatentBase(fa.index, fb.field);
        const size_t vb = LatentBase(fb.index, fa.field);
        const double coeff = error * fa.value * fb.value;
        for (int d = 0; d < k; ++d) {
          const size_t ia = va + static_cast<size_t>(d);
          const size_t ib = vb + static_cast<size_t>(d);
          const double ga = coeff * latent_[ib] + reg * latent_[ia];
          const double gb = coeff * latent_[ia] + reg * latent_[ib];
          latent_grad_sum_[ia] += ga * ga;
          latent_grad_sum_[ib] += gb * gb;
          latent_[ia] -= eta / std::sqrt(latent_grad_sum_[ia]) * ga;
          latent_[ib] -= eta / std::sqrt(latent_grad_sum_[ib]) * gb;
        }
      }
    }
  }
  return examples.empty()
             ? 0.0
             : loss_sum / static_cast<double>(examples.size());
}

void FfmModel::Train(std::vector<Example> examples, Rng& rng) {
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(examples);
    const double loss = TrainEpoch(examples);
    if (config_.verbose) {
      UPSKILL_LOG(Info) << "ffm epoch " << epoch + 1 << " mse " << loss;
    }
  }
}

double FfmModel::TrainWithValidation(std::vector<Example> train,
                                     std::span<const Example> validation,
                                     Rng& rng, int patience) {
  UPSKILL_CHECK(patience >= 1);
  double best_rmse = Evaluate(validation);
  // Best-so-far weights (the pre-training state counts: training that
  // never helps must be a no-op).
  double best_bias = bias_;
  std::vector<double> best_linear = linear_;
  std::vector<double> best_latent = latent_;
  int epochs_without_improvement = 0;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(train);
    TrainEpoch(train);
    const double rmse = Evaluate(validation);
    if (config_.verbose) {
      UPSKILL_LOG(Info) << "ffm epoch " << epoch + 1 << " validation RMSE "
                        << rmse;
    }
    if (rmse < best_rmse - 1e-9) {
      best_rmse = rmse;
      best_bias = bias_;
      best_linear = linear_;
      best_latent = latent_;
      epochs_without_improvement = 0;
    } else if (++epochs_without_improvement >= patience) {
      break;
    }
  }
  bias_ = best_bias;
  linear_ = std::move(best_linear);
  latent_ = std::move(best_latent);
  return best_rmse;
}

double FfmModel::Evaluate(std::span<const Example> examples) const {
  std::vector<double> predicted;
  std::vector<double> actual;
  predicted.reserve(examples.size());
  actual.reserve(examples.size());
  for (const Example& example : examples) {
    predicted.push_back(Predict(example.features));
    actual.push_back(example.target);
  }
  return eval::Rmse(predicted, actual);
}

Status FfmModel::Save(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file.is_open()) return Status::IoError("cannot open " + path);
  file.precision(17);
  file << "ffm " << num_fields_ << ' ' << num_features_ << ' '
       << config_.num_latent << '\n';
  file << bias_ << '\n';
  for (size_t i = 0; i < linear_.size(); ++i) {
    file << linear_[i] << (i + 1 == linear_.size() ? '\n' : ' ');
  }
  for (size_t i = 0; i < latent_.size(); ++i) {
    file << latent_[i] << (i + 1 == latent_.size() ? '\n' : ' ');
  }
  file.flush();
  if (!file.good()) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Result<FfmModel> FfmModel::Load(const std::string& path) {
  std::ifstream file(path);
  if (!file.is_open()) return Status::IoError("cannot open " + path);
  std::string magic;
  int num_fields = 0;
  int num_features = 0;
  int num_latent = 0;
  file >> magic >> num_fields >> num_features >> num_latent;
  if (!file.good() || magic != "ffm") {
    return Status::Corruption("not an FFM model file: " + path);
  }
  FfmConfig config;
  config.num_latent = num_latent;
  Result<FfmModel> created = Create(num_fields, num_features, config);
  if (!created.ok()) return created.status();
  FfmModel model = std::move(created).value();
  file >> model.bias_;
  for (double& w : model.linear_) file >> w;
  for (double& w : model.latent_) file >> w;
  if (file.fail()) return Status::Corruption("truncated FFM model file");
  // Gradient accumulators restart fresh; persisted models are for
  // inference (further training would re-warm AdaGrad).
  return model;
}

}  // namespace ffm
}  // namespace upskill
