#ifndef UPSKILL_FFM_FFM_H_
#define UPSKILL_FFM_FFM_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace upskill {
namespace ffm {

/// One active feature of an instance: a (field, feature index, value)
/// triple. Rating instances in this library are one-hot, so value is
/// usually 1.
struct Feature {
  int field = 0;
  int index = 0;
  double value = 1.0;
};

/// A sparse instance (the active features only).
using Instance = std::vector<Feature>;

/// A labeled training example.
struct Example {
  Instance features;
  double target = 0.0;
};

/// Field-aware Factorization Machine hyper-parameters (after Juan et al.,
/// the model the paper uses for rating prediction in Section VI-E).
struct FfmConfig {
  int num_latent = 4;
  double learning_rate = 0.1;
  double regularization = 2e-5;
  int epochs = 15;
  /// Latent weights start at Uniform(0, init_scale) / sqrt(k).
  double init_scale = 0.5;
  uint64_t seed = 42;
  bool verbose = false;
};

/// FFM for regression with squared loss and per-coordinate AdaGrad, as in
/// the reference LIBFFM implementation:
///
///   y_hat = w0 + sum_j w_j x_j
///         + sum_{j1 < j2} <v_{j1, f(j2)}, v_{j2, f(j1)}> x_{j1} x_{j2}
///
/// With only user and item fields, the interaction term reduces to a
/// biased matrix factorization, the paper's U+I baseline.
class FfmModel {
 public:
  /// Creates a model for `num_fields` fields over `num_features` feature
  /// indices with randomly initialized latent vectors.
  static Result<FfmModel> Create(int num_fields, int num_features,
                                 const FfmConfig& config);

  /// Prediction for one instance (no clipping).
  double Predict(const Instance& instance) const;

  /// One stochastic pass over `examples` in the given order. Returns the
  /// mean squared loss observed during the pass.
  double TrainEpoch(std::span<const Example> examples);

  /// Runs `config.epochs` passes, shuffling example order each epoch.
  void Train(std::vector<Example> examples, Rng& rng);

  /// Runs up to `config.epochs` passes with early stopping: after each
  /// epoch the model is scored on `validation`, and training stops when
  /// the validation RMSE has not improved for `patience` consecutive
  /// epochs. The best-scoring weights are restored. Returns the best
  /// validation RMSE.
  double TrainWithValidation(std::vector<Example> train,
                             std::span<const Example> validation, Rng& rng,
                             int patience = 3);

  /// RMSE of predictions against targets.
  double Evaluate(std::span<const Example> examples) const;

  /// Persists all weights (text format, loadable by Load).
  Status Save(const std::string& path) const;

  /// Restores a model saved by Save().
  static Result<FfmModel> Load(const std::string& path);

  int num_fields() const { return num_fields_; }
  int num_features() const { return num_features_; }
  int num_latent() const { return config_.num_latent; }

 private:
  FfmModel(int num_fields, int num_features, const FfmConfig& config);

  size_t LatentBase(int feature, int field) const {
    return (static_cast<size_t>(feature) * static_cast<size_t>(num_fields_) +
            static_cast<size_t>(field)) *
           static_cast<size_t>(config_.num_latent);
  }

  int num_fields_ = 0;
  int num_features_ = 0;
  FfmConfig config_;

  double bias_ = 0.0;
  double bias_grad_sum_ = 1.0;
  std::vector<double> linear_;
  std::vector<double> linear_grad_sum_;
  /// latent_[feature][field][k], flattened.
  std::vector<double> latent_;
  std::vector<double> latent_grad_sum_;
};

}  // namespace ffm
}  // namespace upskill

#endif  // UPSKILL_FFM_FFM_H_
