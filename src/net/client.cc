#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/string_util.h"

namespace upskill {
namespace net {

namespace {

Status Errno(const char* what) {
  return Status::IoError(StringPrintf("%s: %s", what, std::strerror(errno)));
}

}  // namespace

NetClient::~NetClient() { Close(); }

Status NetClient::Connect(const std::string& host, uint16_t port) {
  Close();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host " + host);
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return Errno("socket");
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const Status status = Errno("connect");
    Close();
    return status;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  peer_closed_ = false;
  rx_.clear();
  tx_.clear();
  return Status::OK();
}

void NetClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void NetClient::ShutdownWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

Status NetClient::FillBuffer() {
  if (peer_closed_) return Status::IoError("peer closed connection");
  char chunk[64 * 1024];
  while (true) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      rx_.append(chunk, static_cast<size_t>(n));
      return Status::OK();
    }
    if (n == 0) {
      peer_closed_ = true;
      return Status::IoError("peer closed connection");
    }
    if (errno == EINTR) continue;
    return Errno("recv");
  }
}

Status NetClient::SendRaw(const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("send");
  }
  return Status::OK();
}

void NetClient::QueueRequest(const serve::ServeRequest& request) {
  EncodeRequest(request, &tx_);
}

Status NetClient::Flush() {
  const Status status = SendRaw(tx_);
  tx_.clear();
  return status;
}

Result<DecodedResponse> NetClient::ReadResponse(
    serve::ServeRequest::Kind kind) {
  while (true) {
    DecodedResponse response;
    std::string error;
    const DecodeStatus status =
        DecodeResponse(rx_.data(), rx_.size(), kind,
                       kDefaultMaxPayloadBytes, &response, &error);
    if (status == DecodeStatus::kFrame) {
      rx_.erase(0, response.frame_bytes);
      return response;
    }
    if (status == DecodeStatus::kError) {
      return Status::InvalidArgument("bad response frame: " + error);
    }
    const Status filled = FillBuffer();
    if (!filled.ok()) return filled;
  }
}

Result<DecodedResponse> NetClient::Call(const serve::ServeRequest& request) {
  QueueRequest(request);
  const Status flushed = Flush();
  if (!flushed.ok()) return flushed;
  return ReadResponse(request.kind);
}

Result<std::vector<std::string>> NetClient::ReadLines(size_t n) {
  std::vector<std::string> lines;
  size_t offset = 0;
  while (lines.size() < n) {
    const size_t newline = rx_.find('\n', offset);
    if (newline == std::string::npos) {
      const Status filled = FillBuffer();
      if (!filled.ok()) return filled;
      continue;
    }
    lines.push_back(rx_.substr(offset, newline - offset));
    offset = newline + 1;
  }
  rx_.erase(0, offset);
  return lines;
}

std::string NetClient::ReadAll() {
  while (FillBuffer().ok()) {
  }
  std::string all = std::move(rx_);
  rx_.clear();
  return all;
}

}  // namespace net
}  // namespace upskill
