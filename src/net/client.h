#ifndef UPSKILL_NET_CLIENT_H_
#define UPSKILL_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/frame.h"
#include "serve/protocol.h"

namespace upskill {
namespace net {

/// Small blocking TCP client for the serving front end, used by the CLI
/// `client` mode, the tests, and the network bench. Speaks either wire
/// format: raw text passthrough (SendRaw/ReadLines) or framed binary
/// (Call, or QueueRequest/Flush/ReadResponse for pipelining).
class NetClient {
 public:
  NetClient() = default;
  ~NetClient();
  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  Status Connect(const std::string& host, uint16_t port);
  void Close();
  /// Half-closes the sending direction (the server sees EOF) while the
  /// receiving direction stays open for remaining responses.
  void ShutdownWrite();
  bool connected() const { return fd_ >= 0; }
  /// Raw socket, for callers that drive their own wave I/O (bench_net).
  int fd() const { return fd_; }

  /// One binary round trip: encode, send, block until the response frame
  /// for `request.kind` arrives.
  Result<DecodedResponse> Call(const serve::ServeRequest& request);

  /// Pipelining: queue any number of requests, Flush() them in one (or a
  /// few) writes, then read the responses back in request order.
  void QueueRequest(const serve::ServeRequest& request);
  Status Flush();
  Result<DecodedResponse> ReadResponse(serve::ServeRequest::Kind kind);

  /// Sends raw bytes (text protocol lines, or hand-built malformed
  /// frames for the robustness tests).
  Status SendRaw(const std::string& bytes);
  /// Blocks until `n` newline-terminated lines have arrived; returns them
  /// without the terminators. Fails if the peer closes first.
  Result<std::vector<std::string>> ReadLines(size_t n);
  /// Reads until the peer closes; returns everything received.
  std::string ReadAll();

 private:
  /// One blocking recv appended to rx_; IoError on failure, with
  /// `peer_closed_` latched on EOF.
  Status FillBuffer();

  int fd_ = -1;
  bool peer_closed_ = false;
  std::string tx_;
  std::string rx_;
};

}  // namespace net
}  // namespace upskill

#endif  // UPSKILL_NET_CLIENT_H_
