#include "net/epoll_loop.h"

#include <fcntl.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/string_util.h"

namespace upskill {
namespace net {

namespace {

Status Errno(const char* what) {
  return Status::IoError(StringPrintf("%s: %s", what, std::strerror(errno)));
}

}  // namespace

EpollLoop::EpollLoop() : epoll_fd_(::epoll_create1(EPOLL_CLOEXEC)) {}

EpollLoop::~EpollLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status EpollLoop::Add(int fd, uint32_t events, void* data) {
  epoll_event event{};
  event.events = events;
  event.data.ptr = data;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) {
    return Errno("epoll_ctl(ADD)");
  }
  return Status::OK();
}

Status EpollLoop::Modify(int fd, uint32_t events, void* data) {
  epoll_event event{};
  event.events = events;
  event.data.ptr = data;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event) != 0) {
    return Errno("epoll_ctl(MOD)");
  }
  return Status::OK();
}

void EpollLoop::Remove(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

int EpollLoop::Wait(epoll_event* events, int max_events, int timeout_ms) {
  while (true) {
    const int n = ::epoll_wait(epoll_fd_, events, max_events, timeout_ms);
    if (n >= 0) return n;
    if (errno != EINTR) return -1;
  }
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

WakeupFd::WakeupFd() : fd_(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)) {}

WakeupFd::~WakeupFd() {
  if (fd_ >= 0) ::close(fd_);
}

void WakeupFd::Signal() {
  const uint64_t one = 1;
  // A full eventfd counter still wakes the reader; ignore short writes.
  [[maybe_unused]] const ssize_t n = ::write(fd_, &one, sizeof(one));
}

void WakeupFd::Drain() {
  uint64_t value = 0;
  while (::read(fd_, &value, sizeof(value)) > 0) {
  }
}

}  // namespace net
}  // namespace upskill
