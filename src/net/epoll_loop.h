#ifndef UPSKILL_NET_EPOLL_LOOP_H_
#define UPSKILL_NET_EPOLL_LOOP_H_

#include <sys/epoll.h>

#include <cstdint>

#include "common/status.h"

namespace upskill {
namespace net {

/// Thin RAII wrapper over a level-triggered epoll instance. One loop per
/// worker thread; the loop itself holds no connection state — callers
/// stash their per-fd object in the epoll data pointer.
class EpollLoop {
 public:
  EpollLoop();
  ~EpollLoop();
  EpollLoop(const EpollLoop&) = delete;
  EpollLoop& operator=(const EpollLoop&) = delete;

  bool ok() const { return epoll_fd_ >= 0; }

  Status Add(int fd, uint32_t events, void* data);
  Status Modify(int fd, uint32_t events, void* data);
  /// Best-effort removal (the kernel also drops registrations on close).
  void Remove(int fd);

  /// epoll_wait with EINTR retry. Returns the number of ready events
  /// written to `events`, or -1 on a non-EINTR failure.
  int Wait(epoll_event* events, int max_events, int timeout_ms);

 private:
  int epoll_fd_ = -1;
};

/// Marks `fd` O_NONBLOCK (every fd in the event loop must be).
Status SetNonBlocking(int fd);

/// An eventfd the owner writes to wake a worker out of Wait (used for
/// shutdown). Read-drained by the worker on wakeup.
class WakeupFd {
 public:
  WakeupFd();
  ~WakeupFd();
  WakeupFd(const WakeupFd&) = delete;
  WakeupFd& operator=(const WakeupFd&) = delete;

  bool ok() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  /// Signals the owning loop (async-signal-safe, callable from any thread).
  void Signal();
  /// Consumes pending signals so a level-triggered loop stops waking.
  void Drain();

 private:
  int fd_ = -1;
};

}  // namespace net
}  // namespace upskill

#endif  // UPSKILL_NET_EPOLL_LOOP_H_
