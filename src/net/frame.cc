#include "net/frame.h"

#include <cstring>

#include "common/string_util.h"

namespace upskill {
namespace net {

namespace {

// Fixed-width put/get via memcpy. Like the snapshot format, the wire
// encoding is the host byte order of the supported targets (x86-64 and
// aarch64 are both little-endian); doubles travel as raw IEEE-754 bits.
template <typename T>
void Put(T value, std::string* out) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out->append(bytes, sizeof(T));
}

template <typename T>
T Get(const char* data) {
  T value;
  std::memcpy(&value, data, sizeof(T));
  return value;
}

void PutString(const std::string& s, std::string* out) {
  Put<uint16_t>(static_cast<uint16_t>(s.size()), out);
  out->append(s);
}

/// Reads a u16-length-prefixed string; false when the payload is too
/// short (malformed frame).
bool GetString(const char* data, size_t size, size_t* offset,
               std::string* out) {
  if (*offset + sizeof(uint16_t) > size) return false;
  const uint16_t len = Get<uint16_t>(data + *offset);
  *offset += sizeof(uint16_t);
  if (*offset + len > size) return false;
  out->assign(data + *offset, len);
  *offset += len;
  return true;
}

template <typename T>
bool GetValue(const char* data, size_t size, size_t* offset, T* out) {
  if (*offset + sizeof(T) > size) return false;
  *out = Get<T>(data + *offset);
  *offset += sizeof(T);
  return true;
}

void AppendHeader(uint8_t magic, uint8_t code, uint32_t payload_len,
                  std::string* out) {
  out->push_back(static_cast<char>(magic));
  out->push_back(static_cast<char>(code));
  Put<uint32_t>(payload_len, out);
}

/// Patches the payload length into a header written with a placeholder,
/// once the payload has been appended after it.
void PatchPayloadLength(std::string* out, size_t header_start) {
  const uint32_t payload_len = static_cast<uint32_t>(
      out->size() - header_start - kFrameHeaderBytes);
  std::memcpy(out->data() + header_start + 2, &payload_len,
              sizeof(payload_len));
}

DecodeStatus Malformed(std::string* error, const char* reason) {
  if (error != nullptr) *error = reason;
  return DecodeStatus::kError;
}

/// Shared header validation: magic + length sanity, then payload
/// availability. Sets `payload`/`payload_len` on kFrame.
DecodeStatus DecodeHeader(const char* data, size_t size,
                          uint8_t expected_magic, size_t max_payload_bytes,
                          const char** payload, size_t* payload_len,
                          std::string* error) {
  if (size == 0) return DecodeStatus::kNeedMore;
  if (static_cast<uint8_t>(data[0]) != expected_magic) {
    return Malformed(error, "bad frame magic");
  }
  if (size < kFrameHeaderBytes) return DecodeStatus::kNeedMore;
  const uint32_t len = Get<uint32_t>(data + 2);
  if (len > max_payload_bytes) {
    return Malformed(error, "frame payload exceeds limit");
  }
  if (size < kFrameHeaderBytes + len) return DecodeStatus::kNeedMore;
  *payload = data + kFrameHeaderBytes;
  *payload_len = len;
  return DecodeStatus::kFrame;
}

}  // namespace

DecodeStatus DecodeRequest(const char* data, size_t size,
                           size_t max_payload_bytes, DecodedRequest* out,
                           std::string* error) {
  const char* payload = nullptr;
  size_t payload_len = 0;
  const DecodeStatus header = DecodeHeader(
      data, size, kRequestMagic, max_payload_bytes, &payload, &payload_len,
      error);
  if (header != DecodeStatus::kFrame) return header;
  const uint8_t opcode = static_cast<uint8_t>(data[1]);
  if (opcode >= static_cast<uint8_t>(serve::kNumServeRequestKinds)) {
    return Malformed(error, "unknown opcode");
  }
  serve::ServeRequest& request = out->request;
  request = serve::ServeRequest{};
  request.kind = static_cast<serve::ServeRequest::Kind>(opcode);
  size_t offset = 0;
  using Kind = serve::ServeRequest::Kind;
  switch (request.kind) {
    case Kind::kObserve: {
      uint8_t has_time = 0;
      if (!GetString(payload, payload_len, &offset, &request.user) ||
          !GetValue(payload, payload_len, &offset, &request.item) ||
          !GetValue(payload, payload_len, &offset, &has_time) ||
          !GetValue(payload, payload_len, &offset, &request.time)) {
        return Malformed(error, "truncated observe payload");
      }
      request.has_time = has_time != 0;
      break;
    }
    case Kind::kLevel:
      if (!GetString(payload, payload_len, &offset, &request.user)) {
        return Malformed(error, "truncated level payload");
      }
      break;
    case Kind::kRecommend:
      if (!GetString(payload, payload_len, &offset, &request.user) ||
          !GetValue(payload, payload_len, &offset, &request.top_k) ||
          !GetValue(payload, payload_len, &offset, &request.stretch)) {
        return Malformed(error, "truncated recommend payload");
      }
      break;
    case Kind::kDifficulty:
      if (!GetValue(payload, payload_len, &offset, &request.item)) {
        return Malformed(error, "truncated difficulty payload");
      }
      break;
    case Kind::kSwap:
      if (!GetString(payload, payload_len, &offset, &request.path)) {
        return Malformed(error, "truncated swap payload");
      }
      break;
    case Kind::kEvict:
      if (!GetValue(payload, payload_len, &offset, &request.time)) {
        return Malformed(error, "truncated evict payload");
      }
      request.has_time = true;
      break;
    case Kind::kStats:
    case Kind::kReset:
    case Kind::kQuit:
      break;
  }
  if (offset != payload_len) {
    return Malformed(error, "trailing bytes in request payload");
  }
  out->frame_bytes = kFrameHeaderBytes + payload_len;
  return DecodeStatus::kFrame;
}

void EncodeRequest(const serve::ServeRequest& request, std::string* out) {
  const size_t header_start = out->size();
  AppendHeader(kRequestMagic, static_cast<uint8_t>(request.kind), 0, out);
  using Kind = serve::ServeRequest::Kind;
  switch (request.kind) {
    case Kind::kObserve:
      PutString(request.user, out);
      Put<ItemId>(request.item, out);
      Put<uint8_t>(request.has_time ? 1 : 0, out);
      Put<int64_t>(request.time, out);
      break;
    case Kind::kLevel:
      PutString(request.user, out);
      break;
    case Kind::kRecommend:
      PutString(request.user, out);
      Put<int32_t>(request.top_k, out);
      Put<double>(request.stretch, out);
      break;
    case Kind::kDifficulty:
      Put<ItemId>(request.item, out);
      break;
    case Kind::kSwap:
      PutString(request.path, out);
      break;
    case Kind::kEvict:
      Put<int64_t>(request.time, out);
      break;
    case Kind::kStats:
    case Kind::kReset:
    case Kind::kQuit:
      break;
  }
  PatchPayloadLength(out, header_start);
}

void EncodeErrorResponse(const Status& status, std::string* out) {
  AppendHeader(kResponseMagic, static_cast<uint8_t>(status.code()),
               static_cast<uint32_t>(status.message().size()), out);
  out->append(status.message());
}

void EncodeLevelResponse(const serve::SessionLevel& level, std::string* out) {
  AppendHeader(kResponseMagic, 0,
               static_cast<uint32_t>(sizeof(int32_t) + sizeof(uint64_t)),
               out);
  Put<int32_t>(level.level, out);
  Put<uint64_t>(level.actions, out);
}

void EncodeRecommendResponse(
    const std::vector<UpskillRecommendation>& picks, std::string* out) {
  const size_t header_start = out->size();
  AppendHeader(kResponseMagic, 0, 0, out);
  Put<uint32_t>(static_cast<uint32_t>(picks.size()), out);
  for (const UpskillRecommendation& pick : picks) {
    Put<ItemId>(pick.item, out);
    Put<double>(pick.difficulty, out);
    Put<double>(pick.log_prob, out);
  }
  PatchPayloadLength(out, header_start);
}

void EncodeDifficultyResponse(double difficulty, std::string* out) {
  AppendHeader(kResponseMagic, 0, static_cast<uint32_t>(sizeof(double)), out);
  Put<double>(difficulty, out);
}

void EncodeSwapResponse(int levels, int items, std::string* out) {
  AppendHeader(kResponseMagic, 0, static_cast<uint32_t>(2 * sizeof(int32_t)),
               out);
  Put<int32_t>(levels, out);
  Put<int32_t>(items, out);
}

void EncodeEvictResponse(uint64_t evicted, uint64_t sessions,
                         std::string* out) {
  AppendHeader(kResponseMagic, 0, static_cast<uint32_t>(2 * sizeof(uint64_t)),
               out);
  Put<uint64_t>(evicted, out);
  Put<uint64_t>(sessions, out);
}

void EncodeTextResponse(const std::string& text, std::string* out) {
  AppendHeader(kResponseMagic, 0, static_cast<uint32_t>(text.size()), out);
  out->append(text);
}

void EncodeEmptyResponse(std::string* out) {
  AppendHeader(kResponseMagic, 0, 0, out);
}

DecodeStatus DecodeResponse(const char* data, size_t size,
                            serve::ServeRequest::Kind kind,
                            size_t max_payload_bytes, DecodedResponse* out,
                            std::string* error) {
  const char* payload = nullptr;
  size_t payload_len = 0;
  const DecodeStatus header = DecodeHeader(
      data, size, kResponseMagic, max_payload_bytes, &payload, &payload_len,
      error);
  if (header != DecodeStatus::kFrame) return header;
  *out = DecodedResponse{};
  out->status_code = static_cast<StatusCode>(static_cast<uint8_t>(data[1]));
  out->frame_bytes = kFrameHeaderBytes + payload_len;
  if (out->status_code != StatusCode::kOk) {
    out->message.assign(payload, payload_len);
    return DecodeStatus::kFrame;
  }
  size_t offset = 0;
  using Kind = serve::ServeRequest::Kind;
  switch (kind) {
    case Kind::kObserve:
    case Kind::kLevel: {
      int32_t level = 0;
      if (!GetValue(payload, payload_len, &offset, &level) ||
          !GetValue(payload, payload_len, &offset, &out->actions)) {
        return Malformed(error, "truncated level response");
      }
      out->level = level;
      break;
    }
    case Kind::kRecommend: {
      uint32_t n = 0;
      if (!GetValue(payload, payload_len, &offset, &n)) {
        return Malformed(error, "truncated recommend response");
      }
      // Validate the announced count against the bytes actually present
      // before allocating: a corrupt/malicious peer must not get to size
      // the allocation (n=0xFFFFFFFF would be ~100 GB).
      constexpr size_t kPickBytes = sizeof(ItemId) + 2 * sizeof(double);
      if (n > (payload_len - offset) / kPickBytes) {
        return Malformed(error, "truncated recommend response");
      }
      out->picks.resize(n);
      for (UpskillRecommendation& pick : out->picks) {
        if (!GetValue(payload, payload_len, &offset, &pick.item) ||
            !GetValue(payload, payload_len, &offset, &pick.difficulty) ||
            !GetValue(payload, payload_len, &offset, &pick.log_prob)) {
          return Malformed(error, "truncated recommend response");
        }
      }
      break;
    }
    case Kind::kDifficulty:
      if (!GetValue(payload, payload_len, &offset, &out->difficulty)) {
        return Malformed(error, "truncated difficulty response");
      }
      break;
    case Kind::kSwap: {
      int32_t levels = 0;
      int32_t items = 0;
      if (!GetValue(payload, payload_len, &offset, &levels) ||
          !GetValue(payload, payload_len, &offset, &items)) {
        return Malformed(error, "truncated swap response");
      }
      out->levels = levels;
      out->items = items;
      break;
    }
    case Kind::kEvict:
      if (!GetValue(payload, payload_len, &offset, &out->evicted) ||
          !GetValue(payload, payload_len, &offset, &out->sessions)) {
        return Malformed(error, "truncated evict response");
      }
      break;
    case Kind::kStats:
      out->text.assign(payload, payload_len);
      offset = payload_len;
      break;
    case Kind::kReset:
    case Kind::kQuit:
      break;
  }
  if (offset != payload_len) {
    return Malformed(error, "trailing bytes in response payload");
  }
  return DecodeStatus::kFrame;
}

std::string RenderResponseAsText(const DecodedResponse& response,
                                 serve::ServeRequest::Kind kind) {
  if (response.status_code != StatusCode::kOk) {
    return serve::FormatErrorResponse(
        Status(response.status_code, response.message));
  }
  using Kind = serve::ServeRequest::Kind;
  switch (kind) {
    case Kind::kObserve:
    case Kind::kLevel:
      return StringPrintf(
          "ok level=%d actions=%llu", response.level,
          static_cast<unsigned long long>(response.actions));
    case Kind::kRecommend: {
      std::string text = StringPrintf("ok n=%zu", response.picks.size());
      for (const UpskillRecommendation& pick : response.picks) {
        text += StringPrintf(" %d:%.6g:%.6g", pick.item, pick.difficulty,
                             pick.log_prob);
      }
      return text;
    }
    case Kind::kDifficulty:
      return StringPrintf("ok difficulty=%.17g", response.difficulty);
    case Kind::kSwap:
      return StringPrintf("ok swapped levels=%d items=%d", response.levels,
                          response.items);
    case Kind::kEvict:
      return StringPrintf(
          "ok evicted=%llu sessions=%llu",
          static_cast<unsigned long long>(response.evicted),
          static_cast<unsigned long long>(response.sessions));
    case Kind::kStats:
      return response.text;
    case Kind::kReset:
      return "ok reset";
    case Kind::kQuit:
      return "ok bye";
  }
  return "ok";
}

}  // namespace net
}  // namespace upskill
