#ifndef UPSKILL_NET_FRAME_H_
#define UPSKILL_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/recommend.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace upskill {
namespace net {

/// Length-prefixed binary framing of the serving protocol, the compact
/// twin of the newline text grammar in serve/protocol.h. Every frame is
///
///   byte 0      magic        0xF5 request / 0xF6 response
///   byte 1      request: opcode  = ServeRequest::Kind value
///               response: status = StatusCode value (0 = ok)
///   bytes 2..5  payload length, u32 little-endian
///   bytes 6..   payload (opcode/status-specific, packed little-endian)
///
/// The magic bytes are outside 7-bit ASCII, so a TCP connection's first
/// byte distinguishes binary clients from text-protocol clients (which
/// start with a lowercase command keyword); see net/net_server.h.
///
/// Request payloads (strings are u16 length + raw bytes, no terminator):
///   observe     user, i32 item, u8 has_time, i64 time
///   level       user
///   recommend   user, i32 top_k, f64 stretch
///   difficulty  i32 item
///   swap        path
///   evict       i64 min_time
///   stats/reset/quit   (empty)
///
/// Ok-response payloads:
///   observe/level      i32 level, u64 actions
///   recommend          u32 n, then n x (i32 item, f64 difficulty, f64 log_prob)
///   difficulty         f64 difficulty
///   swap               i32 levels, i32 items
///   evict              u64 evicted, u64 sessions
///   stats              the text-protocol stats block, verbatim UTF-8
///   reset/quit         (empty)
/// Error-response payload: the status message, verbatim UTF-8. Shed
/// rejections use status Unavailable with a message whose first token is
/// the stable marker `shed`.

inline constexpr uint8_t kRequestMagic = 0xF5;
inline constexpr uint8_t kResponseMagic = 0xF6;
inline constexpr size_t kFrameHeaderBytes = 6;
/// Default ceiling on one frame's payload; a header announcing more is a
/// decode error, not a "wait for more bytes" condition, so one malformed
/// length byte cannot pin a connection's memory.
inline constexpr size_t kDefaultMaxPayloadBytes = 1 << 20;

/// Incremental decoder outcome: a complete frame, a valid prefix that
/// needs more bytes, or a malformed stream (close the connection).
enum class DecodeStatus { kFrame, kNeedMore, kError };

struct DecodedRequest {
  serve::ServeRequest request;
  /// Bytes consumed from the input on kFrame.
  size_t frame_bytes = 0;
};

/// Attempts to decode one request frame from `data[0..size)`.
/// On kError, `error` (when non-null) gets a one-line reason.
DecodeStatus DecodeRequest(const char* data, size_t size,
                           size_t max_payload_bytes, DecodedRequest* out,
                           std::string* error);

/// Appends one encoded request frame to `out`.
void EncodeRequest(const serve::ServeRequest& request, std::string* out);

// --- Response encoding (server side; append-only, no intermediate copy) ---

void EncodeErrorResponse(const Status& status, std::string* out);
void EncodeLevelResponse(const serve::SessionLevel& level, std::string* out);
void EncodeRecommendResponse(
    const std::vector<UpskillRecommendation>& picks, std::string* out);
void EncodeDifficultyResponse(double difficulty, std::string* out);
void EncodeSwapResponse(int levels, int items, std::string* out);
void EncodeEvictResponse(uint64_t evicted, uint64_t sessions,
                         std::string* out);
void EncodeTextResponse(const std::string& text, std::string* out);
void EncodeEmptyResponse(std::string* out);

// --- Response decoding (client side) ---

/// One decoded response frame. `status_code` is the raw status byte;
/// exactly one payload view below is meaningful, per the request kind the
/// caller paired this response with.
struct DecodedResponse {
  StatusCode status_code = StatusCode::kOk;
  std::string message;  // error responses
  int level = 0;
  uint64_t actions = 0;
  std::vector<UpskillRecommendation> picks;
  double difficulty = 0.0;
  int levels = 0;
  int items = 0;
  uint64_t evicted = 0;
  uint64_t sessions = 0;
  std::string text;  // stats
  size_t frame_bytes = 0;
};

/// Decodes one response frame for a request of kind `kind` (the payload
/// layout is kind-specific, and the protocol answers in request order).
DecodeStatus DecodeResponse(const char* data, size_t size,
                            serve::ServeRequest::Kind kind,
                            size_t max_payload_bytes, DecodedResponse* out,
                            std::string* error);

/// Renders a decoded response as the text protocol would have ("ok
/// level=..." / "ERR <code> <message>"), for the CLI client mode and the
/// cross-format equivalence tests.
std::string RenderResponseAsText(const DecodedResponse& response,
                                 serve::ServeRequest::Kind kind);

}  // namespace net
}  // namespace upskill

#endif  // UPSKILL_NET_FRAME_H_
