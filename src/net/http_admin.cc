#include "net/http_admin.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/model_health.h"
#include "obs/request_trace.h"
#include "obs/trace.h"
#include "serve/server.h"
#include "serve/snapshot.h"

namespace upskill {
namespace net {

namespace {

Status HttpErrno(const char* what) {
  return Status::IoError(StringPrintf("%s: %s", what, std::strerror(errno)));
}

const char* StatusLine(int status) {
  switch (status) {
    case 200: return "200 OK";
    case 400: return "400 Bad Request";
    case 404: return "404 Not Found";
    case 405: return "405 Method Not Allowed";
    default: return "500 Internal Server Error";
  }
}

}  // namespace

Status ParseHostPort(const std::string& address, std::string* host,
                     uint16_t* port) {
  const size_t colon = address.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("listen address must be host:port, got " +
                                   address);
  }
  const std::string host_part = address.substr(0, colon);
  const Result<long long> parsed = ParseInt(address.substr(colon + 1));
  if (!parsed.ok() || parsed.value() < 0 || parsed.value() > 65535) {
    return Status::InvalidArgument("bad listen port in " + address);
  }
  *host = host_part.empty() ? "0.0.0.0" : host_part;
  *port = static_cast<uint16_t>(parsed.value());
  return Status::OK();
}

struct HttpAdminServer::Connection {
  int fd = -1;
  std::string in;
  std::string out;
  size_t out_offset = 0;
  bool close_when_drained = false;
};

HttpAdminServer::HttpAdminServer(HttpAdminConfig config)
    : config_(std::move(config)) {}

HttpAdminServer::~HttpAdminServer() { Stop(); }

void HttpAdminServer::Handle(const std::string& path,
                             std::function<HttpResponse()> handler) {
  handlers_[path] = std::move(handler);
}

Status HttpAdminServer::Start() {
  if (started_) return Status::FailedPrecondition("already started");
  if (!loop_.ok() || !wake_.ok()) {
    return Status::IoError("epoll/eventfd setup failed");
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad admin host " + config_.host);
  }
  addr.sin_port = htons(config_.port);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return HttpErrno("socket");
  const int one = 1;
  if (::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return HttpErrno("setsockopt(SO_REUSEADDR)");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return HttpErrno("bind");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return HttpErrno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return HttpErrno("listen");
  }

  Status added = loop_.Add(listen_fd_, EPOLLIN, &listen_fd_);
  if (added.ok()) added = loop_.Add(wake_.fd(), EPOLLIN, &wake_);
  if (!added.ok()) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return added;
  }

  stop_.store(false, std::memory_order_relaxed);
  started_ = true;
  worker_ = std::thread([this] { Run(); });
  return Status::OK();
}

void HttpAdminServer::Stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_relaxed);
  wake_.Signal();
  if (worker_.joinable()) worker_.join();
  for (auto& entry : connections_) {
    loop_.Remove(entry.second->fd);
    ::close(entry.second->fd);
  }
  connections_.clear();
  if (listen_fd_ >= 0) {
    loop_.Remove(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  started_ = false;
}

void HttpAdminServer::Run() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stop_.load(std::memory_order_relaxed)) {
    const int ready = loop_.Wait(events, kMaxEvents, 500);
    for (int i = 0; i < ready; ++i) {
      void* data = events[i].data.ptr;
      if (data == &wake_) {
        wake_.Drain();
        continue;
      }
      if (data == &listen_fd_) {
        AcceptReady();
        continue;
      }
      Connection* conn = static_cast<Connection*>(data);
      bool alive = true;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        alive = false;
      } else {
        if (alive && (events[i].events & EPOLLIN)) alive = HandleReadable(conn);
        if (alive && (events[i].events & EPOLLOUT)) alive = FlushOutput(conn);
      }
      if (!alive) CloseConnection(conn);
    }
  }
}

void HttpAdminServer::AcceptReady() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      // EMFILE and friends: admin traffic is best-effort; drop and move on.
      return;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    if (!loop_.Add(fd, EPOLLIN, conn.get()).ok()) {
      ::close(fd);
      return;
    }
    connections_[fd] = std::move(conn);
  }
}

bool HttpAdminServer::HandleReadable(Connection* conn) {
  char buffer[4096];
  while (true) {
    const ssize_t n = ::recv(conn->fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      conn->in.append(buffer, static_cast<size_t>(n));
      if (conn->in.size() > config_.max_request_bytes) {
        conn->out = "HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n"
                    "Connection: close\r\n\r\n";
        conn->out_offset = 0;
        conn->close_when_drained = true;
        return FlushOutput(conn);
      }
      continue;
    }
    if (n == 0) return false;  // peer closed
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }
  if (!conn->close_when_drained && !ProcessRequest(conn)) return false;
  return FlushOutput(conn);
}

bool HttpAdminServer::ProcessRequest(Connection* conn) {
  const size_t head_end = conn->in.find("\r\n\r\n");
  if (head_end == std::string::npos) return true;  // need more bytes

  const size_t line_end = conn->in.find("\r\n");
  const std::string request_line = conn->in.substr(0, line_end);
  conn->in.clear();  // Connection: close — one request per connection.

  HttpResponse response;
  bool head = false;
  const size_t method_end = request_line.find(' ');
  const size_t path_end = request_line.rfind(' ');
  if (method_end == std::string::npos || path_end == method_end) {
    response.status = 400;
    response.body = "bad request line\n";
  } else {
    const std::string method = request_line.substr(0, method_end);
    head = method == "HEAD";
    std::string path =
        request_line.substr(method_end + 1, path_end - method_end - 1);
    const size_t query = path.find('?');
    if (query != std::string::npos) path.resize(query);
    if (method != "GET" && method != "HEAD") {
      response.status = 405;
      response.body = "only GET is served here\n";
    } else {
      const auto it = handlers_.find(path);
      if (it == handlers_.end()) {
        response.status = 404;
        response.body = "unknown path " + path + "\n";
        for (const auto& entry : handlers_) {
          response.body += "  " + entry.first + "\n";
        }
      } else {
        response = it->second();
      }
    }
  }

  // HEAD advertises the length the GET body would have, without the body.
  conn->out = StringPrintf(
      "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      StatusLine(response.status), response.content_type.c_str(),
      response.body.size());
  if (!head) conn->out += response.body;
  conn->out_offset = 0;
  conn->close_when_drained = true;
  return true;
}

bool HttpAdminServer::FlushOutput(Connection* conn) {
  while (conn->out_offset < conn->out.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->out.data() + conn->out_offset,
               conn->out.size() - conn->out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      loop_.Modify(conn->fd, EPOLLIN | EPOLLOUT, conn);
      return true;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  if (conn->close_when_drained) return false;
  loop_.Modify(conn->fd, EPOLLIN, conn);
  return true;
}

void HttpAdminServer::CloseConnection(Connection* conn) {
  loop_.Remove(conn->fd);
  ::close(conn->fd);
  connections_.erase(conn->fd);
}

void InstallAdminEndpoints(HttpAdminServer* http, serve::Server* server,
                           obs::FlightRecorder* flight_recorder) {
  http->Handle("/metrics", [] {
    obs::ModelHealth::Global().Sample();
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = obs::RenderPrometheus(obs::MetricsRegistry::Global());
    return response;
  });

  http->Handle("/healthz", [] {
    HttpResponse response;
    response.body = "ok\n";
    return response;
  });

  const auto start = std::chrono::steady_clock::now();
  http->Handle("/statusz", [server, flight_recorder, start] {
    obs::ModelHealth::Global().Sample();
    const std::shared_ptr<const serve::ServingModel> model = server->model();
    const double uptime = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
    HttpResponse response;
    std::string& body = response.body;
    body += "upskill serve status\n";
    body += StringPrintf("compiler: %s\n", __VERSION__);
    body += StringPrintf("uptime_seconds: %.1f\n", uptime);
    body += StringPrintf("snapshot_version: %d\n",
                         static_cast<int>(serve::kSnapshotVersion));
    body += StringPrintf("snapshot_age_seconds: %.1f\n",
                         obs::ModelHealth::Global().SnapshotAgeSeconds());
    body += StringPrintf("levels: %d\nitems: %d\n", model->num_levels(),
                         model->num_items());
    body += StringPrintf(
        "backend: %s\n",
        server->backend() != nullptr ? server->backend()->name() : "none");
    body += StringPrintf("quantized: %s\n",
                         server->quantized() ? "true" : "false");
    body += StringPrintf("sessions: %zu\n", server->num_sessions());
    body += StringPrintf("requests: %llu\n",
                         static_cast<unsigned long long>(
                             server->requests_served()));
    body += StringPrintf("trace_dropped: %llu\n",
                         static_cast<unsigned long long>(
                             obs::TraceRecorder::Global().dropped()));
    if (flight_recorder != nullptr) {
      const obs::FlightRecorderStats stats = flight_recorder->Stats();
      body += StringPrintf(
          "flight_recorder: capacity=%zu recorded=%llu ring=%zu "
          "errors_retained=%llu sheds_retained=%llu slowest=%zu "
          "sampled_out=%llu\n",
          flight_recorder->options().capacity,
          static_cast<unsigned long long>(stats.recorded), stats.ring_size,
          static_cast<unsigned long long>(stats.errors_retained),
          static_cast<unsigned long long>(stats.sheds_retained),
          stats.slowest_size,
          static_cast<unsigned long long>(stats.sampled_out));
    } else {
      body += "flight_recorder: disabled\n";
    }
    const std::string quantiles = server->LatencyQuantilesText();
    if (!quantiles.empty()) {
      body += "latency_quantiles_seconds:\n";
      body += quantiles;
    }
    return response;
  });

  http->Handle("/tracez", [flight_recorder] {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = flight_recorder != nullptr
                        ? obs::RenderFlightRecorderJson(*flight_recorder)
                        : std::string("{\"traceEvents\":[]}\n");
    return response;
  });
}

}  // namespace net
}  // namespace upskill
