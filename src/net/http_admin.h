#ifndef UPSKILL_NET_HTTP_ADMIN_H_
#define UPSKILL_NET_HTTP_ADMIN_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "common/status.h"
#include "net/epoll_loop.h"

namespace upskill {

namespace serve {
class Server;
}
namespace obs {
class FlightRecorder;
}

namespace net {

struct HttpAdminConfig {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the actual one back with port().
  uint16_t port = 0;
  /// Admin requests are tiny GETs; anything larger than this before the
  /// blank line is a 400 and the connection closes.
  size_t max_request_bytes = 8192;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Minimal HTTP/1.1 GET server for the admin plane: one worker thread
/// with its own EpollLoop, Connection: close semantics (every response
/// carries Content-Length and the server closes after the write drains),
/// path handlers registered before Start. Deliberately not a general web
/// server — no keep-alive, no chunked bodies, no methods beyond GET/HEAD
/// — because its only clients are scrapers and operators with curl, and
/// the data plane must not share a port (a melted-down data port cannot
/// take the scrape path down with it, and vice versa).
class HttpAdminServer {
 public:
  explicit HttpAdminServer(HttpAdminConfig config);
  ~HttpAdminServer();
  HttpAdminServer(const HttpAdminServer&) = delete;
  HttpAdminServer& operator=(const HttpAdminServer&) = delete;

  /// Registers `handler` for exact path `path` (query strings are
  /// stripped before matching). Must be called before Start.
  void Handle(const std::string& path, std::function<HttpResponse()> handler);

  Status Start();
  /// Closes the listener and every connection, joins the worker.
  /// Idempotent.
  void Stop();

  /// Actual bound port (after Start with config.port == 0).
  uint16_t port() const { return port_; }

 private:
  struct Connection;

  void Run();
  void AcceptReady();
  bool HandleReadable(Connection* conn);
  bool FlushOutput(Connection* conn);
  void CloseConnection(Connection* conn);
  /// Parses one request head out of conn->in and stages the response;
  /// false when the connection must close without a response.
  bool ProcessRequest(Connection* conn);

  const HttpAdminConfig config_;
  std::map<std::string, std::function<HttpResponse()>> handlers_;

  EpollLoop loop_;
  WakeupFd wake_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{true};
  bool started_ = false;
  std::thread worker_;
  std::map<int, std::unique_ptr<Connection>> connections_;
};

/// Wires the standard admin surface onto `http`:
///   /metrics  Prometheus text exposition (model-health sampled first)
///   /healthz  "ok"
///   /statusz  human-readable status: build info, snapshot version/age,
///             backend, sessions, uptime, per-kind latency quantiles,
///             trace drops, flight-recorder occupancy
///   /tracez   flight-recorder dump as Chrome-tracing JSON
/// `server` must outlive `http`; `flight_recorder` may be null (then
/// /tracez reports an empty trace).
void InstallAdminEndpoints(HttpAdminServer* http, serve::Server* server,
                           obs::FlightRecorder* flight_recorder);

/// Parses "host:port" ( ":9000" = all interfaces, port 0 = ephemeral).
Status ParseHostPort(const std::string& address, std::string* host,
                     uint16_t* port);

}  // namespace net
}  // namespace upskill

#endif  // UPSKILL_NET_HTTP_ADMIN_H_
