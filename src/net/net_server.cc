#include "net/net_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <unordered_set>
#include <utility>

#include "common/string_util.h"
#include "net/epoll_loop.h"

namespace upskill {
namespace net {

namespace {

using Kind = serve::ServeRequest::Kind;

Status Errno(const char* what) {
  return Status::IoError(StringPrintf("%s: %s", what, std::strerror(errno)));
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Only the data-plane kinds are sheddable; admin commands must get
/// through an overloaded server (see NetServerConfig::deadline_seconds).
bool IsSheddable(Kind kind) {
  switch (kind) {
    case Kind::kObserve:
    case Kind::kLevel:
    case Kind::kRecommend:
    case Kind::kDifficulty:
      return true;
    default:
      return false;
  }
}

/// Mean-cost refresh cadence for the shedding estimate (reducing the
/// histogram stripes on every request would defeat the striping).
constexpr uint64_t kShedRefreshPeriod = 4096;

}  // namespace

struct NetServer::Connection {
  int fd = -1;
  enum class Mode : uint8_t { kUnknown, kText, kBinary };
  Mode mode = Mode::kUnknown;
  std::string in;
  std::string out;
  size_t out_sent = 0;
  /// Close once `out` drains (quit, EOF, or fatal protocol error).
  bool want_close = false;
  bool writable_armed = false;
  /// Text `batch <N>` directive in progress: lines collected so far and
  /// the stdio loop's parse bookkeeping (response order == request order,
  /// parse errors interleaved in place).
  long long batch_total = 0;
  long long batch_seen = 0;
  std::vector<serve::ServeRequest> batch_requests;
  std::vector<std::string> batch_errors;
  std::vector<int> batch_index;
};

struct NetServer::Worker {
  int index = 0;
  int listen_fd = -1;
  /// Reserved fd slot (open on /dev/null) released under EMFILE/ENFILE
  /// so the pending connection can be accepted and closed instead of
  /// level-triggered epoll re-reporting it in a busy loop.
  int spare_fd = -1;
  EpollLoop loop;
  WakeupFd wake;
  std::thread thread;
  std::unordered_set<Connection*> connections;
  /// Start of the current event-loop drain; the shedding budget is
  /// measured against it.
  std::chrono::steady_clock::time_point drain_start;
  double mean_cost[serve::kNumServeRequestKinds] = {};
  uint64_t executed_since_refresh = kShedRefreshPeriod;  // refresh on first
  /// Per-core request sequence, the flight recorder's sampling clock
  /// (RecordSampled): worker-private, so bumping it touches no shared
  /// cache line on the hot path.
  uint64_t trace_seq = 0;
};

NetServer::NetServer(serve::Server* server, ThreadPool* swap_pool,
                     NetServerConfig config)
    : server_(server),
      swap_pool_(swap_pool),
      config_(std::move(config)),
      accepted_(obs::MetricsRegistry::Global().GetCounter(
          "upskill_net_connections_accepted_total")),
      rejected_(obs::MetricsRegistry::Global().GetCounter(
          "upskill_net_connections_rejected_total")),
      active_gauge_(obs::MetricsRegistry::Global().GetGauge(
          "upskill_net_active_connections")),
      shed_(obs::MetricsRegistry::Global().GetCounter(
          "upskill_net_shed_total")),
      bytes_in_(obs::MetricsRegistry::Global().GetCounter(
          "upskill_net_bytes_read_total")),
      bytes_out_(obs::MetricsRegistry::Global().GetCounter(
          "upskill_net_bytes_written_total")),
      decode_errors_(obs::MetricsRegistry::Global().GetCounter(
          "upskill_net_frame_decode_errors_total")),
      requests_binary_(obs::MetricsRegistry::Global().GetCounter(
          "upskill_net_requests_total", "proto=\"binary\"")),
      requests_text_(obs::MetricsRegistry::Global().GetCounter(
          "upskill_net_requests_total", "proto=\"text\"")) {
  // The per-kind serve instruments: same (name, labels) as the ones
  // Server registers, so the registry hands back the same objects and
  // both front ends share one latency/error surface.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::HistogramOptions latency_options;
  latency_options.min_bound = 1e-7;
  for (int i = 0; i < serve::kNumServeRequestKinds; ++i) {
    const std::string labels = StringPrintf(
        "kind=\"%s\"", serve::ServeRequestKindName(static_cast<Kind>(i)));
    latency_[static_cast<size_t>(i)] = &registry.GetHistogram(
        "upskill_serve_request_latency_seconds", labels, latency_options);
    kind_requests_[static_cast<size_t>(i)] =
        &registry.GetCounter("upskill_serve_requests_total", labels);
    kind_errors_[static_cast<size_t>(i)] =
        &registry.GetCounter("upskill_serve_request_errors_total", labels);
  }
}

NetServer::~NetServer() { Stop(); }

Status ParseListenAddress(const std::string& address,
                          NetServerConfig* config) {
  const size_t colon = address.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("listen address must be host:port, got " +
                                   address);
  }
  const std::string host = address.substr(0, colon);
  const Result<long long> port = ParseInt(address.substr(colon + 1));
  if (!port.ok() || port.value() < 0 || port.value() > 65535) {
    return Status::InvalidArgument("bad listen port in " + address);
  }
  config->host = host.empty() ? "0.0.0.0" : host;
  config->port = static_cast<uint16_t>(port.value());
  return Status::OK();
}

Status NetServer::Start() {
  if (started_) return Status::FailedPrecondition("already started");
  const int num_workers = config_.num_workers < 1 ? 1 : config_.num_workers;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen host " + config_.host);
  }

  // One SO_REUSEPORT listener per worker, all on the same address: the
  // kernel hashes incoming connections across them, so accepts (like
  // request processing) never funnel through a single thread. The first
  // bind resolves an ephemeral port request; the rest join it.
  std::vector<int> listeners;
  Status error = Status::OK();
  for (int i = 0; i < num_workers && error.ok(); ++i) {
    const int fd =
        ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      error = Errno("socket");
      break;
    }
    listeners.push_back(fd);
    const int one = 1;
    if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0 ||
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
      error = Errno("setsockopt(SO_REUSEPORT)");
      break;
    }
    addr.sin_port = htons(i == 0 ? config_.port : port_);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      error = Errno("bind");
      break;
    }
    if (i == 0) {
      sockaddr_in bound{};
      socklen_t len = sizeof(bound);
      if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
        error = Errno("getsockname");
        break;
      }
      port_ = ntohs(bound.sin_port);
    }
    if (::listen(fd, 1024) != 0) error = Errno("listen");
  }
  if (!error.ok()) {
    for (const int fd : listeners) ::close(fd);
    port_ = 0;
    return error;
  }

  stop_.store(false, std::memory_order_relaxed);
  workers_.clear();
  for (int i = 0; i < num_workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->index = i;
    worker->listen_fd = listeners[static_cast<size_t>(i)];
    worker->spare_fd = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
    if (!worker->loop.ok() || !worker->wake.ok()) {
      error = Status::IoError("epoll/eventfd setup failed");
    } else {
      Status added =
          worker->loop.Add(worker->listen_fd, EPOLLIN, worker.get());
      if (added.ok()) {
        added = worker->loop.Add(worker->wake.fd(), EPOLLIN, &worker->wake);
      }
      if (!added.ok()) error = added;
    }
    workers_.push_back(std::move(worker));
    if (!error.ok()) break;
  }
  if (!error.ok()) {
    for (auto& worker : workers_) {
      if (worker->listen_fd >= 0) ::close(worker->listen_fd);
      if (worker->spare_fd >= 0) ::close(worker->spare_fd);
    }
    // Listeners bound above but not yet handed to a worker.
    for (size_t j = workers_.size(); j < listeners.size(); ++j) {
      ::close(listeners[j]);
    }
    workers_.clear();
    port_ = 0;
    return error;
  }
  for (auto& worker : workers_) {
    worker->thread = std::thread([this, w = worker.get()] { RunWorker(w); });
  }
  started_ = true;
  return Status::OK();
}

void NetServer::Stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_relaxed);
  for (auto& worker : workers_) worker->wake.Signal();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  workers_.clear();
  started_ = false;
}

void NetServer::RunWorker(Worker* worker) {
  epoll_event events[128];
  while (!stop_.load(std::memory_order_relaxed)) {
    const int n = worker->loop.Wait(events, 128, -1);
    if (n < 0) break;
    for (int i = 0; i < n; ++i) {
      void* ptr = events[i].data.ptr;
      if (ptr == worker) {
        AcceptReady(worker);
        continue;
      }
      if (ptr == &worker->wake) {
        worker->wake.Drain();
        continue;
      }
      Connection* conn = static_cast<Connection*>(ptr);
      if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        CloseConnection(worker, conn);
        continue;
      }
      bool alive = true;
      if (events[i].events & EPOLLIN) alive = HandleReadable(worker, conn);
      if (alive && (events[i].events & EPOLLOUT)) {
        alive = FlushOutput(worker, conn);
      }
      if (alive && conn->want_close && conn->out_sent == conn->out.size()) {
        alive = false;
      }
      if (!alive) CloseConnection(worker, conn);
    }
  }
  // Drain on exit: the worker thread owns these objects exclusively.
  while (!worker->connections.empty()) {
    CloseConnection(worker, *worker->connections.begin());
  }
  if (worker->listen_fd >= 0) {
    ::close(worker->listen_fd);
    worker->listen_fd = -1;
  }
  if (worker->spare_fd >= 0) {
    ::close(worker->spare_fd);
    worker->spare_fd = -1;
  }
}

void NetServer::AcceptReady(Worker* worker) {
  while (true) {
    const int fd = ::accept4(worker->listen_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if ((errno == EMFILE || errno == ENFILE) && worker->spare_fd >= 0) {
        // Out of fd slots: level-triggered epoll would re-report the
        // pending connection forever and spin the worker. Release the
        // reserved slot, accept just to close, then re-reserve.
        ::close(worker->spare_fd);
        worker->spare_fd = -1;
        const int drained = ::accept4(worker->listen_fd, nullptr, nullptr,
                                      SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (drained >= 0) {
          rejected_.Increment();
          ::close(drained);
        }
        worker->spare_fd = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
        continue;
      }
      return;  // EAGAIN or transient accept failure: epoll will re-report
    }
    if (active_.fetch_add(1, std::memory_order_relaxed) >=
        config_.max_connections) {
      active_.fetch_sub(1, std::memory_order_relaxed);
      rejected_.Increment();
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Connection* conn = new Connection();
    conn->fd = fd;
    if (!worker->loop.Add(fd, EPOLLIN, conn).ok()) {
      active_.fetch_sub(1, std::memory_order_relaxed);
      ::close(fd);
      delete conn;
      continue;
    }
    worker->connections.insert(conn);
    accepted_.Increment();
    active_gauge_.Add(1.0);
  }
}

void NetServer::CloseConnection(Worker* worker, Connection* conn) {
  worker->loop.Remove(conn->fd);
  ::close(conn->fd);
  worker->connections.erase(conn);
  delete conn;
  active_.fetch_sub(1, std::memory_order_relaxed);
  active_gauge_.Add(-1.0);
}

bool NetServer::HandleReadable(Worker* worker, Connection* conn) {
  char chunk[64 * 1024];
  bool saw_eof = false;
  while (true) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn->in.append(chunk, static_cast<size_t>(n));
      bytes_in_.Increment(static_cast<uint64_t>(n));
      // Bound one drain's buffering; level-triggered epoll re-reports
      // whatever the socket still holds.
      if (conn->in.size() >= (16u << 20)) break;
      continue;
    }
    if (n == 0) {
      saw_eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;  // connection reset or worse
  }
  worker->drain_start = std::chrono::steady_clock::now();
  ProcessBuffer(worker, conn);
  if (saw_eof) {
    // EOF mid-batch: the stdio loop executes whatever was collected and
    // emits every declared slot; do the same before closing (unless the
    // connection is already dying from a protocol error).
    if (!conn->want_close && conn->batch_total > 0) FinishBatch(conn);
    conn->want_close = true;
  }
  if (!FlushOutput(worker, conn)) return false;
  if (conn->want_close && conn->out_sent == conn->out.size()) return false;
  return true;
}

bool NetServer::FlushOutput(Worker* worker, Connection* conn) {
  while (conn->out_sent < conn->out.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->out.data() + conn->out_sent,
               conn->out.size() - conn->out_sent, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_sent += static_cast<size_t>(n);
      bytes_out_.Increment(static_cast<uint64_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->writable_armed) {
        conn->writable_armed = true;
        worker->loop.Modify(conn->fd, EPOLLIN | EPOLLOUT, conn);
      }
      return true;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  conn->out.clear();
  conn->out_sent = 0;
  if (conn->writable_armed) {
    conn->writable_armed = false;
    worker->loop.Modify(conn->fd, EPOLLIN, conn);
  }
  return true;
}

bool NetServer::ProcessBuffer(Worker* worker, Connection* conn) {
  size_t offset = 0;
  while (offset < conn->in.size() && !conn->want_close) {
    // A slow consumer with a deep pipeline: stop producing responses it
    // is not reading and drop the connection.
    if (conn->out.size() - conn->out_sent > config_.max_output_buffer_bytes) {
      conn->want_close = true;
      break;
    }
    if (conn->mode == Connection::Mode::kUnknown) {
      conn->mode =
          static_cast<uint8_t>(conn->in[offset]) == kRequestMagic
              ? Connection::Mode::kBinary
              : Connection::Mode::kText;
    }
    if (conn->mode == Connection::Mode::kBinary) {
      DecodedRequest decoded;
      std::string error;
      const DecodeStatus status = DecodeRequest(
          conn->in.data() + offset, conn->in.size() - offset,
          config_.max_payload_bytes, &decoded, &error);
      if (status == DecodeStatus::kNeedMore) break;
      if (status == DecodeStatus::kError) {
        decode_errors_.Increment();
        EncodeErrorResponse(
            Status::InvalidArgument("bad frame: " + error), &conn->out);
        conn->want_close = true;
        offset = conn->in.size();  // the stream is unframeable from here
        break;
      }
      offset += decoded.frame_bytes;
      ExecuteBinary(worker, conn, decoded.request);
    } else {
      const size_t newline = conn->in.find('\n', offset);
      if (newline == std::string::npos) {
        // An unterminated line longer than any sane request is the text
        // mode's analogue of an oversized frame.
        if (conn->in.size() - offset > config_.max_payload_bytes) {
          decode_errors_.Increment();
          conn->out += serve::FormatErrorResponse(
              Status::InvalidArgument("request line exceeds limit"));
          conn->out += '\n';
          conn->want_close = true;
          offset = conn->in.size();
        }
        break;
      }
      const std::string line = conn->in.substr(offset, newline - offset);
      offset = newline + 1;
      ExecuteTextLine(worker, conn, line);
    }
  }
  conn->in.erase(0, offset);
  return !conn->want_close;
}

bool NetServer::ShouldShed(Worker* worker, Kind kind) {
  if (config_.deadline_seconds <= 0.0 || !IsSheddable(kind)) return false;
  if (++worker->executed_since_refresh >= kShedRefreshPeriod) {
    worker->executed_since_refresh = 0;
    for (int i = 0; i < serve::kNumServeRequestKinds; ++i) {
      if (!IsSheddable(static_cast<Kind>(i))) continue;
      const obs::Histogram* histogram = latency_[static_cast<size_t>(i)];
      const uint64_t count = histogram->Count();
      worker->mean_cost[i] =
          count == 0 ? 0.0 : histogram->Sum() / static_cast<double>(count);
    }
  }
  const double projected = SecondsSince(worker->drain_start) +
                           worker->mean_cost[static_cast<size_t>(kind)];
  return projected > config_.deadline_seconds;
}

void NetServer::ExecuteBinary(Worker* worker, Connection* conn,
                              const serve::ServeRequest& request) {
  const size_t kind = static_cast<size_t>(request.kind);
  requests_binary_.Increment();
  kind_requests_[kind]->Increment();
  server_->NoteRequestServed();
  obs::FlightRecorder* recorder = server_->flight_recorder();
  if (ShouldShed(worker, request.kind)) {
    shed_.Increment();
    kind_errors_[kind]->Increment();
    if (recorder != nullptr) {
      const auto now = std::chrono::steady_clock::now();
      recorder->RecordSampled(worker->trace_seq++, static_cast<int>(kind),
                              serve::ServeRequestKindSpanName(request.kind),
                              now, now, /*error=*/true, /*shed=*/true);
    }
    EncodeErrorResponse(
        Status::Unavailable(StringPrintf("shed deadline=%.6fs",
                                         config_.deadline_seconds)),
        &conn->out);
    return;
  }
  const bool timed = obs::MetricsEnabled() || recorder != nullptr;
  const auto start = timed ? std::chrono::steady_clock::now()
                           : std::chrono::steady_clock::time_point{};
  bool is_error = false;
  switch (request.kind) {
    case Kind::kObserve: {
      const Result<serve::SessionLevel> result = server_->Observe(
          request.user, request.item, request.time, request.has_time);
      if (result.ok()) {
        EncodeLevelResponse(result.value(), &conn->out);
      } else {
        EncodeErrorResponse(result.status(), &conn->out);
        is_error = true;
      }
      break;
    }
    case Kind::kLevel: {
      const Result<serve::SessionLevel> result =
          server_->CurrentLevel(request.user);
      if (result.ok()) {
        EncodeLevelResponse(result.value(), &conn->out);
      } else {
        EncodeErrorResponse(result.status(), &conn->out);
        is_error = true;
      }
      break;
    }
    case Kind::kRecommend: {
      UpskillRecommendationOptions options;
      options.max_results = request.top_k;
      options.stretch = request.stretch;
      const Result<std::vector<UpskillRecommendation>> picks =
          server_->Recommend(request.user, options);
      if (picks.ok()) {
        EncodeRecommendResponse(picks.value(), &conn->out);
      } else {
        EncodeErrorResponse(picks.status(), &conn->out);
        is_error = true;
      }
      break;
    }
    case Kind::kDifficulty: {
      const Result<double> difficulty = server_->ItemDifficulty(request.item);
      if (difficulty.ok()) {
        EncodeDifficultyResponse(difficulty.value(), &conn->out);
      } else {
        EncodeErrorResponse(difficulty.status(), &conn->out);
        is_error = true;
      }
      break;
    }
    case Kind::kSwap: {
      const Status swapped =
          server_->SwapSnapshotFile(request.path, swap_pool_);
      if (swapped.ok()) {
        const std::shared_ptr<const serve::ServingModel> model =
            server_->model();
        EncodeSwapResponse(model->num_levels(), model->num_items(),
                           &conn->out);
      } else {
        EncodeErrorResponse(swapped, &conn->out);
        is_error = true;
      }
      break;
    }
    case Kind::kStats:
      EncodeTextResponse(server_->StatsText(), &conn->out);
      break;
    case Kind::kEvict: {
      const uint64_t evicted = server_->EvictIdleSessions(request.time);
      EncodeEvictResponse(evicted, server_->num_sessions(), &conn->out);
      break;
    }
    case Kind::kReset:
      server_->ResetSessions();
      EncodeEmptyResponse(&conn->out);
      break;
    case Kind::kQuit:
      EncodeEmptyResponse(&conn->out);
      conn->want_close = true;
      break;
  }
  if (is_error) kind_errors_[kind]->Increment();
  if (timed) {
    const auto end = std::chrono::steady_clock::now();
    latency_[kind]->Observe(
        std::chrono::duration<double>(end - start).count());
    if (recorder != nullptr) {
      recorder->RecordSampled(worker->trace_seq++, static_cast<int>(kind),
                              serve::ServeRequestKindSpanName(request.kind),
                              start, end, is_error, /*shed=*/false);
    }
  }
}

void NetServer::ExecuteTextLine(Worker* worker, Connection* conn,
                                const std::string& line) {
  // Mirrors the stdio serve loop in examples/upskill_cli.cpp line for
  // line, so text responses over TCP are byte-identical to stdio (the
  // equivalence tests hold both against each other).
  if (conn->batch_total > 0) {
    const long long i = conn->batch_seen++;
    const Result<serve::ServeRequest> request =
        serve::ParseServeRequest(line);
    if (request.ok()) {
      conn->batch_index[static_cast<size_t>(i)] =
          static_cast<int>(conn->batch_requests.size());
      conn->batch_requests.push_back(request.value());
    } else {
      conn->batch_errors[static_cast<size_t>(i)] =
          serve::FormatErrorResponse(request.status());
    }
    if (conn->batch_seen < conn->batch_total) return;
    FinishBatch(conn);
    return;
  }
  if (StripWhitespace(line).empty()) return;
  const std::vector<std::string> head =
      Split(std::string(StripWhitespace(line)), ' ');
  if (head.size() == 2 && head[0] == "batch") {
    const Result<long long> count = ParseInt(head[1]);
    if (!count.ok() || count.value() < 0) {
      conn->out += serve::FormatErrorResponse(
          Status::InvalidArgument("batch expects: batch <N>"));
      conn->out += '\n';
      return;
    }
    if (static_cast<unsigned long long>(count.value()) >
        config_.max_batch_requests) {
      // The directive preallocates per-line slots, so an unauthenticated
      // peer must not get to pick the allocation size.
      conn->out += serve::FormatErrorResponse(Status::InvalidArgument(
          StringPrintf("batch count exceeds limit %zu",
                       config_.max_batch_requests)));
      conn->out += '\n';
      return;
    }
    conn->batch_total = count.value();
    conn->batch_seen = 0;
    conn->batch_requests.clear();
    conn->batch_errors.assign(static_cast<size_t>(count.value()), "");
    conn->batch_index.assign(static_cast<size_t>(count.value()), -1);
    return;  // batch 0: nothing to collect, nothing emitted (same as stdio)
  }
  const Result<serve::ServeRequest> request = serve::ParseServeRequest(line);
  if (!request.ok()) {
    conn->out += serve::FormatErrorResponse(request.status());
    conn->out += '\n';
    return;
  }
  requests_text_.Increment();
  if (ShouldShed(worker, request.value().kind)) {
    shed_.Increment();
    kind_requests_[static_cast<size_t>(request.value().kind)]->Increment();
    kind_errors_[static_cast<size_t>(request.value().kind)]->Increment();
    if (obs::FlightRecorder* recorder = server_->flight_recorder()) {
      const auto now = std::chrono::steady_clock::now();
      recorder->Record(static_cast<int>(request.value().kind),
                       serve::ServeRequestKindSpanName(request.value().kind),
                       now, now, /*error=*/true, /*shed=*/true);
    }
    conn->out += serve::FormatErrorResponse(Status::Unavailable(
        StringPrintf("shed deadline=%.6fs", config_.deadline_seconds)));
    conn->out += '\n';
    return;
  }
  conn->out += server_->Execute(request.value());
  conn->out += '\n';
  if (request.value().kind == Kind::kQuit) conn->want_close = true;
}

void NetServer::FinishBatch(Connection* conn) {
  // Stdio emits one line per declared slot even when EOF cut the batch
  // short (never-received slots render as empty lines), so a partial
  // batch still produces batch_total responses.
  requests_text_.Increment(
      static_cast<uint64_t>(conn->batch_requests.size()));
  const std::vector<std::string> responses =
      server_->ExecuteBatch(conn->batch_requests, nullptr);
  for (size_t j = 0; j < conn->batch_index.size(); ++j) {
    conn->out += conn->batch_index[j] >= 0
                     ? responses[static_cast<size_t>(conn->batch_index[j])]
                     : conn->batch_errors[j];
    conn->out += '\n';
  }
  conn->batch_total = 0;
  conn->batch_seen = 0;
  conn->batch_requests.clear();
  conn->batch_errors.clear();
  conn->batch_index.clear();
}

}  // namespace net
}  // namespace upskill
