#ifndef UPSKILL_NET_NET_SERVER_H_
#define UPSKILL_NET_NET_SERVER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "net/frame.h"
#include "obs/metrics.h"
#include "serve/server.h"

namespace upskill {
namespace net {

struct NetServerConfig {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the actual one back with port().
  uint16_t port = 0;
  /// Worker threads, each with its own SO_REUSEPORT acceptor and epoll
  /// loop (the kernel spreads incoming connections across them). A
  /// connection is serviced by exactly one worker for its whole life, so
  /// the only cross-worker state on the hot path is the striped
  /// SessionStore inside serve::Server.
  int num_workers = 1;
  /// Accept ceiling across all workers; connections beyond it are closed
  /// immediately (counted in upskill_net_connections_rejected_total).
  int max_connections = 4096;
  /// Request-deadline budget for load shedding, in seconds; 0 disables.
  /// Within one event-loop drain, a data-plane request whose estimated
  /// completion (time already spent in the drain + the per-kind mean
  /// latency from the upskill_serve_request_latency_seconds histograms)
  /// would exceed the budget is rejected with ERR Unavailable ("shed ..."),
  /// never queued. Admin commands (swap/stats/evict/reset/quit) are
  /// exempt so operators keep control of an overloaded server.
  double deadline_seconds = 0.0;
  /// Binary frames announcing a payload larger than this are a protocol
  /// error (connection closed), not a buffering request.
  size_t max_payload_bytes = kDefaultMaxPayloadBytes;
  /// Pending-response ceiling per connection: a client that pipelines
  /// requests but never reads responses is closed once its output buffer
  /// passes this (slow-consumer protection).
  size_t max_output_buffer_bytes = 8u << 20;
  /// Upper bound on `batch <N>` over TCP. The directive preallocates
  /// per-line bookkeeping, so an unauthenticated peer declaring a huge N
  /// must be rejected (ERR InvalidArgument), not allocated for. Stdio
  /// `serve` has no such cap; below the cap behavior is identical.
  size_t max_batch_requests = 65536;
};

/// The epoll TCP front end over a serve::Server. Both wire formats share
/// the port: a connection's first byte selects binary framing (0xF5, see
/// net/frame.h) or the newline text protocol (identical bytes to the
/// stdio `serve` loop, including `batch <N>`). Text requests run through
/// Server::Execute, so responses are byte-identical to stdio; binary
/// requests skip string rendering entirely and encode typed payloads
/// straight into the connection's output buffer.
class NetServer {
 public:
  /// `server` must outlive this object. `swap_pool` (optional)
  /// parallelizes snapshot rebuild/requantization on binary `swap`
  /// requests, exactly like the stdio front end's pool.
  NetServer(serve::Server* server, ThreadPool* swap_pool,
            NetServerConfig config);
  ~NetServer();
  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds the per-worker listeners and starts the worker threads.
  Status Start();
  /// Stops accepting, closes every connection, joins workers. Idempotent.
  void Stop();

  /// Actual bound port (after Start with config.port == 0).
  uint16_t port() const { return port_; }
  int num_workers() const { return static_cast<int>(workers_.size()); }
  /// Live connection count across all workers.
  int active_connections() const {
    return active_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection;
  struct Worker;

  void RunWorker(Worker* worker);
  void AcceptReady(Worker* worker);
  /// Reads available bytes and executes every complete request; returns
  /// false when the connection must be closed now.
  bool HandleReadable(Worker* worker, Connection* conn);
  bool FlushOutput(Worker* worker, Connection* conn);
  void CloseConnection(Worker* worker, Connection* conn);

  /// Drains complete frames/lines from conn->in; false on fatal protocol
  /// error (caller closes after flushing the error response).
  bool ProcessBuffer(Worker* worker, Connection* conn);
  void ExecuteBinary(Worker* worker, Connection* conn,
                     const serve::ServeRequest& request);
  void ExecuteTextLine(Worker* worker, Connection* conn,
                       const std::string& line);
  /// Executes the collected (possibly partial) text batch and emits one
  /// response line per declared slot, mirroring the stdio loop's
  /// end-of-batch (and EOF-mid-batch) behavior.
  void FinishBatch(Connection* conn);

  /// True when the deadline budget says this request must be shed.
  bool ShouldShed(Worker* worker, serve::ServeRequest::Kind kind);

  serve::Server* const server_;
  ThreadPool* const swap_pool_;
  const NetServerConfig config_;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stop_{false};
  std::atomic<int> active_{0};
  bool started_ = false;
  uint16_t port_ = 0;

  // upskill_net_* instruments, registered once at construction.
  obs::Counter& accepted_;
  obs::Counter& rejected_;
  obs::Gauge& active_gauge_;
  obs::Counter& shed_;
  obs::Counter& bytes_in_;
  obs::Counter& bytes_out_;
  obs::Counter& decode_errors_;
  obs::Counter& requests_binary_;
  obs::Counter& requests_text_;
  // Per-kind serve latency histograms: the same registry instruments
  // Server::Execute records into, shared so the shedding estimate and the
  // exposition cover both front ends.
  std::array<obs::Histogram*, serve::kNumServeRequestKinds> latency_;
  std::array<obs::Counter*, serve::kNumServeRequestKinds> kind_requests_;
  std::array<obs::Counter*, serve::kNumServeRequestKinds> kind_errors_;
};

/// Parses "host:port" (e.g. "127.0.0.1:9000"; ":9000" binds all
/// interfaces; port 0 asks for an ephemeral port) into config host/port.
Status ParseListenAddress(const std::string& address, NetServerConfig* config);

}  // namespace net
}  // namespace upskill

#endif  // UPSKILL_NET_NET_SERVER_H_
