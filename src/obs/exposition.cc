#include "obs/exposition.h"

#include <cstdint>

#include "common/string_util.h"

namespace upskill {
namespace obs {

namespace {

// `name{labels}` or bare `name`; `extra` (the histogram `le` pair) is
// merged into the label body when present.
std::string SampleName(const std::string& name, const std::string& labels,
                       const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return name;
  std::string body = labels;
  if (!extra.empty()) {
    if (!body.empty()) body += ',';
    body += extra;
  }
  return name + "{" + body + "}";
}

// %.17g round-trips doubles; trim the noise for integral values so the
// common counter-like gauges read naturally.
std::string FormatValue(double value) {
  if (value == static_cast<double>(static_cast<int64_t>(value)) &&
      value > -1e15 && value < 1e15) {
    return StringPrintf("%lld", static_cast<long long>(value));
  }
  return StringPrintf("%.17g", value);
}

void AppendTypeLine(std::string* out, const std::string& name,
                    const char* type, std::string* last_typed,
                    const std::map<std::string, std::string>& help) {
  if (*last_typed == name) return;
  *last_typed = name;
  const auto it = help.find(name);
  if (it != help.end()) {
    *out += "# HELP " + name + " " + it->second + "\n";
  }
  *out += "# TYPE " + name + " " + type + "\n";
}

std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string EscapeLabelValue(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string RenderPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_typed;
  for (const CounterSample& sample : snapshot.counters) {
    AppendTypeLine(&out, sample.name, "counter", &last_typed, snapshot.help);
    out += SampleName(sample.name, sample.labels) +
           StringPrintf(" %llu\n",
                        static_cast<unsigned long long>(sample.value));
  }
  last_typed.clear();
  for (const GaugeSample& sample : snapshot.gauges) {
    AppendTypeLine(&out, sample.name, "gauge", &last_typed, snapshot.help);
    out += SampleName(sample.name, sample.labels) + " " +
           FormatValue(sample.value) + "\n";
  }
  last_typed.clear();
  for (const HistogramSample& sample : snapshot.histograms) {
    AppendTypeLine(&out, sample.name, "histogram", &last_typed,
                   snapshot.help);
    uint64_t cumulative = 0;
    for (size_t b = 0; b < sample.counts.size(); ++b) {
      cumulative += sample.counts[b];
      const std::string le =
          b < sample.bounds.size()
              ? StringPrintf("le=\"%.9g\"", sample.bounds[b])
              : std::string("le=\"+Inf\"");
      out += SampleName(sample.name + "_bucket", sample.labels, le) +
             StringPrintf(" %llu\n",
                          static_cast<unsigned long long>(cumulative));
    }
    out += SampleName(sample.name + "_sum", sample.labels) +
           StringPrintf(" %.17g\n", sample.sum);
    out += SampleName(sample.name + "_count", sample.labels) +
           StringPrintf(" %llu\n",
                        static_cast<unsigned long long>(sample.count));
  }
  out += "# EOF\n";
  return out;
}

std::string RenderPrometheus(const MetricsRegistry& registry) {
  return RenderPrometheus(registry.Collect());
}

std::string RenderMetricsJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\":[";
  bool first = true;
  for (const CounterSample& sample : snapshot.counters) {
    if (!first) out += ',';
    first = false;
    out += StringPrintf(
        "{\"name\":\"%s\",\"labels\":\"%s\",\"value\":%llu}",
        JsonEscape(sample.name).c_str(), JsonEscape(sample.labels).c_str(),
        static_cast<unsigned long long>(sample.value));
  }
  out += "],\"gauges\":[";
  first = true;
  for (const GaugeSample& sample : snapshot.gauges) {
    if (!first) out += ',';
    first = false;
    out += StringPrintf(
        "{\"name\":\"%s\",\"labels\":\"%s\",\"value\":%.17g}",
        JsonEscape(sample.name).c_str(), JsonEscape(sample.labels).c_str(),
        sample.value);
  }
  out += "],\"histograms\":[";
  first = true;
  for (const HistogramSample& sample : snapshot.histograms) {
    if (!first) out += ',';
    first = false;
    out += StringPrintf("{\"name\":\"%s\",\"labels\":\"%s\",\"bounds\":[",
                        JsonEscape(sample.name).c_str(),
                        JsonEscape(sample.labels).c_str());
    for (size_t b = 0; b < sample.bounds.size(); ++b) {
      if (b > 0) out += ',';
      out += StringPrintf("%.9g", sample.bounds[b]);
    }
    out += "],\"counts\":[";
    for (size_t b = 0; b < sample.counts.size(); ++b) {
      if (b > 0) out += ',';
      out += StringPrintf("%llu",
                          static_cast<unsigned long long>(sample.counts[b]));
    }
    out += StringPrintf("],\"count\":%llu,\"sum\":%.17g}",
                        static_cast<unsigned long long>(sample.count),
                        sample.sum);
  }
  out += "]}\n";
  return out;
}

std::string RenderMetricsJson(const MetricsRegistry& registry) {
  return RenderMetricsJson(registry.Collect());
}

}  // namespace obs
}  // namespace upskill
