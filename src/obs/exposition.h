#ifndef UPSKILL_OBS_EXPOSITION_H_
#define UPSKILL_OBS_EXPOSITION_H_

#include <string>

#include "obs/metrics.h"

namespace upskill {
namespace obs {

/// Prometheus text exposition (an optional `# HELP` line and one
/// `# TYPE` line per metric name, then one sample line per (labels)
/// instance; histograms expand to the cumulative `_bucket{le=...}` /
/// `_sum` / `_count` series). Output is sorted by (name, labels) so
/// successive dumps diff cleanly. Ends with a `# EOF` line
/// (OpenMetrics-style terminator) so streaming consumers — the serve
/// protocol's `stats` response in particular — know where the dump
/// stops.
std::string RenderPrometheus(const MetricsSnapshot& snapshot);
std::string RenderPrometheus(const MetricsRegistry& registry);

/// Prometheus label-value escaping: backslash, double-quote, and newline
/// become \\, \", and \n. Use when building label bodies from free-form
/// strings (file paths, backend names).
std::string EscapeLabelValue(const std::string& raw);

/// The same snapshot as a single JSON object:
/// {"counters":[{"name":...,"labels":...,"value":...}],
///  "gauges":[...], "histograms":[...]}. For attaching registry dumps
/// next to google-benchmark JSON and other machine consumers.
std::string RenderMetricsJson(const MetricsSnapshot& snapshot);
std::string RenderMetricsJson(const MetricsRegistry& registry);

}  // namespace obs
}  // namespace upskill

#endif  // UPSKILL_OBS_EXPOSITION_H_
