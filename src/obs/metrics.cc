#include "obs/metrics.h"

#include <algorithm>
#include <utility>

namespace upskill {
namespace obs {

namespace {

std::atomic<bool> g_metrics_enabled{true};

// name + '\x01' + labels: '\x01' cannot appear in either part, so the key
// is collision-free.
std::string InstrumentKey(const std::string& name, const std::string& labels) {
  std::string key;
  key.reserve(name.size() + labels.size() + 1);
  key += name;
  key += '\x01';
  key += labels;
  return key;
}

}  // namespace

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

namespace internal_metrics {

size_t StripeIndex() {
  static std::atomic<size_t> next{0};
  thread_local const size_t index =
      next.fetch_add(1, std::memory_order_relaxed) & (kStripes - 1);
  return index;
}

}  // namespace internal_metrics

Histogram::Histogram(HistogramOptions options) : options_(options) {
  if (options_.num_buckets < 1) options_.num_buckets = 1;
  if (!(options_.min_bound > 0.0)) options_.min_bound = 1e-9;
  if (!(options_.growth > 1.0)) options_.growth = 2.0;
  log_min_ = std::log(options_.min_bound);
  inv_log_growth_ = 1.0 / std::log(options_.growth);
  bounds_.resize(static_cast<size_t>(options_.num_buckets));
  double bound = options_.min_bound;
  for (double& b : bounds_) {
    b = bound;
    bound *= options_.growth;
  }
  // Pad each stripe's slot run to a cache-line multiple so two stripes
  // never share a line (8 uint64 per 64-byte line).
  const size_t slots = bounds_.size() + 1;  // + overflow
  stride_ = (slots + 7) & ~size_t{7};
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(
      internal_metrics::kStripes * stride_);
  for (size_t i = 0; i < internal_metrics::kStripes * stride_; ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  const size_t slots = bounds_.size() + 1;
  for (size_t stripe = 0; stripe < internal_metrics::kStripes; ++stripe) {
    for (size_t b = 0; b < slots; ++b) {
      total += counts_[stripe * stride_ + b].load(std::memory_order_relaxed);
    }
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const auto& stripe : sums_) {
    total += stripe.value.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> totals(bounds_.size() + 1, 0);
  for (size_t stripe = 0; stripe < internal_metrics::kStripes; ++stripe) {
    for (size_t b = 0; b < totals.size(); ++b) {
      totals[b] += counts_[stripe * stride_ + b].load(std::memory_order_relaxed);
    }
  }
  return totals;
}

double Histogram::Quantile(double q) const {
  const std::vector<uint64_t> counts = BucketCounts();
  return QuantileFromBuckets(counts, bounds_, q);
}

double QuantileFromBuckets(std::span<const uint64_t> counts,
                           std::span<const double> bounds, double q) {
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation, 1-based: ceil(q * total), at least 1.
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(total)));
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const uint64_t next = cumulative + counts[i];
    if (rank <= next) {
      const bool overflow = i >= bounds.size();
      // Overflow bucket has no finite upper bound: clamp to the largest
      // value the layout can resolve rather than inventing one.
      if (overflow) return bounds.empty() ? 0.0 : bounds[bounds.size() - 1];
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      const double upper = bounds[i];
      const double fraction = (static_cast<double>(rank - cumulative)) /
                              static_cast<double>(counts[i]);
      return lower + (upper - lower) * fraction;
    }
    cumulative = next;
  }
  return bounds.empty() ? 0.0 : bounds[bounds.size() - 1];
}

void Histogram::Reset() {
  for (size_t i = 0; i < internal_metrics::kStripes * stride_; ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  for (auto& stripe : sums_) {
    stripe.value.store(0.0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: instruments referenced from static call-site
  // caches must outlive every other static destructor.
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string key = InstrumentKey(name, labels);
  const auto it = counter_index_.find(key);
  if (it != counter_index_.end()) return *it->second;
  counters_.emplace_back(name, labels);
  Counter* counter = &counters_.back().instrument;
  counter_index_.emplace(key, counter);
  return *counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string key = InstrumentKey(name, labels);
  const auto it = gauge_index_.find(key);
  if (it != gauge_index_.end()) return *it->second;
  gauges_.emplace_back(name, labels);
  Gauge* gauge = &gauges_.back().instrument;
  gauge_index_.emplace(key, gauge);
  return *gauge;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& labels,
                                         HistogramOptions options) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string key = InstrumentKey(name, labels);
  const auto it = histogram_index_.find(key);
  if (it != histogram_index_.end()) return *it->second;
  histograms_.emplace_back(name, labels, options);
  Histogram* histogram = &histograms_.back().instrument;
  histogram_index_.emplace(key, histogram);
  return *histogram;
}

void MetricsRegistry::SetHelp(const std::string& name,
                              const std::string& text) {
  std::lock_guard<std::mutex> lock(mutex_);
  help_[name] = text;
}

MetricsSnapshot MetricsRegistry::Collect() const {
  MetricsSnapshot snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot.help = help_;
    snapshot.counters.reserve(counters_.size());
    for (const auto& named : counters_) {
      snapshot.counters.push_back(
          {named.name, named.labels, named.instrument.Value()});
    }
    snapshot.gauges.reserve(gauges_.size());
    for (const auto& named : gauges_) {
      snapshot.gauges.push_back(
          {named.name, named.labels, named.instrument.Value()});
    }
    snapshot.histograms.reserve(histograms_.size());
    for (const auto& named : histograms_) {
      HistogramSample sample;
      sample.name = named.name;
      sample.labels = named.labels;
      sample.bounds = named.instrument.bucket_bounds();
      sample.counts = named.instrument.BucketCounts();
      sample.count = 0;
      for (uint64_t c : sample.counts) sample.count += c;
      sample.sum = named.instrument.Sum();
      snapshot.histograms.push_back(std::move(sample));
    }
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name != b.name ? a.name < b.name : a.labels < b.labels;
  };
  std::sort(snapshot.counters.begin(), snapshot.counters.end(), by_name);
  std::sort(snapshot.gauges.begin(), snapshot.gauges.end(), by_name);
  std::sort(snapshot.histograms.begin(), snapshot.histograms.end(), by_name);
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& named : counters_) named.instrument.Reset();
  for (auto& named : gauges_) named.instrument.Reset();
  for (auto& named : histograms_) named.instrument.Reset();
}

}  // namespace obs
}  // namespace upskill
