#ifndef UPSKILL_OBS_METRICS_H_
#define UPSKILL_OBS_METRICS_H_

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace upskill {
namespace obs {

/// Global switch for metric recording. When disabled, instrument updates
/// are no-ops (a single relaxed atomic load) and the instrumented call
/// sites skip their clock reads. Metrics are observation-only — they never
/// feed back into any computation — so model outputs are bitwise identical
/// either way (enforced by tests/obs/determinism_test.cc); the switch
/// exists to take even the atomic traffic out of benchmarked hot loops.
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

namespace internal_metrics {

/// Number of independent update stripes per instrument (power of two).
/// Each writing thread hashes to one stripe, so concurrent updates from
/// up to kStripes threads touch distinct cache lines — the hot path is a
/// relaxed atomic add with no sharing in the common case. Reads reduce
/// over all stripes.
inline constexpr size_t kStripes = 16;

/// Dense per-thread stripe slot, assigned on first use.
size_t StripeIndex();

/// Relaxed atomic accumulation for doubles (CAS loop; exact for the
/// integer-valued sums the tests assert on, associative-only otherwise —
/// metrics are diagnostics, never model inputs).
inline void AtomicAdd(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

struct alignas(64) PaddedUint64 {
  std::atomic<uint64_t> value{0};
};

struct alignas(64) PaddedDouble {
  std::atomic<double> value{0.0};
};

}  // namespace internal_metrics

/// Monotone event counter. Increment is a relaxed add on the calling
/// thread's stripe; Value() sums the stripes (exact: integer arithmetic).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t delta = 1) {
    if (!MetricsEnabled()) return;
    stripes_[internal_metrics::StripeIndex()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& stripe : stripes_) {
      total += stripe.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Zeroes every stripe (registry Reset; not linearizable vs. writers).
  void Reset() {
    for (auto& stripe : stripes_) {
      stripe.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  internal_metrics::PaddedUint64 stripes_[internal_metrics::kStripes];
};

/// Last-write-wins instantaneous value (queue depth, live sessions,
/// imbalance ratio). Gauges are updated at coarse points, so a single
/// atomic suffices; Add supports the delta-maintained gauges (sessions).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) {
    if (!MetricsEnabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(double delta) {
    if (!MetricsEnabled()) return;
    internal_metrics::AtomicAdd(value_, delta);
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Bucket layout of a Histogram: fixed log-scale upper bounds
/// min_bound * growth^i for i in [0, num_buckets), plus an implicit +Inf
/// overflow bucket. The defaults span 1µs .. ~9 hours at 2x resolution,
/// which covers every latency this system measures (serve requests,
/// thread-pool task waits, trainer phases).
struct HistogramOptions {
  double min_bound = 1e-6;
  double growth = 2.0;
  int num_buckets = 45;
};

/// Fixed-bucket log-scale histogram. Observe is two relaxed atomic
/// updates (bucket count + stripe sum) on the calling thread's stripe;
/// bucket boundaries are fixed at construction so recording never
/// allocates or locks.
class Histogram {
 public:
  explicit Histogram(HistogramOptions options = {});
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value) {
    if (!MetricsEnabled()) return;
    const size_t stripe = internal_metrics::StripeIndex();
    counts_[stripe * stride_ + BucketFor(value)].fetch_add(
        1, std::memory_order_relaxed);
    internal_metrics::AtomicAdd(sums_[stripe].value, value);
  }

  /// Total observations (exact) and their sum (exact for integer-valued
  /// observations; otherwise subject to float reassociation).
  uint64_t Count() const;
  double Sum() const;

  /// Per-bucket totals reduced over the stripes; size num_buckets() + 1,
  /// last entry is the +Inf overflow bucket.
  std::vector<uint64_t> BucketCounts() const;
  /// Finite upper bounds, size num_buckets().
  const std::vector<double>& bucket_bounds() const { return bounds_; }
  int num_buckets() const { return static_cast<int>(bounds_.size()); }

  /// Quantile estimate by linear interpolation within the bucket that
  /// holds the q-th observation (see QuantileFromBuckets). `q` in [0, 1].
  double Quantile(double q) const;

  void Reset();

 private:
  size_t BucketFor(double value) const {
    // Bucket 0 is everything <= min_bound (including non-positive and NaN
    // inputs — diagnostics must never branch to UB on a weird latency).
    if (!(value > options_.min_bound)) return 0;
    const double position =
        (std::log(value) - log_min_) * inv_log_growth_;
    size_t index = static_cast<size_t>(position) + 1;
    const size_t overflow = bounds_.size();
    if (index > overflow) index = overflow;
    // The log arithmetic can round an exact boundary value into the
    // neighboring bucket; snap back so every bound is le-inclusive
    // (bucket i holds bounds[i-1] < value <= bounds[i]).
    if (index < overflow && value > bounds_[index]) {
      ++index;
    } else if (value <= bounds_[index - 1]) {
      --index;
    }
    return index;
  }

  HistogramOptions options_;
  double log_min_ = 0.0;
  double inv_log_growth_ = 0.0;
  std::vector<double> bounds_;
  size_t stride_ = 0;  // per-stripe slot count, padded to a cache line
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;
  internal_metrics::PaddedDouble sums_[internal_metrics::kStripes];
};

/// One collected sample of each instrument kind (stable value snapshot
/// for the exposition renderers; reading concurrent instruments is
/// per-stripe-atomic, not linearizable — fine for diagnostics).
struct CounterSample {
  std::string name;
  std::string labels;  // raw Prometheus label body, e.g. kind="observe"
  uint64_t value = 0;
};
struct GaugeSample {
  std::string name;
  std::string labels;
  double value = 0.0;
};
struct HistogramSample {
  std::string name;
  std::string labels;
  std::vector<double> bounds;    // finite upper bounds
  std::vector<uint64_t> counts;  // bounds.size() + 1, last is +Inf
  uint64_t count = 0;
  double sum = 0.0;
};
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
  /// Optional metric help strings (name -> text), rendered as `# HELP`
  /// lines by the Prometheus exposition.
  std::map<std::string, std::string> help;
};

/// Quantile estimate from fixed histogram buckets: finds the bucket
/// holding the ceil(q * count)-th observation and interpolates linearly
/// between the bucket's bounds (lower bound 0 for the first bucket; the
/// +Inf overflow bucket clamps to the last finite bound, so a quantile
/// landing there reports the largest value the layout can resolve).
/// `counts` has one more entry than `bounds` (the overflow bucket).
/// Returns 0 when there are no observations. Monotone in q.
double QuantileFromBuckets(std::span<const uint64_t> counts,
                           std::span<const double> bounds, double q);

/// Named-instrument registry. Get* registers on first use (mutex-guarded,
/// cold path) and returns a stable reference the caller should cache; the
/// returned instruments live as long as the registry, and their update
/// paths are lock-free. `labels` is a raw Prometheus label body rendered
/// verbatim inside {}, e.g. `kind="observe"` — empty for unlabelled
/// instruments. The same (name, labels) pair always yields the same
/// instrument.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide registry every built-in instrument registers with.
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name, const std::string& labels = "");
  Gauge& GetGauge(const std::string& name, const std::string& labels = "");
  Histogram& GetHistogram(const std::string& name,
                          const std::string& labels = "",
                          HistogramOptions options = {});

  /// Attach a help string to a metric name; rendered as a `# HELP` line
  /// by the Prometheus exposition. Last writer wins.
  void SetHelp(const std::string& name, const std::string& text);

  /// Value snapshot of every registered instrument, sorted by
  /// (name, labels) for stable exposition output.
  MetricsSnapshot Collect() const;

  /// Zeroes every instrument's value (instruments stay registered, so
  /// cached references remain valid). For tests and per-run dumps.
  void Reset();

 private:
  template <typename T>
  struct Named {
    std::string name;
    std::string labels;
    T instrument;
    Named(std::string n, std::string l) : name(std::move(n)), labels(std::move(l)) {}
    Named(std::string n, std::string l, HistogramOptions options)
        : name(std::move(n)), labels(std::move(l)), instrument(options) {}
  };

  mutable std::mutex mutex_;
  std::map<std::string, std::string> help_;
  // deques: stable instrument addresses while the registry grows.
  std::deque<Named<Counter>> counters_;
  std::deque<Named<Gauge>> gauges_;
  std::deque<Named<Histogram>> histograms_;
  std::unordered_map<std::string, Counter*> counter_index_;
  std::unordered_map<std::string, Gauge*> gauge_index_;
  std::unordered_map<std::string, Histogram*> histogram_index_;
};

}  // namespace obs
}  // namespace upskill

#endif  // UPSKILL_OBS_METRICS_H_
