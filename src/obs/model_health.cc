#include "obs/model_health.h"

#include "common/string_util.h"
#include "obs/exposition.h"
#include "obs/metrics.h"

namespace upskill {
namespace obs {

namespace {

MetricsRegistry& Registry() { return MetricsRegistry::Global(); }

}  // namespace

ModelHealth::ModelHealth()
    : snapshot_age_(Registry().GetGauge("upskill_model_snapshot_age_seconds")),
      snapshot_version_(Registry().GetGauge("upskill_model_snapshot_version")),
      snapshot_levels_(Registry().GetGauge("upskill_model_levels")),
      snapshot_items_(Registry().GetGauge("upskill_model_items")),
      refresh_dirty_users_(
          Registry().GetGauge("upskill_online_last_dirty_users")),
      refresh_param_delta_(
          Registry().GetGauge("upskill_online_param_delta_l2")),
      recommend_items_(
          Registry().GetCounter("upskill_model_recommend_items_total")),
      recommend_empty_(
          Registry().GetCounter("upskill_model_recommend_empty_total")) {
  Registry().SetHelp("upskill_model_snapshot_age_seconds",
                     "Seconds since the serving snapshot was installed.");
  Registry().SetHelp("upskill_model_snapshot_version",
                     "Format version of the installed snapshot.");
  Registry().SetHelp("upskill_model_levels",
                     "Skill levels in the serving model.");
  Registry().SetHelp("upskill_model_items",
                     "Items in the serving model.");
  Registry().SetHelp(
      "upskill_model_session_level_count",
      "Live sessions whose current maximum-likelihood skill level is "
      "`level` (level 0 includes sessions with no observation yet).");
  Registry().SetHelp("upskill_model_recommend_items_total",
                     "Items returned across all recommend requests.");
  Registry().SetHelp("upskill_model_recommend_empty_total",
                     "Recommend requests that returned no items.");
  Registry().SetHelp("upskill_online_last_dirty_users",
                     "Users refit by the most recent online-EM refresh.");
  Registry().SetHelp(
      "upskill_online_param_delta_l2",
      "L2 norm of the model parameter change in the most recent "
      "online-EM refresh vs the previous fit.");
  Registry().SetHelp("upskill_trace_dropped_total",
                     "Phase spans dropped because the trace buffer was full.");
  Registry().SetHelp("upskill_model_snapshot_info",
                     "Installed snapshot identity (value is always 1).");
}

ModelHealth& ModelHealth::Global() {
  // Leaked like the registry it writes into: wiring points may note
  // refreshes during static teardown of CLI commands.
  static ModelHealth* health = new ModelHealth;
  return *health;
}

uint64_t ModelHealth::AddSampler(std::function<void()> sampler) {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t token = next_token_++;
  samplers_.emplace_back(token, std::move(sampler));
  return token;
}

void ModelHealth::RemoveSampler(uint64_t token) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i = 0; i < samplers_.size(); ++i) {
    if (samplers_[i].first == token) {
      samplers_.erase(samplers_.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
}

void ModelHealth::Sample() {
  // Copy the callbacks out so a sampler can touch the store (or even
  // deregister itself) without holding our mutex.
  std::vector<std::function<void()>> callbacks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    callbacks.reserve(samplers_.size());
    for (const auto& entry : samplers_) callbacks.push_back(entry.second);
  }
  for (const auto& callback : callbacks) callback();
  snapshot_age_.Set(SnapshotAgeSeconds());
}

void ModelHealth::SetSessionLevelCounts(const std::vector<uint64_t>& counts) {
  std::lock_guard<std::mutex> lock(mutex_);
  const size_t levels = counts.size();
  if (levels > max_levels_seen_) max_levels_seen_ = levels;
  for (size_t s = 0; s < max_levels_seen_; ++s) {
    Gauge& gauge = Registry().GetGauge(
        "upskill_model_session_level_count",
        StringPrintf("level=\"%zu\"", s));
    gauge.Set(s < levels ? static_cast<double>(counts[s]) : 0.0);
  }
}

void ModelHealth::NoteSnapshotInstalled(const std::string& path, int version,
                                        int num_levels, int num_items) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    have_snapshot_ = true;
    snapshot_installed_at_ = std::chrono::steady_clock::now();
  }
  snapshot_version_.Set(version);
  snapshot_levels_.Set(num_levels);
  snapshot_items_.Set(num_items);
  snapshot_age_.Set(0.0);
  Registry().GetCounter("upskill_model_snapshot_installs_total").Increment();
  if (!path.empty()) NoteSnapshotPath(path);
}

void ModelHealth::NoteSnapshotPath(const std::string& path) {
  Registry()
      .GetGauge("upskill_model_snapshot_info",
                "path=\"" + EscapeLabelValue(path) + "\"")
      .Set(1.0);
}

double ModelHealth::SnapshotAgeSeconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!have_snapshot_) return 0.0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       snapshot_installed_at_)
      .count();
}

void ModelHealth::NoteRecommendation(size_t items) {
  recommend_items_.Increment(static_cast<uint64_t>(items));
  if (items == 0) recommend_empty_.Increment();
}

void ModelHealth::NoteRefresh(uint64_t dirty_users, double param_delta_l2) {
  refresh_dirty_users_.Set(static_cast<double>(dirty_users));
  refresh_param_delta_.Set(param_delta_l2);
}

}  // namespace obs
}  // namespace upskill
