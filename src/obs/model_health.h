#ifndef UPSKILL_OBS_MODEL_HEALTH_H_
#define UPSKILL_OBS_MODEL_HEALTH_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace upskill {
namespace obs {

class Counter;
class Gauge;

/// Telemetry about the *model* rather than the machinery serving it:
/// live-session skill-level distribution, per-kind recommendation
/// volume, snapshot staleness, and online-EM refresh health. All state
/// flows through the global MetricsRegistry, so the kill switch, the
/// exposition renderers, and the determinism contract (observation-only,
/// never read back by model code) apply unchanged.
///
/// Pull-style sources (the session store's level distribution) register
/// a sampler callback; scrape points (/metrics, /statusz, `stats`) call
/// Sample() first so gauges are fresh at read time instead of being
/// maintained on the request hot path.
class ModelHealth {
 public:
  ModelHealth();
  ModelHealth(const ModelHealth&) = delete;
  ModelHealth& operator=(const ModelHealth&) = delete;

  /// Process-wide instance every wiring point uses.
  static ModelHealth& Global();

  /// Register a scrape-time callback (e.g. "walk the session store and
  /// call SetSessionLevelCounts"). Returns a token for RemoveSampler.
  uint64_t AddSampler(std::function<void()> sampler);
  void RemoveSampler(uint64_t token);
  /// Run all registered samplers, then refresh derived gauges
  /// (snapshot age). Call before rendering any scrape.
  void Sample();

  /// Session skill-level distribution: counts[s] = live sessions whose
  /// current maximum-likelihood level is s; counts[0] includes sessions
  /// with no successful observation yet. Stale level gauges from a
  /// previous (larger) model are zeroed.
  void SetSessionLevelCounts(const std::vector<uint64_t>& counts);

  /// A snapshot was installed (process start or hot swap).
  void NoteSnapshotInstalled(const std::string& path, int version,
                             int num_levels, int num_items);
  /// Stamps the `upskill_model_snapshot_info{path="..."}` identity gauge
  /// for callers that learn the path after the install (file swaps).
  void NoteSnapshotPath(const std::string& path);
  double SnapshotAgeSeconds() const;

  /// A recommend request returned `items` items.
  void NoteRecommendation(size_t items);

  /// An online-EM refresh finished: how many users were refit and the L2
  /// norm of the parameter change vs the previous fit.
  void NoteRefresh(uint64_t dirty_users, double param_delta_l2);

 private:
  mutable std::mutex mutex_;
  std::vector<std::pair<uint64_t, std::function<void()>>> samplers_;
  uint64_t next_token_ = 1;
  size_t max_levels_seen_ = 0;  // for zeroing stale level gauges
  bool have_snapshot_ = false;
  std::chrono::steady_clock::time_point snapshot_installed_at_{};

  Gauge& snapshot_age_;
  Gauge& snapshot_version_;
  Gauge& snapshot_levels_;
  Gauge& snapshot_items_;
  Gauge& refresh_dirty_users_;
  Gauge& refresh_param_delta_;
  Counter& recommend_items_;
  Counter& recommend_empty_;
};

}  // namespace obs
}  // namespace upskill

#endif  // UPSKILL_OBS_MODEL_HEALTH_H_
