#include "obs/request_trace.h"

#include <algorithm>
#include <unordered_set>

#include "common/string_util.h"
#include "obs/trace.h"

namespace upskill {
namespace obs {

namespace {

uint64_t ProcessEpochBits() {
  // Captured once per process; seconds-granularity wall time is enough
  // to keep ids from successive runs distinct.
  static const uint64_t bits = [] {
    const auto now = std::chrono::system_clock::now().time_since_epoch();
    const uint64_t seconds =
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::seconds>(now).count());
    return (seconds & 0xFFFFu) << 48;
  }();
  return bits;
}

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

uint64_t NextRequestId() {
  static std::atomic<uint64_t> next{0};
  const uint64_t low =
      (next.fetch_add(1, std::memory_order_relaxed) + 1) & 0xFFFFFFFFFFFFull;
  return ProcessEpochBits() | low;
}

FlightRecorder::FlightRecorder(FlightRecorderOptions options)
    : options_(options), epoch_(std::chrono::steady_clock::now()) {
  if (options_.capacity < 1) options_.capacity = 1;
  if (options_.num_stripes < 1) options_.num_stripes = 1;
  if (options_.sample_every < 1) options_.sample_every = 1;
  sample_pow2_ = (options_.sample_every & (options_.sample_every - 1)) == 0;
  sample_mask_ = options_.sample_every - 1;
  has_slow_tables_ = options_.slowest_per_kind > 0;
  size_t stripes = RoundUpPow2(options_.num_stripes);
  while (stripes > 1 && options_.capacity / stripes == 0) stripes >>= 1;
  options_.num_stripes = stripes;
  stripe_capacity_ = options_.capacity / stripes;
  if (stripe_capacity_ < 1) stripe_capacity_ = 1;
  stripe_mask_ = stripes - 1;
  stripes_ = std::make_unique<Stripe[]>(stripes);
  for (size_t i = 0; i < stripes; ++i) {
    stripes_[i].ring.resize(stripe_capacity_);
  }
  for (auto& floor : floor_us_) {
    floor.store(-1, std::memory_order_relaxed);
  }
  error_ring_.resize(options_.error_capacity);
  for (auto& table : slow_) {
    table.rows.resize(options_.slowest_per_kind);
  }
}

void FlightRecorder::KeptRecord(Stripe& stripe, int kind_index,
                                const char* kind_name,
                                std::chrono::steady_clock::time_point start,
                                int64_t duration_ns, uint64_t id) {
  RequestRecord record;
  record.id = id != 0 ? id : NextRequestId();
  record.kind_name = kind_name;
  record.kind_index = kind_index;
  record.start_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(start - epoch_)
          .count();
  record.duration_ns = duration_ns;
  record.thread = CurrentThreadId();
  std::lock_guard<std::mutex> lock(stripe.mutex);
  stripe.ring[stripe.head % stripe_capacity_] = record;
  ++stripe.head;
}

void FlightRecorder::RecordSlow(int kind_index, const char* kind_name,
                                std::chrono::steady_clock::time_point start,
                                int64_t duration_ns, bool error, bool shed,
                                bool slow_candidate, uint64_t id) {
  RequestRecord record;
  record.id = id != 0 ? id : NextRequestId();
  record.kind_name = kind_name;
  record.kind_index = kind_index;
  record.start_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(start - epoch_)
          .count();
  record.duration_ns = duration_ns;
  record.thread = CurrentThreadId();
  record.error = error;
  record.shed = shed;

  // Tail retention first: errors and sheds always survive, regardless of
  // main-ring thinning or overwrite.
  if (error || shed) {
    std::lock_guard<std::mutex> lock(error_mutex_);
    if (!error_ring_.empty()) {
      error_ring_[error_head_ % error_ring_.size()] = record;
      ++error_head_;
    }
    if (error) errors_retained_.fetch_add(1, std::memory_order_relaxed);
    if (shed) sheds_retained_.fetch_add(1, std::memory_order_relaxed);
  }

  // Slowest-per-kind insert under the table mutex; the candidacy check
  // re-runs against the rows themselves, so a stale lock-free floor only
  // costs a lock acquisition, never a wrong insert.
  if (slow_candidate) {
    SlowTable& table = slow_[kind_index];
    std::lock_guard<std::mutex> lock(table.mutex);
    if (table.used < table.rows.size()) {
      table.rows[table.used++] = record;
    } else {
      size_t min_index = 0;
      for (size_t i = 1; i < table.rows.size(); ++i) {
        if (table.rows[i].duration_ns < table.rows[min_index].duration_ns) {
          min_index = i;
        }
      }
      if (record.duration_ns <= table.rows[min_index].duration_ns) {
        return MainRingRecord(record);
      }
      table.rows[min_index] = record;
    }
    if (table.used == table.rows.size()) {
      int64_t new_min = table.rows[0].duration_ns;
      for (size_t i = 1; i < table.used; ++i) {
        new_min = std::min(new_min, table.rows[i].duration_ns);
      }
      const int64_t new_floor_us = new_min / 1000;
      floor_us_[kind_index].store(
          new_floor_us > INT32_MAX ? INT32_MAX
                                   : static_cast<int32_t>(new_floor_us),
          std::memory_order_relaxed);
    }
  }

  MainRingRecord(record);
}

void FlightRecorder::RecordAdmitted(bool cadence, int kind_index,
                                    const char* kind_name,
                                    std::chrono::steady_clock::time_point start,
                                    int64_t duration_ns, bool error, bool shed,
                                    bool slow_candidate, uint64_t id) {
  RequestRecord record;
  record.id = id != 0 ? id : NextRequestId();
  record.kind_name = kind_name;
  record.kind_index = kind_index;
  record.start_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(start - epoch_)
          .count();
  record.duration_ns = duration_ns;
  record.thread = CurrentThreadId();
  record.error = error;
  record.shed = shed;

  if (error || shed) {
    std::lock_guard<std::mutex> lock(error_mutex_);
    if (!error_ring_.empty()) {
      error_ring_[error_head_ % error_ring_.size()] = record;
      ++error_head_;
    }
    if (error) errors_retained_.fetch_add(1, std::memory_order_relaxed);
    if (shed) sheds_retained_.fetch_add(1, std::memory_order_relaxed);
  }

  if (slow_candidate) {
    SlowTable& table = slow_[kind_index];
    std::lock_guard<std::mutex> lock(table.mutex);
    if (table.used < table.rows.size()) {
      table.rows[table.used++] = record;
    } else {
      size_t min_index = 0;
      for (size_t i = 1; i < table.rows.size(); ++i) {
        if (table.rows[i].duration_ns < table.rows[min_index].duration_ns) {
          min_index = i;
        }
      }
      if (record.duration_ns > table.rows[min_index].duration_ns) {
        table.rows[min_index] = record;
      }
    }
    if (table.used == table.rows.size()) {
      int64_t new_min = table.rows[0].duration_ns;
      for (size_t i = 1; i < table.used; ++i) {
        new_min = std::min(new_min, table.rows[i].duration_ns);
      }
      const int64_t new_floor_us = new_min / 1000;
      floor_us_[kind_index].store(
          new_floor_us > INT32_MAX ? INT32_MAX
                                   : static_cast<int32_t>(new_floor_us),
          std::memory_order_relaxed);
    }
  }

  // The cadence rep represents its whole sampling block in the main
  // ring and in the offered count; non-cadence admissions live in tail
  // retention only, so the block accounting stays sum-exact.
  if (!cadence) return;
  Stripe& stripe = stripes_[StripeFor()];
  stripe.offered.fetch_add(options_.sample_every, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  stripe.ring[stripe.head % stripe_capacity_] = record;
  ++stripe.head;
}

void FlightRecorder::MainRingRecord(const RequestRecord& record) {
  Stripe& stripe = stripes_[StripeFor()];
  const uint64_t offered =
      stripe.offered.fetch_add(1, std::memory_order_relaxed);
  if (SampledOut(offered)) return;
  std::lock_guard<std::mutex> lock(stripe.mutex);
  stripe.ring[stripe.head % stripe_capacity_] = record;
  ++stripe.head;
}

std::vector<RequestRecord> FlightRecorder::Recent() const {
  std::vector<RequestRecord> out;
  out.reserve(options_.capacity);
  for (size_t i = 0; i <= stripe_mask_; ++i) {
    const Stripe& stripe = stripes_[i];
    std::lock_guard<std::mutex> lock(stripe.mutex);
    const uint64_t count =
        std::min<uint64_t>(stripe.head, stripe_capacity_);
    for (uint64_t j = 0; j < count; ++j) {
      out.push_back(stripe.ring[(stripe.head - count + j) % stripe_capacity_]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const RequestRecord& a, const RequestRecord& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.id < b.id;
            });
  return out;
}

std::vector<RequestRecord> FlightRecorder::Retained() const {
  std::vector<RequestRecord> out;
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    const uint64_t count =
        std::min<uint64_t>(error_head_, error_ring_.size());
    for (uint64_t i = 0; i < count; ++i) {
      out.push_back(
          error_ring_[(error_head_ - count + i) % error_ring_.size()]);
    }
  }
  for (const SlowTable& table : slow_) {
    std::lock_guard<std::mutex> lock(table.mutex);
    for (size_t i = 0; i < table.used; ++i) {
      out.push_back(table.rows[i]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const RequestRecord& a, const RequestRecord& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.id < b.id;
            });
  return out;
}

FlightRecorderStats FlightRecorder::Stats() const {
  FlightRecorderStats stats;
  uint64_t kept = 0;
  for (size_t i = 0; i <= stripe_mask_; ++i) {
    const Stripe& stripe = stripes_[i];
    std::lock_guard<std::mutex> lock(stripe.mutex);
    stats.recorded += stripe.offered.load(std::memory_order_relaxed);
    kept += stripe.head;
    stats.ring_size +=
        static_cast<size_t>(std::min<uint64_t>(stripe.head, stripe_capacity_));
  }
  // Every offer either pushed a record (head) or was thinned; offered is
  // bumped before head, so the difference never goes negative.
  stats.sampled_out = stats.recorded - kept;
  stats.errors_retained = errors_retained_.load(std::memory_order_relaxed);
  stats.sheds_retained = sheds_retained_.load(std::memory_order_relaxed);
  for (const SlowTable& table : slow_) {
    std::lock_guard<std::mutex> lock(table.mutex);
    stats.slowest_size += table.used;
  }
  return stats;
}

std::string RenderFlightRecorderJson(const FlightRecorder& recorder) {
  const std::vector<RequestRecord> recent = recorder.Recent();
  const std::vector<RequestRecord> retained = recorder.Retained();
  std::unordered_set<uint64_t> seen;
  seen.reserve(recent.size() + retained.size());

  std::string out;
  out.reserve((recent.size() + retained.size()) * 160 + 64);
  out += "{\"traceEvents\":[";
  bool first = true;
  const auto append = [&](const RequestRecord& record, bool is_retained) {
    if (!seen.insert(record.id).second) return;
    if (!first) out += ',';
    first = false;
    out += StringPrintf(
        "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,"
        "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"request_id\":%llu,"
        "\"kind\":%d,\"error\":%s,\"shed\":%s,\"retained\":%s}}",
        record.kind_name, record.thread,
        static_cast<double>(record.start_ns) / 1e3,
        static_cast<double>(record.duration_ns) / 1e3,
        static_cast<unsigned long long>(record.id), record.kind_index,
        record.error ? "true" : "false", record.shed ? "true" : "false",
        is_retained ? "true" : "false");
  };
  // Retained first so a record that is both recent and tail-sampled
  // carries retained=true in the dump.
  for (const RequestRecord& record : retained) append(record, true);
  for (const RequestRecord& record : recent) append(record, false);
  out += "]}\n";
  return out;
}

}  // namespace obs
}  // namespace upskill
